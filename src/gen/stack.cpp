#include "gen/stack.h"

#include "sg/builder.h"

namespace tsg {

signal_graph stack_controller_sg(const stack_options& options)
{
    const std::uint32_t n = options.cells;
    require(n >= 2, "stack_controller_sg: need at least 2 cells");

    const rational fwd = options.forward_delay;
    const rational bwd = options.backward_delay;
    const rational in = options.internal_delay;

    sg_builder b;
    auto cell = [&](std::uint32_t i, const std::string& base) {
        return base + std::to_string(i);
    };

    // Each cell: a 4-phase fork/join handshake.
    //   request r forks into branches p and q, which join into acknowledge a;
    //   the down-phase mirrors the up-phase; three shortcut arcs add the
    //   reset orderings a+ -> p-/q- and r- -> a-.
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::string r = cell(i, "r");
        const std::string p = cell(i, "p");
        const std::string q = cell(i, "q");
        const std::string a = cell(i, "a");
        b.arc(r + "+", p + "+", fwd);
        b.arc(r + "+", q + "+", fwd);
        b.arc(p + "+", a + "+", in);
        b.arc(q + "+", a + "+", in);
        b.arc(a + "+", r + "-", bwd);
        b.arc(r + "-", p + "-", fwd);
        b.arc(r + "-", q + "-", fwd);
        b.arc(p + "-", a + "-", in);
        b.arc(q + "-", a + "-", in);
        b.arc(a + "+", p + "-", bwd);
        b.arc(a + "+", q + "-", bwd);
        b.arc(r + "-", a + "-", in);
        // Inter-cell handshake: each boundary carries a token (a full
        // pipeline), making every ring cycle live.
        b.marked_arc(cell(i, "a") + "-", cell((i + 1) % n, "r") + "+", fwd);
    }

    // Interface controller g: a self-handshake loop observing cell 0 and
    // cell n-1 and re-launching requests into cell 0.  Every out-arc of g
    // except g+ -> g- is marked, so all cycles through g stay live.
    b.arc("g+", "g-", in);
    b.marked_arc("g-", "g+", bwd);
    b.arc("a0+", "g+", in);
    b.arc("a0-", "g-", in);
    b.arc(cell(n - 1, "a") + "+", "g+", in);
    b.arc(cell(n - 1, "a") + "-", "g-", in);
    b.marked_arc("g+", "r0+", fwd);
    b.marked_arc("g-", "r0-", fwd);

    return b.build();
}

signal_graph paper_stack_sg()
{
    // 8 cells * 8 events + 2 interface events = 66 events;
    // 8 cells * 13 arcs + 8 interface arcs = 112 arcs — the size the paper
    // reports for the constant-response-time stack (Section VIII.B).
    return stack_controller_sg(stack_options{.cells = 8});
}

} // namespace tsg
