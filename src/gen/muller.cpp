#include "gen/muller.h"

#include <algorithm>
#include <deque>
#include <map>

#include "circuit/explorer.h"

namespace tsg {

std::string muller_stage_name(std::uint32_t stage, std::uint32_t stages)
{
    if (stages <= 26) return std::string(1, static_cast<char>('a' + stage));
    std::string name = "s";
    name += std::to_string(stage);
    return name;
}

parsed_circuit muller_ring_circuit(const muller_ring_options& options)
{
    const std::uint32_t n = options.stages;
    require(n >= 3, "muller_ring: need at least 3 stages");

    std::vector<std::uint32_t> high = options.high_stages;
    if (high.empty()) high.push_back(n - 1);
    for (const std::uint32_t h : high)
        require(h < n, "muller_ring: token stage out of range");
    require(high.size() < n, "muller_ring: at least one stage must start low");

    parsed_circuit circuit;
    circuit.name = "muller_ring" + std::to_string(n);

    std::vector<std::string> stage_names(n);
    std::vector<std::string> inv_names(n);
    for (std::uint32_t k = 0; k < n; ++k) {
        stage_names[k] = muller_stage_name(k, n);
        inv_names[k] = "i" + stage_names[k];
    }

    for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint32_t prev = (k + n - 1) % n;
        circuit.nl.add_gate(gate_kind::c_element, stage_names[k],
                            {{stage_names[prev], options.c_delay},
                             {inv_names[k], options.c_delay}});
    }
    for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint32_t next = (k + 1) % n;
        circuit.nl.add_gate(gate_kind::inv, inv_names[k],
                            {{stage_names[next], options.inv_delay}});
    }

    circuit.initial = circuit_state(circuit.nl.signal_count());
    std::vector<bool> stage_value(n, false);
    for (const std::uint32_t h : high) stage_value[h] = true;
    for (std::uint32_t k = 0; k < n; ++k) {
        circuit.initial.set(circuit.nl.signal_by_name(stage_names[k]), stage_value[k]);
        circuit.initial.set(circuit.nl.signal_by_name(inv_names[k]),
                            !stage_value[(k + 1) % n]);
    }
    circuit.nl.validate();
    return circuit;
}

signal_graph muller_ring_sg(const muller_ring_options& options)
{
    const parsed_circuit circuit = muller_ring_circuit(options);
    const netlist& nl = circuit.nl;
    const std::size_t signals = nl.signal_count();

    // Simulate under fair FIFO firing until every transition (signal,
    // value) has fired at least once, recording first-firing indices.  In a
    // safe distributive behaviour the relative order of causally related
    // first firings is schedule-independent, so "source first fires after
    // target" identifies exactly the arcs whose first dependency is
    // pre-satisfied by the initial state — the marked arcs.
    std::map<std::pair<signal_id, bool>, std::size_t> first_fire;
    {
        circuit_state state = circuit.initial;
        std::deque<signal_id> queue;
        std::vector<bool> in_queue(signals, false);
        auto refresh = [&](signal_id s) {
            if (!in_queue[s] && gate_excited(nl, state, s)) {
                queue.push_back(s);
                in_queue[s] = true;
            }
        };
        for (signal_id s = 0; s < signals; ++s) refresh(s);
        require(!queue.empty(), "muller_ring: initial state is stable (bad token placement)");

        const std::size_t budget = 40 * signals + 64;
        for (std::size_t step = 0; step < budget && first_fire.size() < 2 * signals; ++step) {
            require(!queue.empty(), "muller_ring: deadlock before all transitions fired");
            const signal_id s = queue.front();
            queue.pop_front();
            in_queue[s] = false;
            require(gate_excited(nl, state, s),
                    "muller_ring: withdrawn excitation (not semimodular)");
            state.toggle(s);
            first_fire.emplace(std::make_pair(s, state.value(s)), step);
            refresh(s);
            for (const std::uint32_t gi : nl.fanout(s)) refresh(nl.gates()[gi].output);
        }
        require(first_fire.size() == 2 * signals,
                "muller_ring: some transition never fired (bad token placement)");
    }

    // Events and arcs follow the netlist; marking from first-lap order.
    signal_graph sg;
    auto event_name = [&](signal_id s, bool value) {
        return nl.signal_name(s) + (value ? "+" : "-");
    };
    for (signal_id s = 0; s < signals; ++s) {
        sg.add_event(event_name(s, true), nl.signal_name(s), polarity::rise);
        sg.add_event(event_name(s, false), nl.signal_name(s), polarity::fall);
    }
    auto event_of = [&](signal_id s, bool value) {
        return sg.event_by_name(event_name(s, value));
    };

    for (const gate& g : nl.gates()) {
        for (const bool target_value : {true, false}) {
            const event_id target = event_of(g.output, target_value);
            const std::size_t target_first = first_fire.at({g.output, target_value});
            for (const pin& p : g.inputs) {
                // For C-elements the pin must equal the new output value;
                // for the inverter it must be the complement.
                const bool needed =
                    g.kind == gate_kind::c_element ? target_value : !target_value;
                const event_id source = event_of(p.signal, needed);
                const bool marked = first_fire.at({p.signal, needed}) > target_first;
                sg.add_arc(source, target, p.delay_for(target_value), marked,
                           /*disengageable=*/false);
            }
        }
    }
    sg.finalize();
    return sg;
}

} // namespace tsg
