#include "gen/random_sg.h"

#include <vector>

#include "util/prng.h"

namespace tsg {

signal_graph random_marked_graph(const random_sg_options& options)
{
    require(options.events >= 2, "random_marked_graph: need at least 2 events");
    const std::uint32_t n = options.events;

    prng rng(options.seed);

    // Random circular order of events.
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<std::uint32_t> position(n);
    for (std::uint32_t i = 0; i < n; ++i) position[order[i]] = i;

    signal_graph sg;
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name = "v";
        name += std::to_string(i);
        sg.add_event(name, "", polarity::none);
    }

    auto delay = [&] { return rational(rng.uniform(0, options.max_delay)); };

    // Hamiltonian cycle along the order; the wrap-around arc carries the
    // token that keeps every cycle through it live.
    for (std::uint32_t i = 0; i + 1 < n; ++i)
        sg.add_arc(order[i], order[i + 1], delay(), /*marked=*/false);
    sg.add_arc(order[n - 1], order[0], delay(), /*marked=*/true);

    // Extra arcs: forward arcs are plain, backward arcs are marked.  With a
    // border limit, backward arcs may only land near the front of the order.
    for (std::uint32_t k = 0; k < options.extra_arcs; ++k) {
        std::uint32_t u = 0;
        std::uint32_t v = 0;
        while (u == v) {
            u = static_cast<std::uint32_t>(rng.index(n));
            v = static_cast<std::uint32_t>(rng.index(n));
            if (u == v) continue;
            const bool backward = position[u] >= position[v];
            if (backward && options.border_limit != 0 &&
                position[v] >= options.border_limit) {
                u = v; // reject: backward arc outside the border zone
                continue;
            }
        }
        const bool backward = position[u] >= position[v];
        sg.add_arc(u, v, delay(), /*marked=*/backward);
    }

    sg.finalize();
    return sg;
}

} // namespace tsg
