#include "gen/oscillator.h"

#include "sg/builder.h"

namespace tsg {

parsed_circuit c_oscillator_circuit()
{
    parsed_circuit circuit;
    circuit.name = "oscillator";
    circuit.nl.add_signal("e");
    circuit.nl.add_gate(gate_kind::nor_gate, "a", {{"e", 2}, {"c", 2}});
    circuit.nl.add_gate(gate_kind::nor_gate, "b", {{"f", 1}, {"c", 1}});
    circuit.nl.add_gate(gate_kind::c_element, "c", {{"a", 3}, {"b", 2}});
    circuit.nl.add_gate(gate_kind::buf, "f", {{"e", 3}});
    circuit.nl.add_stimulus("e");

    circuit.initial = circuit_state(circuit.nl.signal_count());
    circuit.initial.set(circuit.nl.signal_by_name("e"), true);
    circuit.initial.set(circuit.nl.signal_by_name("f"), true);
    // a, b, c start low.
    circuit.nl.validate();
    return circuit;
}

signal_graph c_oscillator_sg()
{
    return sg_builder()
        .once_arc("e-", "a+", 2)
        .arc("e-", "f-", 3)
        .once_arc("f-", "b+", 1)
        .marked_arc("c-", "a+", 2)
        .marked_arc("c-", "b+", 1)
        .arc("a+", "c+", 3)
        .arc("b+", "c+", 2)
        .arc("c+", "a-", 2)
        .arc("c+", "b-", 1)
        .arc("a-", "c-", 3)
        .arc("b-", "c-", 2)
        .build();
}

} // namespace tsg
