// The Section VIII.B benchmark stand-in: a Signal Graph of the size the
// paper reports for "an asynchronous stack with constant response time" —
// 66 events and 112 arcs — used to compare analysis run time.
//
// The original stack netlist (from the FORCAGE distribution) is not
// published in the paper, so this module generates a structured surrogate:
// a ring of fork/join cells whose event/arc counts are calibrated to the
// published instance, plus the generic knobs to scale the family up for
// the complexity benchmarks.  See DESIGN.md ("Substitutions").
#ifndef TSG_GEN_STACK_H
#define TSG_GEN_STACK_H

#include <cstdint>

#include "sg/signal_graph.h"

namespace tsg {

/// A ring of `cells` fork/join handshake cells.  Each cell contributes 8
/// events (request/acknowledge rise/fall on a split/merge pair) and 14
/// arcs; one shared interface pair closes the ring.  Delays default to the
/// classic 4-phase latencies (forward 2, backward 1, internal 1).
struct stack_options {
    std::uint32_t cells = 8;
    rational forward_delay = 2;
    rational backward_delay = 1;
    rational internal_delay = 1;
};
[[nodiscard]] signal_graph stack_controller_sg(const stack_options& options = {});

/// The calibrated instance matching the paper's reported size: 66 events,
/// 112 arcs.
[[nodiscard]] signal_graph paper_stack_sg();

} // namespace tsg

#endif // TSG_GEN_STACK_H
