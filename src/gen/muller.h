// Muller ring generator (the paper's Section VIII.D example: a Muller
// pipeline whose ends are joined into a ring, initialized with data
// tokens).
//
// Stage k holds a C-element with output s_k and inputs s_{k-1} (previous
// stage) and inv_k, where inv_k = INV(s_{k+1}) is the feedback inverter.
// A stage whose output starts at 1 carries a data token.  The paper's
// instance has five stages a..e, the token in the last stage, and all
// delays 1; its cycle time is 20/3.
#ifndef TSG_GEN_MULLER_H
#define TSG_GEN_MULLER_H

#include <cstdint>
#include <vector>

#include "circuit/netlist_io.h"
#include "sg/signal_graph.h"

namespace tsg {

struct muller_ring_options {
    std::uint32_t stages = 5;
    /// Stage indices whose C-element output starts at 1 (the data tokens);
    /// defaults to {stages - 1}, the paper's configuration, when empty.
    std::vector<std::uint32_t> high_stages;
    rational c_delay = 1;   ///< every C-element pin delay
    rational inv_delay = 1; ///< inverter pin delay
};

/// Stage output names: "a".."z" for up to 26 stages, else "s0", "s1", ...
/// Inverter names prepend 'i' ("ia", "is12").
[[nodiscard]] std::string muller_stage_name(std::uint32_t stage, std::uint32_t stages);

/// The ring as a circuit (netlist + consistent initial state, no stimuli).
[[nodiscard]] parsed_circuit muller_ring_circuit(const muller_ring_options& options = {});

/// The ring's Timed Signal Graph, constructed directly: the arc structure
/// follows the gate netlist and the marking is derived from one simulated
/// lap (every transition fires exactly once per lap in a Muller ring; an
/// arc is marked iff its source transition first fires *after* its target,
/// i.e. the target's first firing was enabled by the initial state).
/// Scales linearly, unlike full extraction; extraction equivalence is
/// covered by tests.
[[nodiscard]] signal_graph muller_ring_sg(const muller_ring_options& options = {});

} // namespace tsg

#endif // TSG_GEN_MULLER_H
