// The paper's running example (Figure 1): a C-element oscillator built from
// a C-element, two NOR gates and a buffer, plus its Timed Signal Graph
// (Figure 2c).
//
//   a = NOR(e, c)   pins: e delay 2, c delay 2
//   b = NOR(f, c)   pins: f delay 1, c delay 1
//   c = C(a, b)     pins: a delay 3, b delay 2
//   f = BUF(e)      pin:  e delay 3
//   initial state {a, b, c, f, e} = {0, 0, 0, 1, 1}; input e falls at t = 0.
#ifndef TSG_GEN_OSCILLATOR_H
#define TSG_GEN_OSCILLATOR_H

#include "circuit/netlist_io.h"
#include "sg/signal_graph.h"

namespace tsg {

/// The Figure 1a circuit with the paper's initial state and stimulus.
[[nodiscard]] parsed_circuit c_oscillator_circuit();

/// The Figure 2c Timed Signal Graph, built directly:
///   events e-, f-, a+, b+, c+, a-, b-, c-;
///   crossed arcs e- -> a+ (2), f- -> b+ (1); arc e- -> f- (3);
///   dotted arcs c- -> a+ (2), c- -> b+ (1);
///   cycle arcs a+ -> c+ (3), b+ -> c+ (2), c+ -> a- (2), c+ -> b- (1),
///              a- -> c- (3), b- -> c- (2).
[[nodiscard]] signal_graph c_oscillator_sg();

} // namespace tsg

#endif // TSG_GEN_OSCILLATOR_H
