// Random live, initially-safe, strongly connected Timed Signal Graphs for
// property tests and scaling benchmarks.
//
// Construction: lay the events on a random circular order; a Hamiltonian
// cycle along the order (with one marked closing arc) guarantees strong
// connectivity and liveness; extra arcs are sprinkled uniformly, marked
// exactly when they run backwards against the order — so the token-free
// subgraph stays acyclic (liveness) and the marking stays boolean
// (initially-safe).  The border set size is steered by restricting where
// backward arcs may land.
#ifndef TSG_GEN_RANDOM_SG_H
#define TSG_GEN_RANDOM_SG_H

#include <cstdint>

#include "sg/signal_graph.h"

namespace tsg {

struct random_sg_options {
    std::uint32_t events = 32;
    std::uint32_t extra_arcs = 32;     ///< arcs beyond the Hamiltonian cycle
    std::int64_t max_delay = 10;       ///< delays uniform in [0, max_delay]
    std::uint64_t seed = 1;
    /// When non-zero, backward (marked) extra arcs may only target the first
    /// `border_limit` events of the order, keeping the border set small —
    /// the b << n regime where the paper's algorithm is near-linear.
    std::uint32_t border_limit = 0;
};

/// Generates the graph; the result is finalized and guaranteed live,
/// initially-safe, with a strongly connected repetitive core of exactly
/// `events` events and `events + extra_arcs` arcs.
[[nodiscard]] signal_graph random_marked_graph(const random_sg_options& options);

} // namespace tsg

#endif // TSG_GEN_RANDOM_SG_H
