// Interleaving state-space exploration and semimodularity checking.
//
// A circuit is speed-independent only if an excited gate stays excited
// until it fires: no other transition may "steal" its excitation.  This
// module explores the reachable binary state space under the interleaving
// semantics (fire one excited signal at a time) and reports any state in
// which firing one signal disables another — a semimodularity violation,
// which also rules out distributivity.  The paper's reference [9] performs
// this analysis (plus extraction) in the TRASPEC tool; here it backs the
// extractor with an exactness check and provides negative diagnostics for
// hazard-ridden circuits.
#ifndef TSG_CIRCUIT_EXPLORER_H
#define TSG_CIRCUIT_EXPLORER_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace tsg {

struct exploration_result {
    std::size_t state_count = 0;   ///< reachable states visited
    bool semimodular = true;       ///< no excitation was ever disabled
    bool complete = true;          ///< false when max_states was hit
    std::vector<std::string> violations; ///< human-readable witnesses
};

/// Explores all reachable states from `initial` (environment stimuli fire
/// like gates: each pending input toggle is an excitation).  Stops after
/// `max_states` distinct states.
[[nodiscard]] exploration_result explore_state_space(const netlist& nl,
                                                     const circuit_state& initial,
                                                     std::size_t max_states = 1u << 20);

/// Signals excited in `state` (gates plus pending input stimuli):
/// `pending_inputs[i]` aligns with nl.stimuli().
[[nodiscard]] std::vector<signal_id> excited_signals(const netlist& nl,
                                                     const circuit_state& state,
                                                     const std::vector<bool>& pending_inputs);

} // namespace tsg

#endif // TSG_CIRCUIT_EXPLORER_H
