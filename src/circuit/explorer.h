// Circuit-level exploration: reachable-state semimodularity checking and
// delay-corner performance exploration.
//
// State space: a circuit is speed-independent only if an excited gate stays
// excited until it fires: no other transition may "steal" its excitation.
// explore_state_space walks the reachable binary state space under the
// interleaving semantics (fire one excited signal at a time) and reports
// any state in which firing one signal disables another — a semimodularity
// violation, which also rules out distributivity.  The paper's reference
// [9] performs this analysis (plus extraction) in the TRASPEC tool; here it
// backs the extractor with an exactness check and provides negative
// diagnostics for hazard-ridden circuits.
//
// Delay corners: explore_delay_corners answers "how does this circuit's
// throughput move when gate delays drift?" without re-extracting anything.
// The Timed Signal Graph is extracted once, compiled once, and the
// per-arc +/- corners (plus optional Monte Carlo samples) are evaluated as
// one batch on the scenario engine (core/scenario.h).
#ifndef TSG_CIRCUIT_EXPLORER_H
#define TSG_CIRCUIT_EXPLORER_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "core/scenario.h"
#include "core/stats.h"
#include "sg/signal_graph.h"

namespace tsg {

struct exploration_result {
    std::size_t state_count = 0;   ///< reachable states visited
    bool semimodular = true;       ///< no excitation was ever disabled
    bool complete = true;          ///< false when max_states was hit
    std::vector<std::string> violations; ///< human-readable witnesses
};

/// Explores all reachable states from `initial` (environment stimuli fire
/// like gates: each pending input toggle is an excitation).  Stops after
/// `max_states` distinct states.
[[nodiscard]] exploration_result explore_state_space(const netlist& nl,
                                                     const circuit_state& initial,
                                                     std::size_t max_states = 1u << 20);

/// Signals excited in `state` (gates plus pending input stimuli):
/// `pending_inputs[i]` aligns with nl.stimuli().
[[nodiscard]] std::vector<signal_id> excited_signals(const netlist& nl,
                                                     const circuit_state& state,
                                                     const std::vector<bool>& pending_inputs);

// --- delay-corner exploration ------------------------------------------------

struct corner_exploration_options {
    /// Relative perturbation for the per-arc corners (and the Monte Carlo
    /// ranges): each corner moves one extracted arc to delay * (1 -/+ spread).
    rational spread = rational(1, 10);

    /// Additional Monte Carlo scenarios sampled from nominal * (1 -/+ spread)
    /// across *all* arcs simultaneously; 0 = corners only.
    std::size_t samples = 0;
    std::uint64_t seed = 1;

    /// Thread budget for the scenario batch (0 = hardware concurrency).
    unsigned max_threads = 0;

    /// SoA lane count for the batch (see scenario_batch_options::lane_width):
    /// 0 = default, 1 = scalar, else 2/4/8/16.  Results are identical for
    /// every setting.
    unsigned lane_width = 0;
};

struct corner_exploration_result {
    /// The Timed Signal Graph extracted once and shared by every scenario.
    signal_graph graph;

    /// Cycle time (or PERT makespan for circuits that settle) at the
    /// extracted nominal delays.
    rational nominal_cycle_time;

    /// The evaluated scenarios; labels parallel batch.outcomes.
    std::vector<scenario> scenarios;
    scenario_batch_result batch;
};

/// Extracts the circuit's Timed Signal Graph once, then evaluates every
/// delay corner (and optional Monte Carlo samples) as one scenario batch.
/// Throws like extract_signal_graph on non-distributive circuits.
[[nodiscard]] corner_exploration_result explore_delay_corners(
    const netlist& nl, const circuit_state& initial,
    const corner_exploration_options& options = {});

// --- probabilistic gate criticality ------------------------------------------

struct gate_criticality_options {
    /// Monte Carlo samples (fixed-size run), each drawing every extracted
    /// arc from nominal * (1 -/+ spread) on the exact grid.
    std::size_t samples = 256;
    std::uint64_t seed = 1;
    rational spread = rational(1, 10);

    /// When > 0, sample adaptively instead: grow until the lambda-mean CI
    /// half-width reaches epsilon or max_samples (core/stats.h).
    double epsilon = 0.0;
    std::size_t max_samples = std::size_t{1} << 14;

    unsigned max_threads = 0;
};

struct gate_criticality_result {
    /// The Timed Signal Graph extracted once and shared by every sample.
    signal_graph graph;

    /// The statistics run: run.nominal_cycle_time, the cycle-time
    /// distribution, per-arc criticality probabilities, and — through
    /// run.stats.group_names() / group_criticality_count() — the per-gate
    /// criticality report (a gate is critical in a sample when any arc
    /// into one of its transitions lies on the witness critical cycle).
    stats_run_result run;
};

/// "Which gates probabilistically limit this circuit's throughput?" —
/// extract once, Monte Carlo the gate delays, report per-gate criticality
/// probabilities with confidence intervals.
[[nodiscard]] gate_criticality_result explore_gate_criticality(
    const netlist& nl, const circuit_state& initial,
    const gate_criticality_options& options = {});

} // namespace tsg

#endif // TSG_CIRCUIT_EXPLORER_H
