// Text serialization of circuits.
//
// Format (comments run from '#' to end of line):
//
//   circuit osc {
//     input e = 1;                              # primary input, initial value
//     gate a = nor(e delay 2, c delay 2) = 0;   # driver, pin delays, initial value
//     gate c = c(a delay 3, b delay 2) = 0;
//     gate f = buf(e delay 3) = 1;
//     stimulus e;                               # e toggles once at t = 0
//   }
//
// Gate kinds: buf inv and or nand nor xor xnor c maj.  Pin delays default
// to 0.  Initial values default to 0.
#ifndef TSG_CIRCUIT_NETLIST_IO_H
#define TSG_CIRCUIT_NETLIST_IO_H

#include <string>

#include "circuit/netlist.h"

namespace tsg {

struct parsed_circuit {
    netlist nl;
    circuit_state initial;
    std::string name;
};

/// Parses the textual circuit format; throws tsg::error with a line
/// diagnostic on malformed input.
[[nodiscard]] parsed_circuit parse_circuit(const std::string& text);

/// Reads a circuit file from disk.
[[nodiscard]] parsed_circuit load_circuit(const std::string& path);

/// Serializes to the canonical textual format (round-trips with parse).
[[nodiscard]] std::string write_circuit(const parsed_circuit& circuit);

} // namespace tsg

#endif // TSG_CIRCUIT_NETLIST_IO_H
