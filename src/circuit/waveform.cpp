#include "circuit/waveform.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/event_initiated.h"
#include "core/timing_simulation.h"
#include "sg/unfolding.h"
#include "util/strings.h"

namespace tsg {

namespace {

std::vector<transition_record> schedule_from_simulation(
    const signal_graph& sg, const unfolding& unf,
    const std::vector<rational>& time, const std::vector<bool>& valid)
{
    std::vector<transition_record> schedule;
    for (node_id inst = 0; inst < unf.dag().node_count(); ++inst) {
        if (!valid[inst]) continue;
        const event_info& info = sg.event(unf.event_of(inst));
        if (info.pol == polarity::none || info.signal.empty()) continue;
        schedule.push_back(
            {info.signal, info.pol == polarity::rise, time[inst].to_double()});
    }
    return schedule;
}

} // namespace

std::string render_schedule(const std::vector<transition_record>& schedule,
                            const waveform_options& options)
{
    if (schedule.empty()) return "(no transitions)\n";

    // Group by signal, in order of first appearance; sort each by time.
    std::vector<std::string> order;
    std::map<std::string, std::vector<const transition_record*>> rows;
    for (const transition_record& t : schedule) {
        if (rows.find(t.signal) == rows.end()) order.push_back(t.signal);
        rows[t.signal].push_back(&t);
    }
    double horizon = 0.0;
    for (const transition_record& t : schedule) horizon = std::max(horizon, t.time);
    if (horizon <= 0.0) horizon = 1.0;

    std::size_t label_width = 0;
    for (const std::string& s : order) label_width = std::max(label_width, s.size());

    const std::uint32_t width = std::max<std::uint32_t>(options.width, 8);
    auto column = [&](double t) {
        const auto c = static_cast<std::int64_t>(std::lround(t / horizon * (width - 1)));
        return static_cast<std::uint32_t>(std::clamp<std::int64_t>(c, 0, width - 1));
    };

    std::ostringstream os;
    for (const std::string& signal : order) {
        auto& transitions = rows[signal];
        std::sort(transitions.begin(), transitions.end(),
                  [](const transition_record* a, const transition_record* b) {
                      return a->time < b->time;
                  });

        // Value before the first transition is the opposite of its polarity.
        bool level = !transitions.front()->rise;
        std::string line(width, level ? '~' : '_');
        for (const transition_record* t : transitions) {
            const std::uint32_t col = column(t->time);
            line[col] = t->rise ? '/' : '\\';
            level = t->rise;
            for (std::uint32_t c = col + 1; c < width; ++c) line[c] = level ? '~' : '_';
        }
        os << signal << std::string(label_width - signal.size(), ' ') << " " << line << "\n";
    }

    if (options.show_axis) {
        std::string axis(width, ' ');
        std::string labels(width + label_width + 1, ' ');
        const int ticks = 8;
        os << std::string(label_width, ' ') << " ";
        for (int k = 0; k <= ticks; ++k) {
            const std::uint32_t col = k * (width - 1) / ticks;
            axis[col] = '|';
        }
        os << axis << "\n" << std::string(label_width, ' ') << " ";
        // Leave room past the last column so the final tick label fits.
        std::string tickrow(width + 12, ' ');
        for (int k = 0; k <= ticks; ++k) {
            const std::uint32_t col = k * (width - 1) / ticks;
            const std::string label = format_double(horizon * k / ticks, 1);
            for (std::size_t j = 0; j < label.size() && col + j < tickrow.size(); ++j)
                tickrow[col + j] = label[j];
        }
        while (!tickrow.empty() && tickrow.back() == ' ') tickrow.pop_back();
        os << tickrow << "\n";
    }
    return os.str();
}

std::string render_timing_diagram(const signal_graph& sg, std::uint32_t periods,
                                  const waveform_options& options)
{
    const unfolding unf(sg, periods);
    const timing_simulation_result sim = simulate_timing(unf);
    return render_schedule(schedule_from_simulation(sg, unf, sim.time, sim.occurs), options);
}

std::string render_initiated_diagram(const signal_graph& sg, const std::string& origin_event,
                                     std::uint32_t periods, const waveform_options& options)
{
    const unfolding unf(sg, periods);
    const initiated_simulation_result sim =
        simulate_from_event(unf, sg.event_by_name(origin_event), 0);
    return render_schedule(schedule_from_simulation(sg, unf, sim.time, sim.reached), options);
}

} // namespace tsg
