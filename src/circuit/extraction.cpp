#include "circuit/extraction.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <vector>

namespace tsg {

namespace {

constexpr std::int64_t no_occurrence = -1;

struct occurrence {
    signal_id signal = invalid_signal;
    bool new_value = false;
    /// (cause occurrence id, pin delay); causes from constant signals (never
    /// fired) are omitted — they are satisfied by the initial state forever.
    std::vector<std::pair<std::int64_t, rational>> causes;
};

/// The deterministic cumulative simulation engine.
class cumulative_simulation {
public:
    cumulative_simulation(const netlist& nl, const circuit_state& initial)
        : nl_(nl), state_(initial), last_occ_(nl.signal_count(), no_occurrence),
          in_queue_(nl.signal_count(), false), pending_(nl.stimuli().size(), true)
    {
        // Fair deterministic ready queue: stimuli first, then excited gates.
        for (const signal_id s : nl.stimuli()) enqueue(s);
        for (signal_id s = 0; s < nl.signal_count(); ++s)
            if (gate_excited(nl_, state_, s)) enqueue(s);
    }

    [[nodiscard]] bool idle() const { return queue_.empty(); }

    [[nodiscard]] const std::vector<occurrence>& occurrences() const { return occs_; }

    /// Configuration key for period detection: values + pending stimuli +
    /// queue contents in order.
    [[nodiscard]] std::string configuration_key() const
    {
        std::string key;
        key.reserve(state_.size() + pending_.size() + queue_.size() * 4 + 2);
        for (std::size_t i = 0; i < state_.size(); ++i)
            key.push_back(state_.value(static_cast<signal_id>(i)) ? '1' : '0');
        key.push_back('|');
        for (const bool p : pending_) key.push_back(p ? '1' : '0');
        key.push_back('|');
        for (const signal_id s : queue_) {
            key.push_back(static_cast<char>(s & 0xff));
            key.push_back(static_cast<char>((s >> 8) & 0xff));
            key.push_back(static_cast<char>((s >> 16) & 0xff));
            key.push_back(static_cast<char>((s >> 24) & 0xff));
        }
        return key;
    }

    /// Fires the next ready transition and records its occurrence.
    void step()
    {
        ensure(!queue_.empty(), "cumulative_simulation: step on idle circuit");
        const signal_id s = queue_.front();
        queue_.pop_front();
        in_queue_[s] = false;

        occurrence occ;
        occ.signal = s;

        const gate* g = nl_.driver(s);
        if (g == nullptr) {
            // Environment stimulus: one toggle, no causes.
            const auto& stimuli = nl_.stimuli();
            bool was_pending = false;
            for (std::size_t i = 0; i < stimuli.size(); ++i) {
                if (stimuli[i] == s && pending_[i]) {
                    pending_[i] = false;
                    was_pending = true;
                    break;
                }
            }
            require(was_pending, "extract_signal_graph: spurious input firing");
            occ.new_value = !state_.value(s);
        } else {
            require(gate_excited(nl_, state_, s),
                    "extract_signal_graph: excitation of '" + nl_.signal_name(s) +
                        "' was withdrawn — circuit is not semimodular");
            occ.new_value = !state_.value(s);
            occ.causes = identify_causes(*g);
        }

        state_.toggle(s);
        last_occ_[s] = static_cast<std::int64_t>(occs_.size());
        occs_.push_back(std::move(occ));

        // Requeue everything newly excited among s and its fanout outputs.
        refresh(s);
        for (const std::uint32_t gi : nl_.fanout(s)) refresh(nl_.gates()[gi].output);
    }

private:
    void enqueue(signal_id s)
    {
        if (in_queue_[s]) return;
        queue_.push_back(s);
        in_queue_[s] = true;
    }

    void refresh(signal_id s)
    {
        if (!in_queue_[s] && gate_excited(nl_, state_, s)) enqueue(s);
    }

    /// AND-cause identification for an excited gate (output value v about to
    /// become !v): a pin is *necessary* when flipping its value alone
    /// removes the excitation; the necessary pins must also be jointly
    /// *sufficient* (excitation regardless of the other pins), otherwise
    /// the behaviour is OR-causal and the circuit is not distributive.
    std::vector<std::pair<std::int64_t, rational>> identify_causes(const gate& g)
    {
        const bool v = state_.value(g.output);
        const std::size_t fanin = g.inputs.size();

        std::array<bool, max_gate_fanin> values{};
        for (std::size_t i = 0; i < fanin; ++i) values[i] = state_.value(g.inputs[i].signal);
        const std::span<const bool> view(values.data(), fanin);

        std::vector<std::size_t> necessary;
        std::vector<std::size_t> free_pins;
        for (std::size_t i = 0; i < fanin; ++i) {
            values[i] = !values[i];
            const bool still_excited = gate_next_value(g.kind, view, v) != v;
            values[i] = !values[i];
            if (!still_excited)
                necessary.push_back(i);
            else
                free_pins.push_back(i);
        }

        // Joint sufficiency over all assignments of the non-necessary pins.
        require(free_pins.size() <= 20,
                "extract_signal_graph: too many non-essential pins on gate '" +
                    nl_.signal_name(g.output) + "'");
        const std::size_t combos = static_cast<std::size_t>(1) << free_pins.size();
        for (std::size_t mask = 0; mask < combos; ++mask) {
            for (std::size_t j = 0; j < free_pins.size(); ++j)
                values[free_pins[j]] = (mask >> j) & 1;
            const bool excited = gate_next_value(g.kind, view, v) != v;
            if (!excited)
                throw error("extract_signal_graph: transition of '" +
                            nl_.signal_name(g.output) +
                            "' is OR-causal — circuit is not distributive");
        }
        for (std::size_t i = 0; i < fanin; ++i) values[i] = state_.value(g.inputs[i].signal);

        std::vector<std::pair<std::int64_t, rational>> causes;
        for (const std::size_t i : necessary) {
            const pin& p = g.inputs[i];
            if (last_occ_[p.signal] == no_occurrence) continue; // initial value, no event
            // The output is about to become !v; pick the matching pin delay.
            causes.emplace_back(last_occ_[p.signal], p.delay_for(!v));
        }
        return causes;
    }

    const netlist& nl_;
    circuit_state state_;
    std::vector<std::int64_t> last_occ_;
    std::vector<bool> in_queue_;
    std::vector<bool> pending_;
    std::deque<signal_id> queue_;
    std::vector<occurrence> occs_;
};

[[nodiscard]] std::int64_t floor_div(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

/// Everything needed to fold the verified periodic window into a Signal
/// Graph.
class folder {
public:
    folder(const netlist& nl, const std::vector<occurrence>& occs, std::size_t start,
           std::size_t period)
        : nl_(nl), occs_(occs), start_(start), period_(period)
    {
    }

    signal_graph fold()
    {
        index_signals();
        create_repetitive_events();
        create_transient_events();
        add_window_arcs();
        add_prefix_arcs();
        graph_.finalize();
        return std::move(graph_);
    }

private:
    struct signal_stats {
        bool repetitive = false;       ///< occurs inside the window
        std::int64_t first_window_sindex = 0; ///< per-signal index of first window occ
        std::int64_t window_count = 0; ///< occurrences inside the window
        std::int64_t per_period = 0;   ///< events per folded period
    };

    void index_signals()
    {
        sindex_.assign(occs_.size(), 0);
        std::vector<std::int64_t> counter(nl_.signal_count(), 0);
        for (std::size_t o = 0; o < occs_.size(); ++o)
            sindex_[o] = counter[occs_[o].signal]++;

        stats_.assign(nl_.signal_count(), signal_stats{});
        window_of_signal_.assign(nl_.signal_count(), {});
        for (std::size_t o = start_; o < start_ + period_; ++o) {
            signal_stats& st = stats_[occs_[o].signal];
            if (!st.repetitive) {
                st.repetitive = true;
                st.first_window_sindex = sindex_[o];
            }
            ++st.window_count;
            window_of_signal_[occs_[o].signal].push_back(o);
        }

        // The configuration window may span several behavioural periods
        // (the ready queue rotates through equivalent cuts).  Fold at the
        // finest granularity whose per-event cause structure is uniform:
        // try refinement factors f from the largest common divisor of the
        // per-signal occurrence counts downward; f divides every count and
        // each event then occurs window_count / f times in the window.
        std::int64_t g = 0;
        for (const signal_stats& st : stats_)
            if (st.repetitive) g = std::gcd(g, st.window_count);
        if (g == 0) g = 1; // no repetitive signals at all (acyclic fold)

        bool refined = false;
        for (std::int64_t f = g; f >= 1; --f) {
            if (g % f != 0) continue;
            if (try_refinement(f)) {
                refined = true;
                break;
            }
        }
        require(refined,
                "extract_signal_graph: start-up transitions do not follow the "
                "periodic pattern — behaviour has no initially-safe Signal Graph");
    }

    /// Attempts to fold each signal at window_count / f events per period.
    /// On success commits per_period and inst_number_ and returns true.
    bool try_refinement(std::int64_t f)
    {
        for (signal_stats& st : stats_)
            if (st.repetitive) st.per_period = st.window_count / f;

        // Slot of every occurrence of a repetitive signal, and polarity
        // consistency between start-up and steady state.
        std::vector<std::int64_t> slot(occs_.size(), -1);
        for (std::size_t o = 0; o < occs_.size(); ++o) {
            const occurrence& occ = occs_[o];
            const signal_stats& st = stats_[occ.signal];
            if (!st.repetitive) continue;
            const std::int64_t rel = sindex_[o] - st.first_window_sindex;
            slot[o] = rel - floor_div(rel, st.per_period) * st.per_period;
            const std::size_t representative =
                window_of_signal_[occ.signal][static_cast<std::size_t>(slot[o])];
            if (occs_[representative].new_value != occ.new_value) return false;
        }

        // Instantiation numbers anchored at each event's true first
        // occurrence: the marking of an arc is mu = j(target) - j(cause),
        // independent of where the window was cut.
        std::vector<std::int64_t> inst(occs_.size(), 0);
        std::map<std::pair<signal_id, std::int64_t>, std::int64_t> per_event;
        for (std::size_t o = 0; o < occs_.size(); ++o)
            if (slot[o] >= 0) inst[o] = per_event[{occs_[o].signal, slot[o]}]++;

        // Uniformity: every instance of an event inside the window must
        // repeat the representative's cause structure (same pins/delays,
        // same cause events, same marking), with mu in {0, 1}.
        for (std::size_t o = start_; o < start_ + period_; ++o) {
            const occurrence& occ = occs_[o];
            if (slot[o] < 0) continue;
            const std::size_t r =
                window_of_signal_[occ.signal][static_cast<std::size_t>(slot[o])];
            const occurrence& rep = occs_[r];
            if (occ.causes.size() != rep.causes.size()) return false;
            for (std::size_t k = 0; k < occ.causes.size(); ++k) {
                const auto [c_o, d_o] = occ.causes[k];
                const auto [c_r, d_r] = rep.causes[k];
                if (!(d_o == d_r)) return false;
                const auto co = static_cast<std::size_t>(c_o);
                const auto cr = static_cast<std::size_t>(c_r);
                const bool rep_o = slot[co] >= 0;
                const bool rep_r = slot[cr] >= 0;
                if (rep_o != rep_r) return false;
                if (!rep_o) {
                    if (co != cr) return false; // must share the one-shot cause
                    continue;
                }
                if (occs_[co].signal != occs_[cr].signal || slot[co] != slot[cr])
                    return false;
                const std::int64_t mu = inst[o] - inst[co];
                if (mu != inst[r] - inst[cr]) return false;
                if (mu != 0 && mu != 1) return false;
            }
        }

        inst_number_ = std::move(inst);
        slot_of_ = std::move(slot);
        return true;
    }

    /// Display name of a transition; disambiguates multiple events of the
    /// same signal and polarity as "s.1+", "s.2+", ... (the paper's a1, a2).
    static std::string transition_name(const std::string& signal, bool rise, std::size_t index,
                                       std::size_t count_same_polarity)
    {
        std::string name = signal;
        if (count_same_polarity > 1) {
            name += '.';
            name += std::to_string(index + 1);
        }
        name += rise ? '+' : '-';
        return name;
    }

    void create_repetitive_events()
    {
        event_of_window_.assign(period_, invalid_node);

        // Create one event per (signal, slot), named from its
        // representative occurrence; count same-polarity events per signal
        // among representatives for disambiguation.
        std::map<std::pair<signal_id, bool>, std::size_t> totals;
        for (signal_id s = 0; s < nl_.signal_count(); ++s) {
            const signal_stats& st = stats_[s];
            if (!st.repetitive) continue;
            for (std::int64_t k = 0; k < st.per_period; ++k)
                ++totals[{s, occs_[window_of_signal_[s][static_cast<std::size_t>(k)]].new_value}];
        }

        // Create events in window order of their representatives so names
        // read in firing order.
        std::map<std::pair<signal_id, bool>, std::size_t> counters;
        std::vector<event_id> event_of_slot(period_, invalid_node);
        for (std::size_t o = start_; o < start_ + period_; ++o) {
            const occurrence& occ = occs_[o];
            const std::int64_t sl = slot_of_[o];
            const std::size_t representative =
                window_of_signal_[occ.signal][static_cast<std::size_t>(sl)];
            if (representative != o) continue; // only the first instance creates
            const auto key = std::make_pair(occ.signal, occ.new_value);
            const std::size_t index = counters[key]++;
            const std::string name = transition_name(nl_.signal_name(occ.signal),
                                                     occ.new_value, index, totals[key]);
            event_of_window_[o - start_] = graph_.add_event(
                name, nl_.signal_name(occ.signal),
                occ.new_value ? polarity::rise : polarity::fall);
        }
        // Non-representative window positions share their slot's event.
        for (std::size_t o = start_; o < start_ + period_; ++o) {
            const std::size_t representative =
                window_of_signal_[occs_[o].signal][static_cast<std::size_t>(slot_of_[o])];
            event_of_window_[o - start_] = event_of_window_[representative - start_];
        }
    }

    void create_transient_events()
    {
        event_of_prefix_.assign(start_, invalid_node);

        std::map<std::pair<signal_id, bool>, std::size_t> totals;
        for (std::size_t o = 0; o < start_; ++o) {
            const occurrence& occ = occs_[o];
            if (stats_[occ.signal].repetitive) continue;
            ++totals[{occ.signal, occ.new_value}];
        }
        std::map<std::pair<signal_id, bool>, std::size_t> counters;
        for (std::size_t o = 0; o < start_; ++o) {
            const occurrence& occ = occs_[o];
            if (stats_[occ.signal].repetitive) continue; // earlier instantiation, not an event
            const auto key = std::make_pair(occ.signal, occ.new_value);
            const std::size_t index = counters[key]++;
            const std::string name = transition_name(nl_.signal_name(occ.signal),
                                                     occ.new_value, index, totals[key]);
            event_of_prefix_[o] = graph_.add_event(
                name, nl_.signal_name(occ.signal),
                occ.new_value ? polarity::rise : polarity::fall);
        }
    }

    /// Event of any occurrence of a repetitive signal.
    [[nodiscard]] event_id event_of_repetitive(std::size_t o) const
    {
        ensure(slot_of_[o] >= 0, "folder: mapping a non-repetitive occurrence");
        const std::size_t representative =
            window_of_signal_[occs_[o].signal][static_cast<std::size_t>(slot_of_[o])];
        return event_of_window_[representative - start_];
    }

    void add_window_arcs()
    {
        // Emit arcs once per event, from the representative occurrence
        // (all window instances verified identical by try_refinement).
        for (std::size_t o = start_; o < start_ + period_; ++o) {
            const std::size_t representative =
                window_of_signal_[occs_[o].signal][static_cast<std::size_t>(slot_of_[o])];
            if (representative != o) continue;
            const event_id target = event_of_window_[o - start_];
            for (const auto& [cause, delay] : occs_[o].causes) {
                const auto c = static_cast<std::size_t>(cause);
                if (slot_of_[c] >= 0) {
                    const std::int64_t mu = inst_number_[o] - inst_number_[c];
                    ensure(mu == 0 || mu == 1,
                           "folder: unsafe marking survived refinement check");
                    graph_.add_arc(event_of_repetitive(c), target, delay,
                                   /*marked=*/mu == 1,
                                   /*disengageable=*/false);
                } else {
                    const event_id source = event_of_prefix_.at(c);
                    ensure(source != invalid_node, "folder: missing transient event");
                    graph_.add_arc(source, target, delay, /*marked=*/false,
                                   /*disengageable=*/true);
                }
            }
        }
    }

    void add_prefix_arcs()
    {
        for (std::size_t o = 0; o < start_; ++o) {
            const event_id target = event_of_prefix_[o];
            if (target == invalid_node) continue; // earlier instantiation of a repetitive event
            for (const auto& [cause, delay] : occs_[o].causes) {
                const auto c = static_cast<std::size_t>(cause);
                const occurrence& cause_occ = occs_[c];
                require(!stats_[cause_occ.signal].repetitive,
                        "extract_signal_graph: one-shot transition of '" +
                            nl_.signal_name(occs_[o].signal) +
                            "' depends on repetitive '" + nl_.signal_name(cause_occ.signal) +
                            "' — not expressible as a bounded Signal Graph");
                const event_id source = event_of_prefix_.at(c);
                ensure(source != invalid_node, "folder: missing transient cause event");
                graph_.add_arc(source, target, delay, /*marked=*/false,
                               /*disengageable=*/false);
            }
        }
    }

    const netlist& nl_;
    const std::vector<occurrence>& occs_;
    const std::size_t start_;
    const std::size_t period_;

    signal_graph graph_;
    std::vector<std::int64_t> sindex_;
    std::vector<std::int64_t> inst_number_;
    std::vector<std::int64_t> slot_of_;
    std::vector<signal_stats> stats_;
    std::vector<std::vector<std::size_t>> window_of_signal_;
    std::vector<event_id> event_of_window_;
    std::vector<event_id> event_of_prefix_;
};

/// Verifies that occurrences [start, start+p) are a shifted copy of
/// [start-p, start): same signals/values, and causes either shifted by p or
/// pointing at the same one-shot occurrence.
bool window_isomorphic(const std::vector<occurrence>& occs, std::size_t start, std::size_t p,
                       const std::vector<bool>& signal_in_window)
{
    for (std::size_t o = start; o < start + p; ++o) {
        const occurrence& cur = occs[o];
        const occurrence& prev = occs[o - p];
        if (cur.signal != prev.signal || cur.new_value != prev.new_value) return false;
        if (cur.causes.size() != prev.causes.size()) return false;
        for (std::size_t k = 0; k < cur.causes.size(); ++k) {
            const auto& [c_cur, d_cur] = cur.causes[k];
            const auto& [c_prev, d_prev] = prev.causes[k];
            if (!(d_cur == d_prev)) return false;
            const bool shifted = c_cur == c_prev + static_cast<std::int64_t>(p);
            const bool shared_oneshot =
                c_cur == c_prev &&
                !signal_in_window[occs[static_cast<std::size_t>(c_cur)].signal];
            if (!shifted && !shared_oneshot) return false;
        }
    }
    return true;
}

/// Folds a fully settled (acyclic) behaviour: every occurrence is an event.
signal_graph fold_acyclic(const netlist& nl, const std::vector<occurrence>& occs)
{
    require(!occs.empty(), "extract_signal_graph: circuit is stable — no behaviour at all");
    folder f(nl, occs, occs.size(), 0);
    // With an empty window every occurrence is "prefix"; reuse the folder by
    // treating start = occs.size() and period 0.
    return f.fold();
}

} // namespace

extraction_result extract_signal_graph(const netlist& nl, const circuit_state& initial,
                                       const extraction_options& options)
{
    nl.validate();
    require(initial.size() == nl.signal_count(),
            "extract_signal_graph: state size does not match netlist");

    cumulative_simulation sim(nl, initial);

    // Configuration -> occurrence count at which it was last seen.
    std::unordered_map<std::string, std::size_t> seen;
    seen.emplace(sim.configuration_key(), 0);

    std::optional<std::size_t> window_start;
    std::size_t window_period = 0;

    while (sim.occurrences().size() < options.max_occurrences) {
        if (sim.idle()) {
            // The circuit settles: purely acyclic behaviour.
            extraction_result out;
            out.graph = fold_acyclic(nl, sim.occurrences());
            out.periodic = false;
            out.prefix_occurrences = static_cast<std::uint32_t>(sim.occurrences().size());
            out.simulated_occurrences = sim.occurrences().size();
            return out;
        }
        sim.step();

        const std::string key = sim.configuration_key();
        const auto it = seen.find(key);
        const std::size_t now = sim.occurrences().size();
        if (it != seen.end()) {
            const std::size_t before = it->second;
            const std::size_t p = now - before;
            // Need one full earlier period to verify the causal shift.
            if (before >= p) {
                auto verify = [&](std::size_t q) {
                    std::vector<bool> in_window(nl.signal_count(), false);
                    for (std::size_t o = now - q; o < now; ++o)
                        in_window[sim.occurrences()[o].signal] = true;
                    return window_isomorphic(sim.occurrences(), now - q, q, in_window);
                };
                if (verify(p)) {
                    // The configuration orbit may span several behavioural
                    // periods (the ready queue rotates); refine to the
                    // smallest shift-isomorphic divisor.
                    std::vector<std::size_t> divisors;
                    for (std::size_t d = 1; d * d <= p; ++d) {
                        if (p % d != 0) continue;
                        divisors.push_back(d);
                        if (d != p / d) divisors.push_back(p / d);
                    }
                    std::sort(divisors.begin(), divisors.end());
                    std::size_t q = p;
                    for (const std::size_t d : divisors) {
                        if (now >= 2 * d && verify(d)) {
                            q = d;
                            break;
                        }
                    }
                    window_start = now - q;
                    window_period = q;
                    break;
                }
            }
            it->second = now;
        } else {
            seen.emplace(key, now);
        }
    }

    require(window_start.has_value(),
            "extract_signal_graph: no periodic behaviour found within " +
                std::to_string(options.max_occurrences) + " transitions");

    folder f(nl, sim.occurrences(), *window_start, window_period);
    extraction_result out;
    out.graph = f.fold();
    out.period_occurrences = static_cast<std::uint32_t>(window_period);
    out.prefix_occurrences = static_cast<std::uint32_t>(*window_start);
    out.simulated_occurrences = sim.occurrences().size();
    out.periodic = true;
    return out;
}

std::vector<timed_transition> simulate_circuit_schedule(const netlist& nl,
                                                        const circuit_state& initial,
                                                        std::size_t max_transitions)
{
    nl.validate();
    require(initial.size() == nl.signal_count(),
            "simulate_circuit_schedule: state size does not match netlist");

    cumulative_simulation sim(nl, initial);
    while (!sim.idle() && sim.occurrences().size() < max_transitions) sim.step();

    std::vector<timed_transition> schedule;
    std::vector<rational> time(sim.occurrences().size(), rational(0));
    std::vector<std::uint32_t> count(nl.signal_count(), 0);
    for (std::size_t o = 0; o < sim.occurrences().size(); ++o) {
        const occurrence& occ = sim.occurrences()[o];
        rational t(0);
        for (const auto& [cause, delay] : occ.causes) {
            const rational candidate = time[static_cast<std::size_t>(cause)] + delay;
            if (candidate > t) t = candidate;
        }
        time[o] = t;
        schedule.push_back(
            timed_transition{occ.signal, count[occ.signal]++, occ.new_value, t});
    }
    return schedule;
}

} // namespace tsg
