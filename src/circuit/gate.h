// Gate library for speed-independent circuit models (Section VIII).
//
// Gates are evaluated as next-state functions: given the input values and
// the current output value, what should the output become?  Combinational
// gates ignore the current output; state-holding elements (the Muller
// C-element and the majority gate) keep it when their inputs disagree.
#ifndef TSG_CIRCUIT_GATE_H
#define TSG_CIRCUIT_GATE_H

#include <cstdint>
#include <span>
#include <string>

namespace tsg {

enum class gate_kind : std::uint8_t {
    buf,       ///< 1 input
    inv,       ///< 1 input
    and_gate,  ///< >= 1 inputs
    or_gate,   ///< >= 1 inputs
    nand_gate, ///< >= 1 inputs
    nor_gate,  ///< >= 1 inputs
    xor_gate,  ///< >= 1 inputs (odd parity)
    xnor_gate, ///< >= 1 inputs (even parity)
    c_element, ///< >= 2 inputs: all 1 -> 1, all 0 -> 0, else hold
    majority,  ///< >= 3 inputs: strict majority wins, tie holds
};

/// Next output value of a gate.  `current` matters only for state-holding
/// kinds (c_element, majority).
[[nodiscard]] bool gate_next_value(gate_kind kind, std::span<const bool> inputs, bool current);

/// True for gates whose next value depends on the current output.
[[nodiscard]] bool gate_is_state_holding(gate_kind kind) noexcept;

/// Minimum legal fan-in for the kind.
[[nodiscard]] std::size_t gate_min_inputs(gate_kind kind) noexcept;

/// Lower-case keyword used by the netlist format ("nor", "c", "inv", ...).
[[nodiscard]] std::string gate_kind_name(gate_kind kind);

/// Inverse of gate_kind_name; throws tsg::error on unknown keywords.
[[nodiscard]] gate_kind parse_gate_kind(const std::string& keyword);

} // namespace tsg

#endif // TSG_CIRCUIT_GATE_H
