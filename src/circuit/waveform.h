// ASCII timing diagrams (the paper's Figure 1c/1d).
//
// Renders one row per signal with '_' for low, '~' for high and '/' '\\'
// at transitions, plus a time axis.  Schedules come either from a plain
// timing simulation of a Signal Graph or from any caller-assembled list of
// (signal, polarity, time) records (e.g. an event-initiated simulation).
#ifndef TSG_CIRCUIT_WAVEFORM_H
#define TSG_CIRCUIT_WAVEFORM_H

#include <cstdint>
#include <string>
#include <vector>

#include "sg/signal_graph.h"

namespace tsg {

struct transition_record {
    std::string signal;
    bool rise = false;
    double time = 0.0;
};

struct waveform_options {
    std::uint32_t width = 64;  ///< columns used for the time span
    bool show_axis = true;     ///< print a tick row below the waveforms
};

/// Renders an explicit schedule.  Signals appear in first-transition order;
/// the value before the first transition is inferred from its polarity.
[[nodiscard]] std::string render_schedule(const std::vector<transition_record>& schedule,
                                          const waveform_options& options = {});

/// Runs a timing simulation over `periods` periods of the unfolding of `sg`
/// and renders every signal that carries polarity information.
[[nodiscard]] std::string render_timing_diagram(const signal_graph& sg, std::uint32_t periods,
                                                const waveform_options& options = {});

/// Same, but for the event-initiated simulation from `origin` (instantiation
/// 0) — the paper's Figure 1d.  Unreached instantiations are omitted.
[[nodiscard]] std::string render_initiated_diagram(const signal_graph& sg,
                                                   const std::string& origin_event,
                                                   std::uint32_t periods,
                                                   const waveform_options& options = {});

} // namespace tsg

#endif // TSG_CIRCUIT_WAVEFORM_H
