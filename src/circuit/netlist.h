// Gate-level netlist model for asynchronous circuits.
//
// Signals are either primary inputs (driven by the environment) or gate
// outputs.  Every gate input pin carries its own propagation delay to the
// gate output — the paper assigns "a fixed propagation delay from this
// input to the output of the gate", which is what lets a Signal Graph
// model individual input-output characteristics of a transistor-level
// implementation (Section VIII.A).
//
// The environment model is the one used throughout the paper's examples:
// an initial state for every signal, plus an optional set of one-shot
// input transitions released at t = 0 (the circuit of Figure 1 has input
// e at 1 initially, falling once).
#ifndef TSG_CIRCUIT_NETLIST_H
#define TSG_CIRCUIT_NETLIST_H

#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "circuit/gate.h"
#include "util/error.h"
#include "util/rational.h"

namespace tsg {

using signal_id = std::uint32_t;
inline constexpr signal_id invalid_signal = static_cast<signal_id>(-1);

/// Maximum supported gate fan-in.  Keeps excitation analysis (which
/// enumerates value combinations of non-essential pins) tractable.
inline constexpr std::size_t max_gate_fanin = 24;

/// A gate input pin with its pin-to-output propagation delays.  Rising and
/// falling output transitions may propagate differently (Section VIII.A:
/// "delays for the same signal can vary from one event to another"), so the
/// pin carries one delay per output polarity.
struct pin {
    signal_id signal = invalid_signal;
    rational rise_delay; ///< pin-to-output delay when the output rises
    rational fall_delay; ///< pin-to-output delay when the output falls

    pin() = default;
    pin(signal_id s, rational both) : signal(s), rise_delay(both), fall_delay(both) {}
    pin(signal_id s, rational rise, rational fall)
        : signal(s), rise_delay(std::move(rise)), fall_delay(std::move(fall))
    {
    }

    /// Delay seen by an output transition of the given polarity.
    [[nodiscard]] const rational& delay_for(bool output_rises) const
    {
        return output_rises ? rise_delay : fall_delay;
    }

    [[nodiscard]] bool symmetric() const { return rise_delay == fall_delay; }
};

struct gate {
    gate_kind kind = gate_kind::buf;
    signal_id output = invalid_signal;
    std::vector<pin> inputs;
};

class netlist {
public:
    netlist() = default;

    /// Adds a signal; names must be unique and non-empty.
    signal_id add_signal(const std::string& name);

    /// Declares `output` to be driven by a gate.  Each signal may have at
    /// most one driver; inputs must exist.
    void add_gate(gate_kind kind, signal_id output, std::vector<pin> inputs);

    /// Convenience: by-name form, creating signals on first use (symmetric
    /// pin delays).
    void add_gate(gate_kind kind, const std::string& output,
                  const std::vector<std::pair<std::string, rational>>& inputs);

    /// By-name form with per-polarity pin delays (input, rise, fall).
    void add_gate_rf(gate_kind kind, const std::string& output,
                     const std::vector<std::tuple<std::string, rational, rational>>& inputs);

    /// Marks an input signal as toggling exactly once at t = 0.
    void add_stimulus(signal_id input);
    void add_stimulus(const std::string& input);

    /// Validates fan-in constraints and that stimuli target primary inputs.
    /// Must be called before analysis; idempotent.
    void validate() const;

    [[nodiscard]] std::size_t signal_count() const noexcept { return names_.size(); }
    [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }

    [[nodiscard]] const std::string& signal_name(signal_id s) const { return names_.at(s); }
    [[nodiscard]] signal_id find_signal(const std::string& name) const;
    [[nodiscard]] signal_id signal_by_name(const std::string& name) const;

    /// The driving gate of a signal, or nullptr for primary inputs.
    [[nodiscard]] const gate* driver(signal_id s) const;

    [[nodiscard]] const std::vector<gate>& gates() const noexcept { return gates_; }

    /// Signals with no driver.
    [[nodiscard]] std::vector<signal_id> primary_inputs() const;

    /// Inputs that toggle once at t = 0, in declaration order.
    [[nodiscard]] const std::vector<signal_id>& stimuli() const noexcept { return stimuli_; }

    /// Gates with `s` on an input pin (fanout), by gate index.
    [[nodiscard]] const std::vector<std::uint32_t>& fanout(signal_id s) const
    {
        return fanout_.at(s);
    }

private:
    std::vector<std::string> names_;
    std::vector<gate> gates_;
    std::vector<std::int32_t> driver_of_; ///< signal -> gate index or -1
    std::vector<std::vector<std::uint32_t>> fanout_;
    std::vector<signal_id> stimuli_;
    std::unordered_map<std::string, signal_id> by_name_;
};

/// A binary valuation of every signal.
class circuit_state {
public:
    circuit_state() = default;
    explicit circuit_state(std::size_t signals) : values_(signals, false) {}

    [[nodiscard]] bool value(signal_id s) const { return values_.at(s); }
    void set(signal_id s, bool v) { values_.at(s) = v; }
    void toggle(signal_id s) { values_.at(s) = !values_.at(s); }

    [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
    [[nodiscard]] const std::vector<bool>& values() const noexcept { return values_; }

    friend bool operator==(const circuit_state&, const circuit_state&) = default;

private:
    std::vector<bool> values_;
};

/// Next value the driver of `s` wants to produce in `state` (primary inputs
/// keep their value).
[[nodiscard]] bool next_value(const netlist& nl, const circuit_state& state, signal_id s);

/// True when the driving gate of `s` is excited: next_value != current.
/// Primary inputs are never excited through this function (the environment
/// is modelled separately).
[[nodiscard]] bool gate_excited(const netlist& nl, const circuit_state& state, signal_id s);

} // namespace tsg

#endif // TSG_CIRCUIT_NETLIST_H
