#include "circuit/gate.h"

#include <algorithm>

#include "util/error.h"

namespace tsg {

bool gate_next_value(gate_kind kind, std::span<const bool> inputs, bool current)
{
    require(inputs.size() >= gate_min_inputs(kind),
            "gate_next_value: too few inputs for " + gate_kind_name(kind));

    const auto all = [&](bool v) {
        return std::all_of(inputs.begin(), inputs.end(), [v](bool b) { return b == v; });
    };
    const auto count_ones = [&] {
        return static_cast<std::size_t>(std::count(inputs.begin(), inputs.end(), true));
    };

    switch (kind) {
    case gate_kind::buf: return inputs[0];
    case gate_kind::inv: return !inputs[0];
    case gate_kind::and_gate: return all(true);
    case gate_kind::or_gate: return !all(false);
    case gate_kind::nand_gate: return !all(true);
    case gate_kind::nor_gate: return all(false);
    case gate_kind::xor_gate: return count_ones() % 2 == 1;
    case gate_kind::xnor_gate: return count_ones() % 2 == 0;
    case gate_kind::c_element:
        if (all(true)) return true;
        if (all(false)) return false;
        return current;
    case gate_kind::majority: {
        const std::size_t ones = count_ones();
        const std::size_t zeros = inputs.size() - ones;
        if (ones > zeros) return true;
        if (zeros > ones) return false;
        return current;
    }
    }
    ensure(false, "gate_next_value: unknown gate kind");
    return false;
}

bool gate_is_state_holding(gate_kind kind) noexcept
{
    return kind == gate_kind::c_element || kind == gate_kind::majority;
}

std::size_t gate_min_inputs(gate_kind kind) noexcept
{
    switch (kind) {
    case gate_kind::buf:
    case gate_kind::inv: return 1;
    case gate_kind::c_element: return 2;
    case gate_kind::majority: return 3;
    default: return 1;
    }
}

std::string gate_kind_name(gate_kind kind)
{
    switch (kind) {
    case gate_kind::buf: return "buf";
    case gate_kind::inv: return "inv";
    case gate_kind::and_gate: return "and";
    case gate_kind::or_gate: return "or";
    case gate_kind::nand_gate: return "nand";
    case gate_kind::nor_gate: return "nor";
    case gate_kind::xor_gate: return "xor";
    case gate_kind::xnor_gate: return "xnor";
    case gate_kind::c_element: return "c";
    case gate_kind::majority: return "maj";
    }
    ensure(false, "gate_kind_name: unknown gate kind");
    return {};
}

gate_kind parse_gate_kind(const std::string& keyword)
{
    if (keyword == "buf") return gate_kind::buf;
    if (keyword == "inv" || keyword == "not") return gate_kind::inv;
    if (keyword == "and") return gate_kind::and_gate;
    if (keyword == "or") return gate_kind::or_gate;
    if (keyword == "nand") return gate_kind::nand_gate;
    if (keyword == "nor") return gate_kind::nor_gate;
    if (keyword == "xor") return gate_kind::xor_gate;
    if (keyword == "xnor") return gate_kind::xnor_gate;
    if (keyword == "c" || keyword == "celement" || keyword == "c_element")
        return gate_kind::c_element;
    if (keyword == "maj" || keyword == "majority") return gate_kind::majority;
    throw error("parse_gate_kind: unknown gate kind '" + keyword + "'");
}

} // namespace tsg
