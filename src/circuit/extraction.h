// Signal Graph extraction from a distributive circuit (the role played by
// the TRASPEC component of FORCAGE in the paper's flow, Section VIII.B).
//
// Given a netlist, an initial state and the one-shot input stimuli, the
// extractor runs a *cumulative simulation*: transitions fire one at a time
// in a fair (FIFO) deterministic order, and for every firing the set of
// AND-causes is identified — the input pins whose current values are each
// individually necessary and jointly sufficient for the excitation.  A pin
// set that is not jointly sufficient signals OR-causality, i.e. a
// distributivity violation, and aborts extraction with a diagnostic (use
// explore_state_space for the semimodularity witness).
//
// The deterministic simulation is eventually periodic; the extractor
// detects a recurring configuration (values + pending stimuli + ready
// queue), verifies that the causal pattern of one period is a shifted copy
// of the previous one, and folds that period into a Signal Graph:
//   * each occurrence in the period becomes a repetitive event;
//   * a cause in the same period becomes a plain arc;
//   * a cause in the previous period becomes a *marked* arc (the initial
//     token: the first firing is already enabled by the initial state);
//   * a cause pointing at a one-shot occurrence before the periodic regime
//     becomes a *disengageable* arc from a transient/initial event.
// Arc delays are the pin delays of the consuming gate.
#ifndef TSG_CIRCUIT_EXTRACTION_H
#define TSG_CIRCUIT_EXTRACTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "sg/signal_graph.h"

namespace tsg {

struct extraction_options {
    /// Abort if no periodic behaviour is found within this many firings.
    std::size_t max_occurrences = 200'000;
};

struct extraction_result {
    signal_graph graph;                 ///< finalized Timed Signal Graph
    std::uint32_t period_occurrences = 0; ///< transitions per detected period
    std::uint32_t prefix_occurrences = 0; ///< transitions before the periodic regime
    std::size_t simulated_occurrences = 0;///< total transitions simulated
    bool periodic = true;               ///< false when the circuit settles (acyclic SG)
};

/// Extracts the Timed Signal Graph of `nl` started from `initial`.
/// Throws tsg::error when the behaviour is not distributive (OR-causal
/// excitation or withdrawn excitation), when the periodic regime needs
/// markings beyond 0/1, or when no period is found within the budget.
[[nodiscard]] extraction_result extract_signal_graph(const netlist& nl,
                                                     const circuit_state& initial,
                                                     const extraction_options& options = {});

/// One transition of the timed circuit schedule.
struct timed_transition {
    signal_id signal = invalid_signal;
    std::uint32_t index = 0; ///< k-th transition of this signal
    bool new_value = false;
    rational time;           ///< max over AND-causes of (cause time + pin delay)
};

/// Simulates the circuit's timed behaviour directly — transition times are
/// computed from the identified AND-causes and the matching rise/fall pin
/// delays, with no Signal Graph in between.  This is the independent
/// reference the extraction is validated against: the Timed Signal Graph's
/// timing simulation must reproduce exactly these times.
/// Runs until the circuit settles or `max_transitions` fire.
[[nodiscard]] std::vector<timed_transition> simulate_circuit_schedule(
    const netlist& nl, const circuit_state& initial, std::size_t max_transitions = 1'000);

} // namespace tsg

#endif // TSG_CIRCUIT_EXTRACTION_H
