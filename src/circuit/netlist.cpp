#include "circuit/netlist.h"

#include <algorithm>
#include <array>

namespace tsg {

signal_id netlist::add_signal(const std::string& name)
{
    require(!name.empty(), "netlist: signal name must not be empty");
    require(by_name_.find(name) == by_name_.end(),
            "netlist: duplicate signal name '" + name + "'");
    const auto s = static_cast<signal_id>(names_.size());
    names_.push_back(name);
    driver_of_.push_back(-1);
    fanout_.emplace_back();
    by_name_.emplace(name, s);
    return s;
}

void netlist::add_gate(gate_kind kind, signal_id output, std::vector<pin> inputs)
{
    require(output < signal_count(), "netlist: bad gate output signal");
    require(driver_of_[output] == -1,
            "netlist: signal '" + names_[output] + "' already has a driver");
    for (const pin& p : inputs) {
        require(p.signal < signal_count(), "netlist: bad gate input signal");
        require(!p.rise_delay.is_negative() && !p.fall_delay.is_negative(),
                "netlist: negative pin delay");
    }
    require(inputs.size() >= gate_min_inputs(kind),
            "netlist: too few inputs for gate '" + names_[output] + "'");
    require(inputs.size() <= max_gate_fanin,
            "netlist: fan-in of gate '" + names_[output] + "' exceeds the supported maximum");

    const auto index = static_cast<std::uint32_t>(gates_.size());
    driver_of_[output] = static_cast<std::int32_t>(index);
    for (const pin& p : inputs) fanout_[p.signal].push_back(index);
    gates_.push_back(gate{kind, output, std::move(inputs)});
}

void netlist::add_gate(gate_kind kind, const std::string& output,
                       const std::vector<std::pair<std::string, rational>>& inputs)
{
    std::vector<std::tuple<std::string, rational, rational>> both;
    both.reserve(inputs.size());
    for (const auto& [name, delay] : inputs) both.emplace_back(name, delay, delay);
    add_gate_rf(kind, output, both);
}

void netlist::add_gate_rf(gate_kind kind, const std::string& output,
                          const std::vector<std::tuple<std::string, rational, rational>>& inputs)
{
    auto resolve = [&](const std::string& name) {
        const signal_id existing = find_signal(name);
        return existing != invalid_signal ? existing : add_signal(name);
    };
    const signal_id out = resolve(output);
    std::vector<pin> pins;
    pins.reserve(inputs.size());
    for (const auto& [name, rise, fall] : inputs)
        pins.emplace_back(resolve(name), rise, fall);
    add_gate(kind, out, std::move(pins));
}

void netlist::add_stimulus(signal_id input)
{
    require(input < signal_count(), "netlist: bad stimulus signal");
    require(std::find(stimuli_.begin(), stimuli_.end(), input) == stimuli_.end(),
            "netlist: duplicate stimulus on '" + names_[input] + "'");
    stimuli_.push_back(input);
}

void netlist::add_stimulus(const std::string& input)
{
    add_stimulus(signal_by_name(input));
}

void netlist::validate() const
{
    require(signal_count() > 0, "netlist: empty netlist");
    for (const signal_id s : stimuli_)
        require(driver_of_[s] == -1,
                "netlist: stimulus on non-input signal '" + names_[s] + "'");
}

signal_id netlist::find_signal(const std::string& name) const
{
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? invalid_signal : it->second;
}

signal_id netlist::signal_by_name(const std::string& name) const
{
    const signal_id s = find_signal(name);
    require(s != invalid_signal, "netlist: no signal named '" + name + "'");
    return s;
}

const gate* netlist::driver(signal_id s) const
{
    require(s < signal_count(), "netlist: bad signal id");
    const std::int32_t g = driver_of_[s];
    return g < 0 ? nullptr : &gates_[static_cast<std::size_t>(g)];
}

std::vector<signal_id> netlist::primary_inputs() const
{
    std::vector<signal_id> out;
    for (signal_id s = 0; s < signal_count(); ++s)
        if (driver_of_[s] == -1) out.push_back(s);
    return out;
}

bool next_value(const netlist& nl, const circuit_state& state, signal_id s)
{
    const gate* g = nl.driver(s);
    if (g == nullptr) return state.value(s);
    std::array<bool, max_gate_fanin> inputs{};
    for (std::size_t i = 0; i < g->inputs.size(); ++i)
        inputs[i] = state.value(g->inputs[i].signal);
    return gate_next_value(g->kind, std::span<const bool>(inputs.data(), g->inputs.size()),
                           state.value(s));
}

bool gate_excited(const netlist& nl, const circuit_state& state, signal_id s)
{
    if (nl.driver(s) == nullptr) return false;
    return next_value(nl, state, s) != state.value(s);
}

} // namespace tsg
