#include "circuit/netlist_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

namespace tsg {

namespace {

struct token {
    std::string text;
    std::size_t line;
};

std::vector<token> tokenize(const std::string& text)
{
    static const std::string specials = "{};(),=";
    std::vector<token> tokens;
    std::size_t line = 1;
    std::string current;
    auto flush = [&] {
        if (!current.empty()) {
            tokens.push_back({current, line});
            current.clear();
        }
    };
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '#') {
            flush();
            while (i < text.size() && text[i] != '\n') ++i;
            ++line;
            continue;
        }
        if (c == '\n') {
            flush();
            ++line;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            flush();
            continue;
        }
        if (specials.find(c) != std::string::npos) {
            flush();
            tokens.push_back({std::string(1, c), line});
            continue;
        }
        current += c;
    }
    flush();
    return tokens;
}

class parser {
public:
    explicit parser(const std::string& text) : tokens_(tokenize(text)) {}

    parsed_circuit run()
    {
        expect("circuit");
        out_.name = next("circuit name");
        expect("{");
        std::vector<std::pair<std::string, bool>> initial_values;
        std::vector<std::string> stimuli;

        while (!peek_is("}")) {
            const token t = advance("item");
            if (t.text == "input") {
                const std::string name = next("input name");
                bool value = false;
                if (peek_is("=")) {
                    expect("=");
                    value = parse_bit();
                }
                expect(";");
                out_.nl.add_signal(name);
                initial_values.emplace_back(name, value);
            } else if (t.text == "gate") {
                parse_gate(initial_values);
            } else if (t.text == "stimulus") {
                stimuli.push_back(next("stimulus signal"));
                expect(";");
            } else {
                fail(t, "expected 'input', 'gate' or 'stimulus'");
            }
        }
        expect("}");
        require(pos_ == tokens_.size(), "parse_circuit: trailing tokens after '}'");

        out_.initial = circuit_state(out_.nl.signal_count());
        for (const auto& [name, value] : initial_values)
            out_.initial.set(out_.nl.signal_by_name(name), value);
        for (const std::string& s : stimuli) out_.nl.add_stimulus(s);
        out_.nl.validate();
        return std::move(out_);
    }

private:
    void parse_gate(std::vector<std::pair<std::string, bool>>& initial_values)
    {
        const std::string output = next("gate output");
        expect("=");
        const gate_kind kind = parse_gate_kind(next("gate kind"));
        expect("(");
        std::vector<std::tuple<std::string, rational, rational>> inputs;
        while (!peek_is(")")) {
            const std::string in = next("gate input");
            rational rise(0);
            rational fall(0);
            if (peek_is("delay")) {
                expect("delay");
                rise = fall = rational::parse(next("delay value"));
            } else if (peek_is("rise")) {
                expect("rise");
                rise = rational::parse(next("rise delay"));
                expect("fall");
                fall = rational::parse(next("fall delay"));
            }
            inputs.emplace_back(in, rise, fall);
            if (peek_is(",")) expect(",");
        }
        expect(")");
        bool init = false;
        if (peek_is("=")) {
            expect("=");
            init = parse_bit();
        }
        expect(";");
        out_.nl.add_gate_rf(kind, output, inputs);
        initial_values.emplace_back(output, init);
    }

    bool parse_bit()
    {
        const token t = advance("0 or 1");
        if (t.text == "0") return false;
        if (t.text == "1") return true;
        fail(t, "expected 0 or 1");
    }

    [[nodiscard]] bool peek_is(const std::string& text) const
    {
        return pos_ < tokens_.size() && tokens_[pos_].text == text;
    }

    token advance(const std::string& what)
    {
        require(pos_ < tokens_.size(),
                "parse_circuit: unexpected end of input, expected " + what);
        return tokens_[pos_++];
    }

    std::string next(const std::string& what) { return advance(what).text; }

    void expect(const std::string& text)
    {
        const token t = advance("'" + text + "'");
        if (t.text != text) fail(t, "expected '" + text + "'");
    }

    [[noreturn]] static void fail(const token& t, const std::string& message)
    {
        throw error("parse_circuit: line " + std::to_string(t.line) + ": " + message +
                    " (got '" + t.text + "')");
    }

    std::vector<token> tokens_;
    std::size_t pos_ = 0;
    parsed_circuit out_;
};

} // namespace

parsed_circuit parse_circuit(const std::string& text)
{
    return parser(text).run();
}

parsed_circuit load_circuit(const std::string& path)
{
    std::ifstream in(path);
    require(in.good(), "load_circuit: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_circuit(buffer.str());
}

std::string write_circuit(const parsed_circuit& circuit)
{
    std::ostringstream os;
    os << "circuit " << (circuit.name.empty() ? "g" : circuit.name) << " {\n";
    for (const signal_id s : circuit.nl.primary_inputs())
        os << "  input " << circuit.nl.signal_name(s) << " = "
           << (circuit.initial.value(s) ? 1 : 0) << ";\n";
    for (const gate& g : circuit.nl.gates()) {
        os << "  gate " << circuit.nl.signal_name(g.output) << " = "
           << gate_kind_name(g.kind) << "(";
        for (std::size_t i = 0; i < g.inputs.size(); ++i) {
            if (i > 0) os << ", ";
            os << circuit.nl.signal_name(g.inputs[i].signal);
            const pin& p = g.inputs[i];
            if (p.symmetric()) {
                if (!p.rise_delay.is_zero()) os << " delay " << p.rise_delay.str();
            } else {
                os << " rise " << p.rise_delay.str() << " fall " << p.fall_delay.str();
            }
        }
        os << ") = " << (circuit.initial.value(g.output) ? 1 : 0) << ";\n";
    }
    for (const signal_id s : circuit.nl.stimuli())
        os << "  stimulus " << circuit.nl.signal_name(s) << ";\n";
    os << "}\n";
    return os.str();
}

} // namespace tsg
