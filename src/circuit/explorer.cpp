#include "circuit/explorer.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "circuit/extraction.h"
#include "core/compiled_graph.h"

namespace tsg {

namespace {

/// Dense encoding of (signal values, pending inputs) for hashing.
std::string encode(const circuit_state& state, const std::vector<bool>& pending)
{
    std::string key;
    key.reserve((state.size() + pending.size() + 7) / 8 + 1);
    std::uint8_t acc = 0;
    int bits = 0;
    auto push_bit = [&](bool b) {
        acc = static_cast<std::uint8_t>((acc << 1) | (b ? 1 : 0));
        if (++bits == 8) {
            key.push_back(static_cast<char>(acc));
            acc = 0;
            bits = 0;
        }
    };
    for (std::size_t i = 0; i < state.size(); ++i) push_bit(state.value(static_cast<signal_id>(i)));
    for (const bool b : pending) push_bit(b);
    if (bits > 0) key.push_back(static_cast<char>(acc << (8 - bits)));
    return key;
}

} // namespace

std::vector<signal_id> excited_signals(const netlist& nl, const circuit_state& state,
                                       const std::vector<bool>& pending_inputs)
{
    std::vector<signal_id> out;
    for (signal_id s = 0; s < nl.signal_count(); ++s)
        if (gate_excited(nl, state, s)) out.push_back(s);
    const auto& stimuli = nl.stimuli();
    for (std::size_t i = 0; i < stimuli.size(); ++i)
        if (pending_inputs.at(i)) out.push_back(stimuli[i]);
    std::sort(out.begin(), out.end());
    return out;
}

exploration_result explore_state_space(const netlist& nl, const circuit_state& initial,
                                       std::size_t max_states)
{
    nl.validate();
    require(initial.size() == nl.signal_count(),
            "explore_state_space: state size does not match netlist");

    exploration_result result;

    struct node {
        circuit_state state;
        std::vector<bool> pending;
    };
    std::vector<node> stack;
    std::unordered_map<std::string, bool> seen;

    const std::vector<bool> all_pending(nl.stimuli().size(), true);
    stack.push_back(node{initial, all_pending});
    seen.emplace(encode(initial, all_pending), true);

    auto fire = [&](const node& n, signal_id s) {
        node next = n;
        next.state.toggle(s);
        const auto& stimuli = nl.stimuli();
        for (std::size_t i = 0; i < stimuli.size(); ++i)
            if (stimuli[i] == s && next.pending[i]) next.pending[i] = false;
        return next;
    };

    while (!stack.empty()) {
        const node current = std::move(stack.back());
        stack.pop_back();
        ++result.state_count;

        const std::vector<signal_id> excited = excited_signals(nl, current.state, current.pending);
        for (const signal_id s : excited) {
            const node next = fire(current, s);

            // Semimodularity: everything excited before (except s itself)
            // must remain excited after s fires.
            const std::vector<signal_id> excited_after =
                excited_signals(nl, next.state, next.pending);
            for (const signal_id z : excited) {
                if (z == s) continue;
                if (!std::binary_search(excited_after.begin(), excited_after.end(), z)) {
                    result.semimodular = false;
                    result.violations.push_back(
                        "firing '" + nl.signal_name(s) + "' disables excited '" +
                        nl.signal_name(z) + "'");
                }
            }

            const std::string key = encode(next.state, next.pending);
            if (seen.emplace(key, true).second) {
                if (seen.size() > max_states) {
                    result.complete = false;
                    return result;
                }
                stack.push_back(next);
            }
        }
    }
    return result;
}

corner_exploration_result explore_delay_corners(const netlist& nl,
                                                const circuit_state& initial,
                                                const corner_exploration_options& options)
{
    corner_exploration_result out;
    out.graph = extract_signal_graph(nl, initial).graph;

    // One structural compile; everything below is delay rebinds against it.
    const compiled_graph base(out.graph);
    const scenario_engine engine(base);
    out.nominal_cycle_time = engine.evaluate(base.delay(), /*with_slack=*/false).cycle_time;

    corner_sweep_options sweep;
    sweep.factor = options.spread;
    out.scenarios = corner_sweep_scenarios(out.graph, sweep);

    if (options.samples > 0) {
        monte_carlo_options mc;
        mc.samples = options.samples;
        mc.seed = options.seed;
        mc.spread = options.spread;
        for (scenario& s : monte_carlo_scenarios(out.graph, mc))
            out.scenarios.push_back(std::move(s));
    }

    scenario_batch_options run;
    run.max_threads = options.max_threads;
    run.lane_width = options.lane_width;
    out.batch = engine.run(out.scenarios, run);
    return out;
}

gate_criticality_result explore_gate_criticality(const netlist& nl,
                                                 const circuit_state& initial,
                                                 const gate_criticality_options& options)
{
    gate_criticality_result out;
    out.graph = extract_signal_graph(nl, initial).graph;

    const compiled_graph base(out.graph);
    const scenario_engine engine(base);

    monte_carlo_options mc;
    mc.samples = options.samples;
    mc.seed = options.seed;
    mc.spread = options.spread;
    mc.max_threads = options.max_threads;

    stats_options stats;
    stats.criticality = true;
    stats.group_by_signal = true;
    stats.max_threads = options.max_threads;
    stats.epsilon = options.epsilon;
    stats.max_samples = options.max_samples;

    out.run = options.epsilon > 0.0 ? monte_carlo_adaptive(engine, out.graph, mc, stats)
                                    : monte_carlo_statistics(engine, out.graph, mc, stats);
    return out;
}

} // namespace tsg
