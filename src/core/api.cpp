#include "core/api.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "core/pert.h"
#include "util/error.h"
#include "util/strings.h"

namespace tsg {

namespace {

[[noreturn]] void bad(const std::string& message) { throw error("bad_request: " + message); }

/// Exact double spelling: the shortest %g form that re-parses to the same
/// bits, so request round-trips (parse . serialize == id) hold for every
/// epsilon/quantile value a client sends.
std::string double_spelling(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.12g", value);
    if (std::stod(buffer) == value) return buffer;
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::uint64_t field_u64(const json_value& v, const std::string& key)
{
    if (v.k != json_value::kind::number_v ||
        v.text.find_first_not_of("0123456789") != std::string::npos)
        bad("\"" + key + "\" must be a non-negative integer");
    try {
        return std::stoull(v.text);
    } catch (const std::exception&) {
        bad("\"" + key + "\" is out of range");
    }
}

double field_double(const json_value& v, const std::string& key)
{
    if (v.k != json_value::kind::number_v) bad("\"" + key + "\" must be a number");
    try {
        return std::stod(v.text);
    } catch (const std::exception&) {
        bad("\"" + key + "\" is out of range");
    }
}

bool field_bool(const json_value& v, const std::string& key)
{
    if (v.k != json_value::kind::bool_v) bad("\"" + key + "\" must be a bool");
    return v.boolean;
}

std::string field_string(const json_value& v, const std::string& key)
{
    if (v.k != json_value::kind::string_v) bad("\"" + key + "\" must be a string");
    return v.text;
}

rational field_rational(const json_value& v, const std::string& key)
{
    if (v.k == json_value::kind::string_v) return rational::parse(v.text);
    if (v.k == json_value::kind::number_v &&
        v.text.find_first_of(".eE") == std::string::npos)
        return rational::parse(v.text);
    bad("\"" + key + "\" must be an integer or a \"num/den\" string");
}

const char* solver_spelling(cycle_time_solver solver)
{
    switch (solver) {
    case cycle_time_solver::auto_select: return "auto";
    case cycle_time_solver::border_sweep: return "border";
    case cycle_time_solver::howard: return "howard";
    }
    return "auto";
}

cycle_time_solver parse_solver_name(const std::string& name)
{
    if (name == "auto") return cycle_time_solver::auto_select;
    if (name == "border") return cycle_time_solver::border_sweep;
    if (name == "howard") return cycle_time_solver::howard;
    bad("unknown solver '" + name + "' (use auto, border or howard)");
}

const char* mode_spelling(optimize_mode mode)
{
    switch (mode) {
    case optimize_mode::deterministic: return "deterministic";
    case optimize_mode::statistical: return "statistical";
    }
    return "deterministic";
}

optimize_mode parse_mode_name(const std::string& name)
{
    if (name == "deterministic") return optimize_mode::deterministic;
    if (name == "statistical") return optimize_mode::statistical;
    bad("unknown mode '" + name + "' (use deterministic or statistical)");
}

const char* delta_spelling(scenario_batch_options::delta_mode delta)
{
    switch (delta) {
    case scenario_batch_options::delta_mode::auto_detect: return "auto";
    case scenario_batch_options::delta_mode::dense: return "dense";
    case scenario_batch_options::delta_mode::sparse: return "sparse";
    }
    return "auto";
}

scenario_batch_options::delta_mode parse_delta_name(const std::string& name)
{
    if (name == "auto") return scenario_batch_options::delta_mode::auto_detect;
    if (name == "dense") return scenario_batch_options::delta_mode::dense;
    if (name == "sparse") return scenario_batch_options::delta_mode::sparse;
    bad("unknown delta mode '" + name + "' (use auto, dense or sparse)");
}

design_ref parse_design(const json_value& doc)
{
    if (doc.k != json_value::kind::object_v) bad("\"design\" must be an object");
    design_ref design;
    for (const auto& [key, value] : doc.members) {
        if (key == "id")
            design.id = field_string(value, key);
        else if (key == "version")
            design.version = field_u64(value, key);
        else if (key == "path")
            design.path = field_string(value, key);
        else if (key == "text")
            design.text = field_string(value, key);
        else
            bad("unknown design field \"" + key + "\"");
    }
    const int sources = (design.id.empty() ? 0 : 1) + (design.path.empty() ? 0 : 1) +
                        (design.text.empty() ? 0 : 1);
    if (sources > 1) bad("\"design\" must name at most one of id, path or text");
    return design;
}

request_options parse_options(const json_value& doc)
{
    if (doc.k != json_value::kind::object_v) bad("\"options\" must be an object");
    request_options options;
    for (const auto& [key, value] : doc.members) {
        if (key == "solver")
            options.solver = parse_solver_name(field_string(value, key));
        else if (key == "max_threads")
            options.max_threads = static_cast<unsigned>(field_u64(value, key));
        else if (key == "lane_width")
            options.lane_width = static_cast<unsigned>(field_u64(value, key));
        else if (key == "delta")
            options.delta = parse_delta_name(field_string(value, key));
        else if (key == "with_slack")
            options.with_slack = field_bool(value, key);
        else if (key == "with_witness")
            options.with_witness = field_bool(value, key);
        else if (key == "factor")
            options.factor = field_rational(value, key);
        else if (key == "samples")
            options.samples = field_u64(value, key);
        else if (key == "seed")
            options.seed = field_u64(value, key);
        else if (key == "spread")
            options.spread = field_rational(value, key);
        else if (key == "resolution")
            options.resolution = static_cast<std::int64_t>(field_u64(value, key));
        else if (key == "adaptive")
            options.adaptive = field_bool(value, key);
        else if (key == "epsilon")
            options.epsilon = field_double(value, key);
        else if (key == "quantile")
            options.quantile = field_double(value, key);
        else if (key == "round_samples")
            options.round_samples = field_u64(value, key);
        else if (key == "min_samples")
            options.min_samples = field_u64(value, key);
        else if (key == "criticality")
            options.criticality = field_bool(value, key);
        else if (key == "group_by_signal")
            options.group_by_signal = field_bool(value, key);
        else if (key == "mode")
            options.mode = parse_mode_name(field_string(value, key));
        else if (key == "budget")
            options.budget = field_rational(value, key);
        else if (key == "step")
            options.step = field_rational(value, key);
        else if (key == "target")
            options.target = field_rational(value, key);
        else if (key == "min_delay")
            options.min_delay = field_rational(value, key);
        else if (key == "k")
            options.k = field_u64(value, key);
        else if (key == "deadline_ms")
            options.deadline_ms = field_u64(value, key);
        else
            bad("unknown option \"" + key + "\"");
    }
    return options;
}

} // namespace

const char* request_kind_name(request_kind kind)
{
    switch (kind) {
    case request_kind::analyze: return "analyze";
    case request_kind::sweep: return "sweep";
    case request_kind::montecarlo: return "montecarlo";
    case request_kind::criticality: return "criticality";
    case request_kind::optimize: return "optimize";
    case request_kind::report_topk: return "report_topk";
    case request_kind::edit: return "edit";
    case request_kind::stats: return "stats";
    case request_kind::health: return "health";
    }
    return "analyze";
}

request_kind parse_request_kind(const std::string& name)
{
    if (name == "analyze") return request_kind::analyze;
    if (name == "sweep") return request_kind::sweep;
    if (name == "montecarlo") return request_kind::montecarlo;
    if (name == "criticality") return request_kind::criticality;
    if (name == "optimize") return request_kind::optimize;
    if (name == "report_topk") return request_kind::report_topk;
    if (name == "edit") return request_kind::edit;
    if (name == "stats") return request_kind::stats;
    if (name == "health") return request_kind::health;
    bad("unknown request kind '" + name +
        "' (use analyze, sweep, montecarlo, criticality, optimize, report_topk, "
        "edit, stats or health)");
}

// --- request_options views ---------------------------------------------------

scenario_batch_options request_options::to_batch_options() const
{
    scenario_batch_options batch;
    batch.max_threads = max_threads;
    batch.with_slack = with_slack;
    batch.with_witness = with_witness;
    batch.solver = solver;
    batch.lane_width = lane_width;
    batch.delta = delta;
    return batch;
}

corner_sweep_options request_options::to_corner_sweep_options() const
{
    corner_sweep_options sweep;
    sweep.factor = factor;
    return sweep;
}

monte_carlo_options request_options::to_monte_carlo_options() const
{
    monte_carlo_options mc;
    mc.samples = samples;
    mc.seed = seed;
    mc.spread = spread;
    mc.resolution = resolution;
    return mc;
}

stats_options request_options::to_stats_options(request_kind kind) const
{
    stats_options stats;
    stats.solver = solver;
    stats.lane_width = lane_width;
    stats.max_threads = max_threads;
    stats.quantile = quantile;
    if (kind == request_kind::criticality || criticality) stats.criticality = true;
    if (kind == request_kind::criticality || group_by_signal) stats.group_by_signal = true;
    if (adaptive) {
        stats.epsilon = epsilon > 0.0 ? epsilon : 0.05;
        stats.max_samples = samples; // the tool contract: --samples caps the run
        stats.min_samples = min_samples;
    }
    stats.round_samples = round_samples;
    return stats;
}

analysis_options request_options::to_analysis_options() const
{
    analysis_options analysis;
    analysis.solver = solver;
    analysis.max_threads = max_threads;
    return analysis;
}

optimize_options request_options::to_optimize_options() const
{
    optimize_options opt;
    opt.mode = mode;
    opt.budget = budget;
    opt.step = step;
    opt.target = target;
    opt.min_delay = min_delay;
    opt.solver = solver;
    opt.max_threads = max_threads;
    opt.mc = to_monte_carlo_options();
    opt.stats.solver = solver;
    opt.stats.lane_width = lane_width;
    opt.stats.max_threads = max_threads;
    opt.stats.epsilon = epsilon > 0.0 ? epsilon : 0.05;
    opt.stats.max_samples = samples; // the tool contract: --samples caps each run
    opt.stats.min_samples = min_samples;
    opt.stats.round_samples = round_samples;
    return opt;
}

topk_options request_options::to_topk_options() const
{
    topk_options topk;
    topk.mode = mode;
    topk.k = k;
    topk.samples = samples;
    topk.mc = to_monte_carlo_options();
    topk.solver = solver;
    topk.max_threads = max_threads;
    topk.lane_width = lane_width;
    return topk;
}

// --- codec -------------------------------------------------------------------

analysis_request parse_analysis_request(const json_value& doc)
{
    if (doc.k != json_value::kind::object_v) bad("request must be a JSON object");
    analysis_request request;
    bool have_version = false;
    bool have_kind = false;
    bool have_edits = false;
    for (const auto& [key, value] : doc.members) {
        if (key == "api_version") {
            const std::uint64_t version = field_u64(value, key);
            if (version != static_cast<std::uint64_t>(tsg_api_version))
                throw error("unsupported_version: this build speaks api_version " +
                            std::to_string(tsg_api_version) + ", request carries " +
                            value.text);
            request.api_version = static_cast<int>(version);
            have_version = true;
        } else if (key == "id") {
            request.id = field_string(value, key);
        } else if (key == "kind") {
            request.kind = parse_request_kind(field_string(value, key));
            have_kind = true;
        } else if (key == "design") {
            request.design = parse_design(value);
        } else if (key == "options") {
            request.options = parse_options(value);
        } else if (key == "edits") {
            request.edits = value;
            have_edits = true;
        } else {
            bad("unknown request field \"" + key + "\"");
        }
    }
    if (!have_version) bad("request needs \"api_version\"");
    if (!have_kind) bad("request needs \"kind\"");
    if (request.kind == request_kind::edit) {
        if (!have_edits) bad("edit requests need an \"edits\" script");
    } else if (have_edits) {
        bad("\"edits\" is only valid on edit requests");
    }
    return request;
}

analysis_request parse_analysis_request(const std::string& text)
{
    return parse_analysis_request(json_parse(text, "request"));
}

json_value analysis_request_json(const analysis_request& request)
{
    json_value doc = json_value::object();
    doc.set("api_version", json_value::number(std::int64_t{request.api_version}));
    doc.set("id", json_value::string(request.id));
    doc.set("kind", json_value::string(request_kind_name(request.kind)));

    json_value design = json_value::object();
    design.set("id", json_value::string(request.design.id));
    design.set("version", json_value::number(std::uint64_t{request.design.version}));
    design.set("path", json_value::string(request.design.path));
    design.set("text", json_value::string(request.design.text));
    doc.set("design", std::move(design));

    const request_options& o = request.options;
    json_value options = json_value::object();
    options.set("solver", json_value::string(solver_spelling(o.solver)));
    options.set("max_threads", json_value::number(std::uint64_t{o.max_threads}));
    options.set("lane_width", json_value::number(std::uint64_t{o.lane_width}));
    options.set("delta", json_value::string(delta_spelling(o.delta)));
    options.set("with_slack", json_value::boolean_value(o.with_slack));
    options.set("with_witness", json_value::boolean_value(o.with_witness));
    options.set("factor", json_value::string(o.factor.str()));
    options.set("samples", json_value::number(std::uint64_t{o.samples}));
    options.set("seed", json_value::number(std::uint64_t{o.seed}));
    options.set("spread", json_value::string(o.spread.str()));
    options.set("resolution", json_value::number(std::int64_t{o.resolution}));
    options.set("adaptive", json_value::boolean_value(o.adaptive));
    options.set("epsilon", json_value::raw_number(double_spelling(o.epsilon)));
    options.set("quantile", json_value::raw_number(double_spelling(o.quantile)));
    options.set("round_samples", json_value::number(std::uint64_t{o.round_samples}));
    options.set("min_samples", json_value::number(std::uint64_t{o.min_samples}));
    options.set("criticality", json_value::boolean_value(o.criticality));
    options.set("group_by_signal", json_value::boolean_value(o.group_by_signal));
    options.set("mode", json_value::string(mode_spelling(o.mode)));
    options.set("budget", json_value::string(o.budget.str()));
    options.set("step", json_value::string(o.step.str()));
    options.set("target", json_value::string(o.target.str()));
    options.set("min_delay", json_value::string(o.min_delay.str()));
    options.set("k", json_value::number(std::uint64_t{o.k}));
    options.set("deadline_ms", json_value::number(std::uint64_t{o.deadline_ms}));
    doc.set("options", std::move(options));

    if (request.kind == request_kind::edit) doc.set("edits", request.edits);
    return doc;
}

std::string analysis_response_json(const analysis_response& response)
{
    json_value doc = json_value::object();
    doc.set("id", json_value::string(response.id));
    doc.set("ok", json_value::boolean_value(response.ok));
    doc.set("elapsed_ms", json_value::raw_number(double_spelling(response.elapsed_ms)));
    if (response.ok) {
        doc.set("design_version",
                json_value::number(std::uint64_t{response.design_version}));
        doc.set("scenarios", json_value::number(std::uint64_t{response.scenarios}));
        doc.set("coalesced", json_value::boolean_value(response.coalesced));
        doc.set("payload", json_parse(response.payload, "payload"));
    } else {
        json_value err = json_value::object();
        err.set("code", json_value::string(response.error.code));
        err.set("message", json_value::string(response.error.message));
        if (response.error.retry_after_ms > 0)
            err.set("retry_after_ms",
                    json_value::number(std::uint64_t{response.error.retry_after_ms}));
        doc.set("error", std::move(err));
    }
    return doc.write();
}

std::string api_error_json(const api_error& error)
{
    json_value doc = json_value::object();
    json_value& err = doc.set("error", json_value::object());
    err.set("code", json_value::string(error.code));
    err.set("message", json_value::string(error.message));
    if (error.retry_after_ms > 0)
        err.set("retry_after_ms", json_value::number(std::uint64_t{error.retry_after_ms}));
    return doc.write();
}

api_error classify_error(const std::string& diagnostic, const std::string& fallback)
{
    static const char* const codes[] = {"bad_request",       "unsupported_version",
                                        "unknown_design",    "unknown_version",
                                        "invalid_model",     "invalid_request",
                                        "unsupported",       "overloaded",
                                        "rate_limited",      "draining",
                                        "deadline_exceeded", "internal"};
    for (const char* code : codes) {
        const std::string prefix = std::string(code) + ": ";
        if (starts_with(diagnostic, prefix))
            return {code, diagnostic.substr(prefix.size())};
    }
    return {fallback, diagnostic};
}

// --- payload renderers -------------------------------------------------------

namespace {

template <typename T>
void append_number_array(std::ostringstream& os, const std::vector<T>& values)
{
    os << "[";
    for (std::size_t k = 0; k < values.size(); ++k) os << (k ? ", " : "") << values[k];
    os << "]";
}

/// Finite doubles render as numbers; infinities (an unconverged CI on a
/// one-sample run) as null — JSON has no inf literal.
std::string json_double(double value, int decimals = 6)
{
    if (!std::isfinite(value)) return "null";
    return format_double(value, decimals);
}

void append_model_header(std::ostringstream& os, const std::string& command,
                         const std::string& solver, const signal_graph& sg,
                         const rational& nominal)
{
    os << "  \"command\": " << json_quote(command) << ",\n";
    os << "  \"solver\": " << json_quote(solver) << ",\n";
    os << "  \"model\": {\"events\": " << sg.event_count()
       << ", \"arcs\": " << sg.arc_count()
       << ", \"cyclic\": " << (sg.repetitive_events().empty() ? "false" : "true")
       << "},\n";
    os << "  \"nominal_cycle_time\": {\"exact\": " << json_quote(nominal.str())
       << ", \"value\": " << format_double(nominal.to_double(), 6) << "},\n";
}

} // namespace

std::string scenario_batch_json(const std::string& command, const std::string& solver,
                                const signal_graph& sg, const rational& nominal,
                                const std::vector<scenario>& scenarios,
                                const scenario_batch_result& batch)
{
    std::ostringstream os;
    os << "{\n";
    append_model_header(os, command, solver, sg, nominal);
    os << "  \"aggregate\": {\n";
    os << "    \"scenarios\": " << batch.outcomes.size() << ",\n";
    os << "    \"min\": {\"exact\": " << json_quote(batch.min_cycle_time.str())
       << ", \"value\": " << format_double(batch.min_cycle_time.to_double(), 6)
       << ", \"label\": " << json_quote(scenarios[batch.min_index].label) << "},\n";
    os << "    \"max\": {\"exact\": " << json_quote(batch.max_cycle_time.str())
       << ", \"value\": " << format_double(batch.max_cycle_time.to_double(), 6)
       << ", \"label\": " << json_quote(scenarios[batch.max_index].label) << "},\n";
    os << "    \"mean_value\": " << format_double(batch.mean_cycle_time, 6) << ",\n";
    os << "    \"rational_fallbacks\": " << batch.fallback_count << ",\n";
    os << "    \"engine\": {\"lane_groups\": " << batch.lane_groups
       << ", \"lane_scenarios\": " << batch.lane_scenarios
       << ", \"lane_evictions\": " << batch.lane_evictions
       << ", \"scalar_scenarios\": " << batch.scalar_scenarios
       << ", \"sparse_scenarios\": " << batch.sparse_scenarios
       << ", \"sparse_arcs_touched\": " << batch.sparse_arcs_touched
       << ", \"dense_sweep_arcs\": " << batch.dense_sweep_arcs << "},\n";
    os << "    \"criticality_count\": ";
    append_number_array(os, batch.criticality_count);
    os << ",\n";
    os << "    \"critical_cycles\": [";
    for (std::size_t k = 0; k < batch.critical_cycles.size(); ++k) {
        const critical_cycle_stat& stat = batch.critical_cycles[k];
        os << (k ? ", " : "") << "{\"arcs\": ";
        append_number_array(os, stat.arcs);
        os << ", \"count\": " << stat.count
           << ", \"first_label\": " << json_quote(scenarios[stat.first_index].label) << "}";
    }
    os << "]\n  },\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const scenario_outcome& o = batch.outcomes[i];
        os << "    {\"label\": " << json_quote(scenarios[i].label)
           << ", \"cycle_time\": " << json_quote(o.cycle_time.str())
           << ", \"value\": " << format_double(o.cycle_time.to_double(), 6)
           << ", \"fixed_point\": " << (o.fixed_point ? "true" : "false")
           << ", \"critical_arcs\": ";
        append_number_array(os, o.critical_arcs);
        os << ", \"critical_cycle\": ";
        append_number_array(os, o.critical_cycle);
        os << "}" << (i + 1 < batch.outcomes.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string statistics_json(const std::string& command, const std::string& solver,
                            const signal_graph& sg, const stats_run_result& run,
                            const stats_options& options)
{
    const stats_accumulator& st = run.stats;
    const double z = options.confidence_z;

    std::ostringstream os;
    os << "{\n";
    append_model_header(os, command, solver, sg, run.nominal_cycle_time);
    os << "  \"statistics\": {\n";
    os << "    \"samples\": " << st.count() << ",\n";
    os << "    \"rounds\": " << run.rounds << ",\n";
    os << "    \"adaptive\": " << (run.adaptive ? "true" : "false") << ",\n";
    os << "    \"converged\": " << (run.converged ? "true" : "false") << ",\n";
    std::string target = "mean";
    if (options.quantile >= 0.0) {
        target = "q";
        target += format_double(options.quantile, 4);
    }
    os << "    \"target\": " << json_quote(target) << ",\n";
    os << "    \"epsilon\": " << json_double(run.target_half_width) << ",\n";
    os << "    \"ci_half_width\": " << json_double(run.achieved_half_width) << ",\n";
    os << "    \"confidence_z\": " << json_double(z) << ",\n";
    os << "    \"mean\": " << json_double(st.mean()) << ",\n";
    os << "    \"stddev\": " << json_double(st.stddev()) << ",\n";
    os << "    \"variance\": " << json_double(st.variance()) << ",\n";
    os << "    \"mean_ci_half_width\": " << json_double(st.mean_ci_half_width(z)) << ",\n";
    os << "    \"min\": {\"exact\": " << json_quote(st.min_cycle_time().str())
       << ", \"value\": " << format_double(st.min_cycle_time().to_double(), 6)
       << ", \"sample\": " << st.min_index() << "},\n";
    os << "    \"max\": {\"exact\": " << json_quote(st.max_cycle_time().str())
       << ", \"value\": " << format_double(st.max_cycle_time().to_double(), 6)
       << ", \"sample\": " << st.max_index() << "},\n";
    os << "    \"quantiles\": {\"p50\": " << json_double(st.quantile(0.50))
       << ", \"p95\": " << json_double(st.quantile(0.95))
       << ", \"p99\": " << json_double(st.quantile(0.99)) << "},\n";
    os << "    \"histogram\": {\"lo\": " << json_quote(st.histogram_lo().str())
       << ", \"hi\": " << json_quote(st.histogram_hi().str())
       << ", \"bins\": " << st.histogram().size() << ", \"underflow\": " << st.underflow()
       << ", \"overflow\": " << st.overflow() << ", \"counts\": ";
    append_number_array(os, st.histogram());
    os << "},\n";
    os << "    \"rational_fallbacks\": " << st.fallback_count() << ",\n";
    os << "    \"engine\": {\"lane_groups\": " << run.lane_groups
       << ", \"lane_scenarios\": " << run.lane_scenarios
       << ", \"lane_evictions\": " << run.lane_evictions
       << ", \"scalar_scenarios\": " << run.scalar_scenarios << "}";

    // Criticality: every arc that was ever critical, most probable first
    // (ties: ascending arc id) — the probabilistic analogue of the batch
    // criticality_count.
    const std::vector<std::uint64_t>& crit = st.criticality_count();
    std::vector<arc_id> critical;
    for (arc_id a = 0; a < crit.size(); ++a)
        if (crit[a] > 0) critical.push_back(a);
    std::stable_sort(critical.begin(), critical.end(), [&](arc_id a, arc_id b) {
        return crit[a] > crit[b];
    });
    if (!critical.empty()) {
        os << ",\n    \"criticality\": [";
        for (std::size_t k = 0; k < critical.size(); ++k) {
            const arc_id a = critical[k];
            os << (k ? ", " : "") << "{\"arc\": " << a << ", \"count\": " << crit[a]
               << ", \"probability\": " << json_double(st.criticality_probability(a))
               << ", \"ci_half_width\": " << json_double(st.criticality_ci_half_width(a, z))
               << "}";
        }
        os << "]";
    }

    // Per-gate (per-signal) criticality, when the run grouped arcs.
    const std::vector<std::string>& gates = st.group_names();
    if (!gates.empty()) {
        const std::vector<std::uint64_t>& counts = st.group_criticality_count();
        std::vector<std::size_t> order(gates.size());
        for (std::size_t g = 0; g < gates.size(); ++g) order[g] = g;
        std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            if (counts[a] != counts[b]) return counts[a] > counts[b];
            return gates[a] < gates[b];
        });
        os << ",\n    \"gates\": [";
        for (std::size_t k = 0; k < order.size(); ++k) {
            const std::size_t g = order[k];
            os << (k ? ", " : "") << "{\"gate\": " << json_quote(gates[g])
               << ", \"count\": " << counts[g]
               << ", \"probability\": " << json_double(st.group_criticality_probability(g))
               << ", \"ci_half_width\": "
               << json_double(st.group_criticality_ci_half_width(g, z)) << "}";
        }
        os << "]";
    }

    os << "\n  }\n}\n";
    return os.str();
}

// --- edit scripts ------------------------------------------------------------

namespace {

std::uint32_t edit_field_index(const json_value& obj, const std::string& key)
{
    const json_value* v = obj.find(key);
    require(v != nullptr && v->k == json_value::kind::number_v,
            "edit script: edit needs a numeric \"" + key + "\"");
    require(v->text.find_first_not_of("0123456789") == std::string::npos,
            "edit script: \"" + key + "\" must be a non-negative integer");
    return static_cast<std::uint32_t>(std::stoul(v->text));
}

event_id edit_field_event(const json_value& obj, const std::string& key,
                          const signal_graph& sg)
{
    const json_value* v = obj.find(key);
    require(v != nullptr, "edit script: edit needs \"" + key + "\"");
    if (v->k == json_value::kind::string_v) return sg.event_by_name(v->text);
    return edit_field_index(obj, key);
}

rational edit_field_delay(const json_value& obj)
{
    const json_value* v = obj.find("delay");
    require(v != nullptr, "edit script: edit needs a \"delay\"");
    if (v->k == json_value::kind::string_v) return rational::parse(v->text);
    require(v->k == json_value::kind::number_v &&
                v->text.find_first_of(".eE") == std::string::npos,
            "edit script: \"delay\" must be an integer or a \"num/den\" string");
    return rational::parse(v->text);
}

bool edit_field_flag(const json_value& obj, const std::string& key, bool fallback)
{
    const json_value* v = obj.find(key);
    if (v == nullptr) return fallback;
    require(v->k == json_value::kind::bool_v, "edit script: \"" + key + "\" must be a bool");
    return v->boolean;
}

graph_edit parse_edit(const json_value& obj, const signal_graph& sg)
{
    require(obj.k == json_value::kind::object_v, "edit script: each edit must be an object");
    const json_value* op = obj.find("op");
    require(op != nullptr && op->k == json_value::kind::string_v,
            "edit script: each edit needs a string \"op\"");
    if (op->text == "add_arc")
        return graph_edit::add(edit_field_event(obj, "from", sg),
                               edit_field_event(obj, "to", sg), edit_field_delay(obj),
                               edit_field_flag(obj, "marked", false),
                               edit_field_flag(obj, "disengageable", false));
    if (op->text == "remove_arc") return graph_edit::remove(edit_field_index(obj, "arc"));
    if (op->text == "set_delay")
        return graph_edit::set_delay_of(edit_field_index(obj, "arc"),
                                        edit_field_delay(obj));
    if (op->text == "retarget")
        return graph_edit::retarget_to(edit_field_index(obj, "arc"),
                                       edit_field_event(obj, "from", sg),
                                       edit_field_event(obj, "to", sg));
    if (op->text == "set_marking")
        return graph_edit::set_marking_of(edit_field_index(obj, "arc"),
                                          edit_field_flag(obj, "marked", true));
    throw error("edit script: unknown op '" + op->text +
                "' (use add_arc, remove_arc, set_delay, retarget or set_marking)");
}

void append_exact(std::ostringstream& os, const rational& v)
{
    os << "{\"exact\": " << json_quote(v.str())
       << ", \"value\": " << format_double(v.to_double(), 6) << "}";
}

} // namespace

edit_script parse_edit_script(const json_value& doc, const signal_graph& sg)
{
    require(doc.k == json_value::kind::object_v, "edit script: top level must be an object");

    edit_script script;
    const auto parse_batch = [&](const json_value& batch, const std::string& fallback_label) {
        const json_value* edits = &batch;
        std::string label = fallback_label;
        if (batch.k == json_value::kind::object_v) {
            // {"label": ..., "edits": [...]} — a named batch.
            const json_value* named = batch.find("edits");
            require(named != nullptr, "edit script: a batch object needs \"edits\"");
            if (const json_value* l = batch.find("label"); l != nullptr) {
                require(l->k == json_value::kind::string_v,
                        "edit script: batch \"label\" must be a string");
                label = l->text;
            }
            edits = named;
        }
        require(edits->k == json_value::kind::array_v && !edits->items.empty(),
                "edit script: each batch must be a non-empty array of edits");
        edit_batch out;
        out.reserve(edits->items.size());
        for (const json_value& e : edits->items) out.push_back(parse_edit(e, sg));
        script.batches.push_back(std::move(out));
        script.labels.push_back(std::move(label));
    };

    if (const json_value* batches = doc.find("batches"); batches != nullptr) {
        require(batches->k == json_value::kind::array_v && !batches->items.empty(),
                "edit script: \"batches\" must be a non-empty array");
        for (std::size_t i = 0; i < batches->items.size(); ++i)
            parse_batch(batches->items[i], "batch " + std::to_string(i + 1));
    } else if (const json_value* edits = doc.find("edits"); edits != nullptr) {
        parse_batch(*edits, "batch 1");
    } else {
        throw error("edit script: top level needs \"batches\" or \"edits\"");
    }
    return script;
}

edit_script parse_edit_script(const std::string& text, const signal_graph& sg)
{
    return parse_edit_script(json_parse(text, "edit script"), sg);
}

std::vector<edit_batch_status> run_edit_script(incremental_engine& eng,
                                               const edit_script& script)
{
    std::vector<edit_batch_status> statuses(script.batches.size());
    for (std::size_t i = 0; i < script.batches.size(); ++i) {
        edit_batch_status& st = statuses[i];
        try {
            eng.apply(script.batches[i]);
        } catch (const error& e) {
            st.message = e.what(); // rejected: the engine rolled back
            continue;
        }
        st.applied = true;
        st.cyclic = !eng.graph().repetitive_events().empty();
        st.cycle_time =
            st.cyclic ? eng.analyze_warm().cycle_time : analyze_pert(eng.compiled()).makespan;
    }
    return statuses;
}

std::string edit_run_json(incremental_engine& eng, const edit_script& script,
                          const rational& nominal, bool nominal_cyclic,
                          const std::vector<edit_batch_status>& statuses)
{
    const signal_graph& sg = eng.graph();
    std::ostringstream os;
    os << "{\n";
    os << "  \"command\": \"edit\",\n";
    os << "  \"model\": {\"events\": " << sg.event_count()
       << ", \"arcs\": " << sg.live_arc_count() << ", \"tokens\": " << sg.token_count()
       << ", \"cyclic\": " << (sg.repetitive_events().empty() ? "false" : "true")
       << "},\n";
    os << "  \"nominal\": {\"cyclic\": " << (nominal_cyclic ? "true" : "false")
       << ", \"cycle_time\": ";
    append_exact(os, nominal);
    os << "},\n";

    os << "  \"batches\": [\n";
    for (std::size_t i = 0; i < statuses.size(); ++i) {
        const edit_batch_status& st = statuses[i];
        os << "    {\"label\": " << json_quote(script.labels[i])
           << ", \"edits\": " << script.batches[i].size()
           << ", \"applied\": " << (st.applied ? "true" : "false");
        if (st.applied) {
            os << ", \"cyclic\": " << (st.cyclic ? "true" : "false")
               << ", \"cycle_time\": ";
            append_exact(os, st.cycle_time);
        } else {
            // The normalized structured error object (core/api.h) — the
            // same {code, message} shape every other error path reports.
            const api_error err = classify_error(st.message);
            os << ", \"error\": {\"code\": " << json_quote(err.code)
               << ", \"message\": " << json_quote(err.message) << "}";
        }
        os << "}" << (i + 1 < statuses.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    // Final analysis on the edited structure: a cold solve, bit-identical
    // to a fresh finalize() + compile of the same graph.
    os << "  \"final\": {";
    if (sg.repetitive_events().empty()) {
        const pert_result pert = analyze_pert(eng.compiled());
        os << "\"cyclic\": false, \"makespan\": ";
        append_exact(os, pert.makespan);
        os << ", \"critical_path\": [";
        for (std::size_t i = 0; i < pert.critical_path.size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(pert.critical_path[i]).name);
        os << "]";
    } else {
        const cycle_time_result ct = eng.analyze();
        os << "\"cyclic\": true, \"cycle_time\": ";
        append_exact(os, ct.cycle_time);
        os << ", \"critical_occurrence_period\": " << ct.critical_occurrence_period;
        os << ", \"critical_cycle\": [";
        for (std::size_t i = 0; i < ct.critical_cycle_events.size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(ct.critical_cycle_events[i]).name);
        os << "], \"border_events\": [";
        for (std::size_t i = 0; i < sg.border_events().size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(sg.border_events()[i]).name);
        os << "]";
    }
    os << "},\n";

    const incremental_counters& c = eng.counters();
    os << "  \"engine\": {\"batches_applied\": " << c.batches_applied
       << ", \"edits_applied\": " << c.edits_applied << ", \"undos\": " << c.undos
       << ",\n    \"arcs_repaired\": " << c.arcs_repaired
       << ", \"csr_compactions\": " << c.csr_compactions
       << ", \"topo_window\": " << c.topo_window
       << ",\n    \"sccs_recondensed\": " << c.sccs_recondensed
       << ", \"scc_window\": " << c.scc_window
       << ", \"scc_runs_skipped\": " << c.scc_runs_skipped
       << ",\n    \"core_rebuilds\": " << c.core_rebuilds
       << ", \"full_rebuilds\": " << c.full_rebuilds
       << ",\n    \"fixed_point_patches\": " << c.fixed_point_patches
       << ", \"fixed_point_recomputes\": " << c.fixed_point_recomputes
       << ",\n    \"warm_states_kept\": " << c.warm_states_kept
       << ", \"warm_states_dropped\": " << c.warm_states_dropped << "}\n";
    os << "}\n";
    return os.str();
}

// --- optimize / report_topk --------------------------------------------------

std::string optimize_json(const std::string& command, const std::string& solver,
                          const signal_graph& sg, const optimize_options& options,
                          const optimize_result& result)
{
    const bool statistical = result.mode == optimize_mode::statistical;
    std::ostringstream os;
    os << "{\n";
    append_model_header(os, command, solver, sg, result.initial_cycle_time);
    os << "  \"optimize\": {\n";
    os << "    \"mode\": " << json_quote(mode_spelling(result.mode)) << ",\n";
    os << "    \"budget\": ";
    append_exact(os, options.budget);
    os << ",\n    \"step\": ";
    append_exact(os, options.step);
    os << ",\n    \"target\": ";
    append_exact(os, options.target);
    os << ",\n    \"min_delay\": ";
    append_exact(os, options.min_delay);
    os << ",\n    \"budget_spent\": ";
    append_exact(os, result.budget_spent);
    os << ",\n    \"final_cycle_time\": ";
    append_exact(os, result.final_cycle_time);
    os << ",\n    \"target_reached\": " << (result.target_reached ? "true" : "false")
       << ",\n    \"exact\": " << (result.exact ? "true" : "false")
       << ",\n    \"evaluations\": " << result.evaluations
       << ",\n    \"candidates\": " << result.candidates << ",\n";
    if (statistical) {
        os << "    \"seed\": " << options.mc.seed << ",\n";
        os << "    \"samples\": " << result.samples << ",\n";
        os << "    \"initial_yield\": " << json_double(result.initial_yield)
           << ",\n    \"initial_yield_ci_half_width\": "
           << json_double(result.initial_yield_ci_half_width)
           << ",\n    \"final_yield\": " << json_double(result.final_yield)
           << ",\n    \"final_yield_ci_half_width\": "
           << json_double(result.final_yield_ci_half_width) << ",\n";
        os << "    \"steps\": [";
        for (std::size_t i = 0; i < result.steps.size(); ++i) {
            const optimize_step& step = result.steps[i];
            os << (i ? ", " : "") << "{\"arc\": " << step.arc << ", \"reduction\": "
               << json_quote(step.reduction.str()) << ", \"cycle_time_after\": ";
            append_exact(os, step.cycle_time_after);
            os << ", \"yield\": " << json_double(step.yield_after)
               << ", \"ci_half_width\": " << json_double(step.yield_ci_half_width)
               << ", \"samples\": " << step.samples << "}";
        }
        os << "],\n";
    }
    os << "    \"allocations\": [\n";
    for (std::size_t i = 0; i < result.allocations.size(); ++i) {
        const optimize_allocation& a = result.allocations[i];
        os << "      {\"arc\": " << a.arc
           << ", \"from\": " << json_quote(sg.event(sg.arc(a.arc).from).name)
           << ", \"to\": " << json_quote(sg.event(sg.arc(a.arc).to).name)
           << ", \"old_delay\": " << json_quote(a.old_delay.str())
           << ", \"new_delay\": " << json_quote(a.new_delay.str())
           << ", \"reduction\": " << json_quote(a.reduction.str()) << "}"
           << (i + 1 < result.allocations.size() ? "," : "") << "\n";
    }
    os << "    ],\n";
    // The same plan as an edit script body: apply via `tsg_tool edit` or an
    // edit request to commit it as a new design version.
    os << "    \"edits\": [";
    for (std::size_t i = 0; i < result.edits.size(); ++i) {
        const graph_edit& e = result.edits[i];
        os << (i ? ", " : "") << "{\"op\": \"set_delay\", \"arc\": " << e.arc
           << ", \"delay\": " << json_quote(e.delay.str()) << "}";
    }
    os << "]\n  }\n}\n";
    return os.str();
}

std::string topk_json(const std::string& command, const std::string& solver,
                      const signal_graph& sg, const topk_options& options,
                      const topk_result& result)
{
    const bool statistical = result.mode == optimize_mode::statistical;
    std::ostringstream os;
    os << "{\n";
    append_model_header(os, command, solver, sg, result.cycle_time);
    os << "  \"topk\": {\n";
    os << "    \"mode\": " << json_quote(mode_spelling(result.mode)) << ",\n";
    os << "    \"k\": " << options.k << ",\n";
    os << "    \"returned\": " << result.cycles.size() << ",\n";
    os << "    \"truncated\": " << (result.truncated ? "true" : "false") << ",\n";
    if (statistical)
        os << "    \"samples\": " << result.samples << ",\n";
    else
        os << "    \"solves\": " << result.solves << ",\n";
    os << "    \"cycles\": [\n";
    for (std::size_t i = 0; i < result.cycles.size(); ++i) {
        const topk_cycle& cycle = result.cycles[i];
        os << "      {\"rank\": " << (i + 1) << ",\n       \"ratio\": ";
        append_exact(os, cycle.ratio);
        os << ",\n       \"delay\": ";
        append_exact(os, cycle.delay);
        os << ",\n       \"tokens\": " << cycle.tokens << ",\n       \"slack\": ";
        append_exact(os, cycle.slack);
        os << ",\n       \"events\": [";
        for (std::size_t j = 0; j < cycle.events.size(); ++j)
            os << (j ? ", " : "") << json_quote(sg.event(cycle.events[j]).name);
        os << "],\n       \"arcs\": [";
        for (std::size_t j = 0; j < cycle.contributions.size(); ++j) {
            const topk_arc_contribution& c = cycle.contributions[j];
            os << (j ? ", " : "") << "{\"arc\": " << c.arc
               << ", \"delay\": " << json_quote(c.delay.str())
               << ", \"share\": " << json_double(c.share) << "}";
        }
        os << "]";
        if (statistical) {
            os << ",\n       \"count\": " << cycle.count
               << ", \"probability\": " << json_double(cycle.probability)
               << ", \"ci_half_width\": " << json_double(cycle.ci_half_width);
        }
        os << "}" << (i + 1 < result.cycles.size() ? "," : "") << "\n";
    }
    os << "    ]\n  }\n}\n";
    return os.str();
}

// --- executors ---------------------------------------------------------------

namespace {

std::string analyze_payload(const analysis_request& request, const signal_graph& sg,
                            const compiled_graph& compiled)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"command\": \"analyze\",\n";
    os << "  \"solver\": " << json_quote(solver_spelling(request.options.solver)) << ",\n";
    os << "  \"model\": {\"events\": " << sg.event_count()
       << ", \"arcs\": " << sg.arc_count()
       << ", \"cyclic\": " << (sg.repetitive_events().empty() ? "false" : "true")
       << "},\n";
    if (sg.repetitive_events().empty()) {
        const pert_result pert = analyze_pert(compiled);
        os << "  \"makespan\": ";
        append_exact(os, pert.makespan);
        os << ",\n  \"critical_path\": [";
        for (std::size_t i = 0; i < pert.critical_path.size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(pert.critical_path[i]).name);
        os << "]\n}\n";
    } else {
        const cycle_time_result result =
            analyze_cycle_time(compiled, request.options.to_analysis_options());
        os << "  \"cycle_time\": ";
        append_exact(os, result.cycle_time);
        os << ",\n  \"critical_occurrence_period\": " << result.critical_occurrence_period
           << ",\n  \"critical_cycle\": [";
        for (std::size_t i = 0; i < result.critical_cycle_events.size(); ++i)
            os << (i ? ", " : "")
               << json_quote(sg.event(result.critical_cycle_events[i]).name);
        os << "],\n  \"border_events\": [";
        for (std::size_t i = 0; i < sg.border_events().size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(sg.border_events()[i]).name);
        os << "]\n}\n";
    }
    return os.str();
}

} // namespace

std::vector<scenario> request_scenarios(const analysis_request& request,
                                        const signal_graph& sg)
{
    switch (request.kind) {
    case request_kind::sweep:
        return corner_sweep_scenarios(sg, request.options.to_corner_sweep_options());
    case request_kind::montecarlo:
        return monte_carlo_scenarios(sg, request.options.to_monte_carlo_options());
    default:
        throw error("bad_request: request kind '" +
                    std::string(request_kind_name(request.kind)) +
                    "' has no scenario batch");
    }
}

std::string batch_payload_json(const analysis_request& request, const signal_graph& sg,
                               const rational& nominal,
                               const std::vector<scenario>& scenarios,
                               const scenario_batch_result& batch)
{
    return scenario_batch_json(request_kind_name(request.kind),
                               solver_spelling(request.options.solver), sg, nominal,
                               scenarios, batch);
}

std::string execute_analysis_payload(const analysis_request& request, const signal_graph& sg,
                                     const compiled_graph& compiled,
                                     const scenario_engine& engine,
                                     std::chrono::steady_clock::time_point deadline)
{
    const request_options& o = request.options;
    if (request.kind == request_kind::analyze) return analyze_payload(request, sg, compiled);

    require(request.kind == request_kind::sweep ||
                request.kind == request_kind::montecarlo ||
                request.kind == request_kind::criticality ||
                request.kind == request_kind::optimize ||
                request.kind == request_kind::report_topk,
            "bad_request: request kind '" +
                std::string(request_kind_name(request.kind)) +
                "' is not an analysis request");

    if (request.kind == request_kind::optimize) {
        optimize_options opt = o.to_optimize_options();
        opt.stats.deadline = deadline;
        const optimize_result result = run_optimize(sg, engine, opt);
        return optimize_json("optimize", solver_spelling(o.solver), sg, opt, result);
    }
    if (request.kind == request_kind::report_topk) {
        const topk_options topk = o.to_topk_options();
        const topk_result result = report_topk(sg, compiled, engine, topk);
        return topk_json("report_topk", solver_spelling(o.solver), sg, topk, result);
    }

    // Statistics paths: criticality probabilities and adaptive Monte Carlo
    // stream rounds through core/stats.h instead of materializing a batch.
    if (request.kind == request_kind::criticality || o.adaptive) {
        monte_carlo_options mc = o.to_monte_carlo_options();
        stats_options stats = o.to_stats_options(request.kind);
        stats.deadline = deadline;
        stats_run_result run;
        if (o.adaptive) {
            run = monte_carlo_adaptive(engine, sg, mc, stats);
        } else {
            mc.samples = o.samples;
            run = monte_carlo_statistics(engine, sg, mc, stats);
        }
        return statistics_json(request_kind_name(request.kind), solver_spelling(o.solver),
                               sg, run, stats);
    }

    const std::vector<scenario> scenarios = request_scenarios(request, sg);
    require(!scenarios.empty(),
            "invalid_model: no scenarios to evaluate (no perturbable arcs)");
    const rational nominal =
        engine.evaluate(compiled.delay(), /*with_slack=*/false, o.max_threads, o.solver)
            .cycle_time;
    const scenario_batch_result batch = engine.run(scenarios, o.to_batch_options());
    return batch_payload_json(request, sg, nominal, scenarios, batch);
}

std::string execute_edit_payload(const analysis_request& request, incremental_engine& engine)
{
    require(request.kind == request_kind::edit,
            "bad_request: execute_edit_payload needs an edit request");
    const edit_script script = parse_edit_script(request.edits, engine.graph());
    const bool nominal_cyclic = !engine.graph().repetitive_events().empty();
    const rational nominal = nominal_cyclic ? engine.analyze().cycle_time
                                            : analyze_pert(engine.compiled()).makespan;
    const std::vector<edit_batch_status> statuses = run_edit_script(engine, script);
    return edit_run_json(engine, script, nominal, nominal_cyclic, statuses);
}

analysis_response execute_request(const analysis_request& request, const signal_graph& sg)
{
    analysis_response response;
    response.id = request.id;
    try {
        if (request.kind == request_kind::edit) {
            incremental_engine engine(sg);
            response.payload = execute_edit_payload(request, engine);
        } else if (request.kind == request_kind::stats ||
                   request.kind == request_kind::health) {
            throw error("bad_request: " +
                        std::string(request_kind_name(request.kind)) +
                        " requests need the analysis service");
        } else {
            const compiled_graph compiled(sg);
            const scenario_engine engine(compiled);
            response.payload = execute_analysis_payload(request, sg, compiled, engine);
        }
        response.ok = true;
    } catch (const error& e) {
        response.error = classify_error(e.what());
    } catch (const std::exception& e) {
        response.error = {"internal", e.what()};
    }
    return response;
}

} // namespace tsg
