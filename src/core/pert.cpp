#include "core/pert.h"

#include <algorithm>

#include "core/compiled_graph.h"
#include "core/lane_domain.h"
#include "graph/longest_path.h"
#include "util/simd.h"

namespace tsg {

pert_result analyze_pert(const compiled_graph& cg)
{
    const signal_graph& sg = cg.source();
    require(sg.repetitive_events().empty(),
            "analyze_pert: graph has cycles — use analyze_cycle_time");
    ensure(cg.acyclic_order().has_value(), "analyze_pert: missing topological order");

    pert_result r;
    std::vector<bool> reached;
    std::vector<arc_id> pred;

    // One longest-path sweep along the compiled topological order — in the
    // fixed-point domain when available (a single period always fits the
    // overflow budget), converting back to exact rationals at the boundary.
    if (cg.fixed_point()) {
        const auto lp = dag_longest_paths_ordered(cg.structure(), *cg.acyclic_order(),
                                                  cg.scaled_delay(), sg.initial_events());
        r.time.reserve(lp.distance.size());
        for (const std::int64_t t : lp.distance) r.time.push_back(cg.unscale(t));
        reached = lp.reached;
        pred = lp.pred;
    } else {
        auto lp = dag_longest_paths_ordered(cg.structure(), *cg.acyclic_order(), cg.delay(),
                                            sg.initial_events());
        r.time = std::move(lp.distance);
        reached = std::move(lp.reached);
        pred = std::move(lp.pred);
    }
    r.occurs = reached;

    event_id sink = invalid_node;
    for (event_id e = 0; e < sg.event_count(); ++e) {
        if (!reached[e]) continue;
        if (sink == invalid_node || r.time[e] > r.makespan) {
            sink = e;
            r.makespan = r.time[e];
        }
    }
    require(sink != invalid_node, "analyze_pert: no event is reachable");

    event_id cur = sink;
    r.critical_path.push_back(cur);
    while (pred[cur] != invalid_arc) {
        const arc_id a = pred[cur];
        r.critical_arcs.push_back(a);
        cur = cg.structure().from(a);
        r.critical_path.push_back(cur);
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
    std::reverse(r.critical_arcs.begin(), r.critical_arcs.end());
    return r;
}

pert_result analyze_pert(const signal_graph& sg)
{
    require(sg.finalized(), "analyze_pert: graph must be finalized");
    require(sg.repetitive_events().empty(),
            "analyze_pert: graph has cycles — use analyze_cycle_time");
    const compiled_graph cg(sg);
    return analyze_pert(cg);
}

// --- lane-batched PERT -------------------------------------------------------

namespace {

/// One SoA longest-path sweep along the compiled topological order, all
/// lanes at once; "unreached" is the lane_domain sentinel (see there for
/// why sentinel arithmetic can never displace a real time).  Mirrors
/// dag_longest_paths_ordered: same relaxation order, same strict-improve
/// tie-break, per-lane results bit-identical to the scalar sweep.
template <unsigned W>
void analyze_pert_lanes_impl(const compiled_graph& cg, const lane_domain& dom,
                             lane_workspace& ws, std::span<lane_pert> out)
{
    const signal_graph& sg = cg.source();
    const csr_graph& g = cg.structure();
    const std::vector<node_id>& order = *cg.acyclic_order();
    const std::size_t n = g.node_count();

    ws.t_cur.assign(n * W, lane_domain::unreached);
    ws.pred.assign(n * W, std::int64_t{invalid_arc});
    std::int64_t* TSG_RESTRICT t = ws.t_cur.data();
    std::int64_t* TSG_RESTRICT pred = ws.pred.data();
    const std::int64_t* TSG_RESTRICT delay = dom.delay();

    for (const node_id s : sg.initial_events()) {
        std::int64_t* slot = t + std::size_t{s} * W;
        for (unsigned l = 0; l < W; ++l) slot[l] = 0;
    }

    for (const node_id v : order) {
        const std::int64_t* TSG_RESTRICT tv = t + std::size_t{v} * W;
        std::int64_t reachable = tv[0];
        for (unsigned l = 1; l < W; ++l) reachable = std::max(reachable, tv[l]);
        if (reachable < 0) continue;
        for (const arc_id a : g.out_arcs(v)) {
            const std::int64_t* TSG_RESTRICT d = delay + std::size_t{a} * W;
            std::int64_t* dst = t + std::size_t{g.to(a)} * W;
            std::int64_t* pr = pred + std::size_t{g.to(a)} * W;
            const auto aw = static_cast<std::int64_t>(a);
            TSG_PRAGMA_SIMD
            for (unsigned l = 0; l < W; ++l) {
                const std::int64_t cand = tv[l] + d[l];
                const bool better = cand > dst[l];
                dst[l] = better ? cand : dst[l];
                pr[l] = better ? aw : pr[l];
            }
        }
    }

    for (unsigned l = 0; l < W; ++l) {
        if (dom.evicted(l)) continue;
        // Scalar argmax order: events ascending, first strict maximum wins.
        event_id sink = invalid_node;
        std::int64_t makespan = 0;
        for (event_id e = 0; e < sg.event_count(); ++e) {
            const std::int64_t v = t[std::size_t{e} * W + l];
            if (v < 0) continue; // unreached
            if (sink == invalid_node || v > makespan) {
                sink = e;
                makespan = v;
            }
        }
        require(sink != invalid_node, "analyze_pert: no event is reachable");

        out[l].makespan = dom.unscale(l, makespan);
        out[l].critical_arcs.clear();
        event_id cur = sink;
        while (pred[std::size_t{cur} * W + l] != std::int64_t{invalid_arc}) {
            const auto a = static_cast<arc_id>(pred[std::size_t{cur} * W + l]);
            out[l].critical_arcs.push_back(a);
            cur = g.from(a);
        }
        std::reverse(out[l].critical_arcs.begin(), out[l].critical_arcs.end());
    }
}

} // namespace

void analyze_pert_lanes(const compiled_graph& cg, const lane_domain& dom, lane_workspace& ws,
                        std::span<lane_pert> out)
{
    require(cg.source().repetitive_events().empty(),
            "analyze_pert_lanes: graph has cycles — use analyze_cycle_time_lanes");
    ensure(cg.acyclic_order().has_value(), "analyze_pert_lanes: missing topological order");
    require(dom.width() == out.size(), "analyze_pert_lanes: lane count mismatch");
    switch (dom.width()) {
    case 2: return analyze_pert_lanes_impl<2>(cg, dom, ws, out);
    case 4: return analyze_pert_lanes_impl<4>(cg, dom, ws, out);
    case 8: return analyze_pert_lanes_impl<8>(cg, dom, ws, out);
    case 16: return analyze_pert_lanes_impl<16>(cg, dom, ws, out);
    default:
        throw error("analyze_pert_lanes: unsupported lane width " +
                    std::to_string(dom.width()) + " (use 2, 4, 8 or 16)");
    }
}

} // namespace tsg
