#include "core/pert.h"

#include <algorithm>

#include "graph/longest_path.h"

namespace tsg {

pert_result analyze_pert(const signal_graph& sg)
{
    require(sg.finalized(), "analyze_pert: graph must be finalized");
    require(sg.repetitive_events().empty(),
            "analyze_pert: graph has cycles — use analyze_cycle_time");

    std::vector<rational> weights(sg.arc_count());
    for (arc_id a = 0; a < sg.arc_count(); ++a) weights[a] = sg.arc(a).delay;

    const longest_path_result lp =
        dag_longest_paths(sg.structure(), weights, sg.initial_events());

    pert_result r;
    r.time = lp.distance;
    r.occurs = lp.reached;

    event_id sink = invalid_node;
    for (event_id e = 0; e < sg.event_count(); ++e) {
        if (!lp.reached[e]) continue;
        if (sink == invalid_node || lp.distance[e] > r.makespan) {
            sink = e;
            r.makespan = lp.distance[e];
        }
    }
    require(sink != invalid_node, "analyze_pert: no event is reachable");

    event_id cur = sink;
    r.critical_path.push_back(cur);
    while (lp.pred[cur] != invalid_arc) {
        const arc_id a = lp.pred[cur];
        r.critical_arcs.push_back(a);
        cur = sg.structure().from(a);
        r.critical_path.push_back(cur);
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
    std::reverse(r.critical_arcs.begin(), r.critical_arcs.end());
    return r;
}

} // namespace tsg
