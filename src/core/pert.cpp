#include "core/pert.h"

#include <algorithm>

#include "core/compiled_graph.h"
#include "graph/longest_path.h"

namespace tsg {

pert_result analyze_pert(const compiled_graph& cg)
{
    const signal_graph& sg = cg.source();
    require(sg.repetitive_events().empty(),
            "analyze_pert: graph has cycles — use analyze_cycle_time");
    ensure(cg.acyclic_order().has_value(), "analyze_pert: missing topological order");

    pert_result r;
    std::vector<bool> reached;
    std::vector<arc_id> pred;

    // One longest-path sweep along the compiled topological order — in the
    // fixed-point domain when available (a single period always fits the
    // overflow budget), converting back to exact rationals at the boundary.
    if (cg.fixed_point()) {
        const auto lp = dag_longest_paths_ordered(cg.structure(), *cg.acyclic_order(),
                                                  cg.scaled_delay(), sg.initial_events());
        r.time.reserve(lp.distance.size());
        for (const std::int64_t t : lp.distance) r.time.push_back(cg.unscale(t));
        reached = lp.reached;
        pred = lp.pred;
    } else {
        auto lp = dag_longest_paths_ordered(cg.structure(), *cg.acyclic_order(), cg.delay(),
                                            sg.initial_events());
        r.time = std::move(lp.distance);
        reached = std::move(lp.reached);
        pred = std::move(lp.pred);
    }
    r.occurs = reached;

    event_id sink = invalid_node;
    for (event_id e = 0; e < sg.event_count(); ++e) {
        if (!reached[e]) continue;
        if (sink == invalid_node || r.time[e] > r.makespan) {
            sink = e;
            r.makespan = r.time[e];
        }
    }
    require(sink != invalid_node, "analyze_pert: no event is reachable");

    event_id cur = sink;
    r.critical_path.push_back(cur);
    while (pred[cur] != invalid_arc) {
        const arc_id a = pred[cur];
        r.critical_arcs.push_back(a);
        cur = cg.structure().from(a);
        r.critical_path.push_back(cur);
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
    std::reverse(r.critical_arcs.begin(), r.critical_arcs.end());
    return r;
}

pert_result analyze_pert(const signal_graph& sg)
{
    require(sg.finalized(), "analyze_pert: graph must be finalized");
    require(sg.repetitive_events().empty(),
            "analyze_pert: graph has cycles — use analyze_cycle_time");
    const compiled_graph cg(sg);
    return analyze_pert(cg);
}

} // namespace tsg
