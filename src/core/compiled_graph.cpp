#include "core/compiled_graph.h"

#include <array>
#include <bit>
#include <limits>
#include <numeric>

#include "graph/topo.h"

namespace tsg {

namespace {

/// The fixed-point scale is capped so that period-count * scale products
/// (delta denominators) and scaled Bellman-Ford potentials stay far from
/// the int64 edge.
constexpr std::int64_t max_scale = std::numeric_limits<std::int32_t>::max();

/// Ceiling on the per-sweep period budget; beyond this the unfolding would
/// be astronomically larger than any bound the analyses use (periods are
/// bounded by the border size, itself at most the event count).
constexpr std::uint32_t max_period_limit = 1u << 20;

} // namespace

compiled_graph::compiled_graph(const signal_graph& sg, compile_options options)
    : sg_(&sg), use_fixed_point_(options.use_fixed_point)
{
    require(sg.finalized(), "compiled_graph: graph must be finalized");

    auto state = std::make_shared<structural_state>();
    state->structure = csr_graph(sg.structure());

    delay_.reserve(sg.arc_count());
    for (arc_id a = 0; a < sg.arc_count(); ++a) delay_.push_back(sg.arc(a).delay);

    if (use_fixed_point_) compile_fixed_point();

    if (sg.repetitive_events().empty())
        state->acyclic_order = topological_order(state->structure);
    else
        compile_core(*state);

    shared_ = std::move(state);
    bind_core_delays();
}

compiled_graph compiled_graph::rebind(std::vector<rational> delay) const
{
    require(delay.size() == delay_.size(),
            "compiled_graph::rebind: delay count does not match the arc count");
    bool negative = false;
    for (const rational& d : delay) negative |= d.is_negative();
    require(!negative, "compiled_graph::rebind: negative delay");

    // Share the structural state (one pointer copy — no CSR walk, no
    // topological sort, no core rebuild); recompute only delay-derived
    // members.  The fixed-point domain is re-checked against the *new*
    // delays, so an overflowing scenario falls back to rational arithmetic
    // on its own, leaving the base snapshot and every sibling untouched.
    compiled_graph out(sg_);
    out.use_fixed_point_ = use_fixed_point_;
    out.shared_ = shared_;
    out.delay_ = std::move(delay);
    if (out.use_fixed_point_) out.compile_fixed_point();
    out.bind_core_delays();
    return out;
}

void compute_fixed_point_domain(const std::vector<rational>& delay, fixed_point_domain& out)
{
    out.scale = 0;
    out.period_limit = 0;
    out.negative = false;
    out.scaled.clear();

    // L = lcm of all delay denominators, abandoned past max_scale.  The
    // LCM is order-independent and its running value is monotone (every
    // prefix divides the final value), so the scan is split: a branchless
    // pass ORs small denominators into a presence mask — the hot loop on
    // the batch rebind path, free of data-dependent branches — and the
    // fold over distinct denominators (<= 64 of them, plus the rare large
    // ones) runs afterwards with the exact overflow guard of the scalar
    // rebind: the domain is disabled iff the final LCM would exceed
    // max_scale, identical to folding in arc order.
    std::uint64_t den_mask = 0;
    std::int64_t neg_mask = 0; // accumulates sign bits: any negative numerator
    std::int64_t large_lcm = 1; // fold of denominators > 64 (rare)
    for (const rational& d : delay) {
        neg_mask |= d.num();
        const auto den = static_cast<std::uint64_t>(d.den());
        if (den <= 64) [[likely]] {
            den_mask |= std::uint64_t{1} << (den - 1);
        } else {
            if (large_lcm % static_cast<std::int64_t>(den) != 0) {
                const std::int64_t g = std::gcd(large_lcm, static_cast<std::int64_t>(den));
                const int128 candidate = static_cast<int128>(large_lcm / g) * den;
                if (candidate > max_scale) return; // domain disabled (scale stays 0)
                large_lcm = static_cast<std::int64_t>(candidate);
            }
        }
    }
    out.negative = neg_mask < 0;
    std::int64_t scale = large_lcm;
    den_mask &= ~std::uint64_t{1}; // den == 1 never moves the LCM
    while (den_mask != 0) {
        const int bit = std::countr_zero(den_mask);
        den_mask &= den_mask - 1;
        const std::int64_t den = bit + 1;
        if (scale % den == 0) continue;
        const std::int64_t g = std::gcd(scale, den);
        const int128 candidate = static_cast<int128>(scale / g) * den;
        if (candidate > max_scale) return; // domain disabled (scale stays 0)
        scale = static_cast<std::int64_t>(candidate);
    }

    // Scaled delays d * L, all exact integers; track the total mass to
    // bound how many periods a sweep may accumulate without overflow.
    // This loop is the hot spot of the batch rebind path, so both 64-bit
    // divisions are amortized over distinct denominators: quotient[den] =
    // L / den, and threshold[den] = INT64_MAX / quotient — num <=
    // threshold is exactly "num * quotient fits int64", keeping the loop
    // free of both division and 128-bit arithmetic.  Small denominators
    // (overwhelmingly common) hit dense tables, larger ones a last-value
    // cache.
    std::array<std::int64_t, 65> quotient{};
    std::array<std::int64_t, 65> threshold{};
    quotient[1] = scale;
    threshold[1] = std::numeric_limits<std::int64_t>::max() / scale;
    out.scaled.resize(delay.size());
    std::int64_t* scaled = out.scaled.data();
    int128 total = 0;
    std::int64_t last_den = 1;
    std::int64_t last_quotient = scale;
    std::int64_t last_threshold = threshold[1];
    for (std::size_t i = 0; i < delay.size(); ++i) {
        const rational& d = delay[i];
        const std::int64_t den = d.den();
        std::int64_t q;
        std::int64_t lim;
        if (den <= 64) {
            q = quotient[den];
            if (q == 0) {
                q = quotient[den] = scale / den;
                threshold[den] = std::numeric_limits<std::int64_t>::max() / q;
            }
            lim = threshold[den];
        } else {
            if (den != last_den) {
                last_den = den;
                last_quotient = scale / den;
                last_threshold = std::numeric_limits<std::int64_t>::max() / last_quotient;
            }
            q = last_quotient;
            lim = last_threshold;
        }
        if (d.num() > lim) {
            out.scaled.clear();
            return;
        }
        const std::int64_t v = d.num() * q;
        scaled[i] = v;
        total += v; // delays are >= 0 (validated by signal_graph)
    }

    // Any longest path in a P-period sweep traverses each arc at most P + 1
    // times, so its scaled length is bounded by (P + 1) * total.  Keep that
    // product (and everything derived from it) well inside int64.
    const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;
    const int128 limit = total == 0 ? max_period_limit : budget / total;
    if (limit < 2) {
        out.scaled.clear();
        return; // too heavy even for single-period sweeps
    }
    out.period_limit =
        static_cast<std::uint32_t>(std::min<int128>(limit, max_period_limit));
    out.scale = scale;
}

void compiled_graph::compile_fixed_point()
{
    fixed_point_domain domain;
    compute_fixed_point_domain(delay_, domain);
    if (domain.scale == 0) return; // scale_ stays 0: rational fallback
    scale_ = domain.scale;
    period_limit_ = domain.period_limit;
    scaled_delay_ = std::move(domain.scaled);
}

void compiled_graph::compile_core(structural_state& state) const
{
    const signal_graph& sg = *sg_;
    core_structure core;

    core.event_node.assign(sg.event_count(), invalid_node);
    core.node_event.reserve(sg.repetitive_events().size());
    for (const event_id e : sg.repetitive_events()) {
        // repetitive_events() is in increasing event order, so core node
        // numbering matches signal_graph::repetitive_core() exactly.
        core.event_node[e] = core.graph.add_node();
        core.node_event.push_back(e);
    }

    std::size_t core_arcs = 0;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!sg.arc_live(a)) continue;
        const arc_info& arc = sg.arc(a);
        if (core.event_node[arc.from] != invalid_node &&
            core.event_node[arc.to] != invalid_node)
            ++core_arcs;
    }
    core.graph.reserve(core.node_event.size(), core_arcs);
    core.arc_original.reserve(core_arcs);
    core.token.reserve(core_arcs);

    std::vector<bool> token_free;
    token_free.reserve(core_arcs);
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!sg.arc_live(a)) continue;
        const arc_info& arc = sg.arc(a);
        const node_id u = core.event_node[arc.from];
        const node_id v = core.event_node[arc.to];
        if (u == invalid_node || v == invalid_node) continue;
        const arc_id core_arc = core.graph.add_arc(u, v);
        core.arc_original.push_back(a);
        core.token.push_back(arc.marked ? 1 : 0);
        if (arc.marked) core.token_arcs.push_back(core_arc);
        token_free.push_back(!arc.marked);
    }

    core.graph.freeze(); // the snapshot is shared across sweep threads

    const auto order = topological_order_filtered(core.graph, token_free);
    ensure(order.has_value(),
           "compiled_graph: token-free core subgraph has a cycle (not live)");
    core.topo = *order;
    core.identity = core.arc_original.size() == sg.arc_count();

    // Flat token-free out-adjacency in out_arcs order: the sweep's
    // in-period pass relaxes exactly these arcs, so prefiltering here
    // keeps the relaxation order (and thus every tie-break) identical
    // while removing the per-arc token test from the hot loop.
    const std::size_t nodes = core.graph.node_count();
    core.token_free_offset.assign(nodes + 1, 0);
    core.token_free_arcs.reserve(core_arcs - core.token_arcs.size());
    for (node_id v = 0; v < nodes; ++v) {
        for (const arc_id a : core.graph.out_arcs(v))
            if (core.token[a] == 0) core.token_free_arcs.push_back(a);
        core.token_free_offset[v + 1] =
            static_cast<std::uint32_t>(core.token_free_arcs.size());
    }

    state.core = std::move(core);
}

void compiled_graph::bind_core_delays()
{
    if (!shared_->core) return;
    const core_structure& core = *shared_->core;
    if (core.identity) return; // core() aliases the whole-graph arrays
    const std::size_t m = core.arc_original.size();

    core_delay_.resize(m);
    core_scaled_delay_.assign(fixed_point() ? m : 0, 0);
    for (arc_id a = 0; a < m; ++a) {
        const arc_id orig = core.arc_original[a];
        core_delay_[a] = delay_[orig];
        if (fixed_point()) core_scaled_delay_[a] = scaled_delay_[orig];
    }
}

} // namespace tsg
