// JSON surface of the incremental edit layer — the machine-readable
// pipeline behind `tsg_tool edit`: parse a JSON edit script into edit
// batches, drive an incremental_engine through them, and render the
// re-analysis (per-batch cycle times, the final analysis, and the engine's
// locality counters) as a JSON document.
//
// Kept in the library (rather than the tool binary) so the golden-file
// tests exercise the exact document the tool ships.
//
// Script format — one object per edit, grouped into atomic batches:
//
//   {"batches": [
//     [{"op": "set_delay", "arc": 0, "delay": "3/2"},
//      {"op": "add_arc", "from": "a", "to": "b", "delay": "5",
//       "marked": true, "disengageable": false}],
//     [{"op": "remove_arc", "arc": 2}],
//     [{"op": "retarget", "arc": 1, "from": "b", "to": "c"}],
//     [{"op": "set_marking", "arc": 3, "marked": true}]
//   ]}
//
// or, for a single atomic batch, {"edits": [...]} with the same edit
// objects.  Events are referenced by name (string) or id (number); arcs
// by id — added arcs take the next free ids in script order, so later
// edits can reference them.  Delays are exact: a "num/den" string or an
// integer number.
#ifndef TSG_CORE_EDIT_JSON_H
#define TSG_CORE_EDIT_JSON_H

#include <string>
#include <vector>

#include "core/graph_edit.h"
#include "core/incremental.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

/// A parsed edit script: a sequence of atomic batches with display labels
/// ("batch N" unless the script names them).
struct edit_script {
    std::vector<edit_batch> batches;
    std::vector<std::string> labels;
};

/// Parses the JSON text of an edit script.  Event names are resolved
/// against `sg`; throws tsg::error on malformed JSON, unknown ops or
/// events, or non-rational delays.
[[nodiscard]] edit_script parse_edit_script(const std::string& text,
                                            const signal_graph& sg);

/// Per-batch application record of run_edit_script.
struct edit_batch_status {
    bool applied = false;
    std::string message;   ///< rejection reason when !applied
    bool cyclic = false;   ///< graph mode after this batch
    rational cycle_time;   ///< lambda (cyclic) or PERT makespan (acyclic)
};

/// Applies every batch in order to `eng` (rejected batches roll back and
/// the run continues) and re-analyzes after each one.  Cyclic re-analyses
/// go through the warm-started Howard accelerator (analyze_warm()), so the
/// engine's warm counters reflect the script's delay-only batches.
[[nodiscard]] std::vector<edit_batch_status> run_edit_script(incremental_engine& eng,
                                                             const edit_script& script);

/// Renders the run as a JSON document: the model header, the nominal
/// (pre-script) cycle time, per-batch status, the final analysis on the
/// edited structure (a cold solve — witness included and bit-identical to
/// a fresh compile), and the incremental engine's counters.
[[nodiscard]] std::string edit_run_json(incremental_engine& eng, const edit_script& script,
                                        const rational& nominal, bool nominal_cyclic,
                                        const std::vector<edit_batch_status>& statuses);

} // namespace tsg

#endif // TSG_CORE_EDIT_JSON_H
