// Timing simulation of an unfolded Timed Signal Graph (Section IV.A).
//
// The occurrence time of an instantiation f is
//
//     t(f) = 0                                  if f in I_u
//     t(f) = max { t(e) + delta | e -delta-> f} otherwise
//
// i.e. a longest-path sweep over the unfolding DAG seeded at the initial
// instantiations.  For acyclic graphs this degenerates to PERT analysis.
#ifndef TSG_CORE_TIMING_SIMULATION_H
#define TSG_CORE_TIMING_SIMULATION_H

#include <optional>
#include <vector>

#include "sg/unfolding.h"
#include "util/rational.h"

namespace tsg {

/// Result of a timing simulation over an unfolding.  Indices are unfolding
/// instance ids.
struct timing_simulation_result {
    std::vector<rational> time;  ///< t(f); valid where occurs[f]
    std::vector<bool> occurs;    ///< instantiation reachable from I_u
    std::vector<arc_id> cause;   ///< arg-max unfolding in-arc, invalid_arc at seeds

    /// t(e_period); nullopt when the instantiation does not exist or never
    /// becomes enabled.
    [[nodiscard]] std::optional<rational> at(const unfolding& unf, event_id e,
                                             std::uint32_t period) const;

    /// Average occurrence distance sigma(e_i) = t(e_i) / (i + 1)
    /// (Section IV.C, first form).
    [[nodiscard]] std::optional<rational> average_distance(const unfolding& unf, event_id e,
                                                           std::uint32_t period) const;
};

/// Runs the timing simulation over `unf`.  O(V + E) in the unfolding size.
[[nodiscard]] timing_simulation_result simulate_timing(const unfolding& unf);

class compiled_graph;

/// Same simulation, borrowing the compiled snapshot's fixed-point delay
/// domain: the unfolding arcs inherit the scaled int64 delays of their
/// original arcs and the longest-path sweep runs on integer additions,
/// converting back to exact rationals at the boundary.  `cg` must be
/// compiled from `unf.graph()`.
[[nodiscard]] timing_simulation_result simulate_timing(const unfolding& unf,
                                                       const compiled_graph& cg);

/// The chain of instantiations that determined t(target): walks `cause`
/// links back to a seed.  Returned in causal (earliest-first) order.
[[nodiscard]] std::vector<node_id> critical_chain(const unfolding& unf,
                                                  const timing_simulation_result& sim,
                                                  node_id target);

} // namespace tsg

#endif // TSG_CORE_TIMING_SIMULATION_H
