// Slack and criticality analysis on top of the cycle time.
//
// Once lambda is known, give every arc the *reduced weight*
//
//     w(a) = delay(a) - lambda * tokens(a)
//
// No cycle has positive reduced weight (lambda is the maximum ratio), so
// longest-path potentials v exist on the repetitive core.  The reduced
// slack of an arc,
//
//     slack(a) = v(head) - v(tail) - w(a)  >=  0,
//
// measures how much extra delay the arc absorbs before it joins a critical
// cycle: arcs with slack 0 span the *critical subgraph*, and the events on
// its non-trivial strongly connected components are exactly the events on
// critical cycles.  The potentials double as a *steady periodic schedule*:
// starting event e at time v(e) + k*lambda in period k satisfies every
// causality constraint with period lambda — the fastest static schedule.
//
// This is the natural "static timing analysis" companion the paper's
// Section VIII motivates: critical cycles name the bottleneck, slacks name
// the budget everywhere else.
#ifndef TSG_CORE_SLACK_H
#define TSG_CORE_SLACK_H

#include <span>
#include <vector>

#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct slack_result {
    rational cycle_time;

    /// Per original arc: reduced slack (valid where in_core[a]).  Arcs
    /// outside the repetitive core (start-up arcs) have no steady-state
    /// slack and are flagged out-of-core.
    std::vector<rational> slack;
    std::vector<bool> in_core;

    /// Per original arc / event: lies on some critical cycle.
    std::vector<bool> arc_critical;
    std::vector<bool> event_critical;

    /// Steady schedule potentials per event (valid for repetitive events):
    /// occurrence k of event e may start at potential[e] + k * cycle_time.
    std::vector<rational> potential;

    /// Smallest positive slack — how much the most loaded non-critical arc
    /// can absorb before a new cycle becomes critical (0 when every core
    /// arc is critical).
    rational criticality_margin;
};

class compiled_graph;

/// Computes slacks, the critical subgraph and the steady schedule.
/// Requires a finalized graph with a repetitive core.
[[nodiscard]] slack_result analyze_slack(const signal_graph& sg);

/// Same analysis on a pre-compiled snapshot: reuses the compiled core and
/// runs the reduced-weight Bellman-Ford in the fixed-point domain when the
/// scaled weights fit the overflow budget.
[[nodiscard]] slack_result analyze_slack(const compiled_graph& cg);

/// Slack analysis with a cycle time the caller already knows (e.g. from an
/// analyze_cycle_time run on the same snapshot) — skips the embedded
/// cycle-time computation.  `cycle_time` must be the exact cycle time of
/// the snapshot's delay assignment; a smaller value leaves positive
/// reduced cycles and throws, a larger one silently inflates every slack.
[[nodiscard]] slack_result analyze_slack(const compiled_graph& cg, const rational& cycle_time);

// --- lane-batched analysis (core/lane_domain.h) ------------------------------

class lane_domain;
struct lane_workspace;

/// Slack analysis of every lane in one structure-of-arrays Bellman-Ford:
/// the reduced-weight relaxations update all lanes of an arc per pass, and
/// passes continue until every lane converges (extra passes on an
/// already-converged lane relax nothing, so results match the scalar
/// early-exit bit for bit).  Per-lane overflow checks on the reduced
/// weights (and lanes `dom` evicted) fall back to the exact rational
/// Bellman-Ford for that lane alone, using `lane_delay[l]`.
///
/// `cycle_time[l]` must be lane l's exact cycle time.  out[l] receives the
/// same slack_result analyze_slack would produce for lane l's scalar
/// rebind.
void analyze_slack_lanes(const compiled_graph& cg, const lane_domain& dom,
                         std::span<const std::vector<rational>* const> lane_delay,
                         std::span<const rational> cycle_time, lane_workspace& ws,
                         std::span<slack_result> out);

} // namespace tsg

#endif // TSG_CORE_SLACK_H
