// The paper's cycle-time algorithm (Sections VI-VII).
//
// Skeleton (Section VII):
//   1. identify the border events (repetitive events with a marked in-arc —
//      a cut set of all cycles in a live graph);
//   2. from each of the b border events run an event-initiated timing
//      simulation covering b periods of the unfolding;
//   3. after each full period collect the average occurrence distance
//      delta_{e0}(e_i) = t_{e0}(e_i) / i;
//   4. the maximum of the collected values is the cycle time lambda
//      (Propositions 6-7);
//   5. backtracking the longest-path predecessors of the maximising run
//      yields a critical cycle (Proposition 1).
//
// The simulations never leave the repetitive core (no repetitive event is
// preceded by a disengageable arc), so the implementation streams them
// period by period over the core instead of materializing the unfolding:
// one period costs O(m), one run O(b*m), the whole analysis O(b^2*m).
//
// The engine runs on a compiled_graph snapshot: CSR adjacency, a
// precomputed token-free topological order, and (when available) the
// fixed-point delay domain, so the inner relaxations are int64 additions.
// The b border runs are independent and execute on a thread pool sized by
// analysis_options::max_threads; the reduction to lambda is serial and the
// results are bit-identical to a single-threaded run.
#ifndef TSG_CORE_CYCLE_TIME_H
#define TSG_CORE_CYCLE_TIME_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/compiled_graph.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

/// Per-border-event record of one event-initiated timing simulation.
struct border_run {
    event_id origin = invalid_node;

    /// delta_{e0}(e_i) for i = 1..periods (index 0 holds i = 1).  nullopt
    /// when instantiation e_i is not reached from e_0 (its cycles need more
    /// tokens than i).
    std::vector<std::optional<rational>> deltas;

    std::optional<rational> best_delta; ///< max over deltas
    std::uint32_t best_period = 0;      ///< arg-max i (0 when none)

    /// True when this border event lies on a critical cycle: its run reached
    /// the global cycle time (Propositions 7 and 8 make this criterion
    /// exact).
    bool critical = false;

    /// Full simulation table t_{e0}(f_i), present only when
    /// analysis_options::record_tables is set: times[i][f] is the occurrence
    /// time of instantiation f_i, nullopt when unreached.  Indexed by
    /// original event id.
    std::vector<std::vector<std::optional<rational>>> times;
};

/// Which engine computes lambda and the critical cycle.
enum class cycle_time_solver : std::uint8_t {
    /// Resolve at call time: an explicit TSG_SOLVER environment value
    /// ("border", "howard" or "auto") wins, otherwise a heuristic picks
    /// Howard for large cores / big border sets and the paper's border-run
    /// sweep everywhere else.
    auto_select,
    /// The paper's event-initiated border simulations (Sections VI-VII);
    /// the only solver that produces border_run data.
    border_sweep,
    /// Howard's policy iteration on the compiled ratio problem, through
    /// the SCC condensation driver (ratio/condensation.h).  Same exact
    /// lambda and a valid critical cycle, no per-run simulation data.
    howard,
};

/// Resolves auto_select as described above.  Exposed so batch layers (the
/// scenario engine) can resolve once per batch instead of per scenario.
[[nodiscard]] cycle_time_solver resolve_cycle_time_solver(cycle_time_solver requested,
                                                          std::size_t border_count,
                                                          std::size_t core_arc_count);

struct analysis_options {
    /// Number of unfolding periods per simulation; 0 means "use the size of
    /// the cut set", the paper's bound (Proposition 6).
    std::uint32_t periods = 0;

    /// Keep the full t_{e0}(f_i) tables on every run (costly on big graphs;
    /// used by the paper-table reproductions).
    bool record_tables = false;

    /// Simulation origins.  Empty means "the border set", the paper's
    /// choice.  Any other *cut set* works and shrinks the analysis when
    /// smaller — the paper leaves minimum cut sets as an optimization; see
    /// sg/cut_set.h.  Validated: must be repetitive events hitting every
    /// cycle.
    std::vector<event_id> origins;

    /// Thread budget for the independent border runs: 0 = one thread per
    /// hardware thread, 1 = serial, n = at most n threads.  Results are
    /// bit-identical for every setting.
    unsigned max_threads = 0;

    /// Lambda engine.  periods/origins/record_tables are simulation knobs:
    /// setting any of them forces the border sweep under auto_select and is
    /// an error combined with an explicit howard request.  Under the howard
    /// solver the result carries no border_run data (runs is empty,
    /// periods_used is 0); cycle time and critical cycle are exact either
    /// way.
    cycle_time_solver solver = cycle_time_solver::auto_select;
};

struct cycle_time_result {
    /// The cycle time lambda: maximum over simple cycles of
    /// length(C) / occurrence-period(C).
    rational cycle_time;

    /// One critical (simple) cycle: events in causal order, starting at a
    /// border event; critical_cycle_arcs[k] is the original arc from
    /// critical_cycle_events[k] to critical_cycle_events[k+1 mod size].
    std::vector<event_id> critical_cycle_events;
    std::vector<arc_id> critical_cycle_arcs;

    /// Occurrence period epsilon of the reported critical cycle (its token
    /// count); cycle_time * epsilon == total delay of the cycle.
    std::uint32_t critical_occurrence_period = 0;

    /// One record per border event, in border_events() order.  Empty when
    /// the howard solver produced the result (no simulation ran).
    std::vector<border_run> runs;

    std::size_t border_count = 0;   ///< b
    std::uint32_t periods_used = 0; ///< simulation horizon actually used
                                    ///< (0 under the howard solver)

    /// Border events whose runs achieved lambda (subset lying on critical
    /// cycles).
    [[nodiscard]] std::vector<event_id> critical_border_events() const;
};

/// Runs the full analysis.  Requirements (validated by finalize()): the
/// graph has a strongly connected live repetitive core.  Throws tsg::error
/// when the graph has no repetitive events (use analyze_pert instead).
[[nodiscard]] cycle_time_result analyze_cycle_time(const signal_graph& sg,
                                                   const analysis_options& options = {});

/// Same analysis on a pre-compiled snapshot — the form to use when several
/// analyses (cycle time, slack, transient, ...) share one graph: compile
/// once, analyze many times.
[[nodiscard]] cycle_time_result analyze_cycle_time(const compiled_graph& cg,
                                                   const analysis_options& options = {});

// --- lane-batched analysis (core/lane_domain.h) ------------------------------

class lane_domain;
struct lane_workspace;

/// One lane's result in a lane-batched border-sweep analysis: the cycle
/// time and the witness cycle (original arc ids, causal order) — the
/// fields a scenario outcome needs.  No border_run data is kept.
struct lane_cycle_time {
    rational cycle_time;
    std::vector<arc_id> critical_cycle_arcs;
};

/// Border-sweep cycle-time analysis of every non-evicted lane in `dom`:
/// one pass over the CSR core per period updates all lanes of an arc
/// (structure-of-arrays inner loops, see core/lane_domain.h).  Values,
/// tie-breaks and the reported witness are bit-identical to running
/// analyze_cycle_time on each lane's scalar rebind with the border_sweep
/// solver (the witness peel runs in the lane's fixed-point domain with
/// identical decisions — core/critical_cycle.h).  `periods` must match
/// the horizon `dom` was rebound for.  Evicted lanes' output slots are
/// left untouched.
///
/// With `witness` off, only the cycle times are produced (no predecessor
/// capture, no backtrack/peel — critical_cycle_arcs stays empty); the
/// Monte-Carlo statistics mode of the scenario engine.
void analyze_cycle_time_lanes(const compiled_graph& cg, const lane_domain& dom,
                              std::uint32_t periods, lane_workspace& ws,
                              std::span<lane_cycle_time> out, bool witness = true);

/// The series t_{e0}(e_i) and delta_{e0}(e_i) for i = 1..periods from an
/// arbitrary repetitive event — the data behind Figure 4 and the
/// "asymptote from below" behaviour of off-critical events (Prop. 8).
struct distance_series {
    event_id origin = invalid_node;
    std::vector<std::optional<rational>> t;     ///< t_{e0}(e_i), i = 1..periods
    std::vector<std::optional<rational>> delta; ///< t / i
};
[[nodiscard]] distance_series initiated_distance_series(const signal_graph& sg,
                                                        event_id origin,
                                                        std::uint32_t periods);
[[nodiscard]] distance_series initiated_distance_series(const compiled_graph& cg,
                                                        event_id origin,
                                                        std::uint32_t periods);

/// Upper bound on the occurrence period of any simple cycle (Proposition 6):
/// the size of a cut set.  The border set is used, as in the paper's
/// implementation (finding a minimum cut set is a separate optimization).
[[nodiscard]] std::size_t occurrence_period_bound(const signal_graph& sg);

} // namespace tsg

#endif // TSG_CORE_CYCLE_TIME_H
