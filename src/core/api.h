// The unified analysis API: one versioned request/response surface for
// every machine-readable entry point.
//
// Historically the library grew three divergent ad-hoc surfaces — the
// scenario-batch JSON renderers, the edit-script JSON pipeline and the
// tsg_tool per-subcommand flag parsing, each with its own option struct
// and its own error shape.  This header replaces all three with a single
// contract:
//
//   analysis_request  = api_version + kind + design reference + options
//                       (+ the edit script, for kind::edit)
//   analysis_response = id echo + payload document | structured error
//                       + execution accounting (timing, scenario count,
//                         design version, coalescing flag)
//
// One JSON codec parses and serializes both.  Parsing is strict: an
// unknown field, an unknown kind, or an api_version this build does not
// speak fails with a structured error (api_error) instead of being
// silently accepted — the versioning contract a long-lived daemon needs.
//
// `tsg_tool` subcommands and the analysis service (core/service.h) are
// both thin clients: they build an analysis_request and call the
// executors below, so the golden-pinned payload documents are rendered by
// exactly one code path.
//
// Option defaults live in request_options — the one place they are
// documented; the per-entry-point copies (scenario_batch_options,
// monte_carlo_options, stats_options, analysis_options) are derived from
// it via the to_*() converters.
#ifndef TSG_CORE_API_H
#define TSG_CORE_API_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph_edit.h"
#include "core/incremental.h"
#include "core/optimize.h"
#include "core/scenario.h"
#include "core/stats.h"
#include "sg/signal_graph.h"
#include "util/json.h"
#include "util/rational.h"

namespace tsg {

/// The API generation this build speaks.  Requests carrying any other
/// value are rejected with code "unsupported_version".
inline constexpr int tsg_api_version = 1;

/// What the client is asking for.
enum class request_kind : std::uint8_t {
    analyze,     ///< one cycle-time / makespan analysis at nominal delays
    sweep,       ///< per-arc +/- corner batch (corner_sweep_scenarios)
    montecarlo,  ///< Monte Carlo delay batch; adaptive streams via core/stats
    criticality, ///< per-arc / per-gate criticality probabilities
    optimize,    ///< criticality-driven budget allocation (core/optimize.h)
    report_topk, ///< ranked top-K critical-cycle report (core/optimize.h)
    edit,        ///< JSON edit script through the incremental engine
    stats,       ///< service-side serving metrics (core/service.h)
    health,      ///< readiness / draining probe (core/service.h)
};

[[nodiscard]] const char* request_kind_name(request_kind kind);
[[nodiscard]] request_kind parse_request_kind(const std::string& name);

/// Which design a request targets.  Exactly one source:
///   * id   — a design registered with the analysis service (version 0
///            means "latest"; any other value pins a snapshot);
///   * path — a .tsg model file loaded by the executing side;
///   * text — an inline .tsg document.
/// All empty means the built-in demo oscillator (the tool's default).
struct design_ref {
    std::string id;
    std::uint64_t version = 0;
    std::string path;
    std::string text;

    [[nodiscard]] bool operator==(const design_ref&) const = default;
};

/// Every analysis knob, with its default, in one place.  The per-layer
/// option structs are derived views (see the to_*() converters).
struct request_options {
    // --- engine ------------------------------------------------------------
    /// Lambda engine (core/cycle_time.h). auto_select resolves per batch.
    cycle_time_solver solver = cycle_time_solver::auto_select;
    /// Thread budget (0 = hardware concurrency, 1 = serial).
    unsigned max_threads = 0;
    /// SoA lane count: 0 = default (8), 1 = scalar, else 2/4/8/16.
    unsigned lane_width = 0;
    /// Sparse delta rebinds for single-arc batches.
    scenario_batch_options::delta_mode delta =
        scenario_batch_options::delta_mode::auto_detect;
    /// Slack layer per scenario (full critical sets + margins).
    bool with_slack = true;
    /// Witness-cycle extraction per scenario.
    bool with_witness = true;

    // --- sweep -------------------------------------------------------------
    /// Relative corner: each swept arc gets delay * (1 -/+ factor).
    rational factor = rational(1, 10);

    // --- monte carlo -------------------------------------------------------
    /// Fixed-run sample count; for adaptive runs, the sample cap.
    std::size_t samples = 100;
    std::uint64_t seed = 1;
    /// Per-arc range: nominal * (1 -/+ spread), clamped at 0.
    rational spread = rational(1, 10);
    /// Exact sampling grid resolution (monte_carlo_options::resolution).
    std::int64_t resolution = 16;

    // --- statistics (montecarlo --adaptive, criticality) -------------------
    /// Stream rounds through core/stats until the CI target is reached.
    bool adaptive = false;
    /// CI half-width target of the adaptive run.
    double epsilon = 0.05;
    /// Negative: the adaptive target is the lambda mean; in [0, 1]: that
    /// quantile's CI.
    double quantile = -1.0;
    /// Samples per streaming round (0 = the stats layer's default, 256).
    std::size_t round_samples = 0;
    /// Samples evaluated before convergence may stop an adaptive run.
    std::size_t min_samples = 32;
    /// Track per-arc criticality probabilities (kind::criticality sets it).
    bool criticality = false;
    /// Fold arc criticality into per-gate groups (implies criticality).
    bool group_by_signal = false;

    // --- optimize / report_topk --------------------------------------------
    /// Deterministic (exact nominal search / exact ratio ranking) or
    /// statistical (Monte Carlo yield / witness probability) mode.
    optimize_mode mode = optimize_mode::deterministic;
    /// optimize: total delay reduction to distribute (must be > 0).
    rational budget = rational(0);
    /// optimize: allocation quantum (non-positive picks budget / 8).
    rational step = rational(0);
    /// optimize: cycle-time target; statistical mode's yield threshold
    /// P(lambda <= target) — required > 0 there.
    rational target = rational(0);
    /// optimize: per-arc delay floor (no delay drops below it).
    rational min_delay = rational(0);
    /// report_topk: cycles requested (must be >= 1).
    std::size_t k = 3;

    // --- serving -----------------------------------------------------------
    /// Per-request deadline, relative to admission, in milliseconds.  0
    /// means none.  The analysis service sheds work whose deadline has
    /// passed — before execution from the queue, and between adaptive
    /// Monte Carlo rounds — with the structured "deadline_exceeded" code.
    std::uint64_t deadline_ms = 0;

    [[nodiscard]] bool operator==(const request_options&) const = default;

    // --- derived per-layer views -------------------------------------------
    [[nodiscard]] scenario_batch_options to_batch_options() const;
    [[nodiscard]] corner_sweep_options to_corner_sweep_options() const;
    [[nodiscard]] monte_carlo_options to_monte_carlo_options() const;
    /// `kind` selects the statistics surface: criticality enables the
    /// witness tallies and per-gate grouping.  Adaptive runs cap at
    /// `samples` (the tool contract: --samples caps the adaptive run).
    [[nodiscard]] stats_options to_stats_options(request_kind kind) const;
    [[nodiscard]] analysis_options to_analysis_options() const;
    /// optimize requests: mode, budget, quantum, target and floor plus the
    /// engine knobs; statistical runs inherit the Monte Carlo model
    /// (seed/spread/resolution) and adaptive-CI controls (epsilon,
    /// samples cap, min_samples, round_samples).
    [[nodiscard]] optimize_options to_optimize_options() const;
    /// report_topk requests: k, mode, sample count and engine knobs.
    [[nodiscard]] topk_options to_topk_options() const;
};

/// One request on the wire.
struct analysis_request {
    int api_version = tsg_api_version;
    std::string id; ///< client correlation token, echoed verbatim
    request_kind kind = request_kind::analyze;
    design_ref design;
    request_options options;
    json_value edits; ///< kind::edit only: the edit-script document

    [[nodiscard]] bool operator==(const analysis_request&) const = default;
};

/// The structured error every failing path reports — codes are stable API:
///   bad_request          malformed document, unknown field/kind/op
///   unsupported_version  api_version this build does not speak
///   unknown_design       design id not registered
///   unknown_version      design version evicted or never existed
///   invalid_model        the model/options reject the analysis
///   invalid_request      well-formed but nonsensical parameters (a
///                        non-positive optimize budget, report_topk k = 0,
///                        a missing statistical target, an acyclic graph)
///   unsupported          a valid request this build cannot serve (e.g.
///                        statistical mode without a delay model)
///   overloaded           admission control shed the request (queue full /
///                        connection limit); retry later — nothing ran
///   rate_limited         a per-design quota or per-connection rate limit
///                        shed the request; retry after retry_after_ms
///   draining             the daemon is shutting down gracefully; retry
///                        against another instance (or after a restart)
///   deadline_exceeded    the request's deadline_ms passed before (or
///                        while) the work ran; the result was discarded
///   internal             anything else
struct api_error {
    std::string code;
    std::string message;
    /// Backoff hint in milliseconds (rate_limited sheds).  0 = no hint;
    /// serialized on the wire only when nonzero.
    std::uint64_t retry_after_ms = 0;
};

/// One response on the wire.  `payload` holds the analysis document
/// (exactly the bytes the tool prints) when ok; `error` otherwise.
struct analysis_response {
    std::string id;
    bool ok = false;
    std::string payload;
    api_error error;

    double elapsed_ms = 0.0;           ///< submit-to-completion wall time
    std::uint64_t design_version = 0;  ///< snapshot version that served it
    std::size_t scenarios = 0;         ///< scenarios this request evaluated
    bool coalesced = false;            ///< served from a merged lane batch
};

// --- codec -------------------------------------------------------------------

/// Parses one request document.  Strict: unknown fields, unknown kinds,
/// and non-current api_version values throw tsg::error whose message
/// carries the api_error code prefix ("bad_request: ...",
/// "unsupported_version: ...").
[[nodiscard]] analysis_request parse_analysis_request(const json_value& doc);
[[nodiscard]] analysis_request parse_analysis_request(const std::string& text);

/// Serializes a request in full canonical form (every option spelled
/// out), one line.  parse(serialize(r)) == r for every valid request.
[[nodiscard]] json_value analysis_request_json(const analysis_request& request);

/// Serializes a response as one NDJSON line.  The payload document is
/// embedded as a JSON value (re-parsed and compacted, raw number
/// spellings preserved).
[[nodiscard]] std::string analysis_response_json(const analysis_response& response);

/// Renders a bare structured error document — the normalized error shape
/// shared by the tool, the codec and the service:
///   {"error": {"code": ..., "message": ...}}
[[nodiscard]] std::string api_error_json(const api_error& error);

/// Splits a thrown diagnostic back into (code, message): messages
/// prefixed with a known code keep it, anything else maps to `fallback`.
[[nodiscard]] api_error classify_error(const std::string& diagnostic,
                                       const std::string& fallback = "invalid_model");

// --- payload renderers -------------------------------------------------------
// The exact documents `tsg_tool` ships, golden-pinned byte for byte.

/// Renders one evaluated batch as a JSON document.  `command` and
/// `solver` are echoed verbatim (the tool passes its subcommand and the
/// requested --solver value).
[[nodiscard]] std::string scenario_batch_json(const std::string& command,
                                              const std::string& solver,
                                              const signal_graph& sg, const rational& nominal,
                                              const std::vector<scenario>& scenarios,
                                              const scenario_batch_result& batch);

/// Renders a statistics run (core/stats.h) as a JSON document with a
/// `statistics` block: sample counts and convergence, mean/variance with
/// the confidence interval, exact min/max, quantile estimates
/// (p50/p95/p99), the histogram, and — when the run tracked them — per-arc
/// and per-gate criticality probabilities with normal-approximation CIs.
[[nodiscard]] std::string statistics_json(const std::string& command,
                                          const std::string& solver, const signal_graph& sg,
                                          const stats_run_result& run,
                                          const stats_options& options);

/// Renders an optimization plan (core/optimize.h) as a JSON document: the
/// model header, the budget accounting, the per-arc allocations, the
/// equivalent set_delay edit batch, and — in statistical mode — the yield
/// trajectory with its commit trace.
[[nodiscard]] std::string optimize_json(const std::string& command,
                                        const std::string& solver, const signal_graph& sg,
                                        const optimize_options& options,
                                        const optimize_result& result);

/// Renders a top-K critical-cycle report (core/optimize.h) as a JSON
/// document: ranked cycles with exact ratio, slack, tokens, events and
/// per-arc delay contributions, plus witness tallies in statistical mode.
[[nodiscard]] std::string topk_json(const std::string& command, const std::string& solver,
                                    const signal_graph& sg, const topk_options& options,
                                    const topk_result& result);

// --- edit scripts ------------------------------------------------------------
//
// Script format — one object per edit, grouped into atomic batches:
//
//   {"batches": [
//     [{"op": "set_delay", "arc": 0, "delay": "3/2"},
//      {"op": "add_arc", "from": "a", "to": "b", "delay": "5",
//       "marked": true, "disengageable": false}],
//     [{"op": "remove_arc", "arc": 2}]
//   ]}
//
// or, for a single atomic batch, {"edits": [...]} with the same edit
// objects.  Events are referenced by name (string) or id (number); arcs
// by id — added arcs take the next free ids in script order, so later
// edits can reference them.  Delays are exact: a "num/den" string or an
// integer number.

/// A parsed edit script: a sequence of atomic batches with display labels
/// ("batch N" unless the script names them).
struct edit_script {
    std::vector<edit_batch> batches;
    std::vector<std::string> labels;
};

/// Parses an edit script from its JSON text or pre-parsed document.
/// Event names are resolved against `sg`; throws tsg::error on malformed
/// JSON, unknown ops or events, or non-rational delays.
[[nodiscard]] edit_script parse_edit_script(const std::string& text,
                                            const signal_graph& sg);
[[nodiscard]] edit_script parse_edit_script(const json_value& doc,
                                            const signal_graph& sg);

/// Per-batch application record of run_edit_script.
struct edit_batch_status {
    bool applied = false;
    std::string message;   ///< rejection reason when !applied
    bool cyclic = false;   ///< graph mode after this batch
    rational cycle_time;   ///< lambda (cyclic) or PERT makespan (acyclic)
};

/// Applies every batch in order to `eng` (rejected batches roll back and
/// the run continues) and re-analyzes after each one.  Cyclic re-analyses
/// go through the warm-started Howard accelerator (analyze_warm()), so the
/// engine's warm counters reflect the script's delay-only batches.
[[nodiscard]] std::vector<edit_batch_status> run_edit_script(incremental_engine& eng,
                                                             const edit_script& script);

/// Renders the run as a JSON document: the model header, the nominal
/// (pre-script) cycle time, per-batch status (rejections carry the
/// structured {"code", "message"} error object), the final analysis on
/// the edited structure, and the incremental engine's counters.
[[nodiscard]] std::string edit_run_json(incremental_engine& eng, const edit_script& script,
                                        const rational& nominal, bool nominal_cyclic,
                                        const std::vector<edit_batch_status>& statuses);

// --- executors ---------------------------------------------------------------

/// Scenario generation for the batch kinds (sweep, non-adaptive
/// montecarlo), exactly as the tool generates them.  The building block
/// the service coalescer uses to merge requests into one engine batch.
[[nodiscard]] std::vector<scenario> request_scenarios(const analysis_request& request,
                                                      const signal_graph& sg);

/// Renders the payload of a batch-kind request from its (possibly
/// sliced-back) batch result — the demux half of the coalescer.
[[nodiscard]] std::string batch_payload_json(const analysis_request& request,
                                             const signal_graph& sg, const rational& nominal,
                                             const std::vector<scenario>& scenarios,
                                             const scenario_batch_result& batch);

/// Executes an analyze/sweep/montecarlo/criticality/optimize/report_topk
/// request against a compiled design and returns the payload document.  Mirrors the tool's
/// pipelines exactly (nominal evaluation, statistics routing, option
/// mapping), so payloads are byte-identical to the pre-API subcommands.
/// Throws tsg::error on invalid requests or models.  `deadline` (if not
/// the epoch default) bounds adaptive Monte Carlo streaming: the run
/// checks it between rounds and throws a deadline_exceeded error once it
/// passes.  Deadlines never change the payload of work that completes.
[[nodiscard]] std::string execute_analysis_payload(
    const analysis_request& request, const signal_graph& sg,
    const compiled_graph& compiled, const scenario_engine& engine,
    std::chrono::steady_clock::time_point deadline = {});

/// Executes an edit request: drives `engine` through the request's script
/// and returns the edit-run document.  The engine is left on the edited
/// structure (the service commits it as a new design version).
[[nodiscard]] std::string execute_edit_payload(const analysis_request& request,
                                               incremental_engine& engine);

/// One-shot convenience: compiles `sg`, executes the request (any kind
/// except stats) and wraps payload or structured error in a response.
/// Never throws — failures come back as api_error codes.
[[nodiscard]] analysis_response execute_request(const analysis_request& request,
                                                const signal_graph& sg);

} // namespace tsg

#endif // TSG_CORE_API_H
