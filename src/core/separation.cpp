#include "core/separation.h"

#include "core/compiled_graph.h"
#include "core/timing_simulation.h"
#include "core/transient.h"
#include "sg/unfolding.h"

namespace tsg {

separation_result steady_separations(const compiled_graph& cg, event_id from, event_id to,
                                     std::uint32_t max_periods)
{
    const signal_graph& sg = cg.source();
    require(from < sg.event_count() && to < sg.event_count(),
            "steady_separations: bad event id");
    require(sg.is_repetitive(from) && sg.is_repetitive(to),
            "steady_separations: both events must be repetitive");

    const transient_result transient = analyze_transient(cg, max_periods);

    separation_result out;
    out.cycle_time = transient.cycle_time;
    out.pattern_period = transient.pattern_period;

    const unfolding unf(sg, transient.horizon);
    const timing_simulation_result sim = simulate_timing(unf, cg);

    const std::uint32_t start = transient.settle_period;
    ensure(start + transient.pattern_period <= transient.horizon,
           "steady_separations: settled window exceeds horizon");

    bool first = true;
    for (std::uint32_t i = start; i < start + transient.pattern_period; ++i) {
        const auto t_from = sim.at(unf, from, i);
        const auto t_to = sim.at(unf, to, i);
        ensure(t_from.has_value() && t_to.has_value(),
               "steady_separations: settled instantiation missing");
        const rational separation = *t_to - *t_from;
        out.separations.push_back(separation);
        if (first || separation < out.min_separation) out.min_separation = separation;
        if (first || separation > out.max_separation) out.max_separation = separation;
        first = false;
    }
    return out;
}

separation_result steady_separations(const signal_graph& sg, event_id from, event_id to,
                                     std::uint32_t max_periods)
{
    require(sg.finalized(), "steady_separations: graph must be finalized");
    const compiled_graph cg(sg);
    return steady_separations(cg, from, to, max_periods);
}

} // namespace tsg
