// Compiled analysis snapshot of a Timed Signal Graph — the shared timing
// kernel every analysis layer runs on.
//
// A finalized signal_graph is a construction-friendly object: per-node
// adjacency vectors and exact rational delays.  Both are hostile to the
// analysis hot loops, which are longest-path sweeps that touch every arc
// many times (the cycle-time algorithm alone is O(b^2 m)).  compile()-ing
// the graph once produces:
//
//   * CSR out/in adjacency of the whole structure (flat arrays, no
//     per-node heap vectors), with node ids == event ids and arc ids ==
//     signal-graph arc ids;
//   * the repetitive-core view in CSR form, plus a precomputed topological
//     order of its token-free subgraph (the per-period sweep order) — and,
//     for acyclic graphs, a topological order of the whole structure (the
//     PERT sweep order);
//   * a fixed-point delay domain: the LCM L of all delay denominators,
//     with every arc delay stored as the exact integer delay * L.  Hot
//     loops then do int64 additions instead of rational normalizations and
//     results convert back to exact rationals at the boundary (value / L)
//     — bit-identical to the rational computation because scaling by L > 0
//     preserves order and exactness.  When L or a scaled delay would
//     overflow the guarded 64-bit budget, the domain is disabled and every
//     consumer transparently falls back to rational arithmetic.
//
// The snapshot is immutable and safe to share across threads (the parallel
// border runs of analyze_cycle_time do exactly that).  It keeps a pointer
// to the source graph, which must outlive it.
#ifndef TSG_CORE_COMPILED_GRAPH_H
#define TSG_CORE_COMPILED_GRAPH_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/csr.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct compile_options {
    /// Allow the scaled-int64 delay domain.  Disabling forces the exact
    /// rational path everywhere; used by tests to A/B the two domains.
    bool use_fixed_point = true;
};

/// One delay assignment's fixed-point domain: the result of the LCM-scale
/// computation shared by compile(), rebind() and the lane packer
/// (core/lane_domain.h).  scale == 0 means the domain is unavailable for
/// this assignment (scale or a scaled delay would overflow the guarded
/// 64-bit budget) and consumers must use exact rational arithmetic.
struct fixed_point_domain {
    std::int64_t scale = 0;
    std::vector<std::int64_t> scaled;  ///< delay * scale; empty when scale == 0
    std::uint32_t period_limit = 0;    ///< sweeps with periods < limit are safe
    bool negative = false;             ///< some delay was negative (caller must reject)

    [[nodiscard]] bool available_for_periods(std::uint32_t periods) const noexcept
    {
        return scale != 0 && periods < period_limit;
    }
};

/// Computes the fixed-point domain of one delay assignment.  `out.scaled` is
/// reused (no allocation when its capacity suffices) — the per-lane rebind
/// path calls this once per scenario.  The criteria are exactly those of
/// compiled_graph::rebind, so a lane is evicted to rational arithmetic iff
/// the equivalent scalar rebind would be.
void compute_fixed_point_domain(const std::vector<rational>& delay, fixed_point_domain& out);

class compiled_graph {
public:
    /// Compiles a finalized graph.  O(n + m).
    explicit compiled_graph(const signal_graph& sg, compile_options options = {});

    /// Rebinds the snapshot to a new per-arc delay assignment (indexed like
    /// the source graph's arcs) without recompiling any structure: the CSR
    /// adjacency, topological orders and core structure are *shared* with
    /// the base snapshot (one shared_ptr copy), and only the delay-derived
    /// state is recomputed — the fixed-point scale, the overflow budget
    /// (re-checked against the *new* delays, so an overflowing assignment
    /// degrades just that snapshot to rational arithmetic) and the core
    /// delay projection.  This is the per-scenario path of the batch
    /// engine (core/scenario.h): structure is compiled once, thousands of
    /// delay assignments are rebound.
    ///
    /// The rebound snapshot keeps pointing at the original source() graph,
    /// whose arc_info delays then describe the *nominal* assignment;
    /// delay() / scaled_delay() are authoritative for analyses.
    [[nodiscard]] compiled_graph rebind(std::vector<rational> delay) const;

    [[nodiscard]] const signal_graph& source() const noexcept { return *sg_; }

    // --- whole-graph snapshot --------------------------------------------

    /// CSR structure; node ids are event ids, arc ids are sg arc ids.
    [[nodiscard]] const csr_graph& structure() const noexcept { return shared_->structure; }

    /// Exact delay per arc (same indexing as signal_graph arcs).
    [[nodiscard]] const std::vector<rational>& delay() const noexcept { return delay_; }

    /// Topological order of the whole structure; present only when the
    /// graph is acyclic (the PERT domain).
    [[nodiscard]] const std::optional<std::vector<node_id>>& acyclic_order() const noexcept
    {
        return shared_->acyclic_order;
    }

    // --- fixed-point delay domain ----------------------------------------

    /// True when the scaled-int64 domain is available.
    [[nodiscard]] bool fixed_point() const noexcept { return scale_ != 0; }

    /// The scaling factor L (LCM of all delay denominators); 0 when the
    /// fixed-point domain is disabled.
    [[nodiscard]] std::int64_t scale() const noexcept { return scale_; }

    /// delay * L per arc; valid only when fixed_point().
    [[nodiscard]] const std::vector<std::int64_t>& scaled_delay() const noexcept
    {
        return scaled_delay_;
    }

    /// Exact conversion back out of the fixed-point domain.
    [[nodiscard]] rational unscale(std::int64_t scaled) const { return {scaled, scale_}; }

    /// True when `periods` unfolding periods can be swept in int64 without
    /// any path sum overflowing (conservative bound over the total scaled
    /// delay mass).
    [[nodiscard]] bool fixed_point_for_periods(std::uint32_t periods) const noexcept
    {
        return fixed_point() && periods < period_limit_;
    }

    // --- repetitive core --------------------------------------------------

    /// Read view of the compiled core.  A bundle of references: the
    /// structural members live in state *shared* by every rebind of the
    /// same graph, the delay members in the queried snapshot — which is
    /// what lets rebind() skip all structure copies.  The view (and any
    /// reference bound to it) is valid while the snapshot it came from
    /// lives.
    struct core_view {
        const csr_graph& graph;                       ///< CSR core, re-indexed nodes
        const std::vector<event_id>& node_event;      ///< core node -> event
        const std::vector<node_id>& event_node;       ///< event -> core node or invalid
        const std::vector<arc_id>& arc_original;      ///< core arc -> sg arc
        const std::vector<rational>& delay;           ///< per core arc
        const std::vector<std::int64_t>& scaled_delay;///< per core arc; valid when fixed_point()
        const std::vector<std::uint8_t>& token;       ///< per core arc, 0 or 1
        const std::vector<arc_id>& token_arcs;        ///< core arcs carrying a token
        const std::vector<node_id>& topo;             ///< token-free topological order

        /// Flat token-free out-adjacency: the arcs of node v, in out_arcs
        /// order with marked arcs removed, are token_free_arcs[
        /// token_free_offset[v] .. token_free_offset[v+1] ).  The
        /// per-period sweeps iterate this instead of filtering out_arcs —
        /// same relaxation order, no per-arc token test.
        const std::vector<std::uint32_t>& token_free_offset; ///< node -> first slot
        const std::vector<arc_id>& token_free_arcs;
    };

    [[nodiscard]] bool has_core() const noexcept { return shared_->core.has_value(); }

    /// Monotone counter bumped by every structural patch the incremental
    /// edit layer applies to this snapshot's shared state.  Plain compiles
    /// and rebinds sit at version 0 forever.  Consumers that cache derived
    /// structure keyed on object identity (the lane sweep packs) must key on
    /// (pointer, version): in-place patching reuses the allocation.
    [[nodiscard]] std::uint64_t structure_version() const noexcept
    {
        return shared_->version;
    }

    /// The compiled repetitive core; throws tsg::error on acyclic graphs.
    [[nodiscard]] core_view core() const
    {
        require(shared_->core.has_value(), "compiled_graph: graph has no repetitive core");
        const core_structure& c = *shared_->core;
        // Fully repetitive graphs have core arc ids equal to original arc
        // ids; the view then aliases the whole-graph delay arrays and the
        // rebind path never materializes a projection.
        const std::vector<rational>& d = c.identity ? delay_ : core_delay_;
        const std::vector<std::int64_t>& s = c.identity ? scaled_delay_ : core_scaled_delay_;
        return {c.graph, c.node_event,        c.event_node,      c.arc_original,
                d,       s,                   c.token,           c.token_arcs,
                c.topo,  c.token_free_offset, c.token_free_arcs};
    }

private:
    /// Delay-independent core compilation, shared across rebinds.
    struct core_structure {
        csr_graph graph;
        std::vector<event_id> node_event;
        std::vector<node_id> event_node;
        std::vector<arc_id> arc_original;
        std::vector<std::uint8_t> token;
        std::vector<arc_id> token_arcs;
        std::vector<node_id> topo;
        std::vector<std::uint32_t> token_free_offset;
        std::vector<arc_id> token_free_arcs;
        bool identity = false; ///< core arcs == all arcs (arc_original[a] == a)
    };

    /// Everything that depends only on the graph's *structure*.  Immutable
    /// once compiled and shared (shared_ptr) by every rebind, so a rebind
    /// costs O(arcs) delay work and zero structure copies.  The incremental
    /// edit layer is the one writer: it patches the state in place when it
    /// holds the only reference (bumping `version`) and clones it first
    /// when rebinds still share it (copy-on-write).
    struct structural_state {
        csr_graph structure;
        std::optional<std::vector<node_id>> acyclic_order;
        std::optional<core_structure> core;
        std::uint64_t version = 0;
    };

    /// The incremental edit layer patches the shared structural state and
    /// the delay-derived members in place (core/incremental.h); it restores
    /// every invariant a fresh compile would establish before handing the
    /// snapshot to any analysis.
    friend class incremental_engine;

    /// Uninitialized shell for rebind(): shares the structural state,
    /// recomputes the delay-derived members.
    explicit compiled_graph(const signal_graph* sg) noexcept : sg_(sg) {}

    void compile_fixed_point();
    void compile_core(structural_state& state) const;
    void bind_core_delays();

    const signal_graph* sg_;
    bool use_fixed_point_ = true;
    std::shared_ptr<const structural_state> shared_;

    // Delay-derived state, per snapshot.
    std::vector<rational> delay_;
    std::int64_t scale_ = 0;
    std::vector<std::int64_t> scaled_delay_;
    std::uint32_t period_limit_ = 0; ///< sweeps with periods < limit are safe
    std::vector<rational> core_delay_;
    std::vector<std::int64_t> core_scaled_delay_;
};

} // namespace tsg

#endif // TSG_CORE_COMPILED_GRAPH_H
