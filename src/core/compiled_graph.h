// Compiled analysis snapshot of a Timed Signal Graph — the shared timing
// kernel every analysis layer runs on.
//
// A finalized signal_graph is a construction-friendly object: per-node
// adjacency vectors and exact rational delays.  Both are hostile to the
// analysis hot loops, which are longest-path sweeps that touch every arc
// many times (the cycle-time algorithm alone is O(b^2 m)).  compile()-ing
// the graph once produces:
//
//   * CSR out/in adjacency of the whole structure (flat arrays, no
//     per-node heap vectors), with node ids == event ids and arc ids ==
//     signal-graph arc ids;
//   * the repetitive-core view in CSR form, plus a precomputed topological
//     order of its token-free subgraph (the per-period sweep order) — and,
//     for acyclic graphs, a topological order of the whole structure (the
//     PERT sweep order);
//   * a fixed-point delay domain: the LCM L of all delay denominators,
//     with every arc delay stored as the exact integer delay * L.  Hot
//     loops then do int64 additions instead of rational normalizations and
//     results convert back to exact rationals at the boundary (value / L)
//     — bit-identical to the rational computation because scaling by L > 0
//     preserves order and exactness.  When L or a scaled delay would
//     overflow the guarded 64-bit budget, the domain is disabled and every
//     consumer transparently falls back to rational arithmetic.
//
// The snapshot is immutable and safe to share across threads (the parallel
// border runs of analyze_cycle_time do exactly that).  It keeps a pointer
// to the source graph, which must outlive it.
#ifndef TSG_CORE_COMPILED_GRAPH_H
#define TSG_CORE_COMPILED_GRAPH_H

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct compile_options {
    /// Allow the scaled-int64 delay domain.  Disabling forces the exact
    /// rational path everywhere; used by tests to A/B the two domains.
    bool use_fixed_point = true;
};

class compiled_graph {
public:
    /// Compiles a finalized graph.  O(n + m).
    explicit compiled_graph(const signal_graph& sg, compile_options options = {});

    [[nodiscard]] const signal_graph& source() const noexcept { return *sg_; }

    // --- whole-graph snapshot --------------------------------------------

    /// CSR structure; node ids are event ids, arc ids are sg arc ids.
    [[nodiscard]] const csr_graph& structure() const noexcept { return structure_; }

    /// Exact delay per arc (same indexing as signal_graph arcs).
    [[nodiscard]] const std::vector<rational>& delay() const noexcept { return delay_; }

    /// Topological order of the whole structure; present only when the
    /// graph is acyclic (the PERT domain).
    [[nodiscard]] const std::optional<std::vector<node_id>>& acyclic_order() const noexcept
    {
        return acyclic_order_;
    }

    // --- fixed-point delay domain ----------------------------------------

    /// True when the scaled-int64 domain is available.
    [[nodiscard]] bool fixed_point() const noexcept { return scale_ != 0; }

    /// The scaling factor L (LCM of all delay denominators); 0 when the
    /// fixed-point domain is disabled.
    [[nodiscard]] std::int64_t scale() const noexcept { return scale_; }

    /// delay * L per arc; valid only when fixed_point().
    [[nodiscard]] const std::vector<std::int64_t>& scaled_delay() const noexcept
    {
        return scaled_delay_;
    }

    /// Exact conversion back out of the fixed-point domain.
    [[nodiscard]] rational unscale(std::int64_t scaled) const { return {scaled, scale_}; }

    /// True when `periods` unfolding periods can be swept in int64 without
    /// any path sum overflowing (conservative bound over the total scaled
    /// delay mass).
    [[nodiscard]] bool fixed_point_for_periods(std::uint32_t periods) const noexcept
    {
        return fixed_point() && periods < period_limit_;
    }

    // --- repetitive core --------------------------------------------------

    struct core_view {
        csr_graph graph;                       ///< CSR core, re-indexed nodes
        std::vector<event_id> node_event;      ///< core node -> event
        std::vector<node_id> event_node;       ///< event -> core node or invalid_node
        std::vector<arc_id> arc_original;      ///< core arc -> sg arc
        std::vector<rational> delay;           ///< per core arc
        std::vector<std::int64_t> scaled_delay;///< per core arc; valid when fixed_point()
        std::vector<std::uint8_t> token;       ///< per core arc, 0 or 1
        std::vector<arc_id> token_arcs;        ///< core arcs carrying a token
        std::vector<node_id> topo;             ///< token-free topological order
    };

    [[nodiscard]] bool has_core() const noexcept { return core_.has_value(); }

    /// The compiled repetitive core; throws tsg::error on acyclic graphs.
    [[nodiscard]] const core_view& core() const
    {
        require(core_.has_value(), "compiled_graph: graph has no repetitive core");
        return *core_;
    }

private:
    void compile_fixed_point();
    void compile_core();

    const signal_graph* sg_;
    csr_graph structure_;
    std::vector<rational> delay_;
    std::optional<std::vector<node_id>> acyclic_order_;

    std::int64_t scale_ = 0;
    std::vector<std::int64_t> scaled_delay_;
    std::uint32_t period_limit_ = 0; ///< sweeps with periods < limit are safe

    std::optional<core_view> core_;
};

} // namespace tsg

#endif // TSG_CORE_COMPILED_GRAPH_H
