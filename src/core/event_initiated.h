// Event-initiated timing simulation (Section IV.B).
//
// The g-initiated simulation discards all history preceding or concurrent
// with the initiating instantiation g: those instantiations get occurrence
// time 0 and their outgoing arcs are neglected.  What remains is exactly
// the longest path from g through the unfolding (Proposition 1), which is
// the tool the cycle-time algorithm is built from: for two instantiations
// e_i, e_j of the same event, t_{e_i}(e_j) is the length of the longest
// unfolded cycle between them.
#ifndef TSG_CORE_EVENT_INITIATED_H
#define TSG_CORE_EVENT_INITIATED_H

#include <optional>
#include <vector>

#include "sg/unfolding.h"
#include "util/rational.h"

namespace tsg {

struct initiated_simulation_result {
    node_id origin = invalid_node;
    std::vector<rational> time; ///< t_g(f); 0 where !reached (per the definition)
    std::vector<bool> reached;  ///< g == f or g => f
    std::vector<arc_id> cause;  ///< arg-max unfolding in-arc along paths from g

    /// t_g(e_period), or nullopt when that instantiation is not reached
    /// from the origin (the paper defines such values as 0; exposing the
    /// distinction avoids mistaking "unconstrained" for "at time zero").
    [[nodiscard]] std::optional<rational> at(const unfolding& unf, event_id e,
                                             std::uint32_t period) const;

    /// Average occurrence distance between instantiations of the initiating
    /// event: delta_{e_i}(e_j) = t_{e_i}(e_j) / (j - i)  (Section IV.C).
    [[nodiscard]] std::optional<rational> delta(const unfolding& unf,
                                                std::uint32_t period) const;
};

/// Runs the g-initiated timing simulation over the explicit unfolding.
[[nodiscard]] initiated_simulation_result simulate_from(const unfolding& unf, node_id origin);

/// Convenience: origin = instantiation `period` of event `e`.
[[nodiscard]] initiated_simulation_result simulate_from_event(const unfolding& unf, event_id e,
                                                              std::uint32_t period = 0);

} // namespace tsg

#endif // TSG_CORE_EVENT_INITIATED_H
