#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/parallel.h"

namespace tsg {

// --- arc grouping ------------------------------------------------------------

arc_group_map signal_arc_groups(const signal_graph& sg)
{
    arc_group_map out;
    out.group_of_arc.assign(sg.arc_count(), arc_group_map::no_group);
    std::unordered_map<std::string, std::uint32_t> index;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!sg.arc_live(a)) continue;
        const std::string& signal = sg.event(sg.arc(a).to).signal;
        if (signal.empty()) continue; // abstract event: not attributable to a gate
        const auto [it, inserted] =
            index.try_emplace(signal, static_cast<std::uint32_t>(out.names.size()));
        if (inserted) out.names.push_back(signal);
        out.group_of_arc[a] = it->second;
    }
    return out;
}

// --- accumulator -------------------------------------------------------------

stats_accumulator::stats_accumulator(std::size_t arc_count, std::size_t bins,
                                     const rational& lo, const rational& hi)
    : lo_(lo), hi_(hi)
{
    require(bins > 0, "stats_accumulator: histogram needs at least one bin");
    require(lo < hi, "stats_accumulator: histogram support must satisfy lo < hi");
    lo_d_ = lo.to_double();
    bin_width_d_ = (hi.to_double() - lo_d_) / static_cast<double>(bins);
    hist_.assign(bins, 0);
    // Exact bin edges: edge[i] = lo + (hi - lo) * i / bins.  The double
    // guess in add_tallies is corrected against these, so binning never
    // depends on floating-point rounding.
    edges_.reserve(bins + 1);
    const rational width = hi - lo;
    for (std::size_t i = 0; i <= bins; ++i)
        edges_.push_back(lo + width * rational(static_cast<std::int64_t>(i),
                                               static_cast<std::int64_t>(bins)));
    crit_.assign(arc_count, 0);
}

void stats_accumulator::set_groups(const arc_group_map& groups)
{
    require(count_ == 0, "stats_accumulator::set_groups: call before the first sample");
    require(groups.group_of_arc.size() == crit_.size(),
            "stats_accumulator::set_groups: one group entry per arc required");
    for (const std::uint32_t g : groups.group_of_arc)
        require(g == arc_group_map::no_group || g < groups.names.size(),
                "stats_accumulator::set_groups: group id out of range");
    group_of_arc_ = groups.group_of_arc;
    group_names_ = groups.names;
    group_crit_.assign(group_names_.size(), 0);
    group_mark_.assign(group_names_.size(), 0);
    group_epoch_ = 0;
}

void stats_accumulator::set_yield_target(const rational& target)
{
    require(count_ == 0, "stats_accumulator::set_yield_target: call before the first sample");
    require(rational(0) < target, "stats_accumulator::set_yield_target: target must be positive");
    track_yield_ = true;
    yield_target_ = target;
}

stats_accumulator::moment_block stats_accumulator::merge_moments(const moment_block& a,
                                                                 const moment_block& b)
{
    // Chan's parallel update.  The empty-side returns keep the fold exact:
    // merging with an empty block is the identity bit for bit.
    if (a.n == 0) return b;
    if (b.n == 0) return a;
    moment_block out;
    out.n = a.n + b.n;
    const double delta = b.mean - a.mean;
    const double nb_over_n = static_cast<double>(b.n) / static_cast<double>(out.n);
    out.mean = a.mean + delta * nb_over_n;
    out.m2 = a.m2 + b.m2 + delta * delta * static_cast<double>(a.n) * nb_over_n;
    return out;
}

stats_accumulator::moment_block stats_accumulator::block_of(const scenario_batch_result& batch,
                                                            std::size_t first, std::size_t n)
{
    // Serial Welford — the identical operation sequence fold_value runs,
    // so parallel per-block reduction is bit-equal to the serial fold.
    moment_block b;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = batch.outcomes[first + i].cycle_time.to_double();
        ++b.n;
        const double d = x - b.mean;
        b.mean += d / static_cast<double>(b.n);
        b.m2 += d * (x - b.mean);
    }
    return b;
}

void stats_accumulator::fold_value(double x)
{
    ++tail_.n;
    const double d = x - tail_.mean;
    tail_.mean += d / static_cast<double>(tail_.n);
    tail_.m2 += d * (x - tail_.mean);
    if (tail_.n == block_size) {
        blocks_.push_back(tail_);
        tail_ = moment_block{};
    }
}

void stats_accumulator::add_tallies(const scenario_outcome& outcome)
{
    const rational& x = outcome.cycle_time;
    if (count_ == 0 || x < min_) {
        min_ = x;
        min_index_ = count_;
    }
    if (count_ == 0 || max_ < x) {
        max_ = x;
        max_index_ = count_;
    }

    if (x < lo_) {
        ++underflow_;
    } else if (hi_ < x) {
        ++overflow_;
    } else {
        // Double guess, exact correction: the estimate is within one bin of
        // the truth, and the rational comparisons settle edge-sitting
        // samples identically on every compiler.  A support narrower than
        // double resolution degenerates bin_width_d_ to 0; the exact edge
        // walk alone then does the binning.
        const std::size_t bins = hist_.size();
        std::size_t bin = 0;
        if (bin_width_d_ > 0.0) {
            const double guess = std::floor((x.to_double() - lo_d_) / bin_width_d_);
            if (guess > 0) bin = std::min(bins - 1, static_cast<std::size_t>(guess));
        }
        while (bin + 1 < bins && !(x < edges_[bin + 1])) ++bin;
        while (bin > 0 && x < edges_[bin]) --bin;
        ++hist_[bin];
    }

    if (track_yield_ && !(yield_target_ < x)) ++yield_count_; // exact x <= target

    if (!outcome.fixed_point) ++fallback_;
    for (const arc_id a : outcome.critical_arcs) ++crit_[a];
    if (!group_crit_.empty() && !outcome.critical_arcs.empty()) {
        ++group_epoch_;
        for (const arc_id a : outcome.critical_arcs) {
            const std::uint32_t g = group_of_arc_[a];
            if (g == arc_group_map::no_group || group_mark_[g] == group_epoch_) continue;
            group_mark_[g] = group_epoch_;
            ++group_crit_[g]; // each sample counts a group at most once
        }
    }
    ++count_;
}

void stats_accumulator::add(const scenario_outcome& outcome)
{
    require(!hist_.empty(), "stats_accumulator: default-constructed (no histogram support)");
    fold_value(outcome.cycle_time.to_double());
    add_tallies(outcome);
}

void stats_accumulator::accumulate(const scenario_batch_result& batch, unsigned max_threads)
{
    require(!hist_.empty(), "stats_accumulator: default-constructed (no histogram support)");
    const std::vector<scenario_outcome>& outcomes = batch.outcomes;
    const std::size_t n = outcomes.size();

    // Moments.  Blocks are keyed by absolute sample index: close the open
    // tail first, fan the whole blocks out (each is an independent serial
    // Welford), keep the remainder in the tail.  The block list ends up
    // identical to a serial fold_value loop for every thread count.
    std::size_t i = 0;
    const unsigned workers = resolve_thread_count(max_threads);
    if (workers > 1) {
        while (i < n && tail_.n != 0) fold_value(outcomes[i++].cycle_time.to_double());
        const std::size_t whole = (n - i) / block_size;
        if (whole > 0) {
            const std::size_t first_block = blocks_.size();
            blocks_.resize(first_block + whole);
            const std::size_t base = i;
            parallel_for_index(whole, max_threads, [&](std::size_t b) {
                blocks_[first_block + b] = block_of(batch, base + b * block_size, block_size);
            });
            i += whole * block_size;
        }
    }
    for (; i < n; ++i) fold_value(outcomes[i].cycle_time.to_double());

    // Tallies are exact/integral and folded serially in index order.
    for (const scenario_outcome& o : outcomes) add_tallies(o);
}

void stats_accumulator::merge(const stats_accumulator& tail)
{
    require(count_ % block_size == 0 && tail_.n == 0,
            "stats_accumulator::merge: left side must end on a block boundary");
    require(hist_.size() == tail.hist_.size() && lo_ == tail.lo_ && hi_ == tail.hi_ &&
                crit_.size() == tail.crit_.size() && group_names_ == tail.group_names_ &&
                track_yield_ == tail.track_yield_ &&
                (!track_yield_ || yield_target_ == tail.yield_target_),
            "stats_accumulator::merge: mismatched accumulator configurations");

    blocks_.insert(blocks_.end(), tail.blocks_.begin(), tail.blocks_.end());
    tail_ = tail.tail_;

    if (tail.count_ > 0) {
        if (count_ == 0 || tail.min_ < min_) {
            min_ = tail.min_;
            min_index_ = count_ + tail.min_index_;
        }
        if (count_ == 0 || max_ < tail.max_) {
            max_ = tail.max_;
            max_index_ = count_ + tail.max_index_;
        }
    }
    for (std::size_t b = 0; b < hist_.size(); ++b) hist_[b] += tail.hist_[b];
    underflow_ += tail.underflow_;
    overflow_ += tail.overflow_;
    yield_count_ += tail.yield_count_;
    for (std::size_t a = 0; a < crit_.size(); ++a) crit_[a] += tail.crit_[a];
    for (std::size_t g = 0; g < group_crit_.size(); ++g) group_crit_[g] += tail.group_crit_[g];
    fallback_ += tail.fallback_;
    count_ += tail.count_;
}

stats_accumulator::moment_block stats_accumulator::folded() const
{
    moment_block total;
    for (const moment_block& b : blocks_) total = merge_moments(total, b);
    return merge_moments(total, tail_);
}

double stats_accumulator::mean() const { return folded().mean; }

double stats_accumulator::variance() const
{
    const moment_block total = folded();
    return total.n >= 2 ? total.m2 / static_cast<double>(total.n - 1) : 0.0;
}

double stats_accumulator::stddev() const { return std::sqrt(variance()); }

double stats_accumulator::mean_ci_half_width(double z) const
{
    if (count_ < 2) return std::numeric_limits<double>::infinity();
    return z * std::sqrt(variance() / static_cast<double>(count_));
}

double stats_accumulator::value_at_rank(double rank) const
{
    if (count_ == 0) return 0.0;
    const double minv = min_.to_double();
    const double maxv = max_.to_double();
    double value = maxv; // ranks beyond every bin: the overflow region
    double cum = static_cast<double>(underflow_);
    if (rank <= cum) {
        value = minv;
    } else {
        for (std::size_t b = 0; b < hist_.size(); ++b) {
            const double cnt = static_cast<double>(hist_[b]);
            if (cnt > 0 && rank <= cum + cnt) {
                const double frac = (rank - cum) / cnt;
                value = lo_d_ + bin_width_d_ * (static_cast<double>(b) + frac);
                break;
            }
            cum += cnt;
        }
    }
    return std::clamp(value, minv, maxv);
}

double stats_accumulator::quantile(double q) const
{
    const double clamped = std::clamp(q, 0.0, 1.0);
    return value_at_rank(clamped * static_cast<double>(count_));
}

double stats_accumulator::quantile_ci_half_width(double q, double z) const
{
    if (count_ == 0) return std::numeric_limits<double>::infinity();
    const double n = static_cast<double>(count_);
    const double clamped = std::clamp(q, 0.0, 1.0);
    const double spread = z * std::sqrt(n * clamped * (1.0 - clamped));
    const double lo_rank = std::max(0.0, clamped * n - spread);
    const double hi_rank = std::min(n, clamped * n + spread);
    return (value_at_rank(hi_rank) - value_at_rank(lo_rank)) / 2.0;
}

double stats_accumulator::criticality_probability(arc_id a) const
{
    if (count_ == 0) return 0.0;
    return static_cast<double>(crit_.at(a)) / static_cast<double>(count_);
}

double stats_accumulator::criticality_ci_half_width(arc_id a, double z) const
{
    if (count_ == 0) return std::numeric_limits<double>::infinity();
    const double p = criticality_probability(a);
    return z * std::sqrt(p * (1.0 - p) / static_cast<double>(count_));
}

double stats_accumulator::yield_probability() const
{
    if (count_ == 0) return 0.0;
    return static_cast<double>(yield_count_) / static_cast<double>(count_);
}

double stats_accumulator::yield_ci_half_width(double z) const
{
    if (count_ == 0) return std::numeric_limits<double>::infinity();
    const double p = yield_probability();
    return z * std::sqrt(p * (1.0 - p) / static_cast<double>(count_));
}

double stats_accumulator::group_criticality_probability(std::size_t group) const
{
    if (count_ == 0) return 0.0;
    return static_cast<double>(group_crit_.at(group)) / static_cast<double>(count_);
}

double stats_accumulator::group_criticality_ci_half_width(std::size_t group, double z) const
{
    if (count_ == 0) return std::numeric_limits<double>::infinity();
    const double p = group_criticality_probability(group);
    return z * std::sqrt(p * (1.0 - p) / static_cast<double>(count_));
}

// --- drivers -----------------------------------------------------------------

namespace {

stats_run_result run_monte_carlo(const scenario_engine& engine, const signal_graph& sg,
                                 const monte_carlo_options& mc, const stats_options& options,
                                 bool adaptive, std::size_t fixed_samples)
{
    require(options.histogram_bins > 0, "stats: histogram_bins must be positive");
    require(options.quantile <= 1.0, "stats: quantile must lie in [0, 1] (negative: mean)");
    require(!options.yield_objective || rational(0) < options.yield_target,
            "stats: yield_objective requires a positive yield_target");
    if (adaptive) {
        require(options.epsilon > 0.0, "monte_carlo_adaptive: epsilon must be positive");
        require(options.max_samples > 0, "monte_carlo_adaptive: max_samples must be positive");
    }

    const compiled_graph& base = engine.base();
    const bool criticality = options.criticality || options.group_by_signal;

    stats_run_result out;
    out.adaptive = adaptive;
    out.target_half_width = adaptive ? options.epsilon : 0.0;
    out.nominal_cycle_time =
        engine.evaluate(base.delay(), /*with_slack=*/false, options.max_threads,
                        options.solver, /*with_witness=*/false)
            .cycle_time;

    rational lo = options.histogram_lo;
    rational hi = options.histogram_hi;
    if (!(lo < hi)) {
        lo = rational(0);
        hi = out.nominal_cycle_time.is_zero() ? rational(1) : out.nominal_cycle_time * 2;
    }
    out.stats = stats_accumulator(base.delay().size(), options.histogram_bins, lo, hi);
    if (options.group_by_signal) out.stats.set_groups(signal_arc_groups(sg));
    if (rational(0) < options.yield_target) out.stats.set_yield_target(options.yield_target);

    scenario_batch_options bopts;
    bopts.max_threads = options.max_threads;
    bopts.with_slack = false;
    bopts.with_witness = criticality;
    bopts.solver = options.solver;
    bopts.lane_width = options.lane_width;

    const std::size_t round = options.round_samples > 0 ? options.round_samples : 256;
    const std::size_t cap = adaptive ? options.max_samples : fixed_samples;
    const std::size_t floor_samples =
        adaptive ? std::max<std::size_t>(options.min_samples, 2) : 0;
    require(cap > 0, "stats: no samples requested");

    const auto target_half_width = [&]() {
        if (options.yield_objective)
            return out.stats.yield_ci_half_width(options.confidence_z);
        return options.quantile < 0.0
                   ? out.stats.mean_ci_half_width(options.confidence_z)
                   : out.stats.quantile_ci_half_width(options.quantile,
                                                      options.confidence_z);
    };

    const bool bounded = options.deadline.time_since_epoch().count() != 0;
    monte_carlo_options round_mc = mc;
    while (out.stats.count() < cap) {
        if (bounded && std::chrono::steady_clock::now() >= options.deadline)
            throw error("deadline_exceeded: deadline passed after " +
                        std::to_string(out.stats.count()) + " of " +
                        std::to_string(cap) + " samples");
        const std::size_t have = out.stats.count();
        round_mc.first_sample = mc.first_sample + have;
        round_mc.samples = std::min(round, cap - have);
        const std::vector<scenario> scenarios = monte_carlo_scenarios(sg, round_mc);
        const scenario_batch_result batch = engine.run(scenarios, bopts);
        out.stats.accumulate(batch, options.max_threads);
        ++out.rounds;
        out.lane_groups += batch.lane_groups;
        out.lane_scenarios += batch.lane_scenarios;
        out.lane_evictions += batch.lane_evictions;
        out.scalar_scenarios += batch.scalar_scenarios;
        if (adaptive && out.stats.count() >= floor_samples &&
            target_half_width() <= options.epsilon)
            break;
    }

    out.achieved_half_width = target_half_width();
    out.converged = !adaptive || out.achieved_half_width <= options.epsilon;
    return out;
}

} // namespace

stats_run_result monte_carlo_statistics(const scenario_engine& engine, const signal_graph& sg,
                                        const monte_carlo_options& mc,
                                        const stats_options& options)
{
    require(mc.samples > 0, "monte_carlo_statistics: samples must be positive");
    return run_monte_carlo(engine, sg, mc, options, /*adaptive=*/false, mc.samples);
}

stats_run_result monte_carlo_adaptive(const scenario_engine& engine, const signal_graph& sg,
                                      const monte_carlo_options& mc,
                                      const stats_options& options)
{
    return run_monte_carlo(engine, sg, mc, options, /*adaptive=*/true, 0);
}

} // namespace tsg
