#include "core/edit_json.h"

#include <cctype>
#include <sstream>
#include <utility>

#include "core/cycle_time.h"
#include "core/pert.h"
#include "util/error.h"
#include "util/strings.h"

namespace tsg {

namespace {

// --- a minimal JSON value parser ---------------------------------------------
// Scripts are small (a handful of edits); a straightforward recursive
// descent over an in-memory string is all the tool needs.  Numbers keep
// their raw spelling so integer arc ids and delays stay exact.

struct jvalue {
    enum class kind : std::uint8_t { null_v, bool_v, number_v, string_v, array_v, object_v };
    kind k = kind::null_v;
    bool boolean = false;
    std::string text; ///< raw number spelling, or decoded string
    std::vector<jvalue> items;
    std::vector<std::pair<std::string, jvalue>> members;

    [[nodiscard]] const jvalue* find(const std::string& key) const
    {
        for (const auto& [name, value] : members)
            if (name == key) return &value;
        return nullptr;
    }
};

struct jcursor {
    const std::string& text;
    std::size_t pos = 0;

    void skip_ws()
    {
        while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }
    char peek()
    {
        skip_ws();
        require(pos < text.size(), "edit script: unexpected end of JSON");
        return text[pos];
    }
    void expect(char c)
    {
        require(peek() == c,
                std::string("edit script: expected '") + c + "' at offset " +
                    std::to_string(pos));
        ++pos;
    }
};

std::string parse_jstring(jcursor& in)
{
    in.expect('"');
    std::string out;
    while (true) {
        require(in.pos < in.text.size(), "edit script: unterminated string");
        const char c = in.text[in.pos++];
        if (c == '"') return out;
        if (c == '\\') {
            require(in.pos < in.text.size(), "edit script: dangling escape");
            const char e = in.text[in.pos++];
            switch (e) {
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            default: out += e; break; // \" \\ \/ and anything else literal
            }
        } else {
            out += c;
        }
    }
}

jvalue parse_jvalue(jcursor& in)
{
    jvalue v;
    const char c = in.peek();
    if (c == '{') {
        in.expect('{');
        v.k = jvalue::kind::object_v;
        if (in.peek() != '}') {
            while (true) {
                std::string key = parse_jstring(in);
                in.expect(':');
                v.members.emplace_back(std::move(key), parse_jvalue(in));
                if (in.peek() != ',') break;
                in.expect(',');
            }
        }
        in.expect('}');
        return v;
    }
    if (c == '[') {
        in.expect('[');
        v.k = jvalue::kind::array_v;
        if (in.peek() != ']') {
            while (true) {
                v.items.push_back(parse_jvalue(in));
                if (in.peek() != ',') break;
                in.expect(',');
            }
        }
        in.expect(']');
        return v;
    }
    if (c == '"') {
        v.k = jvalue::kind::string_v;
        v.text = parse_jstring(in);
        return v;
    }
    if (in.text.compare(in.pos, 4, "true") == 0) {
        in.pos += 4;
        v.k = jvalue::kind::bool_v;
        v.boolean = true;
        return v;
    }
    if (in.text.compare(in.pos, 5, "false") == 0) {
        in.pos += 5;
        v.k = jvalue::kind::bool_v;
        return v;
    }
    if (in.text.compare(in.pos, 4, "null") == 0) {
        in.pos += 4;
        return v;
    }
    const std::size_t start = in.pos;
    while (in.pos < in.text.size() &&
           (std::isdigit(static_cast<unsigned char>(in.text[in.pos])) ||
            std::string("+-.eE").find(in.text[in.pos]) != std::string::npos))
        ++in.pos;
    require(in.pos > start, "edit script: malformed JSON value");
    v.k = jvalue::kind::number_v;
    v.text = in.text.substr(start, in.pos - start);
    return v;
}

// --- script field decoding ---------------------------------------------------

std::uint32_t field_index(const jvalue& obj, const std::string& key)
{
    const jvalue* v = obj.find(key);
    require(v != nullptr && v->k == jvalue::kind::number_v,
            "edit script: edit needs a numeric \"" + key + "\"");
    require(v->text.find_first_not_of("0123456789") == std::string::npos,
            "edit script: \"" + key + "\" must be a non-negative integer");
    return static_cast<std::uint32_t>(std::stoul(v->text));
}

event_id field_event(const jvalue& obj, const std::string& key, const signal_graph& sg)
{
    const jvalue* v = obj.find(key);
    require(v != nullptr, "edit script: edit needs \"" + key + "\"");
    if (v->k == jvalue::kind::string_v) return sg.event_by_name(v->text);
    return field_index(obj, key);
}

rational field_delay(const jvalue& obj)
{
    const jvalue* v = obj.find("delay");
    require(v != nullptr, "edit script: edit needs a \"delay\"");
    if (v->k == jvalue::kind::string_v) return rational::parse(v->text);
    require(v->k == jvalue::kind::number_v &&
                v->text.find_first_of(".eE") == std::string::npos,
            "edit script: \"delay\" must be an integer or a \"num/den\" string");
    return rational::parse(v->text);
}

bool field_flag(const jvalue& obj, const std::string& key, bool fallback)
{
    const jvalue* v = obj.find(key);
    if (v == nullptr) return fallback;
    require(v->k == jvalue::kind::bool_v, "edit script: \"" + key + "\" must be a bool");
    return v->boolean;
}

graph_edit parse_edit(const jvalue& obj, const signal_graph& sg)
{
    require(obj.k == jvalue::kind::object_v, "edit script: each edit must be an object");
    const jvalue* op = obj.find("op");
    require(op != nullptr && op->k == jvalue::kind::string_v,
            "edit script: each edit needs a string \"op\"");
    if (op->text == "add_arc")
        return graph_edit::add(field_event(obj, "from", sg), field_event(obj, "to", sg),
                               field_delay(obj), field_flag(obj, "marked", false),
                               field_flag(obj, "disengageable", false));
    if (op->text == "remove_arc") return graph_edit::remove(field_index(obj, "arc"));
    if (op->text == "set_delay")
        return graph_edit::set_delay_of(field_index(obj, "arc"), field_delay(obj));
    if (op->text == "retarget")
        return graph_edit::retarget_to(field_index(obj, "arc"), field_event(obj, "from", sg),
                                       field_event(obj, "to", sg));
    if (op->text == "set_marking")
        return graph_edit::set_marking_of(field_index(obj, "arc"),
                                          field_flag(obj, "marked", true));
    throw error("edit script: unknown op '" + op->text +
                "' (use add_arc, remove_arc, set_delay, retarget or set_marking)");
}

// --- rendering helpers -------------------------------------------------------

std::string json_quote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

void append_exact(std::ostringstream& os, const rational& v)
{
    os << "{\"exact\": " << json_quote(v.str())
       << ", \"value\": " << format_double(v.to_double(), 6) << "}";
}

} // namespace

edit_script parse_edit_script(const std::string& text, const signal_graph& sg)
{
    jcursor in{text};
    const jvalue root = parse_jvalue(in);
    in.skip_ws();
    require(in.pos == text.size(), "edit script: trailing garbage after the document");
    require(root.k == jvalue::kind::object_v, "edit script: top level must be an object");

    edit_script script;
    const auto parse_batch = [&](const jvalue& batch, const std::string& fallback_label) {
        const jvalue* edits = &batch;
        std::string label = fallback_label;
        if (batch.k == jvalue::kind::object_v) {
            // {"label": ..., "edits": [...]} — a named batch.
            const jvalue* named = batch.find("edits");
            require(named != nullptr, "edit script: a batch object needs \"edits\"");
            if (const jvalue* l = batch.find("label"); l != nullptr) {
                require(l->k == jvalue::kind::string_v,
                        "edit script: batch \"label\" must be a string");
                label = l->text;
            }
            edits = named;
        }
        require(edits->k == jvalue::kind::array_v && !edits->items.empty(),
                "edit script: each batch must be a non-empty array of edits");
        edit_batch out;
        out.reserve(edits->items.size());
        for (const jvalue& e : edits->items) out.push_back(parse_edit(e, sg));
        script.batches.push_back(std::move(out));
        script.labels.push_back(std::move(label));
    };

    if (const jvalue* batches = root.find("batches"); batches != nullptr) {
        require(batches->k == jvalue::kind::array_v && !batches->items.empty(),
                "edit script: \"batches\" must be a non-empty array");
        for (std::size_t i = 0; i < batches->items.size(); ++i)
            parse_batch(batches->items[i], "batch " + std::to_string(i + 1));
    } else if (const jvalue* edits = root.find("edits"); edits != nullptr) {
        parse_batch(*edits, "batch 1");
    } else {
        throw error("edit script: top level needs \"batches\" or \"edits\"");
    }
    return script;
}

std::vector<edit_batch_status> run_edit_script(incremental_engine& eng,
                                               const edit_script& script)
{
    std::vector<edit_batch_status> statuses(script.batches.size());
    for (std::size_t i = 0; i < script.batches.size(); ++i) {
        edit_batch_status& st = statuses[i];
        try {
            eng.apply(script.batches[i]);
        } catch (const error& e) {
            st.message = e.what(); // rejected: the engine rolled back
            continue;
        }
        st.applied = true;
        st.cyclic = !eng.graph().repetitive_events().empty();
        st.cycle_time =
            st.cyclic ? eng.analyze_warm().cycle_time : analyze_pert(eng.compiled()).makespan;
    }
    return statuses;
}

std::string edit_run_json(incremental_engine& eng, const edit_script& script,
                          const rational& nominal, bool nominal_cyclic,
                          const std::vector<edit_batch_status>& statuses)
{
    const signal_graph& sg = eng.graph();
    std::ostringstream os;
    os << "{\n";
    os << "  \"command\": \"edit\",\n";
    os << "  \"model\": {\"events\": " << sg.event_count()
       << ", \"arcs\": " << sg.live_arc_count() << ", \"tokens\": " << sg.token_count()
       << ", \"cyclic\": " << (sg.repetitive_events().empty() ? "false" : "true")
       << "},\n";
    os << "  \"nominal\": {\"cyclic\": " << (nominal_cyclic ? "true" : "false")
       << ", \"cycle_time\": ";
    append_exact(os, nominal);
    os << "},\n";

    os << "  \"batches\": [\n";
    for (std::size_t i = 0; i < statuses.size(); ++i) {
        const edit_batch_status& st = statuses[i];
        os << "    {\"label\": " << json_quote(script.labels[i])
           << ", \"edits\": " << script.batches[i].size()
           << ", \"applied\": " << (st.applied ? "true" : "false");
        if (st.applied) {
            os << ", \"cyclic\": " << (st.cyclic ? "true" : "false")
               << ", \"cycle_time\": ";
            append_exact(os, st.cycle_time);
        } else {
            os << ", \"error\": " << json_quote(st.message);
        }
        os << "}" << (i + 1 < statuses.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    // Final analysis on the edited structure: a cold solve, bit-identical
    // to a fresh finalize() + compile of the same graph.
    os << "  \"final\": {";
    if (sg.repetitive_events().empty()) {
        const pert_result pert = analyze_pert(eng.compiled());
        os << "\"cyclic\": false, \"makespan\": ";
        append_exact(os, pert.makespan);
        os << ", \"critical_path\": [";
        for (std::size_t i = 0; i < pert.critical_path.size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(pert.critical_path[i]).name);
        os << "]";
    } else {
        const cycle_time_result ct = eng.analyze();
        os << "\"cyclic\": true, \"cycle_time\": ";
        append_exact(os, ct.cycle_time);
        os << ", \"critical_occurrence_period\": " << ct.critical_occurrence_period;
        os << ", \"critical_cycle\": [";
        for (std::size_t i = 0; i < ct.critical_cycle_events.size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(ct.critical_cycle_events[i]).name);
        os << "], \"border_events\": [";
        for (std::size_t i = 0; i < sg.border_events().size(); ++i)
            os << (i ? ", " : "") << json_quote(sg.event(sg.border_events()[i]).name);
        os << "]";
    }
    os << "},\n";

    const incremental_counters& c = eng.counters();
    os << "  \"engine\": {\"batches_applied\": " << c.batches_applied
       << ", \"edits_applied\": " << c.edits_applied << ", \"undos\": " << c.undos
       << ",\n    \"arcs_repaired\": " << c.arcs_repaired
       << ", \"csr_compactions\": " << c.csr_compactions
       << ", \"topo_window\": " << c.topo_window
       << ",\n    \"sccs_recondensed\": " << c.sccs_recondensed
       << ", \"scc_window\": " << c.scc_window
       << ", \"scc_runs_skipped\": " << c.scc_runs_skipped
       << ",\n    \"core_rebuilds\": " << c.core_rebuilds
       << ", \"full_rebuilds\": " << c.full_rebuilds
       << ",\n    \"fixed_point_patches\": " << c.fixed_point_patches
       << ", \"fixed_point_recomputes\": " << c.fixed_point_recomputes
       << ",\n    \"warm_states_kept\": " << c.warm_states_kept
       << ", \"warm_states_dropped\": " << c.warm_states_dropped << "}\n";
    os << "}\n";
    return os.str();
}

} // namespace tsg
