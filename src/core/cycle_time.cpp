#include "core/cycle_time.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "ratio/condensation.h"
#include "sg/cut_set.h"
#include "util/parallel.h"

namespace tsg {

namespace {

using core_view = compiled_graph::core_view;

// The per-period sweep is identical in both delay domains; only the value
// type and the conversion back to exact rationals differ.  Scaling by the
// positive LCM preserves order and exactness, so every argmax (and thus
// every predecessor chain and delta) matches the rational computation
// bit for bit.
struct rational_domain {
    using value_type = rational;
    const std::vector<rational>& delay;
    [[nodiscard]] rational to_rational(const rational& v) const { return v; }
};

struct fixed_domain {
    using value_type = std::int64_t;
    const std::vector<std::int64_t>& delay;
    std::int64_t scale;
    [[nodiscard]] rational to_rational(std::int64_t v) const { return {v, scale}; }
};

/// One event-initiated simulation streamed over `periods` periods.
template <typename Value>
struct sweep_result {
    /// t_{e0}(origin_i) for i = 0..periods; nullopt when unreached.
    std::vector<std::optional<Value>> origin_times;
    /// Captured matrices, flattened [period * n + node]; empty unless
    /// requested.  pred is the arg-max core arc into (period, node).
    std::vector<Value> time;
    std::vector<bool> reached;
    std::vector<arc_id> pred;
    bool captured = false;
};

template <typename Domain>
sweep_result<typename Domain::value_type> run_sweep(const core_view& core,
                                                    const Domain& domain, node_id origin,
                                                    std::uint32_t periods, bool capture)
{
    using Value = typename Domain::value_type;
    const std::size_t n = core.graph.node_count();
    sweep_result<Value> out;
    out.origin_times.assign(periods + 1, std::nullopt);
    out.captured = capture;
    if (capture) {
        out.time.assign((periods + 1) * n, Value{});
        out.reached.assign((periods + 1) * n, false);
        out.pred.assign((periods + 1) * n, invalid_arc);
    }

    // Rolling rows: the previous and current period.
    std::vector<Value> t_prev(n, Value{});
    std::vector<Value> t_cur(n, Value{});
    std::vector<bool> r_prev(n, false);
    std::vector<bool> r_cur(n, false);
    std::vector<arc_id> pred_row; // reused across periods

    for (std::uint32_t i = 0; i <= periods; ++i) {
        std::fill(r_cur.begin(), r_cur.end(), false);
        if (capture) pred_row.assign(n, invalid_arc);

        // Seed: the initiating instantiation occurs at time 0.
        if (i == 0) {
            t_cur[origin] = Value{};
            r_cur[origin] = true;
        }

        // Cross-period arcs (one token): sources live in period i-1.
        if (i > 0) {
            for (const arc_id a : core.token_arcs) {
                const node_id u = core.graph.from(a);
                if (!r_prev[u]) continue;
                const node_id v = core.graph.to(a);
                const Value candidate = t_prev[u] + domain.delay[a];
                if (!r_cur[v] || candidate > t_cur[v]) {
                    t_cur[v] = candidate;
                    r_cur[v] = true;
                    if (capture) pred_row[v] = a;
                }
            }
        }

        // In-period (token-free) arcs, relaxed in topological order via the
        // prefiltered flat adjacency (same arc order as out_arcs minus the
        // marked arcs — relaxation order and tie-breaks are unchanged).
        for (const node_id v : core.topo) {
            if (!r_cur[v]) continue;
            const std::uint32_t first = core.token_free_offset[v];
            const std::uint32_t last = core.token_free_offset[v + 1];
            for (std::uint32_t k = first; k < last; ++k) {
                const arc_id a = core.token_free_arcs[k];
                const node_id w = core.graph.to(a);
                const Value candidate = t_cur[v] + domain.delay[a];
                if (!r_cur[w] || candidate > t_cur[w]) {
                    t_cur[w] = candidate;
                    r_cur[w] = true;
                    if (capture) pred_row[w] = a;
                }
            }
        }

        if (r_cur[origin]) out.origin_times[i] = t_cur[origin];
        if (capture) {
            for (node_id v = 0; v < n; ++v) {
                out.time[i * n + v] = t_cur[v];
                out.reached[i * n + v] = r_cur[v];
                out.pred[i * n + v] = pred_row[v];
            }
        }
        std::swap(t_prev, t_cur);
        std::swap(r_prev, r_cur);
    }
    return out;
}

/// One full border run: the streamed simulation plus the collected deltas
/// (and the t_{e0}(f_i) tables when requested).  Independent of every other
/// run — this is the unit the thread pool executes.
template <typename Domain>
border_run simulate_origin(const core_view& core, const Domain& domain,
                           event_id origin_event, std::uint32_t periods, bool record_tables,
                           std::size_t event_count)
{
    const node_id origin = core.event_node[origin_event];
    ensure(origin != invalid_node, "analyze_cycle_time: border event outside the core");

    const auto sweep = run_sweep(core, domain, origin, periods, record_tables);

    border_run run;
    run.origin = origin_event;
    run.deltas.resize(periods);
    for (std::uint32_t i = 1; i <= periods; ++i) {
        if (!sweep.origin_times[i]) continue;
        const rational delta = domain.to_rational(*sweep.origin_times[i]) / rational(i);
        run.deltas[i - 1] = delta;
        if (!run.best_delta || delta > *run.best_delta) {
            run.best_delta = delta;
            run.best_period = i;
        }
    }
    if (record_tables) {
        const std::size_t n = core.graph.node_count();
        run.times.assign(periods + 1, std::vector<std::optional<rational>>(event_count));
        for (std::uint32_t i = 0; i <= periods; ++i)
            for (node_id v = 0; v < n; ++v)
                if (sweep.reached[i * n + v])
                    run.times[i][core.node_event[v]] =
                        domain.to_rational(sweep.time[i * n + v]);
    }
    return run;
}

/// Extracts from the unfolded critical cycle (origin_0 ~> origin_i*) a
/// *simple* cycle whose ratio equals lambda.  The closed walk decomposes
/// into simple cycles; their delay/token totals average to lambda and no
/// cycle exceeds lambda (Prop. 5), so one of them attains it.
struct peeled_cycle {
    std::vector<arc_id> core_arcs; ///< in causal order
};

peeled_cycle peel_critical_cycle(const core_view& core, const std::vector<arc_id>& walk,
                                 const rational& lambda)
{
    const std::size_t n = core.graph.node_count();
    std::vector<int> stack_pos(n, -1);
    struct entry {
        arc_id arc;    ///< arc leading *into* node
        node_id node;
    };
    std::vector<entry> stack;

    const node_id start = core.graph.from(walk.front());
    stack.push_back({invalid_arc, start});
    stack_pos[start] = 0;

    for (const arc_id a : walk) {
        const node_id v = core.graph.to(a);
        if (stack_pos[v] >= 0) {
            // Closed a simple sub-cycle: stack[stack_pos[v]+1 .. end] + a.
            rational delay(0);
            std::int64_t tokens = 0;
            std::vector<arc_id> arcs;
            for (std::size_t k = static_cast<std::size_t>(stack_pos[v]) + 1; k < stack.size();
                 ++k)
                arcs.push_back(stack[k].arc);
            arcs.push_back(a);
            for (const arc_id c : arcs) {
                delay += core.delay[c];
                tokens += core.token[c];
            }
            ensure(tokens > 0, "peel_critical_cycle: token-free cycle in live graph");
            if (delay / rational(tokens) == lambda) return {arcs};
            // Not critical: discard the sub-cycle and continue from v.
            while (stack.size() > static_cast<std::size_t>(stack_pos[v]) + 1) {
                stack_pos[stack.back().node] = -1;
                stack.pop_back();
            }
        } else {
            stack.push_back({a, v});
            stack_pos[v] = static_cast<int>(stack.size()) - 1;
        }
    }
    ensure(false, "peel_critical_cycle: no simple cycle attained the cycle time");
    return {};
}

/// Rotates the reported cycle to start at a border event (some event after
/// a marked arc must be on it; cosmetic, matches the paper's presentation).
void rotate_cycle_to_border(cycle_time_result& result, const std::vector<event_id>& border)
{
    for (std::size_t k = 0; k < result.critical_cycle_events.size(); ++k) {
        const event_id e = result.critical_cycle_events[k];
        if (std::find(border.begin(), border.end(), e) != border.end()) {
            std::rotate(result.critical_cycle_events.begin(),
                        result.critical_cycle_events.begin() + static_cast<std::ptrdiff_t>(k),
                        result.critical_cycle_events.end());
            std::rotate(result.critical_cycle_arcs.begin(),
                        result.critical_cycle_arcs.begin() + static_cast<std::ptrdiff_t>(k),
                        result.critical_cycle_arcs.end());
            break;
        }
    }
}

/// The policy-iteration path: lambda and a witness cycle from Howard via
/// the SCC condensation driver, no simulation data.
cycle_time_result analyze_with_howard(const compiled_graph& cg, const analysis_options& options)
{
    const signal_graph& sg = cg.source();

    cycle_time_result result;
    result.border_count = sg.border_events().size();
    result.periods_used = 0;

    const ratio_problem p = make_ratio_problem(cg);
    condensation_options copts;
    copts.max_threads = options.max_threads;
    const condensed_ratio_result r = max_cycle_ratio_condensed(p, copts);

    result.cycle_time = r.ratio;
    std::uint32_t epsilon = 0;
    for (const arc_id a : r.cycle) {
        result.critical_cycle_events.push_back(p.node_event[p.graph.from(a)]);
        result.critical_cycle_arcs.push_back(p.arc_original[a]);
        epsilon += static_cast<std::uint32_t>(p.transit[a]);
    }
    result.critical_occurrence_period = epsilon;
    rotate_cycle_to_border(result, sg.border_events());
    return result;
}

template <typename Domain>
cycle_time_result analyze_with_domain(const compiled_graph& cg, const Domain& domain,
                                      const std::vector<event_id>& border,
                                      std::uint32_t periods, const analysis_options& options)
{
    const signal_graph& sg = cg.source();
    const core_view& core = cg.core();

    cycle_time_result result;
    result.border_count = border.size();
    result.periods_used = periods;

    // The b runs are independent event-initiated simulations; fan them out.
    // Workers fill disjoint slots, the lambda reduction below is serial in
    // run order, so the outcome matches a serial execution exactly.  With
    // the default thread budget, stay serial unless there is enough sweep
    // work to amortize thread spawn/join — paper-sized graphs analyze in
    // microseconds and would otherwise pay more for the pool than the run.
    unsigned threads = options.max_threads;
    if (threads == 0) {
        const std::size_t relaxations = static_cast<std::size_t>(periods + 1) *
                                        core.graph.arc_count() * border.size();
        if (relaxations < (1u << 16)) threads = 1;
    }
    result.runs.resize(border.size());
    parallel_for_index(border.size(), threads, [&](std::size_t k) {
        result.runs[k] = simulate_origin(core, domain, border[k], periods,
                                         options.record_tables, sg.event_count());
    });

    std::optional<rational> lambda;
    std::size_t best_run = 0;
    std::uint32_t best_period = 0;
    for (std::size_t k = 0; k < result.runs.size(); ++k) {
        const border_run& run = result.runs[k];
        if (run.best_delta && (!lambda || *run.best_delta > *lambda)) {
            lambda = run.best_delta;
            best_run = k;
            best_period = run.best_period;
        }
    }

    ensure(lambda.has_value(),
           "analyze_cycle_time: no border simulation closed a cycle within b periods");
    result.cycle_time = *lambda;
    for (border_run& run : result.runs)
        run.critical = run.best_delta && *run.best_delta == result.cycle_time;

    // Backtrack the maximising run to obtain the unfolded critical cycle.
    const event_id best_origin_event = result.runs[best_run].origin;
    const node_id origin = core.event_node[best_origin_event];
    const auto sweep = run_sweep(core, domain, origin, best_period, /*capture=*/true);

    const std::size_t n = core.graph.node_count();
    std::vector<arc_id> walk; // core arcs, collected backwards
    node_id v = origin;
    std::uint32_t period = best_period;
    while (!(v == origin && period == 0)) {
        const arc_id a = sweep.pred[period * n + v];
        ensure(a != invalid_arc, "analyze_cycle_time: broken predecessor chain");
        walk.push_back(a);
        period -= core.token[a];
        v = core.graph.from(a);
    }
    std::reverse(walk.begin(), walk.end());

    const peeled_cycle critical = peel_critical_cycle(core, walk, result.cycle_time);
    std::uint32_t epsilon = 0;
    for (const arc_id a : critical.core_arcs) {
        result.critical_cycle_events.push_back(core.node_event[core.graph.from(a)]);
        result.critical_cycle_arcs.push_back(core.arc_original[a]);
        epsilon += core.token[a];
    }
    result.critical_occurrence_period = epsilon;
    rotate_cycle_to_border(result, border);
    return result;
}

} // namespace

std::vector<event_id> cycle_time_result::critical_border_events() const
{
    std::vector<event_id> out;
    for (const border_run& run : runs)
        if (run.critical) out.push_back(run.origin);
    return out;
}

std::size_t occurrence_period_bound(const signal_graph& sg)
{
    return sg.border_events().size();
}

cycle_time_solver resolve_cycle_time_solver(cycle_time_solver requested,
                                            std::size_t border_count,
                                            std::size_t core_arc_count)
{
    if (requested != cycle_time_solver::auto_select) return requested;
    if (const char* env = std::getenv("TSG_SOLVER")) {
        const std::string value(env);
        if (value == "howard") return cycle_time_solver::howard;
        if (value == "border" || value == "sweep" || value == "border_sweep")
            return cycle_time_solver::border_sweep;
        require(value.empty() || value == "auto",
                "TSG_SOLVER: unknown solver '" + value + "' (use auto, border or howard)");
    }
    // The border sweep costs O(b^2 m); Howard converges in a few O(m)
    // policy sweeps.  The automatic cutover is deliberately conservative —
    // only cores large enough that the sweep's quadratic border factor
    // clearly dominates switch by themselves, so paper-sized models keep
    // reproducing the paper's algorithm unless a caller (or TSG_SOLVER)
    // asks for policy iteration.
    const std::size_t border_work = border_count * border_count * core_arc_count;
    return core_arc_count >= (1u << 15) && border_work >= (std::size_t{1} << 22)
               ? cycle_time_solver::howard
               : cycle_time_solver::border_sweep;
}

cycle_time_result analyze_cycle_time(const compiled_graph& cg, const analysis_options& options)
{
    const signal_graph& sg = cg.source();
    require(!sg.repetitive_events().empty(),
            "analyze_cycle_time: graph has no repetitive events (acyclic — use analyze_pert)");

    const core_view& core = cg.core();

    // periods/origins/record_tables are simulation knobs: honoring any of
    // them requires the border sweep, so they pin the solver (and clash
    // with an explicit howard request).
    const bool simulation_requested =
        options.periods > 0 || options.record_tables || !options.origins.empty();
    require(!(simulation_requested && options.solver == cycle_time_solver::howard),
            "analyze_cycle_time: periods/origins/record_tables are border-sweep "
            "simulation options — drop them or request the border_sweep solver");
    const cycle_time_solver solver =
        simulation_requested
            ? cycle_time_solver::border_sweep
            : resolve_cycle_time_solver(options.solver, sg.border_events().size(),
                                        core.graph.arc_count());
    ensure(!sg.border_events().empty(), "analyze_cycle_time: live graph with empty border set");
    if (solver == cycle_time_solver::howard) return analyze_with_howard(cg, options);

    const std::vector<event_id>& border =
        options.origins.empty() ? sg.border_events() : options.origins;
    if (!options.origins.empty()) {
        for (const event_id e : options.origins)
            require(e < sg.event_count() && sg.is_repetitive(e),
                    "analyze_cycle_time: custom origins must be repetitive events");
        require(is_cut_set(sg, options.origins),
                "analyze_cycle_time: custom origins do not form a cut set — "
                "some cycle would never be simulated");
    }

    // Horizon: the occurrence period of any simple cycle is bounded by the
    // *border* size (each of its tokens targets a distinct border event),
    // so b periods always suffice — even when simulating from a smaller
    // custom cut set.  (Proposition 6's tighter min-cut bound additionally
    // needs safety; callers may force it through options.periods.)
    const auto b = static_cast<std::uint32_t>(sg.border_events().size());
    const std::uint32_t periods = options.periods > 0 ? options.periods : b;

    if (cg.fixed_point_for_periods(periods))
        return analyze_with_domain(cg, fixed_domain{core.scaled_delay, cg.scale()}, border,
                                   periods, options);
    return analyze_with_domain(cg, rational_domain{core.delay}, border, periods, options);
}

cycle_time_result analyze_cycle_time(const signal_graph& sg, const analysis_options& options)
{
    require(sg.finalized(), "analyze_cycle_time: graph must be finalized");
    require(!sg.repetitive_events().empty(),
            "analyze_cycle_time: graph has no repetitive events (acyclic — use analyze_pert)");
    const compiled_graph cg(sg);
    return analyze_cycle_time(cg, options);
}

distance_series initiated_distance_series(const compiled_graph& cg, event_id origin,
                                          std::uint32_t periods)
{
    const signal_graph& sg = cg.source();
    require(origin < sg.event_count(), "initiated_distance_series: bad event");
    require(sg.is_repetitive(origin),
            "initiated_distance_series: origin must be a repetitive event");

    const core_view& core = cg.core();
    const node_id origin_node = core.event_node[origin];

    distance_series series;
    series.origin = origin;
    series.t.resize(periods);
    series.delta.resize(periods);

    const auto collect = [&](const auto& domain) {
        const auto sweep = run_sweep(core, domain, origin_node, periods, /*capture=*/false);
        for (std::uint32_t i = 1; i <= periods; ++i) {
            if (!sweep.origin_times[i]) continue;
            series.t[i - 1] = domain.to_rational(*sweep.origin_times[i]);
            series.delta[i - 1] = *series.t[i - 1] / rational(i);
        }
    };
    if (cg.fixed_point_for_periods(periods))
        collect(fixed_domain{core.scaled_delay, cg.scale()});
    else
        collect(rational_domain{core.delay});
    return series;
}

distance_series initiated_distance_series(const signal_graph& sg, event_id origin,
                                          std::uint32_t periods)
{
    require(sg.finalized(), "initiated_distance_series: graph must be finalized");
    const compiled_graph cg(sg);
    return initiated_distance_series(cg, origin, periods);
}

} // namespace tsg
