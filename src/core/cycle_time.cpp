#include "core/cycle_time.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <string>

#include "core/critical_cycle.h"
#include "core/lane_domain.h"
#include "ratio/condensation.h"
#include "sg/cut_set.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace tsg {

namespace {

using core_view = compiled_graph::core_view;

// The per-period sweep is identical in both delay domains; only the value
// type and the conversion back to exact rationals differ.  Scaling by the
// positive LCM preserves order and exactness, so every argmax (and thus
// every predecessor chain and delta) matches the rational computation
// bit for bit.
struct rational_domain {
    using value_type = rational;
    const std::vector<rational>& delay;
    [[nodiscard]] rational to_rational(const rational& v) const { return v; }
};

struct fixed_domain {
    using value_type = std::int64_t;
    const std::vector<std::int64_t>& delay;
    std::int64_t scale;
    [[nodiscard]] rational to_rational(std::int64_t v) const { return {v, scale}; }
};

/// One event-initiated simulation streamed over `periods` periods.
template <typename Value>
struct sweep_result {
    /// t_{e0}(origin_i) for i = 0..periods; nullopt when unreached.
    std::vector<std::optional<Value>> origin_times;
    /// Captured matrices, flattened [period * n + node]; empty unless
    /// requested.  pred is the arg-max core arc into (period, node).
    std::vector<Value> time;
    std::vector<bool> reached;
    std::vector<arc_id> pred;
    bool captured = false;
};

template <typename Domain>
sweep_result<typename Domain::value_type> run_sweep(const core_view& core,
                                                    const Domain& domain, node_id origin,
                                                    std::uint32_t periods, bool capture)
{
    using Value = typename Domain::value_type;
    const std::size_t n = core.graph.node_count();
    sweep_result<Value> out;
    out.origin_times.assign(periods + 1, std::nullopt);
    out.captured = capture;
    if (capture) {
        out.time.assign((periods + 1) * n, Value{});
        out.reached.assign((periods + 1) * n, false);
        out.pred.assign((periods + 1) * n, invalid_arc);
    }

    // Rolling rows: the previous and current period.
    std::vector<Value> t_prev(n, Value{});
    std::vector<Value> t_cur(n, Value{});
    std::vector<bool> r_prev(n, false);
    std::vector<bool> r_cur(n, false);
    std::vector<arc_id> pred_row; // reused across periods

    for (std::uint32_t i = 0; i <= periods; ++i) {
        std::fill(r_cur.begin(), r_cur.end(), false);
        if (capture) pred_row.assign(n, invalid_arc);

        // Seed: the initiating instantiation occurs at time 0.
        if (i == 0) {
            t_cur[origin] = Value{};
            r_cur[origin] = true;
        }

        // Cross-period arcs (one token): sources live in period i-1.
        if (i > 0) {
            for (const arc_id a : core.token_arcs) {
                const node_id u = core.graph.from(a);
                if (!r_prev[u]) continue;
                const node_id v = core.graph.to(a);
                const Value candidate = t_prev[u] + domain.delay[a];
                if (!r_cur[v] || candidate > t_cur[v]) {
                    t_cur[v] = candidate;
                    r_cur[v] = true;
                    if (capture) pred_row[v] = a;
                }
            }
        }

        // In-period (token-free) arcs, relaxed in topological order via the
        // prefiltered flat adjacency (same arc order as out_arcs minus the
        // marked arcs — relaxation order and tie-breaks are unchanged).
        for (const node_id v : core.topo) {
            if (!r_cur[v]) continue;
            const std::uint32_t first = core.token_free_offset[v];
            const std::uint32_t last = core.token_free_offset[v + 1];
            for (std::uint32_t k = first; k < last; ++k) {
                const arc_id a = core.token_free_arcs[k];
                const node_id w = core.graph.to(a);
                const Value candidate = t_cur[v] + domain.delay[a];
                if (!r_cur[w] || candidate > t_cur[w]) {
                    t_cur[w] = candidate;
                    r_cur[w] = true;
                    if (capture) pred_row[w] = a;
                }
            }
        }

        if (r_cur[origin]) out.origin_times[i] = t_cur[origin];
        if (capture) {
            for (node_id v = 0; v < n; ++v) {
                out.time[i * n + v] = t_cur[v];
                out.reached[i * n + v] = r_cur[v];
                out.pred[i * n + v] = pred_row[v];
            }
        }
        std::swap(t_prev, t_cur);
        std::swap(r_prev, r_cur);
    }
    return out;
}

/// One full border run: the streamed simulation plus the collected deltas
/// (and the t_{e0}(f_i) tables when requested).  Independent of every other
/// run — this is the unit the thread pool executes.
template <typename Domain>
border_run simulate_origin(const core_view& core, const Domain& domain,
                           event_id origin_event, std::uint32_t periods, bool record_tables,
                           std::size_t event_count)
{
    const node_id origin = core.event_node[origin_event];
    ensure(origin != invalid_node, "analyze_cycle_time: border event outside the core");

    const auto sweep = run_sweep(core, domain, origin, periods, record_tables);

    border_run run;
    run.origin = origin_event;
    run.deltas.resize(periods);
    for (std::uint32_t i = 1; i <= periods; ++i) {
        if (!sweep.origin_times[i]) continue;
        const rational delta = domain.to_rational(*sweep.origin_times[i]) / rational(i);
        run.deltas[i - 1] = delta;
        if (!run.best_delta || delta > *run.best_delta) {
            run.best_delta = delta;
            run.best_period = i;
        }
    }
    if (record_tables) {
        const std::size_t n = core.graph.node_count();
        run.times.assign(periods + 1, std::vector<std::optional<rational>>(event_count));
        for (std::uint32_t i = 0; i <= periods; ++i)
            for (node_id v = 0; v < n; ++v)
                if (sweep.reached[i * n + v])
                    run.times[i][core.node_event[v]] =
                        domain.to_rational(sweep.time[i * n + v]);
    }
    return run;
}

/// Rotates the reported cycle to start at a border event (some event after
/// a marked arc must be on it; cosmetic, matches the paper's presentation).
void rotate_cycle_to_border(cycle_time_result& result, const std::vector<event_id>& border)
{
    for (std::size_t k = 0; k < result.critical_cycle_events.size(); ++k) {
        const event_id e = result.critical_cycle_events[k];
        if (std::find(border.begin(), border.end(), e) != border.end()) {
            std::rotate(result.critical_cycle_events.begin(),
                        result.critical_cycle_events.begin() + static_cast<std::ptrdiff_t>(k),
                        result.critical_cycle_events.end());
            std::rotate(result.critical_cycle_arcs.begin(),
                        result.critical_cycle_arcs.begin() + static_cast<std::ptrdiff_t>(k),
                        result.critical_cycle_arcs.end());
            break;
        }
    }
}

/// The policy-iteration path: lambda and a witness cycle from Howard via
/// the SCC condensation driver, no simulation data.
cycle_time_result analyze_with_howard(const compiled_graph& cg, const analysis_options& options)
{
    const signal_graph& sg = cg.source();

    cycle_time_result result;
    result.border_count = sg.border_events().size();
    result.periods_used = 0;

    const ratio_problem p = make_ratio_problem(cg);
    condensation_options copts;
    copts.max_threads = options.max_threads;
    const condensed_ratio_result r = max_cycle_ratio_condensed(p, copts);

    result.cycle_time = r.ratio;
    std::uint32_t epsilon = 0;
    for (const arc_id a : r.cycle) {
        result.critical_cycle_events.push_back(p.node_event[p.graph.from(a)]);
        result.critical_cycle_arcs.push_back(p.arc_original[a]);
        epsilon += static_cast<std::uint32_t>(p.transit[a]);
    }
    result.critical_occurrence_period = epsilon;
    rotate_cycle_to_border(result, sg.border_events());
    return result;
}

template <typename Domain>
cycle_time_result analyze_with_domain(const compiled_graph& cg, const Domain& domain,
                                      const std::vector<event_id>& border,
                                      std::uint32_t periods, const analysis_options& options)
{
    const signal_graph& sg = cg.source();
    const core_view& core = cg.core();

    cycle_time_result result;
    result.border_count = border.size();
    result.periods_used = periods;

    // The b runs are independent event-initiated simulations; fan them out.
    // Workers fill disjoint slots, the lambda reduction below is serial in
    // run order, so the outcome matches a serial execution exactly.  With
    // the default thread budget, stay serial unless there is enough sweep
    // work to amortize thread spawn/join — paper-sized graphs analyze in
    // microseconds and would otherwise pay more for the pool than the run.
    unsigned threads = options.max_threads;
    if (threads == 0) {
        const std::size_t relaxations = static_cast<std::size_t>(periods + 1) *
                                        core.graph.arc_count() * border.size();
        if (relaxations < (1u << 16)) threads = 1;
    }
    result.runs.resize(border.size());
    parallel_for_index(border.size(), threads, [&](std::size_t k) {
        result.runs[k] = simulate_origin(core, domain, border[k], periods,
                                         options.record_tables, sg.event_count());
    });

    std::optional<rational> lambda;
    std::size_t best_run = 0;
    std::uint32_t best_period = 0;
    for (std::size_t k = 0; k < result.runs.size(); ++k) {
        const border_run& run = result.runs[k];
        if (run.best_delta && (!lambda || *run.best_delta > *lambda)) {
            lambda = run.best_delta;
            best_run = k;
            best_period = run.best_period;
        }
    }

    ensure(lambda.has_value(),
           "analyze_cycle_time: no border simulation closed a cycle within b periods");
    result.cycle_time = *lambda;
    for (border_run& run : result.runs)
        run.critical = run.best_delta && *run.best_delta == result.cycle_time;

    // Backtrack the maximising run to obtain the unfolded critical cycle.
    const event_id best_origin_event = result.runs[best_run].origin;
    const node_id origin = core.event_node[best_origin_event];
    const auto sweep = run_sweep(core, domain, origin, best_period, /*capture=*/true);

    const std::size_t n = core.graph.node_count();
    std::vector<arc_id> walk; // core arcs, collected backwards
    node_id v = origin;
    std::uint32_t period = best_period;
    while (!(v == origin && period == 0)) {
        const arc_id a = sweep.pred[period * n + v];
        ensure(a != invalid_arc, "analyze_cycle_time: broken predecessor chain");
        walk.push_back(a);
        period -= core.token[a];
        v = core.graph.from(a);
    }
    std::reverse(walk.begin(), walk.end());

    const std::vector<arc_id> critical_arcs = peel_critical_cycle_rational(
        core, walk, result.cycle_time, [&](arc_id c) -> const rational& { return core.delay[c]; });
    std::uint32_t epsilon = 0;
    for (const arc_id a : critical_arcs) {
        result.critical_cycle_events.push_back(core.node_event[core.graph.from(a)]);
        result.critical_cycle_arcs.push_back(core.arc_original[a]);
        epsilon += core.token[a];
    }
    result.critical_occurrence_period = epsilon;
    rotate_cycle_to_border(result, border);
    return result;
}

// --- lane-batched border sweep (core/lane_domain.h) --------------------------

/// Builds the structural half of the sweep-order packing (see
/// lane_workspace): the token-free relaxation sequence flattened in sweep
/// order — per topo position, that node's token-free out run — plus the
/// token arcs' endpoints.  Rebuilt only when the workspace meets a new
/// compiled core — keyed on (identity, structure version), because the
/// incremental edit layer patches cores in place: after a structural batch
/// the object address is unchanged and only the version tells the packs
/// apart.
void pack_sweep_structure(const core_view& core, std::uint64_t version, lane_workspace& ws)
{
    if (ws.pack_of == static_cast<const void*>(&core.topo) && ws.pack_version == version)
        return;
    ws.topo_pos.assign(core.graph.node_count(), 0);
    for (std::size_t p = 0; p < core.topo.size(); ++p)
        ws.topo_pos[core.topo[p]] = static_cast<std::uint32_t>(p);
    ws.sweep_src.clear();
    ws.sweep_head.clear();
    ws.sweep_arc.clear();
    ws.sweep_src.reserve(core.token_free_arcs.size());
    ws.sweep_head.reserve(core.token_free_arcs.size());
    ws.sweep_arc.reserve(core.token_free_arcs.size());
    for (const node_id v : core.topo)
        for (std::uint32_t k = core.token_free_offset[v]; k < core.token_free_offset[v + 1];
             ++k) {
            const arc_id a = core.token_free_arcs[k];
            ws.sweep_src.push_back(ws.topo_pos[v]);
            ws.sweep_head.push_back(ws.topo_pos[core.graph.to(a)]);
            ws.sweep_arc.push_back(a);
        }
    ws.tok_src.clear();
    ws.tok_head.clear();
    ws.tok_arc.clear();
    for (const arc_id a : core.token_arcs) {
        ws.tok_src.push_back(ws.topo_pos[core.graph.from(a)]);
        ws.tok_head.push_back(ws.topo_pos[core.graph.to(a)]);
        ws.tok_arc.push_back(a);
    }
    ws.pack_of = static_cast<const void*>(&core.topo);
    ws.pack_version = version;
}

/// Copies one lane group's SoA delays into sweep order (and token order) —
/// a sequential pass per group that turns every hot-loop delay/head access
/// into a streaming load.
template <unsigned W>
void pack_sweep_delays(const lane_domain& dom, lane_workspace& ws)
{
    const std::int64_t* TSG_RESTRICT delay = dom.delay();
    ws.sweep_delay.resize(ws.sweep_arc.size() * W);
    std::int64_t* TSG_RESTRICT sd = ws.sweep_delay.data();
    for (std::size_t s = 0; s < ws.sweep_arc.size(); ++s) {
        const std::int64_t* TSG_RESTRICT src = delay + std::size_t{ws.sweep_arc[s]} * W;
        TSG_PRAGMA_SIMD
        for (unsigned l = 0; l < W; ++l) sd[s * W + l] = src[l];
    }
    ws.tok_delay.resize(ws.tok_arc.size() * W);
    std::int64_t* TSG_RESTRICT td = ws.tok_delay.data();
    for (std::size_t s = 0; s < ws.tok_arc.size(); ++s) {
        const std::int64_t* TSG_RESTRICT src = delay + std::size_t{ws.tok_arc[s]} * W;
        TSG_PRAGMA_SIMD
        for (unsigned l = 0; l < W; ++l) td[s * W + l] = src[l];
    }
}

/// One event-initiated simulation over W lanes at once: the scalar
/// run_sweep with the value matrix in SoA form (t[v * W + lane]) and
/// "unreached" encoded as lane_domain::unreached instead of a flag.  The
/// relaxation order is identical to the scalar sweep (the packed sequence
/// *is* the scalar order), so per-lane values, tie-breaks and captured
/// predecessors match a scalar run bit for bit: sentinel ("garbage")
/// candidates are strictly negative, real times are >= 0, and a garbage
/// candidate can therefore never displace a real one (see the overflow
/// argument in lane_domain.h).
///
/// When Capture, pred[(i * n + v) * W + lane] records the arg-max core arc
/// into (period i, node v) — only entries on real (value >= 0) chains are
/// meaningful, and only those are ever backtracked.
template <unsigned W, bool Capture>
void lane_border_sweep(const core_view& core, const lane_workspace& ws, node_id origin,
                       std::uint32_t periods, std::int64_t* t_prev, std::int64_t* t_cur,
                       std::int64_t* TSG_RESTRICT origin_time, std::int64_t* pred)
{
    const std::size_t n = core.graph.node_count();
    const std::size_t tok_count = ws.tok_arc.size();
    const std::size_t sweep_count = ws.sweep_arc.size();
    const node_id* TSG_RESTRICT tok_src = ws.tok_src.data();
    const node_id* TSG_RESTRICT tok_head = ws.tok_head.data();
    const arc_id* TSG_RESTRICT tok_arc = ws.tok_arc.data();
    const std::int64_t* TSG_RESTRICT tok_delay = ws.tok_delay.data();
    const node_id* TSG_RESTRICT sweep_src = ws.sweep_src.data();
    const node_id* TSG_RESTRICT sweep_head = ws.sweep_head.data();
    const arc_id* TSG_RESTRICT sweep_arc = ws.sweep_arc.data();
    const std::int64_t* TSG_RESTRICT sweep_delay = ws.sweep_delay.data();

    for (std::uint32_t i = 0; i <= periods; ++i) {
        std::fill(t_cur, t_cur + n * W, lane_domain::unreached);
        std::int64_t* pred_row = nullptr;
        if constexpr (Capture) {
            pred_row = pred + std::size_t{i} * n * W;
            // No invalid_arc fill: every entry the backtrack reads lies on
            // a real (value >= 0) chain, whose last strict improvement
            // always stored a predecessor.  Stale entries under garbage
            // values are never dereferenced; the walk guard in Phase C
            // bounds the damage if that invariant ever broke.
#ifndef NDEBUG
            std::fill(pred_row, pred_row + n * W, std::int64_t{invalid_arc});
#endif
        }

        // Seed: the initiating instantiation occurs at time 0.
        if (i == 0) {
            std::int64_t* slot = t_cur + std::size_t{origin} * W;
            for (unsigned l = 0; l < W; ++l) slot[l] = 0;
        } else {
            // Cross-period arcs (one token): sources live in period i-1.
            for (std::size_t s = 0; s < tok_count; ++s) {
                const std::int64_t* TSG_RESTRICT src = t_prev + std::size_t{tok_src[s]} * W;
                const std::int64_t* TSG_RESTRICT d = tok_delay + s * W;
                std::int64_t* dst = t_cur + std::size_t{tok_head[s]} * W;
                if constexpr (Capture) {
                    const auto a = static_cast<std::int64_t>(tok_arc[s]);
                    std::int64_t* pr = pred_row + std::size_t{tok_head[s]} * W;
                    TSG_PRAGMA_SIMD
                    for (unsigned l = 0; l < W; ++l) {
                        const std::int64_t cand = src[l] + d[l];
                        const bool better = cand > dst[l];
                        dst[l] = better ? cand : dst[l];
                        pr[l] = better ? a : pr[l];
                    }
                } else {
                    TSG_PRAGMA_SIMD
                    for (unsigned l = 0; l < W; ++l) {
                        const std::int64_t cand = src[l] + d[l];
                        dst[l] = cand > dst[l] ? cand : dst[l];
                    }
                }
            }
        }

        // In-period (token-free) arcs as one flat stream in the packed
        // sweep order — the exact scalar relaxation order with the node
        // loop compiled away: sources earlier in topo order are final
        // before any arc reads them, exactly as in the scalar sweep.
        // (Unlike the scalar sweep there is no unreached-source skip:
        // relaxing from a sentinel source writes only negative "garbage"
        // values, which no real value comparison or backtrack observes.)
        for (std::size_t s = 0; s < sweep_count; ++s) {
            const std::int64_t* src = t_cur + std::size_t{sweep_src[s]} * W;
            const std::int64_t* TSG_RESTRICT d = sweep_delay + s * W;
            std::int64_t* dst = t_cur + std::size_t{sweep_head[s]} * W;
            if constexpr (Capture) {
                const auto a = static_cast<std::int64_t>(sweep_arc[s]);
                std::int64_t* pr = pred_row + std::size_t{sweep_head[s]} * W;
                TSG_PRAGMA_SIMD
                for (unsigned l = 0; l < W; ++l) {
                    const std::int64_t cand = src[l] + d[l];
                    const bool better = cand > dst[l];
                    dst[l] = better ? cand : dst[l];
                    pr[l] = better ? a : pr[l];
                }
            } else {
                TSG_PRAGMA_SIMD
                for (unsigned l = 0; l < W; ++l) {
                    const std::int64_t cand = src[l] + d[l];
                    dst[l] = cand > dst[l] ? cand : dst[l];
                }
            }
        }

        const std::int64_t* slot = t_cur + std::size_t{origin} * W;
        std::int64_t* rec = origin_time + std::size_t{i} * W;
        for (unsigned l = 0; l < W; ++l) rec[l] = slot[l];
        std::swap(t_prev, t_cur);
    }
}

#ifdef TSG_LANE_PROF
struct lane_prof_state_t {
    double t[4]{};
    ~lane_prof_state_t()
    {
        std::fprintf(stderr, "lane phases: A %.6fs B %.6fs C %.6fs\n", t[0], t[1], t[2]);
    }
};
inline lane_prof_state_t lane_prof_state;
#define TSG_LANE_TICK(slot, ...)                                                      \
    do {                                                                              \
        const auto _t0 = std::chrono::steady_clock::now();                            \
        __VA_ARGS__;                                                                  \
        lane_prof_state.t[slot] +=                                                    \
            std::chrono::duration<double>(std::chrono::steady_clock::now() - _t0)     \
                .count();                                                             \
    } while (0)
#else
#define TSG_LANE_TICK(slot, ...) __VA_ARGS__
#endif

template <unsigned W>
void analyze_cycle_time_lanes_impl(const compiled_graph& cg, const lane_domain& dom,
                                   std::uint32_t periods, lane_workspace& ws,
                                   std::span<lane_cycle_time> out, bool witness)
{
    const core_view core = cg.core();
    const std::vector<event_id>& border = cg.source().border_events();
    const std::size_t n = core.graph.node_count();
    const std::size_t b = border.size();
    const std::size_t rows = std::size_t{periods} + 1;

    ws.t_prev.resize(n * W);
    ws.t_cur.resize(n * W);
    ws.origin_time.resize(b * rows * W);
    if (witness) ws.pred.resize(b * rows * n * W);
    pack_sweep_structure(core, cg.structure_version(), ws);
    pack_sweep_delays<W>(dom, ws);

    // Phase A: one sweep per border origin, all lanes at once; when a
    // witness is wanted, predecessors are captured inline — extraction
    // later is pure backtracking, no re-sweep (the blend stores vectorize;
    // re-running the winning origins with capture costs far more than
    // capturing everything once).
    TSG_LANE_TICK(0, for (std::size_t k = 0; k < b; ++k) {
        const node_id origin = core.event_node[border[k]];
        ensure(origin != invalid_node, "analyze_cycle_time: border event outside the core");
        if (witness)
            lane_border_sweep<W, true>(core, ws, ws.topo_pos[origin], periods,
                                       ws.t_prev.data(), ws.t_cur.data(),
                                       ws.origin_time.data() + k * rows * W,
                                       ws.pred.data() + k * rows * n * W);
        else
            lane_border_sweep<W, false>(core, ws, ws.topo_pos[origin], periods,
                                        ws.t_prev.data(), ws.t_cur.data(),
                                        ws.origin_time.data() + k * rows * W, nullptr);
    });

    // Phase B: per-lane lambda.  Scanning (run, period) lexicographically
    // with a strict comparison reproduces the scalar reduction exactly:
    // first run attaining the maximum wins, and within it the first period
    // attaining that run's best delta.
    struct lane_pick {
        bool any = false;
        std::size_t run = 0;
        std::uint32_t period = 0;
        rational lambda;
    };
    std::array<lane_pick, W> pick;
    TSG_LANE_TICK(1, for (unsigned l = 0; l < W; ++l) {
        if (dom.evicted(l)) continue;
        lane_pick& p = pick[l];
        // Arg-max in the integer domain: within one lane the scale cancels,
        // so delta(k1,i1) > delta(k2,i2) <=> v1 * i2 > v2 * i1 (int128,
        // positive denominators) — the exact rational comparison without
        // constructing rationals.  One rational materializes at the end.
        std::int64_t best_v = 0;
        for (std::size_t k = 0; k < b; ++k) {
            const std::int64_t* times = ws.origin_time.data() + k * rows * W;
            for (std::uint32_t i = 1; i <= periods; ++i) {
                const std::int64_t v = times[std::size_t{i} * W + l];
                if (v < 0) continue; // unreached
                if (!p.any || static_cast<int128>(v) * p.period >
                                  static_cast<int128>(best_v) * i) {
                    p.any = true;
                    p.run = k;
                    p.period = i;
                    best_v = v;
                }
            }
        }
        ensure(p.any,
               "analyze_cycle_time: no border simulation closed a cycle within b periods");
        p.lambda = dom.unscale(l, best_v) / rational(p.period);
        out[l].cycle_time = p.lambda;
    });

    // Phase C: witness extraction per lane — backtrack the captured
    // predecessor chain of the lane's winning run, then peel.
    if (!witness) {
        for (unsigned l = 0; l < W; ++l)
            if (!dom.evicted(l)) out[l].critical_cycle_arcs.clear();
        return;
    }
    TSG_LANE_TICK(2, for (unsigned l = 0; l < W; ++l) {
        if (dom.evicted(l)) continue;
        const node_id origin = core.event_node[border[pick[l].run]];
        const std::int64_t* pred = ws.pred.data() + pick[l].run * rows * n * W;
        ws.walk.clear();
        node_id v = origin;
        std::uint32_t period = pick[l].period;
        const std::size_t walk_limit = rows * n; // each (period, node) at most once
        while (!(v == origin && period == 0)) {
            const auto a = static_cast<arc_id>(
                pred[(std::size_t{period} * n + ws.topo_pos[v]) * W + l]);
            ensure(a != invalid_arc && a < core.graph.arc_count() &&
                       (core.token[a] == 0 || period > 0) && ws.walk.size() < walk_limit,
                   "analyze_cycle_time: broken predecessor chain");
            ws.walk.push_back(a);
            period -= core.token[a];
            v = core.graph.from(a);
        }
        std::reverse(ws.walk.begin(), ws.walk.end());

        // Witness peel in the lane's fixed-point domain: identical
        // decisions to the scalar rational peel, no rational arithmetic
        // on the walk (core/critical_cycle.h).
        const std::int64_t* soa = dom.delay();
        const std::vector<arc_id> critical = peel_critical_cycle_fixed(
            core, ws.walk, pick[l].lambda, dom.scale(l),
            [&](arc_id c) { return soa[std::size_t{c} * W + l]; });
        out[l].critical_cycle_arcs.clear();
        out[l].critical_cycle_arcs.reserve(critical.size());
        for (const arc_id a : critical)
            out[l].critical_cycle_arcs.push_back(core.arc_original[a]);
    });
}

} // namespace

void analyze_cycle_time_lanes(const compiled_graph& cg, const lane_domain& dom,
                              std::uint32_t periods, lane_workspace& ws,
                              std::span<lane_cycle_time> out, bool witness)
{
    require(dom.width() == out.size(), "analyze_cycle_time_lanes: lane count mismatch");
    switch (dom.width()) {
    case 2: return analyze_cycle_time_lanes_impl<2>(cg, dom, periods, ws, out, witness);
    case 4: return analyze_cycle_time_lanes_impl<4>(cg, dom, periods, ws, out, witness);
    case 8: return analyze_cycle_time_lanes_impl<8>(cg, dom, periods, ws, out, witness);
    case 16: return analyze_cycle_time_lanes_impl<16>(cg, dom, periods, ws, out, witness);
    default:
        throw error("analyze_cycle_time_lanes: unsupported lane width " +
                    std::to_string(dom.width()) + " (use 2, 4, 8 or 16)");
    }
}

std::vector<event_id> cycle_time_result::critical_border_events() const
{
    std::vector<event_id> out;
    for (const border_run& run : runs)
        if (run.critical) out.push_back(run.origin);
    return out;
}

std::size_t occurrence_period_bound(const signal_graph& sg)
{
    return sg.border_events().size();
}

cycle_time_solver resolve_cycle_time_solver(cycle_time_solver requested,
                                            std::size_t border_count,
                                            std::size_t core_arc_count)
{
    if (requested != cycle_time_solver::auto_select) return requested;
    if (const char* env = std::getenv("TSG_SOLVER")) {
        const std::string value(env);
        if (value == "howard") return cycle_time_solver::howard;
        if (value == "border" || value == "sweep" || value == "border_sweep")
            return cycle_time_solver::border_sweep;
        require(value.empty() || value == "auto",
                "TSG_SOLVER: unknown solver '" + value + "' (use auto, border or howard)");
    }
    // The border sweep costs O(b^2 m); Howard converges in a few O(m)
    // policy sweeps.  The automatic cutover is deliberately conservative —
    // only cores large enough that the sweep's quadratic border factor
    // clearly dominates switch by themselves, so paper-sized models keep
    // reproducing the paper's algorithm unless a caller (or TSG_SOLVER)
    // asks for policy iteration.
    const std::size_t border_work = border_count * border_count * core_arc_count;
    return core_arc_count >= (1u << 15) && border_work >= (std::size_t{1} << 22)
               ? cycle_time_solver::howard
               : cycle_time_solver::border_sweep;
}

cycle_time_result analyze_cycle_time(const compiled_graph& cg, const analysis_options& options)
{
    const signal_graph& sg = cg.source();
    require(!sg.repetitive_events().empty(),
            "analyze_cycle_time: graph has no repetitive events (acyclic — use analyze_pert)");

    const core_view& core = cg.core();

    // periods/origins/record_tables are simulation knobs: honoring any of
    // them requires the border sweep, so they pin the solver (and clash
    // with an explicit howard request).
    const bool simulation_requested =
        options.periods > 0 || options.record_tables || !options.origins.empty();
    require(!(simulation_requested && options.solver == cycle_time_solver::howard),
            "analyze_cycle_time: periods/origins/record_tables are border-sweep "
            "simulation options — drop them or request the border_sweep solver");
    const cycle_time_solver solver =
        simulation_requested
            ? cycle_time_solver::border_sweep
            : resolve_cycle_time_solver(options.solver, sg.border_events().size(),
                                        core.graph.arc_count());
    ensure(!sg.border_events().empty(), "analyze_cycle_time: live graph with empty border set");
    if (solver == cycle_time_solver::howard) return analyze_with_howard(cg, options);

    const std::vector<event_id>& border =
        options.origins.empty() ? sg.border_events() : options.origins;
    if (!options.origins.empty()) {
        for (const event_id e : options.origins)
            require(e < sg.event_count() && sg.is_repetitive(e),
                    "analyze_cycle_time: custom origins must be repetitive events");
        require(is_cut_set(sg, options.origins),
                "analyze_cycle_time: custom origins do not form a cut set — "
                "some cycle would never be simulated");
    }

    // Horizon: the occurrence period of any simple cycle is bounded by the
    // *border* size (each of its tokens targets a distinct border event),
    // so b periods always suffice — even when simulating from a smaller
    // custom cut set.  (Proposition 6's tighter min-cut bound additionally
    // needs safety; callers may force it through options.periods.)
    const auto b = static_cast<std::uint32_t>(sg.border_events().size());
    const std::uint32_t periods = options.periods > 0 ? options.periods : b;

    if (cg.fixed_point_for_periods(periods))
        return analyze_with_domain(cg, fixed_domain{core.scaled_delay, cg.scale()}, border,
                                   periods, options);
    return analyze_with_domain(cg, rational_domain{core.delay}, border, periods, options);
}

cycle_time_result analyze_cycle_time(const signal_graph& sg, const analysis_options& options)
{
    require(sg.finalized(), "analyze_cycle_time: graph must be finalized");
    require(!sg.repetitive_events().empty(),
            "analyze_cycle_time: graph has no repetitive events (acyclic — use analyze_pert)");
    const compiled_graph cg(sg);
    return analyze_cycle_time(cg, options);
}

distance_series initiated_distance_series(const compiled_graph& cg, event_id origin,
                                          std::uint32_t periods)
{
    const signal_graph& sg = cg.source();
    require(origin < sg.event_count(), "initiated_distance_series: bad event");
    require(sg.is_repetitive(origin),
            "initiated_distance_series: origin must be a repetitive event");

    const core_view& core = cg.core();
    const node_id origin_node = core.event_node[origin];

    distance_series series;
    series.origin = origin;
    series.t.resize(periods);
    series.delta.resize(periods);

    const auto collect = [&](const auto& domain) {
        const auto sweep = run_sweep(core, domain, origin_node, periods, /*capture=*/false);
        for (std::uint32_t i = 1; i <= periods; ++i) {
            if (!sweep.origin_times[i]) continue;
            series.t[i - 1] = domain.to_rational(*sweep.origin_times[i]);
            series.delta[i - 1] = *series.t[i - 1] / rational(i);
        }
    };
    if (cg.fixed_point_for_periods(periods))
        collect(fixed_domain{core.scaled_delay, cg.scale()});
    else
        collect(rational_domain{core.delay});
    return series;
}

distance_series initiated_distance_series(const signal_graph& sg, event_id origin,
                                          std::uint32_t periods)
{
    require(sg.finalized(), "initiated_distance_series: graph must be finalized");
    const compiled_graph cg(sg);
    return initiated_distance_series(cg, origin, periods);
}

} // namespace tsg
