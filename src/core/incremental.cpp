#include "core/incremental.h"

#include <algorithm>
#include <limits>

#include "graph/scc.h"
#include "ratio/condensation.h"

namespace tsg {

namespace {

/// Mirrors the cap in compiled_graph.cpp: beyond this the unfolding would
/// be astronomically larger than any bound the analyses use.
constexpr std::uint32_t max_period_limit = 1u << 20;

void push_touched(std::vector<event_id>& touched, event_id e)
{
    touched.push_back(e);
}

/// Rotates a witness cycle to start at a border event (cosmetic; matches
/// analyze_cycle_time's presentation exactly).
void rotate_cycle_to_border(cycle_time_result& result, const std::vector<event_id>& border)
{
    for (std::size_t k = 0; k < result.critical_cycle_events.size(); ++k) {
        const event_id e = result.critical_cycle_events[k];
        if (std::find(border.begin(), border.end(), e) != border.end()) {
            std::rotate(result.critical_cycle_events.begin(),
                        result.critical_cycle_events.begin() + static_cast<std::ptrdiff_t>(k),
                        result.critical_cycle_events.end());
            std::rotate(result.critical_cycle_arcs.begin(),
                        result.critical_cycle_arcs.begin() + static_cast<std::ptrdiff_t>(k),
                        result.critical_cycle_arcs.end());
            break;
        }
    }
}

} // namespace

incremental_engine::incremental_engine(const signal_graph& sg, compile_options options)
    : sg_(sg), cg_(sg_, options)
{
    // User-intent disengageable flags.  In a finalized graph every
    // disengageable arc has a one-shot source (validate() rejects the
    // rest), so a stored flag on a one-shot-source arc may be pure
    // normalization; should that source ever become repetitive, the arc
    // reverts to engageable — exactly what replaying the current flags
    // into a fresh graph would produce.
    user_diseng_.assign(sg_.arc_count(), 0);
    for (arc_id a = 0; a < sg_.arc_count(); ++a)
        if (sg_.arc_live(a) && sg_.arcs_[a].disengageable &&
            sg_.events_[sg_.arcs_[a].from].kind == event_kind::repetitive)
            user_diseng_[a] = 1;

    for (const std::int64_t v : cg_.scaled_delay_) total_mass_ += v;
    reseed_liveness_order();
    warm_version_ = cg_.structure_version();
}

compiled_graph::structural_state& incremental_engine::mutable_state()
{
    if (cg_.shared_.use_count() > 1)
        cg_.shared_ = std::make_shared<compiled_graph::structural_state>(*cg_.shared_);
    // The engine is the sole owner now; the object was allocated non-const.
    return const_cast<compiled_graph::structural_state&>(*cg_.shared_);
}

void incremental_engine::reseed_liveness_order()
{
    // Token-free live subgraph over *all* events.  Its acyclicity is
    // equivalent to liveness: every cycle's nodes are repetitive, so every
    // cycle lives in the core, and a token-free core cycle is exactly a
    // liveness violation.
    const digraph& g = sg_.structure_;
    std::vector<bool> keep(g.arc_count(), false);
    for (node_id v = 0; v < g.node_count(); ++v)
        for (const arc_id a : g.out_arcs(v)) keep[a] = !sg_.arcs_[a].marked;
    const auto order = topological_order_filtered(g, keep);
    ensure(order.has_value(), "incremental_engine: live graph has a token-free cycle");
    pk_.reset_order(*order);
}

void incremental_engine::pk_require_acyclic(event_id from, event_id to)
{
    // Callbacks enumerate the current token-free live subgraph; the edge
    // under test must not be in the digraph yet (add_edge's contract).
    const auto succ = [this](node_id w, auto&& f) {
        for (const arc_id a : sg_.structure_.out_arcs(w))
            if (!sg_.arcs_[a].marked) f(sg_.arcs_[a].to);
    };
    const auto pred = [this](node_id w, auto&& f) {
        for (const arc_id a : sg_.structure_.in_arcs(w))
            if (!sg_.arcs_[a].marked) f(sg_.arcs_[a].from);
    };
    const incremental_topo::insert_result r = pk_.add_edge(from, to, succ, pred);
    counters_.topo_window += r.window;
    require(r.acyclic, "incremental_engine: edit closes a token-free cycle ('" +
                           sg_.events_[from].name + "' -> '" + sg_.events_[to].name +
                           "' breaks liveness)");
}

// --- raw edit application ----------------------------------------------------

void incremental_engine::patch_scaled(arc_id a, const rational& value, dirty& d)
{
    if (!cg_.use_fixed_point_) return;
    if (cg_.scale_ == 0) {
        d.fp_dirty = true; // domain disabled; a recompute may re-enable it
        return;
    }
    const std::int64_t den = value.den();
    if (cg_.scale_ % den != 0) {
        d.fp_dirty = true; // new denominator outside the current LCM
        return;
    }
    const std::int64_t q = cg_.scale_ / den;
    if (value.num() > std::numeric_limits<std::int64_t>::max() / q) {
        d.fp_dirty = true; // scaled value would overflow
        return;
    }
    const std::int64_t v = value.num() * q;
    total_mass_ += v - cg_.scaled_delay_[a];
    cg_.scaled_delay_[a] = v;
}

void incremental_engine::raw_insert_arc(arc_id a, const arc_info& info, bool user_diseng,
                                        dirty& d, bool restore)
{
    if (!info.marked) pk_require_acyclic(info.from, info.to);

    compiled_graph::structural_state& state = mutable_state();
    if (restore) {
        sg_.structure_.restore_arc(a, info.from, info.to);
        state.structure.patch_restore_arc(a, info.from, info.to);
        sg_.arcs_[a] = info;
        user_diseng_[a] = user_diseng ? 1 : 0;
        cg_.delay_[a] = info.delay;
    } else {
        const arc_id ga = sg_.structure_.add_arc(info.from, info.to);
        const arc_id ca = state.structure.patch_add_arc(info.from, info.to);
        ensure(ga == a && ca == a, "incremental_engine: arc ids desynchronized");
        sg_.arcs_.push_back(info);
        user_diseng_.push_back(user_diseng ? 1 : 0);
        cg_.delay_.push_back(info.delay);
        if (cg_.scale_ != 0) cg_.scaled_delay_.push_back(0);
    }
    patch_scaled(a, info.delay, d);
    ++counters_.arcs_repaired;

    d.structural = true;
    push_touched(d.touched, info.from);
    push_touched(d.touched, info.to);
    d.edited_arcs.push_back(a);
    const bool from_rep = sg_.events_[info.from].kind == event_kind::repetitive;
    const bool to_rep = sg_.events_[info.to].kind == event_kind::repetitive;
    if (from_rep && to_rep) {
        // Boundedness keeps every path out of the core inside the core, so
        // any cycle through this arc uses core nodes only: membership is
        // provably unchanged, no SCC work needed.
        ++counters_.scc_runs_skipped;
    } else {
        d.added_noncore = true;
        d.grown.emplace_back(a, info.from, info.to);
    }
}

void incremental_engine::raw_remove_arc(arc_id a, dirty& d)
{
    const arc_info prev = sg_.arcs_[a];
    compiled_graph::structural_state& state = mutable_state();
    sg_.structure_.remove_arc(a);
    state.structure.patch_remove_arc(a);
    ++counters_.arcs_repaired;

    // Dead slots read as neutral payload: invalid endpoints, zero delay
    // (LCM- and mass-neutral), no marking, no flags.
    sg_.arcs_[a] = arc_info{};
    user_diseng_[a] = 0;
    cg_.delay_[a] = rational(0);
    if (cg_.scale_ != 0) {
        total_mass_ -= cg_.scaled_delay_[a];
        cg_.scaled_delay_[a] = 0;
    }
    d.delay = true; // the slot's delay changed to 0

    d.structural = true;
    push_touched(d.touched, prev.from);
    push_touched(d.touched, prev.to);
    d.edited_arcs.push_back(a);
    if (sg_.events_[prev.from].kind == event_kind::repetitive &&
        sg_.events_[prev.to].kind == event_kind::repetitive)
        d.removed_core_arc = true;
    else
        ++counters_.scc_runs_skipped; // one-shot endpoints: never on a cycle
}

void incremental_engine::raw_pop_arc(dirty& d)
{
    const auto a = static_cast<arc_id>(sg_.arcs_.size() - 1);
    const arc_info prev = sg_.arcs_[a];
    compiled_graph::structural_state& state = mutable_state();
    if (sg_.structure_.is_live(a)) {
        push_touched(d.touched, prev.from);
        push_touched(d.touched, prev.to);
        if (sg_.events_[prev.from].kind == event_kind::repetitive &&
            sg_.events_[prev.to].kind == event_kind::repetitive)
            d.removed_core_arc = true;
        if (cg_.scale_ != 0) total_mass_ -= cg_.scaled_delay_[a];
    }
    sg_.structure_.pop_arc();
    state.structure.patch_pop_arc();
    ++counters_.arcs_repaired;
    sg_.arcs_.pop_back();
    user_diseng_.pop_back();
    cg_.delay_.pop_back();
    if (cg_.scale_ != 0) cg_.scaled_delay_.pop_back();
    d.structural = true;
}

void incremental_engine::raw_set_delay(arc_id a, const rational& value, dirty& d)
{
    sg_.arcs_[a].delay = value;
    cg_.delay_[a] = value;
    patch_scaled(a, value, d);
    d.delay = true;
}

void incremental_engine::apply_raw(const graph_edit& e, std::vector<applied_edit>& log,
                                   dirty& d)
{
    switch (e.kind) {
    case graph_edit::op::add_arc: {
        require(e.from < sg_.event_count() && e.to < sg_.event_count(),
                "incremental_engine: add_arc endpoint out of range");
        require(!e.delay.is_negative(), "incremental_engine: negative delay");
        const auto a = static_cast<arc_id>(sg_.arcs_.size());
        const arc_info info{e.from, e.to, e.delay, e.marked, e.disengageable};
        raw_insert_arc(a, info, e.disengageable, d, /*restore=*/false);
        log.push_back({graph_edit::op::add_arc, a, arc_info{}, false});
        break;
    }
    case graph_edit::op::remove_arc: {
        require(e.arc < sg_.arc_count() && sg_.arc_live(e.arc),
                "incremental_engine: remove_arc target is not a live arc");
        const applied_edit rec{graph_edit::op::remove_arc, e.arc, sg_.arcs_[e.arc],
                               user_diseng_[e.arc] != 0};
        raw_remove_arc(e.arc, d);
        log.push_back(rec);
        break;
    }
    case graph_edit::op::set_delay: {
        require(e.arc < sg_.arc_count() && sg_.arc_live(e.arc),
                "incremental_engine: set_delay target is not a live arc");
        require(!e.delay.is_negative(), "incremental_engine: negative delay");
        const applied_edit rec{graph_edit::op::set_delay, e.arc, sg_.arcs_[e.arc],
                               user_diseng_[e.arc] != 0};
        raw_set_delay(e.arc, e.delay, d);
        log.push_back(rec);
        break;
    }
    case graph_edit::op::retarget: {
        require(e.arc < sg_.arc_count() && sg_.arc_live(e.arc),
                "incremental_engine: retarget target is not a live arc");
        require(e.from < sg_.event_count() && e.to < sg_.event_count(),
                "incremental_engine: retarget endpoint out of range");
        const applied_edit rec{graph_edit::op::retarget, e.arc, sg_.arcs_[e.arc],
                               user_diseng_[e.arc] != 0};
        arc_info moved = rec.prev;
        moved.from = e.from;
        moved.to = e.to;
        raw_remove_arc(e.arc, d);
        try {
            raw_insert_arc(e.arc, moved, rec.prev_user_diseng, d, /*restore=*/true);
        } catch (...) {
            // Liveness refusal mid-op: put the arc back before unwinding so
            // the batch rollback sees a consistent log.
            raw_insert_arc(e.arc, rec.prev, rec.prev_user_diseng, d, /*restore=*/true);
            throw;
        }
        log.push_back(rec);
        break;
    }
    case graph_edit::op::set_marking: {
        require(e.arc < sg_.arc_count() && sg_.arc_live(e.arc),
                "incremental_engine: set_marking target is not a live arc");
        const applied_edit rec{graph_edit::op::set_marking, e.arc, sg_.arcs_[e.arc],
                               user_diseng_[e.arc] != 0};
        arc_info& arc = sg_.arcs_[e.arc];
        if (arc.marked != e.marked) {
            // Unmarking re-introduces a token-free edge; the flag is still
            // set while the oracle runs, so the callbacks exclude the arc.
            if (!e.marked) pk_require_acyclic(arc.from, arc.to);
            arc.marked = e.marked;
            d.marking = true;
            push_touched(d.touched, arc.from);
            push_touched(d.touched, arc.to);
        }
        log.push_back(rec);
        break;
    }
    }
}

void incremental_engine::invert_raw(const applied_edit& rec, dirty& d)
{
    switch (rec.kind) {
    case graph_edit::op::add_arc:
        ensure(rec.arc + 1 == sg_.arcs_.size(),
               "incremental_engine: undo log out of order");
        raw_pop_arc(d);
        break;
    case graph_edit::op::remove_arc:
        raw_insert_arc(rec.arc, rec.prev, rec.prev_user_diseng, d, /*restore=*/true);
        break;
    case graph_edit::op::set_delay:
        raw_set_delay(rec.arc, rec.prev.delay, d);
        break;
    case graph_edit::op::retarget:
        raw_remove_arc(rec.arc, d);
        raw_insert_arc(rec.arc, rec.prev, rec.prev_user_diseng, d, /*restore=*/true);
        break;
    case graph_edit::op::set_marking: {
        arc_info& arc = sg_.arcs_[rec.arc];
        if (arc.marked != rec.prev.marked) {
            if (!rec.prev.marked) pk_require_acyclic(arc.from, arc.to);
            arc.marked = rec.prev.marked;
            d.marking = true;
            push_touched(d.touched, arc.from);
            push_touched(d.touched, arc.to);
        }
        break;
    }
    }
}

void incremental_engine::rollback(const std::vector<applied_edit>& log)
{
    dirty d;
    for (auto it = log.rbegin(); it != log.rend(); ++it) invert_raw(*it, d);
    // derive() may have thrown mid-flight with classification half
    // updated; rebuild all derived state from the (restored, known valid)
    // raw structure.  Error path only — cost does not matter.
    restore_derived();
}

// --- derived-state maintenance ----------------------------------------------

incremental_engine::core_digraph incremental_engine::build_core_digraph() const
{
    core_digraph core;
    core.event_node.assign(sg_.event_count(), invalid_node);
    for (const event_id e : sg_.repetitive_) {
        core.event_node[e] = core.graph.add_node();
        core.node_event.push_back(e);
    }
    // Adjacency-driven: O(core size), not O(all arcs).  Boundedness (held
    // before the batch, re-validated for every touched arc) keeps out-arcs
    // of repetitive events inside the repetitive set.
    for (const event_id e : sg_.repetitive_)
        for (const arc_id a : sg_.structure_.out_arcs(e)) {
            const node_id v = core.event_node[sg_.arcs_[a].to];
            if (v != invalid_node) core.graph.add_arc(core.event_node[e], v);
        }
    return core;
}

void incremental_engine::recompute_membership(dirty& d, std::vector<event_id>& kind_changed)
{
    const bool grow = d.added_noncore;
    const bool shrink = d.removed_core_arc;
    if (!grow && !shrink) return; // every structural edit was membership-safe

    const auto classify_one_shot = [&](event_id e) {
        sg_.events_[e].kind = sg_.structure_.in_degree(e) == 0 ? event_kind::initial
                                                               : event_kind::transient;
    };

    if (grow && shrink) {
        // Mixed batch (removals compounding with one-shot-touching
        // additions): membership can move both ways — recondense the whole
        // structure.
        const std::vector<bool> cyclic = nodes_on_cycles(sg_.structure_);
        for (event_id e = 0; e < sg_.event_count(); ++e) {
            const bool was = sg_.events_[e].kind == event_kind::repetitive;
            if (was == cyclic[e]) continue;
            if (cyclic[e])
                sg_.events_[e].kind = event_kind::repetitive;
            else
                classify_one_shot(e);
            kind_changed.push_back(e);
        }
        ++counters_.sccs_recondensed;
        counters_.scc_window += sg_.event_count();
        return;
    }

    if (shrink) {
        // Removals only: membership can only leave the current core, and
        // every surviving cycle lies inside it, so recondense just the
        // core-induced subgraph.
        const core_digraph core = build_core_digraph();
        const std::vector<bool> cyclic = nodes_on_cycles(core.graph);
        for (std::size_t i = 0; i < core.node_event.size(); ++i) {
            if (cyclic[i]) continue;
            const event_id e = core.node_event[i];
            classify_one_shot(e);
            kind_changed.push_back(e);
        }
        ++counters_.sccs_recondensed;
        counters_.scc_window += core.node_event.size();
        return;
    }

    // Additions only: membership can only grow, and every new cycle runs
    // through one of the recorded arcs (u, v) — its nodes lie on a v -> u
    // path, i.e. in forward-reach(v) intersected with backward-reach(u).
    std::vector<std::uint8_t> fwd(sg_.event_count(), 0);
    std::vector<std::uint8_t> bwd(sg_.event_count(), 0);
    std::vector<event_id> stack;
    for (const auto& [arc, u, v] : d.grown) {
        // The arc may have been removed, moved — or popped entirely by an
        // undone add — later in the batch.
        if (arc >= sg_.arc_count() || !sg_.arc_live(arc) || sg_.arcs_[arc].from != u ||
            sg_.arcs_[arc].to != v)
            continue;
        std::fill(fwd.begin(), fwd.end(), 0);
        std::fill(bwd.begin(), bwd.end(), 0);
        std::size_t window = 0;
        stack.assign(1, v);
        fwd[v] = 1;
        while (!stack.empty()) {
            const event_id w = stack.back();
            stack.pop_back();
            ++window;
            for (const arc_id a : sg_.structure_.out_arcs(w)) {
                const event_id x = sg_.arcs_[a].to;
                if (!fwd[x]) {
                    fwd[x] = 1;
                    stack.push_back(x);
                }
            }
        }
        stack.assign(1, u);
        bwd[u] = 1;
        while (!stack.empty()) {
            const event_id w = stack.back();
            stack.pop_back();
            ++window;
            for (const arc_id a : sg_.structure_.in_arcs(w)) {
                const event_id x = sg_.arcs_[a].from;
                if (!bwd[x]) {
                    bwd[x] = 1;
                    stack.push_back(x);
                }
            }
        }
        for (event_id e = 0; e < sg_.event_count(); ++e) {
            if (!fwd[e] || !bwd[e]) continue;
            if (sg_.events_[e].kind == event_kind::repetitive) continue;
            sg_.events_[e].kind = event_kind::repetitive;
            kind_changed.push_back(e);
        }
        ++counters_.sccs_recondensed;
        counters_.scc_window += window;
    }
}

void incremental_engine::refresh_fixed_point(dirty& d)
{
    if (!cg_.use_fixed_point_) return;
    if (!d.delay && !d.fp_dirty) return;

    if (!d.fp_dirty && cg_.scale_ != 0) {
        // Every touched delay was patched in the current scale; only the
        // period budget needs a refresh from the tracked mass.
        const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;
        const int128 limit = total_mass_ == 0 ? max_period_limit : budget / total_mass_;
        if (limit >= 2) {
            cg_.period_limit_ =
                static_cast<std::uint32_t>(std::min<int128>(limit, max_period_limit));
            ++counters_.fixed_point_patches;
            return;
        }
        // The monotone scale grew too heavy for even one period; fall
        // through to the full recomputation, which may find a smaller LCM.
    }

    cg_.scale_ = 0;
    cg_.period_limit_ = 0;
    cg_.scaled_delay_.clear();
    cg_.compile_fixed_point();
    total_mass_ = 0;
    for (const std::int64_t v : cg_.scaled_delay_) total_mass_ += v;
    ++counters_.fixed_point_recomputes;
}

void incremental_engine::derive(dirty& d)
{
    compiled_graph::structural_state& state = mutable_state();
    const bool had_core = state.core.has_value();

    std::vector<event_id> kind_changed;
    if (d.structural) recompute_membership(d, kind_changed);

    // One-shot endpoints of edited arcs: an in-degree change flips
    // initial <-> transient.
    bool lists_dirty = !kind_changed.empty();
    std::sort(d.touched.begin(), d.touched.end());
    d.touched.erase(std::unique(d.touched.begin(), d.touched.end()), d.touched.end());
    for (const event_id e : d.touched) {
        event_info& info = sg_.events_[e];
        if (info.kind == event_kind::repetitive) continue;
        const event_kind want = sg_.structure_.in_degree(e) == 0 ? event_kind::initial
                                                                 : event_kind::transient;
        if (info.kind != want) {
            info.kind = want;
            lists_dirty = true;
        }
    }

    if (lists_dirty) {
        sg_.repetitive_.clear();
        sg_.initial_.clear();
        sg_.transient_.clear();
        for (event_id e = 0; e < sg_.event_count(); ++e) {
            switch (sg_.events_[e].kind) {
            case event_kind::repetitive: sg_.repetitive_.push_back(e); break;
            case event_kind::initial: sg_.initial_.push_back(e); break;
            case event_kind::transient: sg_.transient_.push_back(e); break;
            }
        }
    }

    // Disengageable re-normalization and validation, over the affected
    // arcs only: the edited ones plus everything incident to an event
    // whose repetitive status changed (unedited arcs elsewhere hold by the
    // pre-batch invariants).
    // Edited ids can outlive their arc (popped by an undone add in the
    // same batch): everything below filters through this guard.
    const auto arc_ok = [&](arc_id a) { return a < sg_.arc_count() && sg_.arc_live(a); };
    const auto renormalize = [&](arc_id a) {
        sg_.arcs_[a].disengageable =
            user_diseng_[a] != 0 ||
            sg_.events_[sg_.arcs_[a].from].kind != event_kind::repetitive;
    };
    const auto check = [&](arc_id a) {
        const arc_info& arc = sg_.arcs_[a];
        const bool from_rep = sg_.events_[arc.from].kind == event_kind::repetitive;
        const bool to_rep = sg_.events_[arc.to].kind == event_kind::repetitive;
        if (arc.disengageable && from_rep)
            throw error("incremental_engine: disengageable arc sourced at repetitive "
                        "event '" +
                        sg_.events_[arc.from].name + "' violates well-formedness");
        if (from_rep && !to_rep)
            throw error("incremental_engine: arc from repetitive '" +
                        sg_.events_[arc.from].name + "' to one-shot '" +
                        sg_.events_[arc.to].name + "' makes the graph unbounded");
    };
    for (const arc_id a : d.edited_arcs)
        if (arc_ok(a)) renormalize(a);
    for (const event_id e : kind_changed)
        for (const arc_id a : sg_.structure_.out_arcs(e)) renormalize(a);
    for (const arc_id a : d.edited_arcs)
        if (arc_ok(a)) check(a);
    for (const event_id e : kind_changed) {
        for (const arc_id a : sg_.structure_.out_arcs(e)) check(a);
        for (const arc_id a : sg_.structure_.in_arcs(e)) check(a);
    }

    // The core must stay one strongly connected component.  Pure
    // core-interior additions cannot break connectivity; everything that
    // removed a core arc or changed membership gets re-checked.
    if (!sg_.repetitive_.empty() &&
        (!kind_changed.empty() || d.removed_core_arc || d.added_noncore)) {
        const core_digraph core = build_core_digraph();
        require(is_strongly_connected(core.graph),
                "incremental_engine: repetitive events no longer form one strongly "
                "connected component");
    }

    if (d.structural || d.marking || lists_dirty) {
        ++state.version;
        // Border set: repetitive events with a marked in-arc.
        sg_.border_.clear();
        for (const event_id e : sg_.repetitive_) {
            const auto in = sg_.structure_.in_arcs(e);
            if (std::any_of(in.begin(), in.end(),
                            [&](arc_id a) { return sg_.arcs_[a].marked; }))
                sg_.border_.push_back(e);
        }
        if (sg_.repetitive_.empty()) {
            state.core.reset();
            auto order = topological_order(state.structure);
            ensure(order.has_value(),
                   "incremental_engine: graph without repetitive events has a cycle");
            state.acyclic_order = std::move(*order);
            if (had_core) ++counters_.full_rebuilds;
        } else {
            state.acyclic_order.reset();
            // Canonical regeneration (same deterministic Kahn pass as a
            // fresh compile) — this is what keeps sweep orders, and hence
            // witnesses, bit-identical to finalize() + compile().
            cg_.compile_core(state);
            ++counters_.core_rebuilds;
            if (!had_core) ++counters_.full_rebuilds;
        }
    }

    refresh_fixed_point(d);
    if (d.delay || d.structural || d.marking) cg_.bind_core_delays();
    counters_.csr_compactions = state.structure.patch_compactions();
}

void incremental_engine::restore_derived()
{
    compiled_graph::structural_state& state = mutable_state();
    const bool had_core = state.core.has_value();

    // Classification from scratch (classify_events(), with disengageable
    // flags re-derived from the stored user intent instead of only ever
    // being forced on).
    const std::vector<bool> cyclic = nodes_on_cycles(sg_.structure_);
    sg_.repetitive_.clear();
    sg_.initial_.clear();
    sg_.transient_.clear();
    for (event_id e = 0; e < sg_.event_count(); ++e) {
        if (cyclic[e]) {
            sg_.events_[e].kind = event_kind::repetitive;
            sg_.repetitive_.push_back(e);
        } else if (sg_.structure_.in_degree(e) == 0) {
            sg_.events_[e].kind = event_kind::initial;
            sg_.initial_.push_back(e);
        } else {
            sg_.events_[e].kind = event_kind::transient;
            sg_.transient_.push_back(e);
        }
    }
    for (arc_id a = 0; a < sg_.arc_count(); ++a)
        if (sg_.arc_live(a))
            sg_.arcs_[a].disengageable =
                user_diseng_[a] != 0 ||
                sg_.events_[sg_.arcs_[a].from].kind != event_kind::repetitive;
    sg_.border_.clear();
    for (const event_id e : sg_.repetitive_) {
        const auto in = sg_.structure_.in_arcs(e);
        if (std::any_of(in.begin(), in.end(),
                        [&](arc_id a) { return sg_.arcs_[a].marked; }))
            sg_.border_.push_back(e);
    }

    ++state.version;
    if (sg_.repetitive_.empty()) {
        state.core.reset();
        auto order = topological_order(state.structure);
        ensure(order.has_value(), "incremental_engine: rollback left a cycle");
        state.acyclic_order = std::move(*order);
        if (had_core) ++counters_.full_rebuilds;
    } else {
        state.acyclic_order.reset();
        cg_.compile_core(state);
        ++counters_.core_rebuilds;
        if (!had_core) ++counters_.full_rebuilds;
    }

    cg_.scale_ = 0;
    cg_.period_limit_ = 0;
    cg_.scaled_delay_.clear();
    if (cg_.use_fixed_point_) cg_.compile_fixed_point();
    total_mass_ = 0;
    for (const std::int64_t v : cg_.scaled_delay_) total_mass_ += v;
    cg_.bind_core_delays();
    counters_.csr_compactions = state.structure.patch_compactions();
}

// --- public edit API ---------------------------------------------------------

void incremental_engine::apply(const edit_batch& batch)
{
    require(!batch.empty(), "incremental_engine::apply: empty batch");
    std::vector<applied_edit> log;
    log.reserve(batch.size());
    dirty d;
    try {
        for (const graph_edit& e : batch) apply_raw(e, log, d);
        derive(d);
    } catch (...) {
        rollback(log);
        throw;
    }
    undo_log_.push_back(std::move(log));
    ++counters_.batches_applied;
    counters_.edits_applied += batch.size();
}

arc_id incremental_engine::add_arc(event_id from, event_id to, rational delay, bool marked,
                                   bool disengageable)
{
    const auto a = static_cast<arc_id>(sg_.arcs_.size());
    apply({graph_edit::add(from, to, std::move(delay), marked, disengageable)});
    return a;
}

void incremental_engine::remove_arc(arc_id arc) { apply({graph_edit::remove(arc)}); }

void incremental_engine::set_delay(arc_id arc, rational delay)
{
    apply({graph_edit::set_delay_of(arc, std::move(delay))});
}

void incremental_engine::retarget(arc_id arc, event_id from, event_id to)
{
    apply({graph_edit::retarget_to(arc, from, to)});
}

void incremental_engine::set_marking(arc_id arc, bool marked)
{
    apply({graph_edit::set_marking_of(arc, marked)});
}

void incremental_engine::undo()
{
    require(!undo_log_.empty(), "incremental_engine::undo: nothing to undo");
    std::vector<applied_edit> log = std::move(undo_log_.back());
    undo_log_.pop_back();
    dirty d;
    for (auto it = log.rbegin(); it != log.rend(); ++it) invert_raw(*it, d);
    derive(d); // cannot fail validation: the pre-batch state was valid
    ++counters_.undos;
}

// --- analysis ----------------------------------------------------------------

cycle_time_result incremental_engine::analyze(const analysis_options& options)
{
    require(!sg_.repetitive_events().empty(),
            "incremental_engine::analyze: graph has no repetitive events (acyclic — use "
            "analyze_pert)");
    // Straight delegation: bit-identical to analyzing a fresh compile of
    // the edited graph, by the snapshot-equivalence invariant.
    return analyze_cycle_time(cg_, options);
}

cycle_time_result incremental_engine::analyze_warm()
{
    require(!sg_.repetitive_events().empty(),
            "incremental_engine::analyze_warm: graph has no repetitive events (acyclic — "
            "use analyze_pert)");

    // The converged policy survives while the core structure does
    // (structure_version() unchanged — delay-only batches); the problem's
    // delay domain is rebound in place per call.
    if (warm_problem_ && warm_version_ == cg_.structure_version()) {
        rebind_ratio_problem(*warm_problem_, cg_);
        ++counters_.warm_states_kept;
    } else {
        if (warm_problem_) ++counters_.warm_states_dropped;
        warm_problem_.emplace(make_ratio_problem(cg_));
        warm_state_.policy.clear();
        warm_version_ = cg_.structure_version();
    }
    const ratio_problem& p = *warm_problem_;
    const ratio_result r = max_cycle_ratio_howard(p, howard_options{}, &warm_state_);

    cycle_time_result result;
    result.border_count = sg_.border_events().size();
    result.periods_used = 0;
    result.cycle_time = r.ratio;
    std::uint32_t epsilon = 0;
    for (const arc_id a : r.cycle) {
        result.critical_cycle_events.push_back(p.node_event[p.graph.from(a)]);
        result.critical_cycle_arcs.push_back(p.arc_original[a]);
        epsilon += static_cast<std::uint32_t>(p.transit[a]);
    }
    result.critical_occurrence_period = epsilon;
    rotate_cycle_to_border(result, sg_.border_events());
    return result;
}

} // namespace tsg
