// Structure-of-arrays multi-scenario delay domain — the data layout behind
// the lane-batched scenario hot path.
//
// The scenario engine evaluates thousands of delay assignments against one
// compiled structure.  Scalar rebinds make every assignment pay a full
// longest-path sweep alone: one int64 add/compare per arc per period, with
// the memory system and the vector units idle.  A lane_domain instead packs
// W ("lane count") scenarios' scaled-int64 delays arc-major-contiguous,
//
//     delay[arc * W + lane]
//
// so the sweeps in core/cycle_time.cpp, core/slack.cpp and core/pert.cpp —
// templated over W — update all W lanes of an arc in one pass over the CSR
// structure.  The inner loops are branch-free add/max/select over adjacent
// memory and auto-vectorize (see util/simd.h); every lane remains an
// independent exact computation, bit-identical to its scalar rebind.
//
// Per-lane domains.  Each lane keeps its own fixed-point scale (the LCM of
// its delay denominators), computed by the same code as the scalar rebind
// (compute_fixed_point_domain).  A lane whose scale or period budget would
// overflow is *evicted*: its SoA slots are zero-filled (benign values for
// the sweeps, whose results for that lane are discarded) and the engine
// re-evaluates just that scenario through the exact rational path — sibling
// lanes stay packed and exact, mirroring the scalar rebind's per-scenario
// fallback.
//
// Unreached encoding.  The lane sweeps have no per-lane reached flags;
// "unreached" is the sentinel value `unreached` (INT64_MIN / 2).  Real
// occurrence times are sums of non-negative scaled delays, hence >= 0;
// sentinel arithmetic stays strictly negative because every lane's period
// budget bounds accumulated delay mass by INT64_MAX / 4 (see
// compute_fixed_point_domain), so `sentinel + mass < 0 <= real` and a
// relaxation can never confuse the two.  Reached == value >= 0.
#ifndef TSG_CORE_LANE_DOMAIN_H
#define TSG_CORE_LANE_DOMAIN_H

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/compiled_graph.h"
#include "util/rational.h"

namespace tsg {

/// Scratch buffers shared by the lane sweeps (cycle time, slack, PERT) and
/// reused across lane groups by each scenario worker.  Members are working
/// storage with kernel-defined layout — not results.
struct lane_workspace {
    std::vector<std::int64_t> t_prev;       ///< previous-period row, n * W
    std::vector<std::int64_t> t_cur;        ///< current-period row, n * W
    std::vector<std::int64_t> origin_time;  ///< per run: (periods + 1) * W
    std::vector<std::int64_t> pred;         ///< capture: (periods + 1) * n * W;
                                            ///< arc ids widened to int64 so the
                                            ///< value/pred blends share one width
    std::vector<std::int64_t> weight;       ///< slack: reduced weights, m * W
    std::vector<std::int64_t> potential;    ///< slack: BF potentials, n * W
    std::vector<arc_id> walk;               ///< backtrack scratch

    // Sweep-order packing (cycle-time lanes): the token-free relaxation
    // sequence flattened in the exact order the sweep walks it, so the hot
    // loop streams delays and heads sequentially instead of gathering by
    // arc id.  The structural arrays are built once per workspace — keyed
    // on (pack_of, pack_version), because the incremental edit layer
    // patches compiled cores *in place*: the object address survives a
    // structural batch, only structure_version() tells the packs apart —
    // the delay copies once per lane group.
    // Value rows are indexed by *topo position*, not node id: the flat
    // in-period stream then reads its source rows in ascending memory
    // order (the prefetcher's favourite), and only head rows scatter.
    const void* pack_of = nullptr;          ///< identity of the packed core
    std::uint64_t pack_version = 0;         ///< structure_version() at pack time
    std::vector<std::uint32_t> topo_pos;    ///< node -> topo position (row index)
    std::vector<std::uint32_t> sweep_src;   ///< per slot: source row
    std::vector<std::uint32_t> sweep_head;  ///< per slot: head row
    std::vector<arc_id> sweep_arc;          ///< per slot: core arc id
    std::vector<std::uint32_t> tok_src;     ///< token arcs (rows), token_arcs order
    std::vector<std::uint32_t> tok_head;
    std::vector<arc_id> tok_arc;
    std::vector<std::int64_t> sweep_delay;  ///< per slot: W delay lanes
    std::vector<std::int64_t> tok_delay;    ///< per token arc: W delay lanes
};

/// W scenarios' delays packed arc-major (delay[arc * W + lane]) in per-lane
/// fixed-point domains.  For cyclic graphs the arc set is the repetitive
/// core (sweep indexing == core arc ids); for acyclic graphs it is the full
/// structure (PERT indexing == original arc ids).
class lane_domain {
public:
    /// Sentinel for "instantiation not reached" in the lane sweeps.
    static constexpr std::int64_t unreached = std::numeric_limits<std::int64_t>::min() / 2;

    /// Packs `lanes.size()` delay assignments (full original-arc indexing,
    /// validated like compiled_graph::rebind) against `base`'s structure,
    /// for sweeps covering `periods` unfolding periods.  Reuses this
    /// object's storage — the engine calls it once per lane group.
    ///
    /// Lanes that cannot live in the scaled-int64 domain for `periods`
    /// (exactly the assignments whose scalar rebind would fall back to
    /// rational arithmetic) are marked evicted and zero-filled.
    void rebind_lanes(const compiled_graph& base,
                      std::span<const std::vector<rational>* const> lanes,
                      std::uint32_t periods);

    /// Delta-aware packing: `delta_hint[lane]`, when not invalid_arc,
    /// promises that the lane's assignment equals base's bound delays at
    /// every arc except that one (the scenario engine's delta_arc
    /// contract, validated in debug builds).  A hinted lane skips the
    /// per-lane LCM scan and rational rescale entirely: it adopts base's
    /// fixed-point scale, its rows are streamed from base's already-scaled
    /// delays, and only the dirty arc's row is recomputed.  Results stay
    /// bit-identical to the dense rebind — the reused scale is a multiple
    /// of the lane's minimal LCM and every analysis is scale-invariant —
    /// and so does the evicted set: when the reuse preconditions fail
    /// (base not in fixed point, denominator not dividing base's scale,
    /// scaled value or period budget overflowing) the lane falls back to
    /// the dense path below, which decides eviction exactly like the
    /// scalar rebind.  An empty `delta_hint` means all-dense.
    void rebind_lanes(const compiled_graph& base,
                      std::span<const std::vector<rational>* const> lanes,
                      std::uint32_t periods, std::span<const arc_id> delta_hint);

    /// Convenience overload for contiguous assignments.
    void rebind_lanes(const compiled_graph& base, std::span<const std::vector<rational>> lanes,
                      std::uint32_t periods);

    [[nodiscard]] unsigned width() const noexcept { return width_; }
    [[nodiscard]] std::size_t arc_count() const noexcept { return arcs_; }

    [[nodiscard]] bool evicted(unsigned lane) const noexcept { return evicted_[lane] != 0; }
    [[nodiscard]] std::size_t evicted_count() const noexcept { return evicted_count_; }

    /// The lane's fixed-point scale; 0 when evicted.
    [[nodiscard]] std::int64_t scale(unsigned lane) const noexcept { return scale_[lane]; }

    /// Exact conversion out of the lane's domain (lane must not be evicted).
    [[nodiscard]] rational unscale(unsigned lane, std::int64_t v) const
    {
        return {v, scale_[lane]};
    }

    /// The SoA delay array, delay[arc * width() + lane].
    [[nodiscard]] const std::int64_t* delay() const noexcept { return delay_.data(); }

    // Cumulative packing accounting (since construction): rows whose
    // scaled values were lifted straight from the base snapshot via a
    // delta hint vs rows that went through the rational rescale.  The
    // scenario engine surfaces these per batch.
    [[nodiscard]] std::uint64_t rows_reused() const noexcept { return rows_reused_; }
    [[nodiscard]] std::uint64_t rows_repacked() const noexcept { return rows_repacked_; }

private:
    unsigned width_ = 0;
    std::size_t arcs_ = 0;
    std::size_t evicted_count_ = 0;
    std::vector<std::int64_t> scale_;
    std::vector<std::uint8_t> evicted_;
    std::vector<std::int64_t> delay_;
    std::vector<fixed_point_domain> scratch_; ///< per-lane domains, storage reused
    std::uint64_t rows_reused_ = 0;
    std::uint64_t rows_repacked_ = 0;

    // Inverse core projection (original arc -> core arc), built lazily for
    // the dirty-row fix and cached on (identity, structure version) — the
    // incremental edit layer patches compiled cores in place, so the
    // address alone cannot key the cache.
    const void* inverse_of_ = nullptr;
    std::uint64_t inverse_version_ = 0;
    std::vector<arc_id> core_row_;
};

} // namespace tsg

#endif // TSG_CORE_LANE_DOMAIN_H
