// Greedy performance optimization: which arcs to speed up, and by how
// much, to reach a target cycle time.
//
// The cycle time is the maximum cycle ratio, so only arcs on *current*
// critical cycles are worth accelerating.  Each step picks the
// largest-delay reducible arc of a critical cycle, removes just enough
// delay to bring that cycle to the target (bounded below by a per-arc
// floor modelling physical limits), and re-analyzes — other cycles may
// take over as critical.  This is the analysis-driven optimization loop
// of Burns' thesis (the paper's reference [2]) built on the paper's own
// algorithm.
#ifndef TSG_CORE_OPTIMIZE_H
#define TSG_CORE_OPTIMIZE_H

#include <vector>

#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct speedup_step {
    arc_id arc = invalid_arc;   ///< original arc accelerated in this step
    rational old_delay;
    rational new_delay;
    rational lambda_after;      ///< cycle time after applying the step
};

struct speedup_plan {
    rational initial_cycle_time;
    rational final_cycle_time;
    bool target_reached = false;
    std::vector<speedup_step> steps;

    /// The optimized graph (delays updated per the steps).
    signal_graph optimized;
};

struct speedup_options {
    rational target;             ///< desired cycle time
    rational min_arc_delay = 0;  ///< no arc may drop below this delay
    std::size_t max_steps = 256; ///< give up after this many accelerations
};

/// Plans delay reductions until the cycle time reaches the target, a step
/// budget runs out, or no critical arc can be reduced any further (the
/// target is then unreachable under the floor).
[[nodiscard]] speedup_plan plan_speedup(const signal_graph& sg, const speedup_options& options);

} // namespace tsg

#endif // TSG_CORE_OPTIMIZE_H
