// Criticality-driven optimization and top-K critical-cycle reporting.
//
// The cycle time is the maximum cycle ratio, so speeding a design up means
// spending a finite delay-reduction budget on the arcs that limit it.  The
// old surface here (plan_speedup / speedup_plan) was a deterministic greedy
// pass over a single delay assignment; this one closes the loop with the
// statistical engine, in the spirit of the post-silicon-tuning literature
// (Li & Schlichtmann: allocate tuning range by criticality to maximize
// timing yield):
//
//   * run_optimize, deterministic mode — allocates the budget in quanta of
//     `step` across the repetitive core's arcs to *minimize* the nominal
//     cycle time: an exact branch-and-bound search over quantized
//     allocations (optimistic floored-suffix bounds, lexicographically
//     smallest optimum), validated against exhaustive search in tests.
//     When the evaluation cap trips first, a critical-arc greedy descent
//     finishes the job and the result is flagged exact = false.
//   * run_optimize, statistical mode — maximizes the timing yield
//     P(lambda <= target) under the Monte Carlo delay model: per-arc
//     criticality probabilities (core/stats with-witness path) rank the
//     candidates, monte_carlo_adaptive evaluates each candidate step to a
//     target yield-CI width (common random numbers: same seed, same grid),
//     and a step is accepted only while it is not clearly worse than the
//     incumbent beyond the joint CIs.  Committed state lives in an
//     incremental_engine, so the nominal-lambda trajectory rides warm
//     Howard re-analyses of delay-only batches, never a recompile.
//   * report_topk, deterministic mode — ranked enumeration of the K most
//     critical cycles by exact ratio (Lawler-style partitioning: peel the
//     winner, re-solve subproblems excluding each witness arc), ties
//     broken by the canonical rotation's lexicographic arc order, so the
//     report is bit-identical for every thread count.
//   * report_topk, statistical mode — the K cycles most often reported as
//     the critical witness across a seeded Monte Carlo batch, ordered by
//     criticality probability (ties: earliest first appearance) with
//     binomial CIs, each enriched with its exact nominal ratio and slack.
//
// Results carry an edit_batch (core/graph_edit.h) of the chosen delay
// reductions instead of a rebuilt signal_graph: callers apply it through
// an incremental_engine (or commit it as a new design version through the
// service), which keeps plan application O(edits), not O(graph).
//
// Validation errors use the request API's taxonomy (core/api.h):
// "invalid_request: ..." for nonsensical parameters (non-positive budget,
// K = 0, missing statistical target), "unsupported: ..." for statistical
// mode without a delay model.  Tool, daemon and library callers therefore
// fail identically.
#ifndef TSG_CORE_OPTIMIZE_H
#define TSG_CORE_OPTIMIZE_H

#include <cstdint>
#include <vector>

#include "core/graph_edit.h"
#include "core/scenario.h"
#include "core/stats.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

enum class optimize_mode : std::uint8_t {
    deterministic, ///< exact nominal delays, exact search
    statistical,   ///< Monte Carlo yield under the delay model
};

struct optimize_options {
    optimize_mode mode = optimize_mode::deterministic;

    /// Total delay reduction to distribute (must be > 0).
    rational budget;

    /// Allocation quantum: the budget is spent in multiples of `step` per
    /// arc.  Non-positive picks budget / 8.
    rational step;

    /// Deterministic mode: informational target — the search minimizes the
    /// cycle time regardless and reports target_reached (the greedy
    /// fallback stops once it is reached).  Statistical mode: the yield
    /// threshold of P(lambda <= target); required to be > 0.
    rational target;

    /// No arc's delay may drop below this floor (physical limit).
    rational min_delay;

    /// Deterministic search evaluation cap: when the branch-and-bound
    /// exceeds it, the critical-arc greedy fallback finishes the
    /// allocation and the result reports exact = false.
    std::size_t max_evaluations = 4096;

    /// Statistical mode: criticality-ranked candidates evaluated per
    /// allocation quantum (at least 1).
    std::size_t max_candidates = 4;

    /// Engine knobs for nominal evaluations.
    cycle_time_solver solver = cycle_time_solver::auto_select;
    unsigned max_threads = 0;

    /// Statistical mode: sampling model (seed, spread, resolution,
    /// correlated sources).  Ranges are derived from the *current* delays
    /// each evaluation — explicit mc.ranges are rejected as unsupported —
    /// and mc.samples is ignored (the adaptive caps come from `stats`).
    monte_carlo_options mc;

    /// Statistical mode: adaptive-MC controls (epsilon = target yield-CI
    /// half-width, min/max samples, round size, confidence, deadline).
    /// yield_target / yield_objective are set internally from `target`.
    stats_options stats;
};

/// One per-arc slice of the spent budget (aggregated over quanta).
struct optimize_allocation {
    arc_id arc = invalid_arc;
    rational old_delay;
    rational new_delay;
    rational reduction; ///< old_delay - new_delay, a multiple of step
};

/// One committed statistical allocation quantum, in commit order.
struct optimize_step {
    arc_id arc = invalid_arc;
    rational reduction;           ///< the quantum
    rational cycle_time_after;    ///< nominal lambda after the commit (warm)
    double yield_after = 0.0;     ///< P(lambda <= target) after the commit
    double yield_ci_half_width = 0.0;
    std::size_t samples = 0;      ///< MC samples of the post-commit evaluation
};

struct optimize_result {
    optimize_mode mode = optimize_mode::deterministic;

    rational initial_cycle_time; ///< nominal lambda before any reduction
    rational final_cycle_time;   ///< nominal lambda with the plan applied
    bool target_reached = false; ///< final_cycle_time <= target (target > 0)

    /// Deterministic mode: the branch-and-bound ran to completion, so the
    /// allocation is the exact optimum (lexicographically smallest among
    /// equal optima).  False after the greedy fallback, and always in
    /// statistical mode.
    bool exact = false;

    rational budget_spent; ///< sum of reductions, <= budget

    /// Per-arc reductions, ascending arc id.
    std::vector<optimize_allocation> allocations;

    /// The same reductions as a set_delay edit batch — apply through an
    /// incremental_engine (delay-only: warm state survives), or commit as
    /// a new design version through the service.
    edit_batch edits;

    /// Statistical mode: commit trace, yields and sampling effort.
    std::vector<optimize_step> steps;
    double initial_yield = 0.0;
    double final_yield = 0.0;
    double initial_yield_ci_half_width = 0.0;
    double final_yield_ci_half_width = 0.0;

    std::size_t evaluations = 0; ///< nominal evals (det) / MC runs (stat)
    std::size_t samples = 0;     ///< total MC samples across all runs
    std::size_t candidates = 0;  ///< arcs that were allocation candidates
};

struct topk_options {
    optimize_mode mode = optimize_mode::deterministic;

    /// Cycles requested (must be >= 1).  Fewer are returned (and the
    /// result flagged truncated) when the graph has fewer cycles — or,
    /// statistically, fewer distinct witnesses.
    std::size_t k = 3;

    /// Statistical mode: fixed Monte Carlo sample count and model.
    std::size_t samples = 100;
    monte_carlo_options mc;

    /// Two-sided normal quantile for the statistical CIs.
    double confidence_z = 1.959963984540054;

    /// Engine knobs.  Deterministic reports are bit-identical for every
    /// thread count; statistical witness identities additionally need a
    /// thread-layout-independent solver (border_sweep, or auto_select
    /// where it resolves to it) to be bit-identical, exactly as with the
    /// scenario engine's witness contract.
    cycle_time_solver solver = cycle_time_solver::auto_select;
    unsigned max_threads = 0;
    unsigned lane_width = 0;

    /// Deterministic mode: cap on Lawler-partition subproblem expansions
    /// (0 picks max(64, 32 * k)).  Hitting it flags the report truncated.
    std::size_t max_expansions = 0;
};

/// One arc of a reported cycle with its share of the cycle's delay.
struct topk_arc_contribution {
    arc_id arc = invalid_arc;
    rational delay;     ///< nominal delay of the arc
    double share = 0.0; ///< delay / cycle delay (0 on zero-delay cycles)
};

struct topk_cycle {
    /// Canonical identity: original arc ids in causal order, rotated so
    /// the smallest arc id leads (the scenario engine's witness key).
    std::vector<arc_id> arcs;
    /// Source event of each arc, parallel to `arcs`.
    std::vector<event_id> events;

    rational ratio;         ///< exact nominal delay(C) / tokens(C)
    rational delay;         ///< exact nominal delay(C)
    std::uint32_t tokens = 0;
    rational slack;         ///< lambda * tokens(C) - delay(C), >= 0

    std::vector<topk_arc_contribution> contributions; ///< parallel to arcs

    /// Statistical mode: witness tally across the batch.
    std::size_t count = 0;       ///< samples reporting this cycle
    std::size_t first_index = 0; ///< first such sample
    double probability = 0.0;    ///< count / samples
    double ci_half_width = 0.0;  ///< binomial normal-approximation CI
};

struct topk_result {
    optimize_mode mode = optimize_mode::deterministic;

    rational cycle_time; ///< nominal lambda (== cycles[0].ratio, det mode)

    /// Ranked most-critical first: by exact ratio (deterministic; ties by
    /// canonical arc order) or by witness count (statistical; ties by
    /// first appearance).
    std::vector<topk_cycle> cycles;

    /// Fewer than k cycles exist / were distinguishable, or the
    /// deterministic expansion cap cut the enumeration short.
    bool truncated = false;

    std::size_t samples = 0; ///< statistical: Monte Carlo samples drawn
    std::size_t solves = 0;  ///< deterministic: subproblem ratio solves
};

/// Plans the budget allocation.  The engine overload reuses a compiled
/// snapshot + scenario engine whose base() was compiled from `sg` (the
/// service's per-version state); the plain overload compiles internally.
[[nodiscard]] optimize_result run_optimize(const signal_graph& sg,
                                           const optimize_options& options);
[[nodiscard]] optimize_result run_optimize(const signal_graph& sg,
                                           const scenario_engine& engine,
                                           const optimize_options& options);

/// Reports the K most critical cycles.  Overloads as with run_optimize.
[[nodiscard]] topk_result report_topk(const signal_graph& sg, const topk_options& options);
[[nodiscard]] topk_result report_topk(const signal_graph& sg, const compiled_graph& cg,
                                      const scenario_engine& engine,
                                      const topk_options& options);

} // namespace tsg

#endif // TSG_CORE_OPTIMIZE_H
