// PERT analysis of acyclic Timed Signal Graphs (Section II notes that for
// acyclic graphs timing simulation coincides with PERT).  Computes the
// occurrence time of every event and the critical (longest) path.
#ifndef TSG_CORE_PERT_H
#define TSG_CORE_PERT_H

#include <vector>

#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct pert_result {
    std::vector<rational> time;           ///< t(e) per event; valid where occurs[e]
    std::vector<bool> occurs;             ///< event reachable from the initial events
    rational makespan;                    ///< latest occurrence time
    std::vector<event_id> critical_path;  ///< events realizing the makespan, causal order
    std::vector<arc_id> critical_arcs;    ///< arcs between them
};

class compiled_graph;

/// Longest-path (PERT) analysis.  Throws tsg::error when the graph contains
/// repetitive events — cyclic graphs are the domain of analyze_cycle_time.
[[nodiscard]] pert_result analyze_pert(const signal_graph& sg);

/// Same analysis on a pre-compiled snapshot (sweeps the precomputed
/// topological order, in the fixed-point delay domain when available).
[[nodiscard]] pert_result analyze_pert(const compiled_graph& cg);

} // namespace tsg

#endif // TSG_CORE_PERT_H
