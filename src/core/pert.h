// PERT analysis of acyclic Timed Signal Graphs (Section II notes that for
// acyclic graphs timing simulation coincides with PERT).  Computes the
// occurrence time of every event and the critical (longest) path.
#ifndef TSG_CORE_PERT_H
#define TSG_CORE_PERT_H

#include <span>
#include <vector>

#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct pert_result {
    std::vector<rational> time;           ///< t(e) per event; valid where occurs[e]
    std::vector<bool> occurs;             ///< event reachable from the initial events
    rational makespan;                    ///< latest occurrence time
    std::vector<event_id> critical_path;  ///< events realizing the makespan, causal order
    std::vector<arc_id> critical_arcs;    ///< arcs between them
};

class compiled_graph;

/// Longest-path (PERT) analysis.  Throws tsg::error when the graph contains
/// repetitive events — cyclic graphs are the domain of analyze_cycle_time.
[[nodiscard]] pert_result analyze_pert(const signal_graph& sg);

/// Same analysis on a pre-compiled snapshot (sweeps the precomputed
/// topological order, in the fixed-point delay domain when available).
[[nodiscard]] pert_result analyze_pert(const compiled_graph& cg);

// --- lane-batched analysis (core/lane_domain.h) ------------------------------

class lane_domain;
struct lane_workspace;

/// One lane's PERT result in a lane-batched batch: the makespan and the
/// critical path's arcs in causal order.
struct lane_pert {
    rational makespan;
    std::vector<arc_id> critical_arcs;
};

/// PERT analysis of every non-evicted lane in one structure-of-arrays
/// longest-path sweep along the compiled topological order; bit-identical
/// to analyze_pert on each lane's scalar rebind.  Evicted lanes' output
/// slots are left untouched.
void analyze_pert_lanes(const compiled_graph& cg, const lane_domain& dom, lane_workspace& ws,
                        std::span<lane_pert> out);

} // namespace tsg

#endif // TSG_CORE_PERT_H
