#include "core/lane_domain.h"

#include <array>

#include "util/simd.h"

namespace tsg {

void lane_domain::rebind_lanes(const compiled_graph& base,
                               std::span<const std::vector<rational>* const> lanes,
                               std::uint32_t periods)
{
    const std::size_t source_arcs = base.delay().size();
    const bool core = base.has_core();
    // For cyclic graphs the sweeps run over the repetitive core; project
    // each lane's full-arc assignment through arc_original while packing.
    const std::vector<arc_id>* arc_original = nullptr;
    if (core) {
        const compiled_graph::core_view view = base.core();
        arcs_ = view.graph.arc_count();
        // identity cores have arc_original[a] == a; the projection below is
        // then a straight copy either way, so no special case is needed.
        arc_original = &view.arc_original;
    } else {
        arcs_ = source_arcs;
    }

    width_ = static_cast<unsigned>(lanes.size());
    require(width_ >= 1 && width_ <= 16, "lane_domain: lane count must be 1..16");
    evicted_count_ = 0;
    scale_.assign(width_, 0);
    evicted_.assign(width_, 0);
    delay_.resize(arcs_ * width_);
    scratch_.resize(width_);

    // Per-lane fixed-point domains first (same scale/overflow/period
    // criteria as the scalar rebind: a lane is evicted exactly when
    // compiled_graph::rebind would degrade the assignment to rational
    // arithmetic for this sweep horizon)...
    std::array<const std::int64_t*, 16> lane_scaled{};
    for (unsigned l = 0; l < width_; ++l) {
        const std::vector<rational>& d = *lanes[l];
        require(d.size() == source_arcs,
                "lane_domain: delay count does not match the arc count");

        // The domain scan folds the negativity check in; a disabled domain
        // may have stopped scanning early, so re-check explicitly there.
        compute_fixed_point_domain(d, scratch_[l]);
        bool negative = scratch_[l].negative;
        if (scratch_[l].scale == 0 && !negative)
            for (const rational& v : d) negative |= v.is_negative();
        require(!negative, "lane_domain: negative delay");

        if (!scratch_[l].available_for_periods(periods)) {
            evicted_[l] = 1;
            ++evicted_count_;
            lane_scaled[l] = nullptr; // slots become zero: benign, results unused
            continue;
        }
        scale_[l] = scratch_[l].scale;
        lane_scaled[l] = scratch_[l].scaled.data();
    }

    // ...then one arc-major interleave pass: each SoA cache line (the W
    // lanes of one arc) is written completely before moving on, against W
    // sequential source streams — instead of W strided passes that would
    // re-touch every line W times.
    std::int64_t* TSG_RESTRICT out = delay_.data();
    const std::vector<arc_id>* orig = core ? arc_original : nullptr;
    for (std::size_t a = 0; a < arcs_; ++a) {
        const std::size_t src = orig ? (*orig)[a] : a;
        for (unsigned l = 0; l < width_; ++l) {
            const std::int64_t* s = lane_scaled[l];
            out[a * width_ + l] = s ? s[src] : 0;
        }
    }
}

void lane_domain::rebind_lanes(const compiled_graph& base,
                               std::span<const std::vector<rational>> lanes,
                               std::uint32_t periods)
{
    std::vector<const std::vector<rational>*> ptrs;
    ptrs.reserve(lanes.size());
    for (const std::vector<rational>& d : lanes) ptrs.push_back(&d);
    rebind_lanes(base, std::span<const std::vector<rational>* const>(ptrs), periods);
}

} // namespace tsg
