#include "core/lane_domain.h"

#include <algorithm>
#include <array>
#include <limits>

#include "util/simd.h"

namespace tsg {

namespace {

/// Mirrors the period-budget cap of compute_fixed_point_domain
/// (core/compiled_graph.cpp) for the delta reuse check.
constexpr std::uint32_t max_period_limit = 1u << 20;

} // namespace

void lane_domain::rebind_lanes(const compiled_graph& base,
                               std::span<const std::vector<rational>* const> lanes,
                               std::uint32_t periods)
{
    rebind_lanes(base, lanes, periods, std::span<const arc_id>{});
}

void lane_domain::rebind_lanes(const compiled_graph& base,
                               std::span<const std::vector<rational>* const> lanes,
                               std::uint32_t periods, std::span<const arc_id> delta_hint)
{
    const std::size_t source_arcs = base.delay().size();
    const bool core = base.has_core();
    // For cyclic graphs the sweeps run over the repetitive core; project
    // each lane's full-arc assignment through arc_original while packing.
    const std::vector<arc_id>* arc_original = nullptr;
    if (core) {
        const compiled_graph::core_view view = base.core();
        arcs_ = view.graph.arc_count();
        // identity cores have arc_original[a] == a; the projection below is
        // then a straight copy either way, so no special case is needed.
        arc_original = &view.arc_original;
    } else {
        arcs_ = source_arcs;
    }

    width_ = static_cast<unsigned>(lanes.size());
    require(width_ >= 1 && width_ <= 16, "lane_domain: lane count must be 1..16");
    require(delta_hint.empty() || delta_hint.size() == lanes.size(),
            "lane_domain: delta hint count does not match the lane count");
    evicted_count_ = 0;
    scale_.assign(width_, 0);
    evicted_.assign(width_, 0);
    delay_.resize(arcs_ * width_);
    scratch_.resize(width_);

    // Delta reuse context, materialized lazily on the first hinted lane:
    // the base snapshot's scaled-delay mass bounds every hinted lane's
    // period budget (one arc's mass swapped per lane).
    const std::int64_t base_scale = base.scale();
    const std::int64_t* base_scaled =
        base.fixed_point() ? base.scaled_delay().data() : nullptr;
    const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;
    int128 base_mass = 0;
    bool base_mass_ready = false;

    // Per-lane fixed-point domains first (same scale/overflow/period
    // criteria as the scalar rebind: a lane is evicted exactly when
    // compiled_graph::rebind would degrade the assignment to rational
    // arithmetic for this sweep horizon)...
    std::array<const std::int64_t*, 16> lane_scaled{};
    std::array<arc_id, 16> dirty_arc{};
    std::array<std::int64_t, 16> dirty_value{};
    dirty_arc.fill(invalid_arc);
    bool any_dirty = false;
    for (unsigned l = 0; l < width_; ++l) {
        const std::vector<rational>& d = *lanes[l];
        require(d.size() == source_arcs,
                "lane_domain: delay count does not match the arc count");

        const arc_id hint = delta_hint.empty() ? invalid_arc : delta_hint[l];
        if (hint != invalid_arc && base_scaled != nullptr) {
            require(hint < source_arcs, "lane_domain: delta hint out of range");
#ifndef NDEBUG
            for (std::size_t a = 0; a < source_arcs; ++a)
                ensure(a == hint || d[a] == base.delay()[a],
                       "lane_domain: delta hint broken — lane differs off the hinted arc");
#endif
            // Reuse base's scale S for the whole lane: valid whenever the
            // dirty arc's value lives at S (den | S, no scaled overflow)
            // and the swapped mass keeps the period budget.  S is then a
            // multiple of the lane's minimal LCM — analyses are
            // scale-invariant, so results match the dense rebind bit for
            // bit; when any condition fails the dense path below decides
            // (including eviction) exactly like the scalar rebind.
            const rational& v = d[hint];
            require(!v.is_negative(), "lane_domain: negative delay");
            if (base_scale % v.den() == 0) {
                const std::int64_t q = base_scale / v.den();
                if (v.num() <= std::numeric_limits<std::int64_t>::max() / q) {
                    const std::int64_t sv = v.num() * q;
                    if (!base_mass_ready) {
                        for (const std::int64_t w : base.scaled_delay()) base_mass += w;
                        base_mass_ready = true;
                    }
                    const int128 mass = base_mass - base_scaled[hint] + sv;
                    const int128 limit = mass == 0 ? max_period_limit : budget / mass;
                    if (limit >= 2 && periods < std::min<int128>(limit, max_period_limit)) {
                        scale_[l] = base_scale;
                        lane_scaled[l] = base_scaled;
                        dirty_arc[l] = hint;
                        dirty_value[l] = sv;
                        any_dirty = true;
                        rows_reused_ += arcs_;
                        continue;
                    }
                }
            }
        }

        // The domain scan folds the negativity check in; a disabled domain
        // may have stopped scanning early, so re-check explicitly there.
        compute_fixed_point_domain(d, scratch_[l]);
        bool negative = scratch_[l].negative;
        if (scratch_[l].scale == 0 && !negative)
            for (const rational& v : d) negative |= v.is_negative();
        require(!negative, "lane_domain: negative delay");

        if (!scratch_[l].available_for_periods(periods)) {
            evicted_[l] = 1;
            ++evicted_count_;
            lane_scaled[l] = nullptr; // slots become zero: benign, results unused
            continue;
        }
        scale_[l] = scratch_[l].scale;
        lane_scaled[l] = scratch_[l].scaled.data();
        rows_repacked_ += arcs_;
    }

    // ...then one arc-major interleave pass: each SoA cache line (the W
    // lanes of one arc) is written completely before moving on, against W
    // sequential source streams — instead of W strided passes that would
    // re-touch every line W times.
    std::int64_t* TSG_RESTRICT out = delay_.data();
    const std::vector<arc_id>* orig = core ? arc_original : nullptr;
    for (std::size_t a = 0; a < arcs_; ++a) {
        const std::size_t src = orig ? (*orig)[a] : a;
        for (unsigned l = 0; l < width_; ++l) {
            const std::int64_t* s = lane_scaled[l];
            out[a * width_ + l] = s ? s[src] : 0;
        }
    }

    // Dirty-row fix for hinted lanes: the interleave streamed base's
    // values everywhere, so only the hinted arc's slot needs its fresh
    // scaled value — O(1) per lane via the cached inverse projection.  A
    // hinted arc outside the core has no packed row and nothing to fix.
    if (any_dirty) {
        if (core) {
            // Cache the inverse projection on (identity, structure
            // version): the incremental edit layer patches cores in place,
            // so the address alone cannot key it.
            const void* id = static_cast<const void*>(arc_original);
            if (inverse_of_ != id || inverse_version_ != base.structure_version()) {
                core_row_.assign(source_arcs, invalid_arc);
                for (std::size_t a = 0; a < arcs_; ++a)
                    core_row_[(*arc_original)[a]] = static_cast<arc_id>(a);
                inverse_of_ = id;
                inverse_version_ = base.structure_version();
            }
        }
        for (unsigned l = 0; l < width_; ++l) {
            if (dirty_arc[l] == invalid_arc) continue;
            const arc_id row = core ? core_row_[dirty_arc[l]] : dirty_arc[l];
            if (row == invalid_arc) continue;
            delay_[std::size_t{row} * width_ + l] = dirty_value[l];
            --rows_reused_;
            ++rows_repacked_;
        }
    }
}

void lane_domain::rebind_lanes(const compiled_graph& base,
                               std::span<const std::vector<rational>> lanes,
                               std::uint32_t periods)
{
    std::vector<const std::vector<rational>*> ptrs;
    ptrs.reserve(lanes.size());
    for (const std::vector<rational>& d : lanes) ptrs.push_back(&d);
    rebind_lanes(base, std::span<const std::vector<rational>* const>(ptrs), periods);
}

} // namespace tsg
