// Steady-state time separations between two events.
//
// After the start-up transient dies out, the separation between matching
// instantiations of two repetitive events, t(to_i) - t(from_i), cycles
// through a fixed pattern of epsilon values (epsilon = the timing pattern
// period measured by analyze_transient).  This is the question designers
// ask right after the cycle time — "how far apart do these two edges
// settle?" — and the data behind relative-timing assumptions.
#ifndef TSG_CORE_SEPARATION_H
#define TSG_CORE_SEPARATION_H

#include <cstdint>
#include <vector>

#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct separation_result {
    rational cycle_time;
    std::uint32_t pattern_period = 0; ///< epsilon of the settled pattern

    /// t(to_i) - t(from_i) for one full settled pattern (epsilon entries,
    /// starting at the settle index).
    std::vector<rational> separations;

    rational min_separation;
    rational max_separation;

    /// True when the separation is the same in every period (a fixed
    /// relative-timing offset).
    [[nodiscard]] bool constant() const { return min_separation == max_separation; }
};

class compiled_graph;

/// Measures the settled separations between same-index instantiations of
/// `from` and `to` (both repetitive).  Throws when the behaviour does not
/// settle within `max_periods` (see analyze_transient).
[[nodiscard]] separation_result steady_separations(const signal_graph& sg, event_id from,
                                                   event_id to,
                                                   std::uint32_t max_periods = 128);

/// Same measurement on a pre-compiled snapshot.
[[nodiscard]] separation_result steady_separations(const compiled_graph& cg, event_id from,
                                                   event_id to,
                                                   std::uint32_t max_periods = 128);

} // namespace tsg

#endif // TSG_CORE_SEPARATION_H
