// One-call markdown performance report: everything the library knows about
// a Timed Signal Graph, in a form a designer can file with a review.
// Sections: model statistics, cut sets, cycle time and critical cycle,
// per-origin simulation summaries, arc slacks, the steady schedule, and
// the start-up transient.
#ifndef TSG_CORE_REPORT_H
#define TSG_CORE_REPORT_H

#include <string>

#include "sg/signal_graph.h"

namespace tsg {

struct report_options {
    std::string title = "Timed Signal Graph performance report";
    bool include_slack = true;
    bool include_transient = true;
    bool include_schedule = true;
    /// Cap on the exact minimum-cut search; 0 skips it (greedy/border only).
    std::size_t min_cut_budget = 50'000;
};

/// Renders the full report.  Requires a finalized graph; acyclic graphs get
/// a PERT summary instead of the cycle-time sections.
[[nodiscard]] std::string performance_report_markdown(const signal_graph& sg,
                                                      const report_options& options = {});

} // namespace tsg

#endif // TSG_CORE_REPORT_H
