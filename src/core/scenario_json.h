// JSON rendering of scenario batches — the machine-readable surface of
// `tsg_tool sweep` / `tsg_tool montecarlo`.
//
// Kept in the library (rather than the tool binary) so the golden-file
// tests exercise the exact document the tool ships: per-scenario cycle
// times (exact rational and double), the batch aggregates, and the
// critical-cycle identity table.
#ifndef TSG_CORE_SCENARIO_JSON_H
#define TSG_CORE_SCENARIO_JSON_H

#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/stats.h"
#include "sg/signal_graph.h"

namespace tsg {

/// Renders one evaluated batch as a JSON document.  `command` and
/// `solver` are echoed verbatim (the tool passes its subcommand and the
/// requested --solver value).
[[nodiscard]] std::string scenario_batch_json(const std::string& command,
                                              const std::string& solver,
                                              const signal_graph& sg, const rational& nominal,
                                              const std::vector<scenario>& scenarios,
                                              const scenario_batch_result& batch);

/// Renders a statistics run (core/stats.h) as a JSON document with a
/// `statistics` block: sample counts and convergence, mean/variance with
/// the confidence interval, exact min/max, quantile estimates
/// (p50/p95/p99), the histogram, and — when the run tracked them — per-arc
/// and per-gate criticality probabilities with normal-approximation CIs.
/// The machine-readable surface of `tsg_tool montecarlo --adaptive` and
/// `tsg_tool criticality`.
[[nodiscard]] std::string statistics_json(const std::string& command,
                                          const std::string& solver, const signal_graph& sg,
                                          const stats_run_result& run,
                                          const stats_options& options);

} // namespace tsg

#endif // TSG_CORE_SCENARIO_JSON_H
