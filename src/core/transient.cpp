#include "core/transient.h"

#include "core/compiled_graph.h"
#include "core/cycle_time.h"
#include "core/timing_simulation.h"
#include "sg/unfolding.h"

namespace tsg {

transient_result analyze_transient(const compiled_graph& cg, std::uint32_t max_periods)
{
    const signal_graph& sg = cg.source();
    require(!sg.repetitive_events().empty(), "analyze_transient: graph is acyclic");
    require(max_periods >= 4, "analyze_transient: horizon too small");

    transient_result out;
    out.cycle_time = analyze_cycle_time(cg).cycle_time;
    out.horizon = max_periods;

    const unfolding unf(sg, max_periods);
    const timing_simulation_result sim = simulate_timing(unf, cg);

    // For a candidate epsilon, the settle index of event e is the smallest
    // K with t(e_{i+eps}) - t(e_i) == lambda*eps for all i in [K, horizon).
    // Checking from the tail backwards gives it in one scan.
    const auto settle_for = [&](event_id e, std::uint32_t eps) -> std::int64_t {
        const rational step = out.cycle_time * rational(eps);
        std::int64_t settle = -1; // -1: even the last window fails
        for (std::int64_t i = static_cast<std::int64_t>(max_periods) - 1 - eps; i >= 0; --i) {
            const auto t0 = sim.at(unf, e, static_cast<std::uint32_t>(i));
            const auto t1 = sim.at(unf, e, static_cast<std::uint32_t>(i) + eps);
            if (!t0 || !t1 || !(*t1 - *t0 == step)) return i + 1;
            settle = i;
        }
        return settle < 0 ? -1 : settle;
    };

    const std::uint32_t eps_bound = static_cast<std::uint32_t>(
        std::min<std::size_t>(sg.border_events().size(), max_periods / 2));
    for (std::uint32_t eps = 1; eps <= eps_bound; ++eps) {
        bool all_settle = true;
        std::uint32_t worst = 0;
        for (const event_id e : sg.repetitive_events()) {
            const std::int64_t k = settle_for(e, eps);
            // Require at least two verified windows of headroom so the
            // "settled" claim is not an artifact of the horizon.
            if (k < 0 || static_cast<std::uint32_t>(k) + 3u * eps >= max_periods) {
                all_settle = false;
                break;
            }
            worst = std::max(worst, static_cast<std::uint32_t>(k));
        }
        if (all_settle) {
            out.pattern_period = eps;
            out.settle_period = worst;
            return out;
        }
    }
    throw error("analyze_transient: no periodic pattern confirmed within " +
                std::to_string(max_periods) + " periods — raise the horizon");
}

transient_result analyze_transient(const signal_graph& sg, std::uint32_t max_periods)
{
    require(sg.finalized(), "analyze_transient: graph must be finalized");
    const compiled_graph cg(sg);
    return analyze_transient(cg, max_periods);
}

} // namespace tsg
