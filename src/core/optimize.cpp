#include "core/optimize.h"

#include "core/compiled_graph.h"
#include "core/cycle_time.h"

namespace tsg {

namespace {

/// Deep copy with the delays replaced wholesale — used once, to materialize
/// the optimized graph after the planning loop (which runs entirely on
/// delay rebinds of one compiled snapshot).
signal_graph with_delays(const signal_graph& sg, const std::vector<rational>& delay)
{
    signal_graph out;
    for (event_id e = 0; e < sg.event_count(); ++e) {
        const event_info& info = sg.event(e);
        out.add_event(info.name, info.signal, info.pol);
    }
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!sg.arc_live(a)) continue;
        const arc_info& arc = sg.arc(a);
        out.add_arc(arc.from, arc.to, delay[a], arc.marked, arc.disengageable);
    }
    out.finalize();
    return out;
}

} // namespace

speedup_plan plan_speedup(const signal_graph& sg, const speedup_options& options)
{
    require(sg.finalized(), "plan_speedup: graph must be finalized");
    require(!options.min_arc_delay.is_negative(), "plan_speedup: negative delay floor");

    // Compile the structure once; every iteration below is a delay-only
    // rebind (the batch engine's per-scenario path) instead of the former
    // rebuild-and-refinalize round trip.
    const compiled_graph base(sg);
    std::vector<rational> delay = base.delay();

    speedup_plan plan;
    cycle_time_result analysis = analyze_cycle_time(base);
    plan.initial_cycle_time = analysis.cycle_time;

    for (std::size_t step = 0; step < options.max_steps; ++step) {
        if (analysis.cycle_time <= options.target) {
            plan.target_reached = true;
            break;
        }

        // Pick the most reducible arc on the reported critical cycle.
        arc_id best = invalid_arc;
        rational best_headroom(0);
        for (const arc_id a : analysis.critical_cycle_arcs) {
            const rational headroom = delay[a] - options.min_arc_delay;
            if (headroom > best_headroom) {
                best_headroom = headroom;
                best = a;
            }
        }
        if (best == invalid_arc) break; // critical cycle fully floored: stuck

        // Remove just enough to bring this cycle to the target (the whole
        // cycle needs (lambda - target) * epsilon less delay), bounded by
        // the arc's headroom.
        const rational needed =
            (analysis.cycle_time - options.target) *
            rational(static_cast<std::int64_t>(analysis.critical_occurrence_period));
        const rational reduction = min(needed, best_headroom);
        ensure(reduction > rational(0), "plan_speedup: non-positive reduction");

        speedup_step record;
        record.arc = best;
        record.old_delay = delay[best];
        record.new_delay = record.old_delay - reduction;

        delay[best] = record.new_delay;
        analysis = analyze_cycle_time(base.rebind(delay));
        record.lambda_after = analysis.cycle_time;
        plan.steps.push_back(record);
    }

    if (analysis.cycle_time <= options.target) plan.target_reached = true;
    plan.final_cycle_time = analysis.cycle_time;
    plan.optimized = with_delays(sg, delay);
    return plan;
}

} // namespace tsg
