#include "core/optimize.h"

#include "core/cycle_time.h"

namespace tsg {

namespace {

/// Deep copy with one arc's delay replaced.
signal_graph with_delay(const signal_graph& sg, arc_id target, const rational& delay)
{
    signal_graph out;
    for (event_id e = 0; e < sg.event_count(); ++e) {
        const event_info& info = sg.event(e);
        out.add_event(info.name, info.signal, info.pol);
    }
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        const arc_info& arc = sg.arc(a);
        out.add_arc(arc.from, arc.to, a == target ? delay : arc.delay, arc.marked,
                    arc.disengageable);
    }
    out.finalize();
    return out;
}

} // namespace

speedup_plan plan_speedup(const signal_graph& sg, const speedup_options& options)
{
    require(sg.finalized(), "plan_speedup: graph must be finalized");
    require(!options.min_arc_delay.is_negative(), "plan_speedup: negative delay floor");

    speedup_plan plan;
    plan.optimized = with_delay(sg, invalid_arc, rational(0)); // plain copy

    cycle_time_result analysis = analyze_cycle_time(plan.optimized);
    plan.initial_cycle_time = analysis.cycle_time;

    for (std::size_t step = 0; step < options.max_steps; ++step) {
        if (analysis.cycle_time <= options.target) {
            plan.target_reached = true;
            break;
        }

        // Pick the most reducible arc on the reported critical cycle.
        arc_id best = invalid_arc;
        rational best_headroom(0);
        for (const arc_id a : analysis.critical_cycle_arcs) {
            const rational headroom =
                plan.optimized.arc(a).delay - options.min_arc_delay;
            if (headroom > best_headroom) {
                best_headroom = headroom;
                best = a;
            }
        }
        if (best == invalid_arc) break; // critical cycle fully floored: stuck

        // Remove just enough to bring this cycle to the target (the whole
        // cycle needs (lambda - target) * epsilon less delay), bounded by
        // the arc's headroom.
        const rational needed =
            (analysis.cycle_time - options.target) *
            rational(static_cast<std::int64_t>(analysis.critical_occurrence_period));
        const rational reduction = min(needed, best_headroom);
        ensure(reduction > rational(0), "plan_speedup: non-positive reduction");

        speedup_step record;
        record.arc = best;
        record.old_delay = plan.optimized.arc(best).delay;
        record.new_delay = record.old_delay - reduction;

        plan.optimized = with_delay(plan.optimized, best, record.new_delay);
        analysis = analyze_cycle_time(plan.optimized);
        record.lambda_after = analysis.cycle_time;
        plan.steps.push_back(record);
    }

    if (analysis.cycle_time <= options.target) plan.target_reached = true;
    plan.final_cycle_time = analysis.cycle_time;
    return plan;
}

} // namespace tsg
