#include "core/optimize.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "core/compiled_graph.h"
#include "core/incremental.h"
#include "ratio/condensation.h"
#include "ratio/ratio_problem.h"

namespace tsg {

namespace {

// --- shared helpers ----------------------------------------------------------

/// floor(a / b) for a >= 0, b > 0 — whole allocation quanta in a budget.
std::uint64_t floor_quanta(const rational& a, const rational& b)
{
    if (a.is_negative() || a.is_zero()) return 0;
    const rational q = a / b;
    return static_cast<std::uint64_t>(q.num() / q.den());
}

rational quanta(const rational& step, std::uint64_t n)
{
    return step * rational(static_cast<std::int64_t>(n));
}

/// The allocation quantum: explicit, or budget / 8.
rational resolve_step(const optimize_options& options)
{
    if (rational(0) < options.step) return options.step;
    return options.budget / rational(8);
}

/// Distinct repetitive-core arcs (original ids, ascending) — the only arcs
/// that can move the cycle time.
std::vector<arc_id> core_candidates(const compiled_graph& cg)
{
    const auto& originals = cg.core().arc_original;
    std::vector<arc_id> arcs(originals.begin(), originals.end());
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
    return arcs;
}

void validate_optimize(const optimize_options& options)
{
    if (!(rational(0) < options.budget))
        throw error("invalid_request: optimize needs a positive budget");
    if (options.min_delay.is_negative())
        throw error("invalid_request: optimize floor (min_delay) must be >= 0");
    if (options.mode == optimize_mode::statistical) {
        if (!(rational(0) < options.target))
            throw error("invalid_request: statistical optimize needs a positive target "
                        "(the yield threshold of P(lambda <= target))");
        if (!options.mc.ranges.empty())
            throw error("unsupported: statistical optimize derives Monte Carlo ranges "
                        "from the current delays; explicit ranges are not supported");
        if (!(rational(0) < options.mc.spread) && options.mc.model.sources.empty())
            throw error("unsupported: statistical optimize needs a delay model "
                        "(a positive spread or correlated sources)");
    }
}

/// Builds allocations/edits/budget_spent from the initial delays and the
/// final ones (reductions are multiples of the step by construction).
void record_plan(optimize_result& out, const std::vector<rational>& initial,
                 const std::vector<rational>& final_delay)
{
    out.budget_spent = rational(0);
    for (arc_id a = 0; a < initial.size(); ++a) {
        if (initial[a] == final_delay[a]) continue;
        optimize_allocation alloc;
        alloc.arc = a;
        alloc.old_delay = initial[a];
        alloc.new_delay = final_delay[a];
        alloc.reduction = initial[a] - final_delay[a];
        out.budget_spent += alloc.reduction;
        out.allocations.push_back(alloc);
        out.edits.push_back(graph_edit::set_delay_of(a, final_delay[a]));
    }
}

/// Confirms the planned final cycle time by applying the edit batch through
/// the incremental kernel (delay-only batch, warm re-analysis) — both the
/// consumer contract and a cross-check of the search's bookkeeping.
void confirm_final(optimize_result& out, const signal_graph& sg)
{
    incremental_engine inc(sg);
    if (!out.edits.empty()) inc.apply(out.edits);
    const rational confirmed = inc.analyze_warm().cycle_time;
    ensure(confirmed == out.final_cycle_time,
           "run_optimize: incremental re-analysis disagrees with the search");
}

// --- deterministic optimizer -------------------------------------------------

/// Exact branch-and-bound over quantized allocations.  Candidates are
/// visited in ascending arc order and each level tries smaller quanta
/// first, so the first optimum found — and kept, updates require a strict
/// improvement — is the lexicographically smallest per-arc quantum vector.
class det_search {
public:
    struct aborted {}; ///< evaluation cap hit: fall back to greedy

    det_search(const scenario_engine& engine, const optimize_options& options,
               const std::vector<arc_id>& cand, const std::vector<std::uint64_t>& cap,
               const rational& step, std::vector<rational> delay, rational initial)
        : engine_(engine),
          options_(options),
          cand_(cand),
          cap_(cap),
          step_(step),
          delay_(std::move(delay)),
          q_(cand.size(), 0),
          best_q_(cand.size(), 0),
          best_(std::move(initial))
    {
    }

    void run(std::uint64_t total) { dfs(0, total); }

    [[nodiscard]] const rational& best() const noexcept { return best_; }
    [[nodiscard]] const std::vector<std::uint64_t>& best_q() const noexcept { return best_q_; }
    [[nodiscard]] std::size_t evaluations() const noexcept { return evals_; }

private:
    rational eval()
    {
        if (evals_ >= options_.max_evaluations) throw aborted{};
        ++evals_;
        return engine_
            .evaluate(delay_, /*with_slack=*/false, options_.max_threads, options_.solver,
                      /*with_witness=*/false)
            .cycle_time;
    }

    void leaf()
    {
        const rational lambda = eval();
        if (lambda < best_) {
            best_ = lambda;
            best_q_ = q_;
        }
    }

    void dfs(std::size_t i, std::uint64_t remaining)
    {
        if (remaining == 0 || i == cand_.size()) {
            leaf();
            return;
        }
        if (i + 1 == cand_.size()) {
            // More reduction never raises the ratio: the last position
            // takes everything it can carry.
            const std::uint64_t take = std::min(cap_[i], remaining);
            q_[i] = take;
            delay_[cand_[i]] -= quanta(step_, take);
            leaf();
            delay_[cand_[i]] += quanta(step_, take);
            q_[i] = 0;
            return;
        }

        // Optimistic bound: every remaining candidate maximally reduced,
        // ignoring that they share the budget.  No completion of this
        // prefix beats it, so bound >= best prunes the subtree (>=, not >,
        // keeps the earlier — lexicographically smaller — incumbent).
        for (std::size_t j = i; j < cand_.size(); ++j)
            delay_[cand_[j]] -= quanta(step_, std::min(cap_[j], remaining));
        const rational bound = eval();
        for (std::size_t j = i; j < cand_.size(); ++j)
            delay_[cand_[j]] += quanta(step_, std::min(cap_[j], remaining));
        if (!(bound < best_)) return;

        const std::uint64_t most = std::min(cap_[i], remaining);
        for (std::uint64_t take = 0; take <= most; ++take) {
            q_[i] = take;
            delay_[cand_[i]] = delay_[cand_[i]] - quanta(step_, take);
            dfs(i + 1, remaining - take);
            delay_[cand_[i]] = delay_[cand_[i]] + quanta(step_, take);
        }
        q_[i] = 0;
    }

    const scenario_engine& engine_;
    const optimize_options& options_;
    const std::vector<arc_id>& cand_;
    const std::vector<std::uint64_t>& cap_;
    const rational step_;
    std::vector<rational> delay_;
    std::vector<std::uint64_t> q_;
    std::vector<std::uint64_t> best_q_;
    rational best_;
    std::size_t evals_ = 0;
};

/// Greedy fallback: one quantum at a time to the critical arc whose
/// reduction lowers lambda the most (ties: lowest arc id).  Stops at the
/// target, on budget exhaustion, or when no critical arc improves.
std::vector<rational> greedy_descent(const scenario_engine& engine,
                                     const optimize_options& options, const rational& step,
                                     std::vector<rational> delay, std::uint64_t total,
                                     std::size_t& evals)
{
    for (std::uint64_t spent = 0; spent < total; ++spent) {
        const scenario_outcome state =
            engine.evaluate(delay, /*with_slack=*/true, options.max_threads, options.solver,
                            /*with_witness=*/true);
        ++evals;
        if (rational(0) < options.target && !(options.target < state.cycle_time)) break;

        arc_id best_arc = invalid_arc;
        rational best_lambda = state.cycle_time;
        for (const arc_id a : state.critical_arcs) { // ascending ids
            if (delay[a] - step < options.min_delay) continue;
            delay[a] -= step;
            const rational lambda = engine
                                        .evaluate(delay, /*with_slack=*/false,
                                                  options.max_threads, options.solver,
                                                  /*with_witness=*/false)
                                        .cycle_time;
            ++evals;
            delay[a] += step;
            if (lambda < best_lambda) { // strict: first minimum wins the tie
                best_lambda = lambda;
                best_arc = a;
            }
        }
        if (best_arc == invalid_arc) break; // floored or no single-arc gain
        delay[best_arc] -= step;
    }
    return delay;
}

optimize_result optimize_deterministic(const signal_graph& sg, const scenario_engine& engine,
                                       const optimize_options& options)
{
    const compiled_graph& cg = engine.base();
    const rational step = resolve_step(options);
    const std::uint64_t total = floor_quanta(options.budget, step);

    optimize_result out;
    out.mode = optimize_mode::deterministic;
    out.initial_cycle_time =
        engine.evaluate(cg.delay(), /*with_slack=*/false, options.max_threads, options.solver,
                        /*with_witness=*/false)
            .cycle_time;
    out.evaluations = 1;

    const std::vector<arc_id> arcs = core_candidates(cg);
    std::vector<arc_id> cand;
    std::vector<std::uint64_t> cap;
    for (const arc_id a : arcs) {
        const std::uint64_t c = floor_quanta(cg.delay()[a] - options.min_delay, step);
        if (c == 0) continue;
        cand.push_back(a);
        cap.push_back(c);
    }
    out.candidates = cand.size();

    std::vector<rational> final_delay = cg.delay();
    out.final_cycle_time = out.initial_cycle_time;
    out.exact = true;
    if (total > 0 && !cand.empty()) {
        det_search search(engine, options, cand, cap, step, cg.delay(),
                          out.initial_cycle_time);
        try {
            search.run(total);
            out.evaluations += search.evaluations();
            out.final_cycle_time = search.best();
            for (std::size_t i = 0; i < cand.size(); ++i)
                final_delay[cand[i]] -= quanta(step, search.best_q()[i]);
        } catch (const det_search::aborted&) {
            out.exact = false;
            out.evaluations += search.evaluations();
            std::size_t greedy_evals = 0;
            final_delay = greedy_descent(engine, options, step, cg.delay(), total,
                                         greedy_evals);
            out.evaluations += greedy_evals;
            out.final_cycle_time =
                engine.evaluate(final_delay, /*with_slack=*/false, options.max_threads,
                                options.solver, /*with_witness=*/false)
                    .cycle_time;
            ++out.evaluations;
        }
    }

    record_plan(out, cg.delay(), final_delay);
    out.target_reached = rational(0) < options.target &&
                         !(options.target < out.final_cycle_time);
    confirm_final(out, sg);
    return out;
}

// --- statistical optimizer ---------------------------------------------------

/// Monte Carlo ranges around the *current* delays: nominal * (1 -/+ spread),
/// clamped at zero — the moving equivalent of the generator's default.
std::vector<delay_range> ranges_around(const std::vector<rational>& delay,
                                       const rational& spread)
{
    std::vector<delay_range> ranges(delay.size());
    const rational down = rational(1) - spread;
    const rational up = rational(1) + spread;
    for (std::size_t a = 0; a < delay.size(); ++a) {
        const rational lo = delay[a] * down;
        ranges[a].lo = lo.is_negative() ? rational(0) : lo;
        ranges[a].hi = delay[a] * up;
    }
    return ranges;
}

optimize_result optimize_statistical(const signal_graph& sg, const scenario_engine& engine,
                                     const optimize_options& options)
{
    const compiled_graph& cg = engine.base();
    const rational step = resolve_step(options);
    const std::uint64_t total = floor_quanta(options.budget, step);
    const std::size_t fan = std::max<std::size_t>(options.max_candidates, 1);

    stats_options stats = options.stats;
    stats.yield_target = options.target;
    stats.yield_objective = true;
    stats.group_by_signal = false;
    if (stats.epsilon <= 0.0) stats.epsilon = 0.05;
    stats.solver = options.solver;
    stats.max_threads = options.max_threads;

    monte_carlo_options mc = options.mc;
    mc.first_sample = 0; // common random numbers across every evaluation

    optimize_result out;
    out.mode = optimize_mode::statistical;

    // Committed state: delay-only edits keep the warm Howard policy alive,
    // so the nominal-lambda trajectory is a sequence of warm re-analyses.
    incremental_engine inc(sg);
    out.initial_cycle_time = inc.analyze().cycle_time;
    out.final_cycle_time = out.initial_cycle_time;

    std::vector<rational> delay = cg.delay();
    const std::vector<rational> initial_delay = delay;

    const auto evaluate = [&](bool with_criticality) {
        stats_options se = stats;
        se.criticality = with_criticality;
        monte_carlo_options me = mc;
        me.ranges = ranges_around(delay, mc.spread);
        stats_run_result r = monte_carlo_adaptive(engine, sg, me, se);
        ++out.evaluations;
        out.samples += r.stats.count();
        return r;
    };

    stats_run_result cur = evaluate(/*with_criticality=*/true);
    out.initial_yield = cur.stats.yield_probability();
    out.initial_yield_ci_half_width = cur.stats.yield_ci_half_width(stats.confidence_z);

    // Criticality-ranked candidates: probability descending, arc ascending.
    const auto ranked_candidates = [&](const stats_run_result& run) {
        const std::vector<std::uint64_t>& crit = run.stats.criticality_count();
        std::vector<std::pair<std::uint64_t, arc_id>> order;
        for (arc_id a = 0; a < crit.size(); ++a)
            if (crit[a] > 0 && !(delay[a] - step < options.min_delay))
                order.emplace_back(crit[a], a);
        std::sort(order.begin(), order.end(), [](const auto& x, const auto& y) {
            if (x.first != y.first) return x.first > y.first;
            return x.second < y.second;
        });
        std::vector<arc_id> cand;
        for (const auto& [count, a] : order) {
            cand.push_back(a);
            if (cand.size() == fan) break;
        }
        return std::pair<std::vector<arc_id>, std::size_t>(std::move(cand), order.size());
    };

    for (std::uint64_t spent = 0; spent < total; ++spent) {
        if (cur.stats.yield_count() == cur.stats.count()) break; // every sample passes

        const auto [cand, eligible] = ranked_candidates(cur);
        out.candidates = std::max(out.candidates, eligible);
        if (cand.empty()) break; // no probabilistically critical arc has headroom

        const double cur_yield = cur.stats.yield_probability();
        const double cur_ci = cur.stats.yield_ci_half_width(stats.confidence_z);

        arc_id best_arc = invalid_arc;
        double best_yield = -1.0;
        double best_ci = 0.0;
        for (const arc_id c : cand) {
            delay[c] -= step;
            const stats_run_result probe = evaluate(/*with_criticality=*/false);
            delay[c] += step;
            const double y = probe.stats.yield_probability();
            if (y > best_yield) { // strict: criticality rank breaks ties
                best_yield = y;
                best_ci = probe.stats.yield_ci_half_width(stats.confidence_z);
                best_arc = c;
            }
        }

        // CI-aware accept/reject: commit unless the best step is worse than
        // the incumbent beyond the joint confidence intervals.
        if (best_yield + best_ci < cur_yield - cur_ci) break;

        delay[best_arc] -= step;
        inc.set_delay(best_arc, delay[best_arc]);
        out.final_cycle_time = inc.analyze_warm().cycle_time;
        cur = evaluate(/*with_criticality=*/true);

        optimize_step record;
        record.arc = best_arc;
        record.reduction = step;
        record.cycle_time_after = out.final_cycle_time;
        record.yield_after = cur.stats.yield_probability();
        record.yield_ci_half_width = cur.stats.yield_ci_half_width(stats.confidence_z);
        record.samples = cur.stats.count();
        out.steps.push_back(std::move(record));
    }

    out.final_yield = cur.stats.yield_probability();
    out.final_yield_ci_half_width = cur.stats.yield_ci_half_width(stats.confidence_z);
    record_plan(out, initial_delay, delay);
    out.target_reached = !(options.target < out.final_cycle_time);
    return out;
}

// --- deterministic top-K (Lawler partitioning) -------------------------------

/// Canonical witness identity: original arc ids in causal order rotated so
/// the smallest leads (the scenario engine's key).
std::vector<arc_id> canonical_rotation(std::vector<arc_id> arcs)
{
    if (arcs.empty()) return arcs;
    const auto lead = std::min_element(arcs.begin(), arcs.end());
    std::rotate(arcs.begin(), lead, arcs.end());
    return arcs;
}

struct peel_entry {
    rational ratio;
    std::vector<arc_id> canonical;  ///< original (sg) arcs, canonical rotation
    std::vector<arc_id> base_cycle; ///< base-problem arcs, causal order
    std::vector<arc_id> excluded;   ///< excluded base-problem arcs, ascending
};

/// Total order for the peel heap: higher ratio first, then canonical arc
/// order, then the exclusion mask (a deterministic final tie-break for
/// duplicate identities reached through different subproblems).
bool peel_worse(const peel_entry& a, const peel_entry& b)
{
    if (a.ratio != b.ratio) return a.ratio < b.ratio;
    if (a.canonical != b.canonical) return a.canonical > b.canonical;
    return a.excluded > b.excluded;
}

/// Enriches one canonical cycle with its exact nominal data.
topk_cycle make_topk_cycle(const signal_graph& sg, const compiled_graph& cg,
                           std::vector<arc_id> canonical, const rational& lambda)
{
    topk_cycle out;
    out.arcs = std::move(canonical);
    out.delay = rational(0);
    for (const arc_id a : out.arcs) {
        out.events.push_back(sg.arc(a).from);
        out.delay += cg.delay()[a];
        if (sg.arc(a).marked) ++out.tokens;
    }
    ensure(out.tokens > 0, "report_topk: token-free cycle (excluded by liveness)");
    out.ratio = out.delay / rational(static_cast<std::int64_t>(out.tokens));
    out.slack = lambda * rational(static_cast<std::int64_t>(out.tokens)) - out.delay;
    for (const arc_id a : out.arcs) {
        topk_arc_contribution c;
        c.arc = a;
        c.delay = cg.delay()[a];
        c.share = out.delay.is_zero() ? 0.0 : (c.delay / out.delay).to_double();
        out.contributions.push_back(std::move(c));
    }
    return out;
}

topk_result topk_deterministic(const signal_graph& sg, const compiled_graph& cg,
                               const topk_options& options)
{
    const ratio_problem base = make_ratio_problem(cg);
    const std::size_t arc_count = base.graph.arc_count();
    const std::size_t cap = options.max_expansions > 0
                                ? options.max_expansions
                                : std::max<std::size_t>(64, 32 * options.k);

    topk_result out;
    out.mode = optimize_mode::deterministic;

    condensation_options copts;
    copts.max_threads = options.max_threads;

    // Solves the subproblem with the masked arcs removed; nullopt when no
    // cycle survives (max_cycle_ratio_condensed throws exactly then —
    // token-free cycles cannot appear in subgraphs of a live core).
    const auto solve =
        [&](const std::vector<arc_id>& excluded) -> std::optional<peel_entry> {
        std::vector<std::uint8_t> mask(arc_count, 0);
        for (const arc_id a : excluded) mask[a] = 1;
        ratio_problem sub;
        sub.graph.add_nodes(base.graph.node_count());
        sub.scale = base.scale;
        std::vector<arc_id> to_base;
        for (arc_id a = 0; a < arc_count; ++a) {
            if (mask[a] || !base.graph.live(a)) continue;
            sub.graph.add_arc(base.graph.from(a), base.graph.to(a));
            sub.delay.push_back(base.delay[a]);
            sub.transit.push_back(base.transit[a]);
            if (sub.scale != 0) sub.scaled_delay.push_back(base.scaled_delay[a]);
            to_base.push_back(a);
        }
        if (sub.graph.arc_count() == 0) return std::nullopt;
        sub.graph.freeze();
        condensed_ratio_result solved;
        try {
            solved = max_cycle_ratio_condensed(sub, copts);
        } catch (const error&) {
            return std::nullopt; // no component contains a cycle
        }
        ++out.solves;
        peel_entry entry;
        entry.ratio = solved.ratio;
        for (const arc_id a : solved.cycle) entry.base_cycle.push_back(to_base[a]);
        std::vector<arc_id> original;
        for (const arc_id a : entry.base_cycle)
            original.push_back(base.arc_original.empty() ? a : base.arc_original[a]);
        entry.canonical = canonical_rotation(std::move(original));
        entry.excluded = excluded;
        return entry;
    };

    std::vector<peel_entry> heap;
    const auto push = [&](peel_entry entry) {
        heap.push_back(std::move(entry));
        std::push_heap(heap.begin(), heap.end(), peel_worse);
    };
    const auto pop = [&]() {
        std::pop_heap(heap.begin(), heap.end(), peel_worse);
        peel_entry entry = std::move(heap.back());
        heap.pop_back();
        return entry;
    };

    std::optional<peel_entry> root = solve({});
    if (!root) throw error("invalid_request: report_topk requires a cyclic graph");
    out.cycle_time = root->ratio;
    push(std::move(*root));

    // Ratio plateaus: entries at the top ratio are collected until the heap
    // top drops strictly below it, then flushed in canonical arc order —
    // the exact (ratio desc, canonical asc) report order.
    std::set<std::vector<arc_id>> seen;
    std::set<std::vector<arc_id>> explored; ///< exclusion sets already expanded
    std::vector<peel_entry> plateau;
    const auto flush_plateau = [&]() {
        std::sort(plateau.begin(), plateau.end(),
                  [](const peel_entry& a, const peel_entry& b) {
                      return a.canonical < b.canonical;
                  });
        for (peel_entry& entry : plateau) {
            if (out.cycles.size() >= options.k) break;
            out.cycles.push_back(
                make_topk_cycle(sg, cg, std::move(entry.canonical), out.cycle_time));
        }
        plateau.clear();
    };

    std::size_t expansions = 0;
    while (!heap.empty() && out.cycles.size() < options.k) {
        if (!plateau.empty() && heap.front().ratio < plateau.front().ratio) {
            flush_plateau();
            if (out.cycles.size() >= options.k) break;
        }
        if (expansions >= cap) {
            out.truncated = true; // order beyond this point not confirmed
            break;
        }
        peel_entry entry = pop();
        ++expansions;
        // Every cycle of this subproblem other than the witness misses at
        // least one witness arc: the children jointly cover the remainder.
        if (explored.insert(entry.excluded).second) {
            for (const arc_id x : entry.base_cycle) {
                std::vector<arc_id> child = entry.excluded;
                child.insert(std::lower_bound(child.begin(), child.end(), x), x);
                if (explored.count(child)) continue;
                if (std::optional<peel_entry> solved = solve(child))
                    push(std::move(*solved));
            }
        }
        if (seen.insert(entry.canonical).second) plateau.push_back(std::move(entry));
    }
    if (out.cycles.size() < options.k) flush_plateau();
    if (out.cycles.size() < options.k) out.truncated = true;
    return out;
}

// --- statistical top-K -------------------------------------------------------

topk_result topk_statistical(const signal_graph& sg, const compiled_graph& cg,
                             const scenario_engine& engine, const topk_options& options)
{
    if (options.samples == 0)
        throw error("invalid_request: statistical report_topk needs samples >= 1");
    if (!(rational(0) < options.mc.spread) && options.mc.model.sources.empty() &&
        options.mc.ranges.empty())
        throw error("unsupported: statistical report_topk needs a delay model "
                    "(a positive spread, ranges, or correlated sources)");

    topk_result out;
    out.mode = optimize_mode::statistical;
    out.cycle_time =
        engine.evaluate(cg.delay(), /*with_slack=*/false, options.max_threads, options.solver,
                        /*with_witness=*/false)
            .cycle_time;

    scenario_batch_options bopts;
    bopts.max_threads = options.max_threads;
    bopts.with_slack = false;
    bopts.with_witness = true;
    bopts.solver = options.solver;
    bopts.lane_width = options.lane_width;

    struct tally {
        std::size_t count = 0;
        std::size_t first_index = 0;
    };
    std::map<std::vector<arc_id>, tally> witnesses;

    // Streaming rounds, exactly like core/stats: sample k depends only on
    // (seed, first_sample + k), so the tally is round-partition invariant.
    const std::size_t round_size = 256;
    monte_carlo_options mc = options.mc;
    std::size_t have = 0;
    while (have < options.samples) {
        mc.first_sample = options.mc.first_sample + have;
        mc.samples = std::min(round_size, options.samples - have);
        const std::vector<scenario> scenarios = monte_carlo_scenarios(sg, mc);
        const scenario_batch_result batch = engine.run(scenarios, bopts);
        for (const critical_cycle_stat& stat : batch.critical_cycles) {
            const auto [it, inserted] =
                witnesses.try_emplace(stat.arcs, tally{stat.count, have + stat.first_index});
            if (!inserted) it->second.count += stat.count;
        }
        have += scenarios.size();
    }
    out.samples = have;

    // Rank: count descending, first appearance ascending (first indices of
    // distinct identities are distinct — each sample has one witness).
    std::vector<std::pair<const std::vector<arc_id>*, tally>> ranked;
    for (const auto& [arcs, t] : witnesses) ranked.emplace_back(&arcs, t);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.second.count != b.second.count) return a.second.count > b.second.count;
        return a.second.first_index < b.second.first_index;
    });

    const double n = static_cast<double>(have);
    for (const auto& [arcs, t] : ranked) {
        if (out.cycles.size() >= options.k) break;
        topk_cycle cycle = make_topk_cycle(sg, cg, *arcs, out.cycle_time);
        cycle.count = t.count;
        cycle.first_index = t.first_index;
        cycle.probability = static_cast<double>(t.count) / n;
        cycle.ci_half_width = options.confidence_z *
                              std::sqrt(cycle.probability * (1.0 - cycle.probability) / n);
        out.cycles.push_back(std::move(cycle));
    }
    out.truncated = out.cycles.size() < options.k;
    return out;
}

} // namespace

// --- entry points ------------------------------------------------------------

optimize_result run_optimize(const signal_graph& sg, const scenario_engine& engine,
                             const optimize_options& options)
{
    require(sg.finalized(), "run_optimize: graph must be finalized");
    validate_optimize(options);
    if (!engine.base().has_core())
        throw error("invalid_request: optimize requires a repetitive (cyclic) graph");
    return options.mode == optimize_mode::deterministic
               ? optimize_deterministic(sg, engine, options)
               : optimize_statistical(sg, engine, options);
}

optimize_result run_optimize(const signal_graph& sg, const optimize_options& options)
{
    require(sg.finalized(), "run_optimize: graph must be finalized");
    const compiled_graph cg(sg);
    const scenario_engine engine(cg);
    return run_optimize(sg, engine, options);
}

topk_result report_topk(const signal_graph& sg, const compiled_graph& cg,
                        const scenario_engine& engine, const topk_options& options)
{
    require(sg.finalized(), "report_topk: graph must be finalized");
    if (options.k == 0) throw error("invalid_request: report_topk needs k >= 1");
    if (!cg.has_core())
        throw error("invalid_request: report_topk requires a repetitive (cyclic) graph");
    return options.mode == optimize_mode::deterministic
               ? topk_deterministic(sg, cg, options)
               : topk_statistical(sg, cg, engine, options);
}

topk_result report_topk(const signal_graph& sg, const topk_options& options)
{
    require(sg.finalized(), "report_topk: graph must be finalized");
    const compiled_graph cg(sg);
    const scenario_engine engine(cg);
    return report_topk(sg, cg, engine, options);
}

} // namespace tsg
