#include "core/service.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/compiled_graph.h"
#include "core/incremental.h"
#include "util/error.h"
#include "util/strings.h"

namespace tsg {

// --- internal structures -----------------------------------------------------

/// One queued request with its completion channel: a promise (submit)
/// or a callback (submit_async — the epoll transport's path).
struct analysis_service::pending {
    analysis_request request;
    std::promise<analysis_response> promise;
    std::function<void(analysis_response)> callback;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute deadline computed at admission from options.deadline_ms
    /// (epoch default: none).  Expired jobs are shed before execution and
    /// adaptive runs check it between rounds.
    std::chrono::steady_clock::time_point deadline{};

    [[nodiscard]] bool expired(std::chrono::steady_clock::time_point now) const
    {
        return deadline.time_since_epoch().count() != 0 && now >= deadline;
    }

    void deliver(analysis_response response)
    {
        if (callback)
            callback(std::move(response));
        else
            promise.set_value(std::move(response));
    }
};

/// One immutable compiled snapshot of a design.  The graph lives on the
/// heap behind a shared_ptr so its address is stable for the lifetime of
/// every rebind, even after the version is evicted from the chain while a
/// worker still analyzes it.
struct analysis_service::design_version {
    std::uint64_t version = 0;
    std::shared_ptr<const signal_graph> graph;
    std::unique_ptr<const compiled_graph> compiled;
    std::unique_ptr<scenario_engine> engine;

    std::mutex nominal_mutex;
    bool nominal_ready = false;
    rational nominal; ///< lambda/makespan at the snapshot's own delays

    /// Monte Carlo sampling tables, keyed by the only request knobs that
    /// shape the grid (spread, resolution).  Small serving requests
    /// resample the same immutable snapshot over and over; sharing the
    /// materialized grid turns per-delay rational arithmetic into indexed
    /// copies (core/scenario.h: monte_carlo_table).
    std::mutex mc_mutex;
    std::map<std::pair<std::string, std::int64_t>,
             std::shared_ptr<const monte_carlo_table>>
        mc_tables;

    /// Cross-request payload cache: canonical request body (id stripped)
    /// -> (payload bytes, scenario count) of the first execution.  The
    /// cached bytes are returned verbatim, so a payload first rendered
    /// from a merged run keeps that run's engine-accounting block — the
    /// same documented exception the coalescer already carries.
    std::mutex cache_mutex;
    std::map<std::string, std::pair<std::string, std::size_t>> payload_cache;

    std::uint64_t last_used = 0; ///< registry use tick, for LRU eviction
};

/// One design chain: ascending versions plus the edit serialization lock.
struct analysis_service::design_entry {
    std::string id;
    std::vector<std::shared_ptr<design_version>> versions;
    std::uint64_t next_version = 1;
    std::mutex edit_mutex; ///< structural edits on a design are serial
};

namespace {

/// Two batch requests may share one engine run only when every knob that
/// shapes the run itself agrees; the per-request payload knobs (factor,
/// samples, seed, spread, resolution) are free to differ.
bool engine_compatible(const request_options& a, const request_options& b)
{
    return a.solver == b.solver && a.max_threads == b.max_threads &&
           a.lane_width == b.lane_width && a.delta == b.delta &&
           a.with_slack == b.with_slack && a.with_witness == b.with_witness;
}

/// A sliced response reports the merged run's physical engine accounting
/// (the lane/sparse counters describe how the batch actually executed);
/// every per-request aggregate is re-reduced from the outcome slice.
void copy_engine_accounting(const scenario_batch_result& from, scenario_batch_result& to)
{
    to.lane_groups = from.lane_groups;
    to.lane_scenarios = from.lane_scenarios;
    to.lane_evictions = from.lane_evictions;
    to.lane_rows_reused = from.lane_rows_reused;
    to.lane_rows_repacked = from.lane_rows_repacked;
    to.scalar_scenarios = from.scalar_scenarios;
    to.sparse_scenarios = from.sparse_scenarios;
    to.sparse_arcs_touched = from.sparse_arcs_touched;
    to.dense_sweep_arcs = from.dense_sweep_arcs;
}

bool coalescable(const analysis_request& request)
{
    return request.kind == request_kind::sweep ||
           (request.kind == request_kind::montecarlo && !request.options.adaptive);
}

/// Canonical cache key: the full request document with the client
/// correlation id and the version pin stripped (the cache already lives
/// inside one resolved design_version, so "latest" and an explicit pin of
/// the same snapshot share entries).
std::string payload_cache_key(const analysis_request& request)
{
    analysis_request canonical = request;
    canonical.id.clear();
    canonical.design.version = 0;
    // Deadlines bound *when* work may run, never what it computes — two
    // requests differing only in deadline_ms share one payload.
    canonical.options.deadline_ms = 0;
    return analysis_request_json(canonical).write();
}

} // namespace

// --- lifecycle ---------------------------------------------------------------

analysis_service::analysis_service(service_options options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()),
      latency_(/*arc_count=*/0,
               options_.latency_histogram_bins == 0 ? 64 : options_.latency_histogram_bins,
               rational(0),
               options_.latency_histogram_hi > rational(0) ? options_.latency_histogram_hi
                                                           : rational(1000000))
{
    const unsigned n = std::max(1u, options_.workers);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back(&analysis_service::worker_loop, this);
}

analysis_service::~analysis_service()
{
    {
        std::lock_guard<std::mutex> lk(queue_mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    // Workers drain the queue before exiting, so every accepted request
    // still receives its response.
    for (std::thread& w : workers_) w.join();
}

// --- registry ----------------------------------------------------------------

std::uint64_t analysis_service::register_design(const std::string& id,
                                                const signal_graph& sg)
{
    require(!id.empty(), "bad_request: a design id must not be empty");
    std::shared_ptr<design_entry> entry;
    {
        std::lock_guard<std::mutex> lk(registry_mutex_);
        std::shared_ptr<design_entry>& slot = designs_[id];
        if (!slot) {
            slot = std::make_shared<design_entry>();
            slot->id = id;
        }
        entry = slot;
    }
    std::lock_guard<std::mutex> edit_lock(entry->edit_mutex);
    return commit_version(*entry, std::make_shared<signal_graph>(sg));
}

std::shared_ptr<analysis_service::design_entry> analysis_service::entry_of(
    const std::string& id)
{
    std::lock_guard<std::mutex> lk(registry_mutex_);
    const auto it = designs_.find(id);
    require(it != designs_.end(),
            "unknown_design: no design named '" + id + "' is registered");
    return it->second;
}

std::shared_ptr<analysis_service::design_version> analysis_service::resolve(
    const design_ref& ref)
{
    require(!ref.id.empty(),
            "bad_request: the analysis service serves registered designs — set "
            "design.id (path/text references are the stand-alone tool's mode)");
    const std::shared_ptr<design_entry> entry = entry_of(ref.id);

    std::lock_guard<std::mutex> lk(registry_mutex_);
    std::shared_ptr<design_version> hit;
    if (ref.version == 0) {
        hit = entry->versions.back();
    } else {
        for (const std::shared_ptr<design_version>& v : entry->versions)
            if (v->version == ref.version) {
                hit = v;
                break;
            }
        if (!hit) {
            const std::string latest =
                std::to_string(entry->versions.back()->version);
            const std::string wanted = std::to_string(ref.version);
            if (ref.version < entry->next_version)
                throw error("unknown_version: design '" + ref.id + "' version " +
                            wanted + " was evicted (latest is " + latest + ")");
            throw error("unknown_version: design '" + ref.id + "' has no version " +
                        wanted + " (latest is " + latest + ")");
        }
    }
    hit->last_used = ++use_tick_;
    return hit;
}

std::uint64_t analysis_service::commit_version(design_entry& entry,
                                               std::shared_ptr<const signal_graph> graph)
{
    // Compile outside the registry lock — it is the expensive step.
    auto next = std::make_shared<design_version>();
    next->graph = std::move(graph);
    next->compiled = std::make_unique<compiled_graph>(*next->graph);
    next->engine = std::make_unique<scenario_engine>(*next->compiled);

    std::lock_guard<std::mutex> lk(registry_mutex_);
    next->version = entry.next_version++;
    next->last_used = ++use_tick_;
    entry.versions.push_back(std::move(next));

    const std::size_t keep = std::max<std::size_t>(1, options_.max_versions_per_design);
    while (entry.versions.size() > keep) {
        // Evict the least-recently-used version, never the latest.
        std::size_t victim = 0;
        for (std::size_t i = 1; i + 1 < entry.versions.size(); ++i)
            if (entry.versions[i]->last_used < entry.versions[victim]->last_used)
                victim = i;
        entry.versions.erase(entry.versions.begin() +
                             static_cast<std::ptrdiff_t>(victim));
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return entry.versions.back()->version;
}

rational analysis_service::nominal_of(design_version& version,
                                      const request_options& options)
{
    // The nominal lambda is solver- and thread-independent (exact
    // rational), so one cached evaluation serves every request.
    std::lock_guard<std::mutex> lk(version.nominal_mutex);
    if (!version.nominal_ready) {
        version.nominal = version.engine
                              ->evaluate(version.compiled->delay(), /*with_slack=*/false,
                                         options.max_threads, options.solver)
                              .cycle_time;
        version.nominal_ready = true;
    }
    return version.nominal;
}

std::vector<scenario> analysis_service::scenarios_for(design_version& version,
                                                      const analysis_request& request)
{
    // Non-adaptive Monte Carlo — the bulk of serving traffic — samples a
    // fixed per-arc grid of the immutable snapshot, so the grid values are
    // materialized once per (version, spread, resolution) and shared by
    // every subsequent request.  Oversized grids (huge resolution or arc
    // count) skip the cache and generate directly.
    if (request.kind == request_kind::montecarlo && !request.options.adaptive) {
        const monte_carlo_options mo = request.options.to_monte_carlo_options();
        const std::size_t cells =
            version.graph->arc_count() * static_cast<std::size_t>(mo.resolution + 1);
        if (mo.resolution <= 4096 && cells <= (std::size_t{1} << 22)) {
            const auto key = std::make_pair(mo.spread.str(), mo.resolution);
            std::shared_ptr<const monte_carlo_table> table;
            {
                std::lock_guard<std::mutex> lk(version.mc_mutex);
                const auto it = version.mc_tables.find(key);
                if (it != version.mc_tables.end()) table = it->second;
            }
            if (!table) {
                auto built = std::make_shared<const monte_carlo_table>(
                    build_monte_carlo_table(*version.graph, mo));
                std::lock_guard<std::mutex> lk(version.mc_mutex);
                // A concurrent builder may have won the race; keep its
                // table.  The map stays tiny (one entry per distinct
                // client grid), but cap it against pathological clients.
                if (version.mc_tables.size() >= 16) version.mc_tables.clear();
                table = version.mc_tables.emplace(key, std::move(built))
                            .first->second;
            }
            return monte_carlo_scenarios(*version.graph, mo, *table);
        }
    }
    return request_scenarios(request, *version.graph);
}

// --- submission --------------------------------------------------------------

std::uint64_t analysis_service::take_quota_token(const std::string& id)
{
    const double rate = options_.design_quota_rps;
    if (rate <= 0.0 || id.empty()) return 0;
    const double burst = options_.design_quota_burst > 0.0
                             ? options_.design_quota_burst
                             : std::max(1.0, std::ceil(rate));
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lk(quota_mutex_);
    token_bucket& bucket = quotas_[id];
    if (!bucket.primed) {
        bucket.tokens = burst;
        bucket.primed = true;
    } else {
        const double dt = std::chrono::duration<double>(now - bucket.last).count();
        bucket.tokens = std::min(burst, bucket.tokens + rate * dt);
    }
    bucket.last = now;
    if (bucket.tokens >= 1.0) {
        bucket.tokens -= 1.0;
        return 0;
    }
    const double wait_ms = (1.0 - bucket.tokens) / rate * 1000.0;
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(wait_ms)));
}

std::optional<api_error> analysis_service::admit(pending job)
{
    const auto now = std::chrono::steady_clock::now();
    if (job.request.options.deadline_ms > 0)
        job.deadline = now + std::chrono::milliseconds(job.request.options.deadline_ms);

    // Probe kinds (health, stats) are exempt from quotas, and health is
    // answerable while draining — a load balancer must be able to observe
    // the drain it is routing around.
    const bool probe = job.request.kind == request_kind::health ||
                       job.request.kind == request_kind::stats;
    std::optional<api_error> refusal;
    if (!probe) {
        const std::uint64_t retry_ms = take_quota_token(job.request.design.id);
        if (retry_ms > 0)
            refusal = api_error{"rate_limited",
                                "design '" + job.request.design.id +
                                    "' is over its admission quota (" +
                                    format_double(options_.design_quota_rps, 6) +
                                    " requests/s); retry after the hinted backoff",
                                retry_ms};
    }
    {
        std::lock_guard<std::mutex> lk(queue_mutex_);
        // Arrival-rate EWMA for the adaptive coalescing window: smoothed
        // inter-arrival time in microseconds of the recent request stream.
        if (arrival_seen_) {
            const double us =
                std::chrono::duration<double, std::micro>(now - last_arrival_).count();
            arrival_ewma_us_ =
                arrival_ewma_us_ <= 0.0 ? us : 0.8 * arrival_ewma_us_ + 0.2 * us;
        }
        arrival_seen_ = true;
        last_arrival_ = now;

        const bool drain = stopping_ || draining_.load(std::memory_order_acquire);
        if (drain && !(probe && !stopping_)) {
            refusal = api_error{"draining",
                                "the analysis service is draining for shutdown; "
                                "retry against another instance"};
        } else if (refusal) {
            // rate_limited, decided above — nothing to enqueue.
        } else if (options_.max_queue_depth != 0 &&
                   queue_.size() >= options_.max_queue_depth) {
            refusal = api_error{
                "overloaded", "request queue is full (depth " +
                                  std::to_string(options_.max_queue_depth) +
                                  "); the request was shed, retry later"};
        } else {
            queue_.push_back(std::move(job));
            queue_peak_ = std::max(queue_peak_, queue_.size());
        }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!refusal) {
        queue_cv_.notify_one();
        return std::nullopt;
    }
    if (refusal->code == "overloaded") shed_.fetch_add(1, std::memory_order_relaxed);
    if (refusal->code == "rate_limited")
        rate_limited_.fetch_add(1, std::memory_order_relaxed);
    if (refusal->code == "draining")
        drain_rejected_.fetch_add(1, std::memory_order_relaxed);
    bump_fleet(job.request.design.id, [&](design_traffic& t) {
        ++t.requests;
        ++t.failures;
        if (refusal->code == "overloaded") ++t.shed;
        if (refusal->code == "rate_limited") ++t.rate_limited;
    });
    // Promise-channel jobs receive the refusal as an immediately-ready
    // response; callback-channel jobs never run their callback — the
    // transport answers from the returned error without a thread handoff.
    if (!job.callback) {
        analysis_response response;
        response.id = job.request.id;
        response.ok = false;
        response.error = *refusal;
        job.promise.set_value(std::move(response));
    }
    return refusal;
}

std::future<analysis_response> analysis_service::submit(analysis_request request)
{
    pending job;
    job.request = std::move(request);
    job.enqueued = std::chrono::steady_clock::now();
    std::future<analysis_response> result = job.promise.get_future();
    (void)admit(std::move(job)); // a refusal is already delivered into the future
    return result;
}

std::optional<api_error> analysis_service::submit_async(
    analysis_request request, std::function<void(analysis_response)> done)
{
    pending job;
    job.request = std::move(request);
    job.callback = std::move(done);
    job.enqueued = std::chrono::steady_clock::now();
    return admit(std::move(job));
}

analysis_response analysis_service::execute(analysis_request request)
{
    return submit(std::move(request)).get();
}

void analysis_service::serve_stream(std::istream& in, std::ostream& out)
{
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        analysis_response response;
        try {
            response = execute(parse_analysis_request(line));
        } catch (const error& e) {
            requests_.fetch_add(1, std::memory_order_relaxed);
            failures_.fetch_add(1, std::memory_order_relaxed);
            response.error = classify_error(e.what(), "bad_request");
        } catch (const std::exception& e) {
            requests_.fetch_add(1, std::memory_order_relaxed);
            failures_.fetch_add(1, std::memory_order_relaxed);
            response.error = {"internal", e.what()};
        }
        out << analysis_response_json(response) << "\n" << std::flush;
        // A dead transport (EPIPE'd socket, closed pipe) puts the stream
        // in a failed state; executing the rest of the input would burn
        // engine time on responses nobody can receive.
        if (!out) break;
    }
}

// --- dispatch ----------------------------------------------------------------

void analysis_service::worker_loop()
{
    for (;;) {
        pending job;
        {
            std::unique_lock<std::mutex> lk(queue_mutex_);
            queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++busy_workers_;
        }
        handle(std::move(job));
        {
            std::lock_guard<std::mutex> lk(queue_mutex_);
            --busy_workers_;
            if (queue_.empty() && busy_workers_ == 0) idle_cv_.notify_all();
        }
    }
}

void analysis_service::begin_drain()
{
    draining_.store(true, std::memory_order_release);
    // Wake idle waiters so a drain of an already-idle service returns
    // promptly; workers need no nudge — the flag only gates admission.
    std::lock_guard<std::mutex> lk(queue_mutex_);
    idle_cv_.notify_all();
}

bool analysis_service::wait_idle(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lk(queue_mutex_);
    return idle_cv_.wait_for(lk, timeout,
                             [&] { return queue_.empty() && busy_workers_ == 0; });
}

analysis_response analysis_service::respond_error(const pending& job,
                                                  const std::string& diagnostic)
{
    analysis_response response;
    response.id = job.request.id;
    response.ok = false;
    response.error = classify_error(diagnostic);
    return response;
}

void analysis_service::finish(pending& job, analysis_response response)
{
    const auto now = std::chrono::steady_clock::now();
    response.elapsed_ms =
        std::chrono::duration<double, std::milli>(now - job.enqueued).count();
    const std::int64_t us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - job.enqueued)
            .count();
    {
        // Latency dogfoods the statistical layer: each request is one
        // "scenario outcome" whose cycle time is its microsecond latency.
        std::lock_guard<std::mutex> lk(latency_mutex_);
        scenario_outcome sample;
        sample.cycle_time = rational(us);
        sample.fixed_point = true;
        latency_.add(sample);
    }
    if (!response.ok) failures_.fetch_add(1, std::memory_order_relaxed);
    bump_fleet(job.request.design.id, [&](design_traffic& t) {
        ++t.requests;
        if (!response.ok) ++t.failures;
        // A cached payload re-reports its original run's scenario count.
        t.scenarios += response.scenarios;
    });
    job.deliver(std::move(response));
}

std::chrono::microseconds analysis_service::adaptive_coalesce_window(
    double arrival_ewma_us, std::chrono::microseconds cap)
{
    // An isolated request must not wait for partners that are not coming:
    // above a 200us mean inter-arrival time (< 5k requests/s) the window
    // stays 0.  Denser streams wait ~4 inter-arrival times, enough for a
    // handful of partners to land, clamped to the configured cap.
    if (arrival_ewma_us <= 0.0 || arrival_ewma_us > 200.0)
        return std::chrono::microseconds{0};
    const auto window =
        std::chrono::microseconds(static_cast<std::int64_t>(4.0 * arrival_ewma_us));
    return std::min(cap, window);
}

std::chrono::microseconds analysis_service::coalesce_wait() const
{
    if (options_.coalesce_window.count() > 0) return options_.coalesce_window;
    if (!options_.adaptive_window) return std::chrono::microseconds{0};
    double ewma = 0.0;
    {
        std::lock_guard<std::mutex> lk(queue_mutex_);
        ewma = arrival_ewma_us_;
    }
    return adaptive_coalesce_window(ewma, options_.adaptive_window_cap);
}

void analysis_service::shed_expired(pending& job)
{
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    bump_fleet(job.request.design.id, [](design_traffic& t) { ++t.deadline_expired; });
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - job.enqueued)
            .count();
    finish(job, respond_error(job, "deadline_exceeded: deadline_ms " +
                                       std::to_string(job.request.options.deadline_ms) +
                                       " passed while queued (" +
                                       std::to_string(waited) +
                                       " ms since admission); the work was shed"));
}

void analysis_service::handle(pending job)
{
    // Pre-execution deadline check: work whose deadline passed while it
    // waited in the queue is shed instead of burning a worker.
    if (job.expired(std::chrono::steady_clock::now())) {
        shed_expired(job);
        return;
    }

    if (coalescable(job.request)) {
        handle_batch(std::move(job));
        return;
    }

    analysis_response response;
    response.id = job.request.id;
    try {
        switch (job.request.kind) {
        case request_kind::stats:
            response.payload = stats_json();
            break;
        case request_kind::health:
            response.payload = health_json();
            break;
        case request_kind::edit:
            response.payload = edit_payload(job, response.design_version);
            break;
        default: {
            // analyze, criticality, adaptive montecarlo, optimize and
            // report_topk run solo — their work does not decompose into
            // mergeable scenarios.
            const std::shared_ptr<design_version> version = resolve(job.request.design);
            response.design_version = version->version;
            response.payload =
                execute_analysis_payload(job.request, *version->graph, *version->compiled,
                                         *version->engine, job.deadline);
            break;
        }
        }
        response.ok = true;
    } catch (const error& e) {
        response = respond_error(job, e.what());
        if (response.error.code == "deadline_exceeded") {
            deadline_expired_.fetch_add(1, std::memory_order_relaxed);
            bump_fleet(job.request.design.id,
                       [](design_traffic& t) { ++t.deadline_expired; });
        }
    } catch (const std::exception& e) {
        response = respond_error(job, std::string("internal: ") + e.what());
    }
    finish(job, std::move(response));
}

std::string analysis_service::edit_payload(pending& job, std::uint64_t& out_version)
{
    const std::shared_ptr<design_entry> entry = entry_of(job.request.design.id);
    std::lock_guard<std::mutex> edit_lock(entry->edit_mutex);

    std::shared_ptr<design_version> latest;
    {
        std::lock_guard<std::mutex> lk(registry_mutex_);
        latest = entry->versions.back();
        latest->last_used = ++use_tick_;
    }
    if (job.request.design.version != 0 && job.request.design.version != latest->version)
        throw error("bad_request: edits apply to the latest version of design '" +
                    job.request.design.id + "' (latest is " +
                    std::to_string(latest->version) + ", request pins " +
                    std::to_string(job.request.design.version) + ")");

    // Rejected batches roll back inside run_edit_script, so the engine
    // always ends on a valid structure; commit it as the next version
    // even when nothing changed (the version then snapshots "script ran").
    incremental_engine engine(*latest->graph);
    std::string payload = execute_edit_payload(job.request, engine);
    out_version = commit_version(*entry, std::make_shared<signal_graph>(engine.graph()));
    edits_.fetch_add(1, std::memory_order_relaxed);
    return payload;
}

// --- the coalescer -----------------------------------------------------------

void analysis_service::handle_batch(pending first)
{
    std::shared_ptr<design_version> version;
    std::vector<pending> jobs;
    std::vector<std::vector<scenario>> parts;
    try {
        version = resolve(first.request.design);
        if (options_.payload_cache) {
            const std::string key = payload_cache_key(first.request);
            std::pair<std::string, std::size_t> hit;
            bool found = false;
            {
                std::lock_guard<std::mutex> lk(version->cache_mutex);
                const auto it = version->payload_cache.find(key);
                if (it != version->payload_cache.end()) {
                    hit = it->second;
                    found = true;
                }
            }
            if (found) {
                cache_hits_.fetch_add(1, std::memory_order_relaxed);
                bump_fleet(first.request.design.id,
                           [](design_traffic& t) { ++t.cache_hits; });
                analysis_response response;
                response.id = first.request.id;
                response.ok = true;
                response.payload = std::move(hit.first);
                response.scenarios = hit.second;
                response.design_version = version->version;
                finish(first, std::move(response));
                return;
            }
        }
        parts.push_back(scenarios_for(*version, first.request));
    } catch (const error& e) {
        finish(first, respond_error(first, e.what()));
        return;
    } catch (const std::exception& e) {
        finish(first, respond_error(first, std::string("internal: ") + e.what()));
        return;
    }
    jobs.push_back(std::move(first));

    // Admit queued partners: same kind, same design reference, identical
    // engine knobs — served against this worker's resolved snapshot (the
    // merged batch linearizes before any concurrently committed edit).
    std::size_t total = parts[0].size();
    if (options_.coalesce && total > 0 && total < options_.max_coalesce_scenarios) {
        const std::chrono::microseconds window = coalesce_wait();
        if (window.count() > 0) std::this_thread::sleep_for(window);
        std::vector<pending> partners;
        {
            std::lock_guard<std::mutex> lk(queue_mutex_);
            const analysis_request& head = jobs[0].request;
            for (auto it = queue_.begin(); it != queue_.end();) {
                const analysis_request& cand = it->request;
                if (cand.kind != head.kind || !coalescable(cand) ||
                    !(cand.design == head.design) ||
                    !engine_compatible(cand.options, head.options)) {
                    ++it;
                    continue;
                }
                // Scenario counts are predictable before generation: a
                // Monte Carlo request evaluates exactly `samples`, and a
                // sweep on the same design sweeps the same arcs as the
                // head request.
                const std::size_t predicted = cand.kind == request_kind::montecarlo
                                                  ? cand.options.samples
                                                  : parts[0].size();
                if (total + predicted > options_.max_coalesce_scenarios) {
                    ++it;
                    continue;
                }
                total += predicted;
                partners.push_back(std::move(*it));
                it = queue_.erase(it);
            }
        }
        for (pending& partner : partners) {
            if (partner.expired(std::chrono::steady_clock::now())) {
                shed_expired(partner);
                continue;
            }
            try {
                parts.push_back(scenarios_for(*version, partner.request));
                jobs.push_back(std::move(partner));
            } catch (const error& e) {
                finish(partner, respond_error(partner, e.what()));
            } catch (const std::exception& e) {
                finish(partner,
                       respond_error(partner, std::string("internal: ") + e.what()));
            }
        }
    }

    // Merge, dropping requests with nothing to evaluate (their solo run
    // would fail the same way).
    struct span {
        std::size_t offset = 0;
        std::size_t count = 0;
    };
    std::vector<scenario> merged;
    merged.reserve(total);
    std::vector<pending> live;
    std::vector<std::vector<scenario>> live_parts;
    std::vector<span> spans;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (parts[i].empty()) {
            finish(jobs[i],
                   respond_error(jobs[i],
                                 "invalid_model: no scenarios to evaluate (no "
                                 "perturbable arcs)"));
            continue;
        }
        spans.push_back({merged.size(), parts[i].size()});
        merged.insert(merged.end(), parts[i].begin(), parts[i].end());
        live.push_back(std::move(jobs[i]));
        live_parts.push_back(std::move(parts[i]));
    }
    if (live.empty()) return;

    rational nominal;
    scenario_batch_result batch;
    try {
        nominal = nominal_of(*version, live[0].request.options);
        batch = version->engine->run(merged, live[0].request.options.to_batch_options());
    } catch (const error& e) {
        for (pending& job : live) finish(job, respond_error(job, e.what()));
        return;
    } catch (const std::exception& e) {
        for (pending& job : live)
            finish(job, respond_error(job, std::string("internal: ") + e.what()));
        return;
    }

    engine_batches_.fetch_add(1, std::memory_order_relaxed);
    batch_requests_.fetch_add(live.size(), std::memory_order_relaxed);
    scenarios_.fetch_add(merged.size(), std::memory_order_relaxed);
    const bool coalesced = live.size() > 1;
    if (coalesced) coalesced_requests_.fetch_add(live.size(), std::memory_order_relaxed);

    // Demultiplex: re-reduce each request's outcome slice so every
    // aggregate matches its solo run bit for bit.
    for (std::size_t i = 0; i < live.size(); ++i) {
        analysis_response response;
        response.id = live[i].request.id;
        try {
            scenario_batch_result slice;
            slice.outcomes.assign(
                batch.outcomes.begin() + static_cast<std::ptrdiff_t>(spans[i].offset),
                batch.outcomes.begin() +
                    static_cast<std::ptrdiff_t>(spans[i].offset + spans[i].count));
            copy_engine_accounting(batch, slice);
            reduce_scenario_outcomes(slice, version->graph->arc_count());
            response.payload = batch_payload_json(live[i].request, *version->graph,
                                                  nominal, live_parts[i], slice);
            response.ok = true;
            response.design_version = version->version;
            response.scenarios = spans[i].count;
            response.coalesced = coalesced;
            if (options_.payload_cache) {
                std::lock_guard<std::mutex> lk(version->cache_mutex);
                // Bounded like the MC-table cache: clear-all on overflow
                // beats tracking recency for a cache this cheap to refill.
                if (version->payload_cache.size() >= options_.max_cached_payloads)
                    version->payload_cache.clear();
                version->payload_cache.emplace(
                    payload_cache_key(live[i].request),
                    std::make_pair(response.payload, spans[i].count));
            }
        } catch (const error& e) {
            response = respond_error(live[i], e.what());
        } catch (const std::exception& e) {
            response = respond_error(live[i], std::string("internal: ") + e.what());
        }
        finish(live[i], std::move(response));
    }
}

// --- metrics -----------------------------------------------------------------

service_metrics analysis_service::metrics() const
{
    service_metrics m;
    m.requests = requests_.load(std::memory_order_relaxed);
    m.failures = failures_.load(std::memory_order_relaxed);
    m.requests_shed = shed_.load(std::memory_order_relaxed);
    m.rate_limited = rate_limited_.load(std::memory_order_relaxed);
    m.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
    m.drain_rejected = drain_rejected_.load(std::memory_order_relaxed);
    m.draining = draining_.load(std::memory_order_acquire);
    m.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    m.queue_limit = options_.max_queue_depth;
    m.engine_batches = engine_batches_.load(std::memory_order_relaxed);
    m.batch_requests = batch_requests_.load(std::memory_order_relaxed);
    m.coalesced_requests = coalesced_requests_.load(std::memory_order_relaxed);
    m.scenarios = scenarios_.load(std::memory_order_relaxed);
    m.edits_committed = edits_.load(std::memory_order_relaxed);
    m.versions_evicted = evictions_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(registry_mutex_);
        m.designs = designs_.size();
        for (const auto& [id, entry] : designs_) m.versions += entry->versions.size();
    }
    {
        std::lock_guard<std::mutex> lk(queue_mutex_);
        m.queue_depth = queue_.size();
        m.queue_peak = queue_peak_;
        m.arrival_ewma_us = arrival_ewma_us_;
    }
    {
        std::lock_guard<std::mutex> lk(fleet_mutex_);
        m.fleet.assign(fleet_.begin(), fleet_.end());
    }
    m.coalescing_efficiency =
        m.engine_batches
            ? static_cast<double>(m.batch_requests) / static_cast<double>(m.engine_batches)
            : 1.0;
    m.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    m.scenarios_per_second = m.uptime_seconds > 0.0
                                 ? static_cast<double>(m.scenarios) / m.uptime_seconds
                                 : 0.0;
    {
        std::lock_guard<std::mutex> lk(latency_mutex_);
        m.latency_samples = latency_.count();
        if (m.latency_samples > 0) {
            m.latency_mean_us = latency_.mean();
            m.latency_p50_us = latency_.quantile(0.50);
            m.latency_p95_us = latency_.quantile(0.95);
            m.latency_p99_us = latency_.quantile(0.99);
        }
    }
    return m;
}

std::string analysis_service::stats_json() const
{
    const service_metrics m = metrics();
    std::ostringstream out;
    out << "{\n";
    out << "  \"command\": \"stats\",\n";
    out << "  \"requests\": {\"total\": " << m.requests << ", \"failed\": " << m.failures
        << ", \"batch\": " << m.batch_requests
        << ", \"coalesced\": " << m.coalesced_requests
        << ", \"edits_committed\": " << m.edits_committed << "},\n";
    out << "  \"designs\": {\"count\": " << m.designs << ", \"versions\": " << m.versions
        << ", \"evicted\": " << m.versions_evicted << "},\n";
    out << "  \"queue\": {\"depth\": " << m.queue_depth << ", \"peak\": " << m.queue_peak
        << "},\n";
    out << "  \"admission\": {\"queue_limit\": " << m.queue_limit
        << ", \"shed\": " << m.requests_shed << ", \"rate_limited\": " << m.rate_limited
        << ", \"deadline_expired\": " << m.deadline_expired
        << ", \"drain_rejected\": " << m.drain_rejected
        << ", \"draining\": " << (m.draining ? "true" : "false")
        << ", \"arrival_ewma_us\": " << format_double(m.arrival_ewma_us, 6) << "},\n";
    out << "  \"cache\": {\"hits\": " << m.cache_hits << "},\n";
    out << "  \"fleet\": {";
    for (std::size_t i = 0; i < m.fleet.size(); ++i) {
        const auto& [id, t] = m.fleet[i];
        out << (i ? ", " : "") << json_quote(id) << ": {\"requests\": " << t.requests
            << ", \"failed\": " << t.failures << ", \"shed\": " << t.shed
            << ", \"rate_limited\": " << t.rate_limited
            << ", \"deadline_expired\": " << t.deadline_expired
            << ", \"scenarios\": " << t.scenarios
            << ", \"cache_hits\": " << t.cache_hits << "}";
    }
    out << "},\n";
    out << "  \"coalescing\": {\"engine_batches\": " << m.engine_batches
        << ", \"efficiency\": " << format_double(m.coalescing_efficiency, 6) << "},\n";
    out << "  \"throughput\": {\"scenarios\": " << m.scenarios
        << ", \"uptime_seconds\": " << format_double(m.uptime_seconds, 6)
        << ", \"scenarios_per_second\": " << format_double(m.scenarios_per_second, 6)
        << "},\n";
    out << "  \"latency_us\": {\"samples\": " << m.latency_samples
        << ", \"mean\": " << format_double(m.latency_mean_us, 6)
        << ", \"p50\": " << format_double(m.latency_p50_us, 6)
        << ", \"p95\": " << format_double(m.latency_p95_us, 6)
        << ", \"p99\": " << format_double(m.latency_p99_us, 6) << "}\n";
    out << "}\n";
    return out.str();
}

std::string analysis_service::health_json() const
{
    const bool drain = draining_.load(std::memory_order_acquire);
    std::size_t depth = 0;
    std::size_t busy = 0;
    {
        std::lock_guard<std::mutex> lk(queue_mutex_);
        depth = queue_.size();
        busy = busy_workers_;
    }
    std::size_t designs = 0;
    {
        std::lock_guard<std::mutex> lk(registry_mutex_);
        designs = designs_.size();
    }
    std::ostringstream out;
    out << "{\n";
    out << "  \"command\": \"health\",\n";
    out << "  \"status\": " << (drain ? "\"draining\"" : "\"ok\"") << ",\n";
    out << "  \"draining\": " << (drain ? "true" : "false") << ",\n";
    out << "  \"queue_depth\": " << depth << ",\n";
    out << "  \"busy_workers\": " << busy << ",\n";
    out << "  \"workers\": " << workers_.size() << ",\n";
    out << "  \"designs\": " << designs << ",\n";
    out << "  \"uptime_seconds\": "
        << format_double(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                       start_)
                             .count(),
                         6)
        << "\n";
    out << "}\n";
    return out.str();
}

} // namespace tsg
