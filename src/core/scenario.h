// Batched what-if analysis: one compiled structure, many delay scenarios.
//
// The paper's central use case is iterated what-if analysis — perturb gate
// delays, re-simulate, read off cycle time and slack.  Rebuilding and
// re-finalizing a signal_graph per perturbation makes every iteration pay
// for structure that never changes (classification, validation, CSR
// construction, topological orders).  The scenario engine amortizes all of
// it: a compiled_graph is built once, and each scenario is a delay-only
// rebind of that snapshot (compiled_graph::rebind) — an O(m) rescale into
// a per-scenario fixed-point domain, with the overflow bound re-checked so
// a pathological sample degrades only itself to rational arithmetic.
//
// Scenarios fan out across the engine's long-lived util/parallel.h thread
// pool; every worker writes one pre-allocated outcome slot and the
// aggregation is serial, so batch results are bit-identical to evaluating
// each scenario against a freshly compiled graph, in any thread
// configuration.
//
// Two batch fast paths sit on top of the rebind (both bit-identical to the
// scalar loop):
//   * lane batching — scenarios are chunked into groups of W lanes whose
//     scaled delays are packed arc-major (core/lane_domain.h); the border
//     sweeps / PERT / slack then update all W lanes per arc in SIMD-friendly
//     structure-of-arrays loops.  A lane that cannot live in the int64
//     domain is evicted to the exact rational path alone; batch tails run
//     through the scalar epilogue.
//   * sparse delta rebinds — when every scenario perturbs one arc
//     (scenario::delta_arc, set by corner_sweep_scenarios), the engine
//     solves the nominal base once, then per scenario re-propagates only
//     the perturbed arc's forward cone through the token-free order
//     instead of full sweeps (sub-linear arcs touched per corner on
//     typical graphs; see scenario_batch_result::sparse_arcs_touched).
//
// Scenario sources:
//   * corner_sweep_scenarios — per-arc +/- corners around the nominal
//     delays (the classical "which edge matters" sweep);
//   * monte_carlo_scenarios — reproducible uniform sampling from per-arc
//     delay ranges on an exact rational grid, seeded explicitly.
// Any caller-assembled vector<scenario> works the same way.
//
// Solvers.  Each scenario's lambda comes from the solver selected by
// scenario_batch_options::solver (see core/cycle_time.h).  Under the
// howard solver each batch worker carries a howard_state and warm-starts
// policy iteration from the previous scenario's converged policy — when
// delays barely change between samples (the SSTA-style workload), the
// iteration converges in one or two sweeps.  Cycle times are bit-identical
// to cold starts and to the border sweep; only the choice among *equally
// critical* witness cycles may differ between solvers and thread layouts.
#ifndef TSG_CORE_SCENARIO_H
#define TSG_CORE_SCENARIO_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compiled_graph.h"
#include "core/cycle_time.h"
#include "core/incremental.h"
#include "sg/signal_graph.h"
#include "util/parallel.h"
#include "util/rational.h"

namespace tsg {

/// One scenario: a complete per-arc delay assignment (same indexing as the
/// source graph's arcs) plus a display label.
struct scenario {
    std::string label;
    std::vector<rational> delay;

    /// Sparse-delta promise: when set, `delay` differs from the *base*
    /// snapshot's nominal assignment at this one arc only.  Generators
    /// that perturb a single arc (corner_sweep_scenarios) set it, which
    /// lets the engine re-propagate only the perturbed arc's forward cone
    /// instead of running full sweeps.  The promise is validated in debug
    /// builds; release builds trust it (a wrong flag yields wrong results
    /// for that scenario, never memory errors).
    arc_id delta_arc = invalid_arc;
};

/// Per-scenario analysis summary.  For cyclic graphs `cycle_time` is the
/// cycle time lambda; for acyclic graphs it is the PERT makespan.
struct scenario_outcome {
    rational cycle_time;

    /// The scenario's sweeps ran in the scaled-int64 domain.  False when
    /// the rebind re-check demoted this scenario to rational arithmetic
    /// (results are identical either way, just slower).
    bool fixed_point = false;

    /// Arcs on critical cycles (cyclic, slack-based) or on the critical
    /// path (acyclic), ascending original arc ids.  Without
    /// scenario_batch_options::with_slack only the one critical cycle the
    /// cycle-time analysis reports is recorded.
    std::vector<arc_id> critical_arcs;

    /// Smallest positive slack (cyclic graphs with with_slack only): how
    /// much delay the most loaded non-critical arc absorbs before the
    /// critical set changes.
    rational criticality_margin;

    /// Identity of *the* critical cycle the cycle-time solve reported:
    /// original arc ids in causal order, rotated so the smallest arc id
    /// leads — a canonical key for "which cycle limits this scenario".
    /// Empty on acyclic graphs.
    std::vector<arc_id> critical_cycle;
};

/// One distinct critical-cycle identity across a batch.
struct critical_cycle_stat {
    std::vector<arc_id> arcs;    ///< canonical cycle (see scenario_outcome)
    std::size_t count = 0;       ///< scenarios reporting this cycle
    std::size_t first_index = 0; ///< first such scenario
};

/// Batch reduction over all scenario outcomes.
struct scenario_batch_result {
    std::vector<scenario_outcome> outcomes; ///< one per scenario, input order

    rational min_cycle_time;
    rational max_cycle_time;
    std::size_t min_index = 0; ///< scenario attaining the minimum
    std::size_t max_index = 0; ///< scenario attaining the maximum
    double mean_cycle_time = 0.0; ///< double on purpose: exact rational means
                                  ///< overflow across thousands of samples

    /// Per original arc: number of scenarios in which the arc was critical.
    std::vector<std::uint32_t> criticality_count;

    /// Scenarios whose rebind fell back to rational arithmetic.
    std::size_t fallback_count = 0;

    /// Distinct critical-cycle identities across the batch, by descending
    /// count (ties: earliest first appearance) — "which cycle becomes
    /// critical where" for corner sweeps.  Empty on acyclic graphs.
    std::vector<critical_cycle_stat> critical_cycles;

    // --- engine accounting (how the batch was evaluated) -----------------

    /// Lane groups swept through the SoA kernels, and how many scenarios
    /// they served (excluding per-lane evictions).
    std::size_t lane_groups = 0;
    std::size_t lane_scenarios = 0;

    /// Scenarios in lane groups whose lane was evicted to the exact
    /// rational path (per-lane overflow fallback).
    std::size_t lane_evictions = 0;

    /// SoA delay rows lifted straight from the base snapshot via
    /// delta_arc hints vs rows that went through the per-lane rational
    /// rescale — the dirty-row packing win for single-arc batches.
    std::uint64_t lane_rows_reused = 0;
    std::uint64_t lane_rows_repacked = 0;

    /// Scenarios evaluated one-at-a-time (lane-group tails, evictions,
    /// batches below the lane width, forced scalar runs).
    std::size_t scalar_scenarios = 0;

    /// Scenarios evaluated through sparse delta rebinds, and the total
    /// arc relaxations their cone re-propagation performed.  A dense
    /// border sweep relaxes dense_sweep_arcs arcs per scenario — the
    /// sparse win is sparse_arcs_touched / sparse_scenarios being far
    /// below it.
    std::size_t sparse_scenarios = 0;
    std::uint64_t sparse_arcs_touched = 0;
    std::uint64_t dense_sweep_arcs = 0;
};

struct scenario_batch_options {
    /// Thread budget for the scenario fan-out (0 = hardware concurrency,
    /// 1 = serial).  Cycle times (and, with with_slack, the full critical
    /// sets) are bit-identical for every setting; under the howard solver
    /// the reported witness among equally critical cycles may depend on
    /// the thread layout (warm-start chains are per worker).
    unsigned max_threads = 0;

    /// Run the slack layer per scenario, so critical_arcs covers *every*
    /// critical cycle and criticality_margin is available.  Disable for
    /// cycle-time-only batches (roughly halves the per-scenario cost).
    bool with_slack = true;

    /// Extract the witness cycle per scenario (critical_cycle, and — with
    /// with_slack off — critical_arcs).  On for compatibility; turn off
    /// for Monte-Carlo-scale batches that aggregate cycle-time statistics:
    /// a witness is O(cycle length) to backtrack, peel and record per
    /// scenario, which dominates the lane-batched hot path on models whose
    /// critical cycles span the core.  With it off, outcomes carry the
    /// exact cycle time and domain flag only, and the critical-cycle /
    /// criticality aggregates stay empty.
    bool with_witness = true;

    /// Lambda engine per scenario; auto_select resolves once per batch
    /// (TSG_SOLVER env, then the size heuristic).  howard batches
    /// warm-start each worker from the previous scenario's policy.
    cycle_time_solver solver = cycle_time_solver::auto_select;

    /// SoA lane count for the lane-batched border-sweep/PERT path
    /// (core/lane_domain.h): 0 picks the default (8), 1 forces the scalar
    /// path, otherwise one of 2/4/8/16.  Batches smaller than one lane
    /// group run scalar; the tail of a batch not divisible by the width
    /// runs through the scalar epilogue.  Results are bit-identical for
    /// every setting.
    unsigned lane_width = 0;

    /// Sparse delta rebinds for single-arc-perturbation batches.
    enum class delta_mode : std::uint8_t {
        /// Use the sparse path when every scenario carries delta_arc and
        /// the batch fits a common fixed-point domain; dense otherwise.
        auto_detect,
        dense,  ///< always full rebinds
        sparse, ///< require the sparse path (throws when ineligible)
    };
    delta_mode delta = delta_mode::auto_detect;
};

// --- structural what-ifs -----------------------------------------------------

/// One structural what-if: an edit batch (core/graph_edit.h) applied to
/// the *base* graph — scenarios are independent, not cumulative — plus an
/// optional delay reassignment on the edited structure.
struct structural_scenario {
    std::string label;
    edit_batch edits;

    /// Full per-arc delays on the *edited* structure (its arc ids, which
    /// extend the base graph's: surviving arcs keep their ids, added arcs
    /// take fresh ones).  Empty means the edited graph's own delays.
    std::vector<rational> delay;
};

/// Outcome of one structural scenario.  Arc ids in `outcome` refer to the
/// edited structure (base ids for surviving arcs).
struct structural_outcome {
    /// False when the edit batch was rejected (liveness, strong
    /// connectivity, boundedness, well-formedness); `message` then carries
    /// the rejection reason and `outcome` is default-constructed.
    bool accepted = false;
    std::string message;
    scenario_outcome outcome;
};

struct structural_batch_result {
    std::vector<structural_outcome> outcomes;

    /// Work accounting of the incremental engine that served the batch —
    /// how local the structural edits stayed (apply + undo per scenario).
    incremental_counters counters;
};

/// The batch engine: holds the compiled structural snapshot, a long-lived
/// worker pool, and evaluates delay assignments against the snapshot.  The
/// compiled_graph (and its source signal_graph) must outlive the engine.
///
/// The pool is created lazily on the first run() and reused by every later
/// batch (resized only when the thread budget changes), so repeated runs
/// pay no thread-spawn cost.  Concurrent run() calls on one engine are
/// safe but serialize on the pool.
class scenario_engine {
public:
    explicit scenario_engine(const compiled_graph& base) : base_(&base) {}

    [[nodiscard]] const compiled_graph& base() const noexcept { return *base_; }

    /// Evaluates one delay assignment through the rebind path.
    /// `analysis_threads` is the thread budget for the cycle-time border
    /// runs *inside* this one evaluation (0 = hardware concurrency) — the
    /// batch path forces it to 1 because the scenario fan-out already owns
    /// the pool.  `with_witness` mirrors scenario_batch_options.
    [[nodiscard]] scenario_outcome evaluate(
        const std::vector<rational>& delay, bool with_slack = true,
        unsigned analysis_threads = 0,
        cycle_time_solver solver = cycle_time_solver::auto_select,
        bool with_witness = true) const;

    /// Evaluates every scenario (in parallel) and reduces.  Throws on an
    /// empty batch or a scenario whose delay vector has the wrong size.
    [[nodiscard]] scenario_batch_result run(const std::vector<scenario>& scenarios,
                                            const scenario_batch_options& options = {}) const;

    /// Evaluates every structural scenario against one incremental engine
    /// (core/incremental.h): apply the edit batch, analyze, undo —
    /// serially, since each edit patches the shared structure in place.
    /// Rejected batches (liveness, connectivity, well-formedness) produce
    /// an unaccepted outcome carrying the rejection message; the engine is
    /// rolled back and later scenarios are unaffected.  Honors with_slack /
    /// with_witness / solver / max_threads from `options` (the delay-batch
    /// knobs — lane_width, delta — do not apply).
    [[nodiscard]] structural_batch_result run_structural(
        const std::vector<structural_scenario>& scenarios,
        const scenario_batch_options& options = {}) const;

private:
    [[nodiscard]] thread_pool& acquire_pool(unsigned max_threads) const;

    const compiled_graph* base_;
    mutable std::mutex run_mutex_;
    mutable std::unique_ptr<thread_pool> pool_;
};

/// Recomputes every aggregate of `inout` from its outcomes (in order):
/// min/max with attaining indices, the double mean, per-arc criticality
/// counts over `arc_count` original arcs, fallback tally and the
/// critical-cycle identity table.  Exactly the serial reduction run()
/// performs — exposed so a caller that slices a merged batch back into
/// per-request outcome ranges (core/service.h) reproduces each range's
/// solo aggregates bit-identically.  Requires a non-empty outcome list.
void reduce_scenario_outcomes(scenario_batch_result& inout, std::size_t arc_count);

// --- scenario generators -----------------------------------------------------

struct corner_sweep_options {
    /// Relative perturbation: each swept arc gets one scenario at
    /// delay * (1 - factor) and one at delay * (1 + factor).
    rational factor = rational(1, 10);

    /// Sweep only arcs inside the repetitive core (the ones that can move
    /// the cycle time); start-up arcs are skipped.  Automatically widened
    /// to all arcs on acyclic graphs.
    bool core_only = true;
};

/// Two scenarios (minus/plus corner) per swept arc, in arc order.  Each
/// scenario carries a full m-entry delay vector (2m * m rationals for a
/// whole-core sweep) — simple and engine-uniform, but on graphs beyond
/// ~10^4 arcs consider batching the sweep in arc chunks to bound memory.
[[nodiscard]] std::vector<scenario> corner_sweep_scenarios(
    const signal_graph& sg, const corner_sweep_options& options = {});

/// Inclusive per-arc delay range for Monte Carlo sampling.
struct delay_range {
    rational lo;
    rational hi;
};

/// Correlated (process-corner style) delay variation: K shared global
/// variables g_1..g_K, each uniform on the exact grid {-R, ..., R} / R in
/// [-1, 1], shift every arc together on top of the independent per-arc
/// sampling:
///
///     delay[a] = max(0, independent_sample[a]
///                       + nominal[a] * sum_j sensitivity_j[a] * g_j)
///
/// Everything stays on an exact rational grid, so correlated batches keep
/// the fixed-point/rational dual-domain guarantee of the engine.  The g_j
/// draw from their own (seed, sample)-keyed PRNG streams — independent of
/// the per-arc streams — so a model with zero sensitivities (or no
/// sources) reproduces the independent batch bit for bit.
struct delay_model {
    struct source {
        std::string name;                  ///< display only ("Vdd", "T", ...)
        std::vector<rational> sensitivity; ///< one per arc, relative to nominal
    };
    std::vector<source> sources;

    /// Grid resolution R of the global variables.
    std::int64_t resolution = 16;
};

struct monte_carlo_options {
    std::size_t samples = 100;
    std::uint64_t seed = 1; ///< explicit: the same seed replays the batch

    /// Per-arc ranges.  Empty means "nominal * (1 -/+ spread)" for every
    /// arc (clamped at 0); otherwise one range per arc is required.
    std::vector<delay_range> ranges;
    rational spread = rational(1, 10);

    /// Samples land on the exact grid lo + k * (hi - lo) / resolution,
    /// k uniform in [0, resolution] — keeps every delay a small rational so
    /// batches stay in the fixed-point domain.
    std::int64_t resolution = 16;

    /// Correlated variation shared across arcs (empty sources = fully
    /// independent sampling, the historical behaviour).
    delay_model model;

    /// Global index of the first generated sample: the batch covers stream
    /// indices [first_sample, first_sample + samples).  Streaming consumers
    /// (core/stats.h) generate rounds at increasing offsets; concatenating
    /// any round partition is bit-identical to one big batch.
    std::size_t first_sample = 0;

    /// Thread budget for sample generation (0 = hardware concurrency).
    /// Generation is deterministic regardless: sample k's delays depend
    /// only on (seed, k), never on the worker layout.
    unsigned max_threads = 0;
};

/// `samples` scenarios drawn independently per arc from the given ranges,
/// optionally shifted by the correlated delay_model.
///
/// Sampling is lane-stable: each sample k derives its own PRNG stream from
/// (seed, first_sample + k), so serial, multi-threaded and lane-batched
/// consumers all replay the identical batch from the same seed, and
/// storage for the full batch is reserved up front.
[[nodiscard]] std::vector<scenario> monte_carlo_scenarios(
    const signal_graph& sg, const monte_carlo_options& options = {});

/// Precomputed sampling table for one (graph, ranges/spread, resolution)
/// combination: the `resolution + 1` grid values of every arc, materialized
/// as canonical rationals.  Sampling against a table replaces the per-delay
/// rational construction (a gcd each) with an indexed copy, which is the
/// dominant cost of generating many small Monte Carlo batches over the
/// same immutable snapshot — exactly the analysis service's workload, which
/// caches one table per (design version, spread, resolution).
///
/// Tables are immutable once built and safe to share across threads.
struct monte_carlo_table {
    std::int64_t resolution = 0; ///< must match the sampling options
    std::size_t arc_count = 0;
    std::vector<rational> values; ///< arc-major: values[a*(resolution+1) + u]

    [[nodiscard]] const rational& at(arc_id a, std::int64_t u) const noexcept
    {
        return values[a * static_cast<std::size_t>(resolution + 1) +
                      static_cast<std::size_t>(u)];
    }
};

/// Materializes the sampling grid of `options` (ranges or spread) over the
/// graph's arcs.  Validates exactly like monte_carlo_scenarios.
[[nodiscard]] monte_carlo_table build_monte_carlo_table(
    const signal_graph& sg, const monte_carlo_options& options = {});

/// monte_carlo_scenarios drawing delays from a prebuilt table instead of
/// evaluating the grid arithmetic per delay.  The table must have been
/// built from the same graph, ranges/spread and resolution; the generated
/// batch is bit-identical to the table-free overload.
[[nodiscard]] std::vector<scenario> monte_carlo_scenarios(
    const signal_graph& sg, const monte_carlo_options& options,
    const monte_carlo_table& table);

} // namespace tsg

#endif // TSG_CORE_SCENARIO_H
