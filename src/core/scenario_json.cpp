#include "core/scenario_json.h"

#include <sstream>

#include "util/strings.h"

namespace tsg {

namespace {

std::string json_quote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

template <typename T>
void append_number_array(std::ostringstream& os, const std::vector<T>& values)
{
    os << "[";
    for (std::size_t k = 0; k < values.size(); ++k) os << (k ? ", " : "") << values[k];
    os << "]";
}

} // namespace

std::string scenario_batch_json(const std::string& command, const std::string& solver,
                                const signal_graph& sg, const rational& nominal,
                                const std::vector<scenario>& scenarios,
                                const scenario_batch_result& batch)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"command\": " << json_quote(command) << ",\n";
    os << "  \"solver\": " << json_quote(solver) << ",\n";
    os << "  \"model\": {\"events\": " << sg.event_count()
       << ", \"arcs\": " << sg.arc_count()
       << ", \"cyclic\": " << (sg.repetitive_events().empty() ? "false" : "true")
       << "},\n";
    os << "  \"nominal_cycle_time\": {\"exact\": " << json_quote(nominal.str())
       << ", \"value\": " << format_double(nominal.to_double(), 6) << "},\n";
    os << "  \"aggregate\": {\n";
    os << "    \"scenarios\": " << batch.outcomes.size() << ",\n";
    os << "    \"min\": {\"exact\": " << json_quote(batch.min_cycle_time.str())
       << ", \"value\": " << format_double(batch.min_cycle_time.to_double(), 6)
       << ", \"label\": " << json_quote(scenarios[batch.min_index].label) << "},\n";
    os << "    \"max\": {\"exact\": " << json_quote(batch.max_cycle_time.str())
       << ", \"value\": " << format_double(batch.max_cycle_time.to_double(), 6)
       << ", \"label\": " << json_quote(scenarios[batch.max_index].label) << "},\n";
    os << "    \"mean_value\": " << format_double(batch.mean_cycle_time, 6) << ",\n";
    os << "    \"rational_fallbacks\": " << batch.fallback_count << ",\n";
    os << "    \"engine\": {\"lane_groups\": " << batch.lane_groups
       << ", \"lane_scenarios\": " << batch.lane_scenarios
       << ", \"lane_evictions\": " << batch.lane_evictions
       << ", \"scalar_scenarios\": " << batch.scalar_scenarios
       << ", \"sparse_scenarios\": " << batch.sparse_scenarios
       << ", \"sparse_arcs_touched\": " << batch.sparse_arcs_touched
       << ", \"dense_sweep_arcs\": " << batch.dense_sweep_arcs << "},\n";
    os << "    \"criticality_count\": ";
    append_number_array(os, batch.criticality_count);
    os << ",\n";
    os << "    \"critical_cycles\": [";
    for (std::size_t k = 0; k < batch.critical_cycles.size(); ++k) {
        const critical_cycle_stat& stat = batch.critical_cycles[k];
        os << (k ? ", " : "") << "{\"arcs\": ";
        append_number_array(os, stat.arcs);
        os << ", \"count\": " << stat.count
           << ", \"first_label\": " << json_quote(scenarios[stat.first_index].label) << "}";
    }
    os << "]\n  },\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const scenario_outcome& o = batch.outcomes[i];
        os << "    {\"label\": " << json_quote(scenarios[i].label)
           << ", \"cycle_time\": " << json_quote(o.cycle_time.str())
           << ", \"value\": " << format_double(o.cycle_time.to_double(), 6)
           << ", \"fixed_point\": " << (o.fixed_point ? "true" : "false")
           << ", \"critical_arcs\": ";
        append_number_array(os, o.critical_arcs);
        os << ", \"critical_cycle\": ";
        append_number_array(os, o.critical_cycle);
        os << "}" << (i + 1 < batch.outcomes.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace tsg
