#include "core/scenario_json.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace tsg {

namespace {

std::string json_quote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

template <typename T>
void append_number_array(std::ostringstream& os, const std::vector<T>& values)
{
    os << "[";
    for (std::size_t k = 0; k < values.size(); ++k) os << (k ? ", " : "") << values[k];
    os << "]";
}

/// Finite doubles render as numbers; infinities (an unconverged CI on a
/// one-sample run) as null — JSON has no inf literal.
std::string json_double(double value, int decimals = 6)
{
    if (!std::isfinite(value)) return "null";
    return format_double(value, decimals);
}

void append_model_header(std::ostringstream& os, const std::string& command,
                         const std::string& solver, const signal_graph& sg,
                         const rational& nominal)
{
    os << "  \"command\": " << json_quote(command) << ",\n";
    os << "  \"solver\": " << json_quote(solver) << ",\n";
    os << "  \"model\": {\"events\": " << sg.event_count()
       << ", \"arcs\": " << sg.arc_count()
       << ", \"cyclic\": " << (sg.repetitive_events().empty() ? "false" : "true")
       << "},\n";
    os << "  \"nominal_cycle_time\": {\"exact\": " << json_quote(nominal.str())
       << ", \"value\": " << format_double(nominal.to_double(), 6) << "},\n";
}

} // namespace

std::string scenario_batch_json(const std::string& command, const std::string& solver,
                                const signal_graph& sg, const rational& nominal,
                                const std::vector<scenario>& scenarios,
                                const scenario_batch_result& batch)
{
    std::ostringstream os;
    os << "{\n";
    append_model_header(os, command, solver, sg, nominal);
    os << "  \"aggregate\": {\n";
    os << "    \"scenarios\": " << batch.outcomes.size() << ",\n";
    os << "    \"min\": {\"exact\": " << json_quote(batch.min_cycle_time.str())
       << ", \"value\": " << format_double(batch.min_cycle_time.to_double(), 6)
       << ", \"label\": " << json_quote(scenarios[batch.min_index].label) << "},\n";
    os << "    \"max\": {\"exact\": " << json_quote(batch.max_cycle_time.str())
       << ", \"value\": " << format_double(batch.max_cycle_time.to_double(), 6)
       << ", \"label\": " << json_quote(scenarios[batch.max_index].label) << "},\n";
    os << "    \"mean_value\": " << format_double(batch.mean_cycle_time, 6) << ",\n";
    os << "    \"rational_fallbacks\": " << batch.fallback_count << ",\n";
    os << "    \"engine\": {\"lane_groups\": " << batch.lane_groups
       << ", \"lane_scenarios\": " << batch.lane_scenarios
       << ", \"lane_evictions\": " << batch.lane_evictions
       << ", \"scalar_scenarios\": " << batch.scalar_scenarios
       << ", \"sparse_scenarios\": " << batch.sparse_scenarios
       << ", \"sparse_arcs_touched\": " << batch.sparse_arcs_touched
       << ", \"dense_sweep_arcs\": " << batch.dense_sweep_arcs << "},\n";
    os << "    \"criticality_count\": ";
    append_number_array(os, batch.criticality_count);
    os << ",\n";
    os << "    \"critical_cycles\": [";
    for (std::size_t k = 0; k < batch.critical_cycles.size(); ++k) {
        const critical_cycle_stat& stat = batch.critical_cycles[k];
        os << (k ? ", " : "") << "{\"arcs\": ";
        append_number_array(os, stat.arcs);
        os << ", \"count\": " << stat.count
           << ", \"first_label\": " << json_quote(scenarios[stat.first_index].label) << "}";
    }
    os << "]\n  },\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
        const scenario_outcome& o = batch.outcomes[i];
        os << "    {\"label\": " << json_quote(scenarios[i].label)
           << ", \"cycle_time\": " << json_quote(o.cycle_time.str())
           << ", \"value\": " << format_double(o.cycle_time.to_double(), 6)
           << ", \"fixed_point\": " << (o.fixed_point ? "true" : "false")
           << ", \"critical_arcs\": ";
        append_number_array(os, o.critical_arcs);
        os << ", \"critical_cycle\": ";
        append_number_array(os, o.critical_cycle);
        os << "}" << (i + 1 < batch.outcomes.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string statistics_json(const std::string& command, const std::string& solver,
                            const signal_graph& sg, const stats_run_result& run,
                            const stats_options& options)
{
    const stats_accumulator& st = run.stats;
    const double z = options.confidence_z;

    std::ostringstream os;
    os << "{\n";
    append_model_header(os, command, solver, sg, run.nominal_cycle_time);
    os << "  \"statistics\": {\n";
    os << "    \"samples\": " << st.count() << ",\n";
    os << "    \"rounds\": " << run.rounds << ",\n";
    os << "    \"adaptive\": " << (run.adaptive ? "true" : "false") << ",\n";
    os << "    \"converged\": " << (run.converged ? "true" : "false") << ",\n";
    std::string target = "mean";
    if (options.quantile >= 0.0) {
        target = "q";
        target += format_double(options.quantile, 4);
    }
    os << "    \"target\": " << json_quote(target) << ",\n";
    os << "    \"epsilon\": " << json_double(run.target_half_width) << ",\n";
    os << "    \"ci_half_width\": " << json_double(run.achieved_half_width) << ",\n";
    os << "    \"confidence_z\": " << json_double(z) << ",\n";
    os << "    \"mean\": " << json_double(st.mean()) << ",\n";
    os << "    \"stddev\": " << json_double(st.stddev()) << ",\n";
    os << "    \"variance\": " << json_double(st.variance()) << ",\n";
    os << "    \"mean_ci_half_width\": " << json_double(st.mean_ci_half_width(z)) << ",\n";
    os << "    \"min\": {\"exact\": " << json_quote(st.min_cycle_time().str())
       << ", \"value\": " << format_double(st.min_cycle_time().to_double(), 6)
       << ", \"sample\": " << st.min_index() << "},\n";
    os << "    \"max\": {\"exact\": " << json_quote(st.max_cycle_time().str())
       << ", \"value\": " << format_double(st.max_cycle_time().to_double(), 6)
       << ", \"sample\": " << st.max_index() << "},\n";
    os << "    \"quantiles\": {\"p50\": " << json_double(st.quantile(0.50))
       << ", \"p95\": " << json_double(st.quantile(0.95))
       << ", \"p99\": " << json_double(st.quantile(0.99)) << "},\n";
    os << "    \"histogram\": {\"lo\": " << json_quote(st.histogram_lo().str())
       << ", \"hi\": " << json_quote(st.histogram_hi().str())
       << ", \"bins\": " << st.histogram().size() << ", \"underflow\": " << st.underflow()
       << ", \"overflow\": " << st.overflow() << ", \"counts\": ";
    append_number_array(os, st.histogram());
    os << "},\n";
    os << "    \"rational_fallbacks\": " << st.fallback_count() << ",\n";
    os << "    \"engine\": {\"lane_groups\": " << run.lane_groups
       << ", \"lane_scenarios\": " << run.lane_scenarios
       << ", \"lane_evictions\": " << run.lane_evictions
       << ", \"scalar_scenarios\": " << run.scalar_scenarios << "}";

    // Criticality: every arc that was ever critical, most probable first
    // (ties: ascending arc id) — the probabilistic analogue of the batch
    // criticality_count.
    const std::vector<std::uint64_t>& crit = st.criticality_count();
    std::vector<arc_id> critical;
    for (arc_id a = 0; a < crit.size(); ++a)
        if (crit[a] > 0) critical.push_back(a);
    std::stable_sort(critical.begin(), critical.end(), [&](arc_id a, arc_id b) {
        return crit[a] > crit[b];
    });
    if (!critical.empty()) {
        os << ",\n    \"criticality\": [";
        for (std::size_t k = 0; k < critical.size(); ++k) {
            const arc_id a = critical[k];
            os << (k ? ", " : "") << "{\"arc\": " << a << ", \"count\": " << crit[a]
               << ", \"probability\": " << json_double(st.criticality_probability(a))
               << ", \"ci_half_width\": " << json_double(st.criticality_ci_half_width(a, z))
               << "}";
        }
        os << "]";
    }

    // Per-gate (per-signal) criticality, when the run grouped arcs.
    const std::vector<std::string>& gates = st.group_names();
    if (!gates.empty()) {
        const std::vector<std::uint64_t>& counts = st.group_criticality_count();
        std::vector<std::size_t> order(gates.size());
        for (std::size_t g = 0; g < gates.size(); ++g) order[g] = g;
        std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            if (counts[a] != counts[b]) return counts[a] > counts[b];
            return gates[a] < gates[b];
        });
        os << ",\n    \"gates\": [";
        for (std::size_t k = 0; k < order.size(); ++k) {
            const std::size_t g = order[k];
            os << (k ? ", " : "") << "{\"gate\": " << json_quote(gates[g])
               << ", \"count\": " << counts[g]
               << ", \"probability\": " << json_double(st.group_criticality_probability(g))
               << ", \"ci_half_width\": "
               << json_double(st.group_criticality_ci_half_width(g, z)) << "}";
        }
        os << "]";
    }

    os << "\n  }\n}\n";
    return os.str();
}

} // namespace tsg
