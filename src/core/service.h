// Persistent analysis service: concurrent clients, shared design
// snapshots, coalesced lane batches.
//
// The scenario engine amortizes compilation across the scenarios of one
// batch; this layer amortizes it across *clients*.  An analysis_service
// owns a registry of versioned designs — design id -> a chain of immutable
// compiled snapshots — and a worker pool draining one request queue, so
// many clients analyze the same compiled structure without ever
// recompiling it, and structural edits produce new versions instead of
// invalidating anyone's in-flight work:
//
//   * register_design() compiles a signal graph into version 1 of a chain
//     (registering the same id again appends the next version);
//   * kind::edit requests run the JSON edit script through an
//     incremental_engine seeded from the latest version and commit the
//     edited structure as a new immutable version; older versions stay
//     addressable (design_ref::version pins one) until LRU eviction
//     trims the chain to service_options::max_versions_per_design;
//   * batch requests (sweep, non-adaptive montecarlo) flow through the
//     coalescer: a worker that pops one merges every queued compatible
//     request for the same design into a single engine batch, so small
//     requests from different clients fill whole SoA lane groups and the
//     scenario fan-out actually parallelizes.  Results are demultiplexed
//     per request: each response's outcome slice is re-reduced with
//     reduce_scenario_outcomes(), so every aggregate (min/max/mean,
//     criticality counts, critical-cycle table, fallback tally) is
//     bit-identical to running that request alone.  Only the engine
//     accounting block (lane groups, sparse counters) reports the merged
//     batch's physical execution — the one documented difference.
//
// Serving metrics dogfood the statistical layer: per-request latencies
// stream through a stats_accumulator (core/stats.h) in microseconds, so
// the `stats` request kind reports p50/p95/p99 straight from the same
// histogram quantile machinery the timing analyses use.
//
// Transport is the caller's problem: submit() is the in-process API
// (thread-safe, returns a future), serve_stream() speaks newline-
// delimited JSON over any iostream pair (the pipe mode tests and
// examples/tsg_serve.cpp's socket loop both sit on it).  serve_stream
// handles one request per line in order, so a stream replay is
// byte-identical to running the tool once per request.
#ifndef TSG_CORE_SERVICE_H
#define TSG_CORE_SERVICE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "core/stats.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct service_options {
    /// Dispatch threads draining the request queue.  Each worker runs one
    /// request (or one coalesced batch) at a time; the scenario fan-out
    /// inside a batch is the engine's own pool (request_options::
    /// max_threads).  0 is clamped to 1.
    unsigned workers = 2;

    /// Merge compatible queued batch requests into one engine run.  Off
    /// reproduces strict one-request-per-batch execution (the solo
    /// baseline the benchmark compares against).
    bool coalesce = true;

    /// Scenario budget per merged batch: the coalescer stops admitting
    /// partners when the merged batch would exceed this many scenarios.
    std::size_t max_coalesce_scenarios = 256;

    /// Extra time a worker waits for merge partners after popping a batch
    /// request, before scanning the queue.  0 (the default) coalesces
    /// only what is already queued — natural batching under load.
    std::chrono::microseconds coalesce_window{0};

    /// Versions kept per design chain.  Committing an edit beyond this
    /// evicts the least-recently-used non-latest version; pinned requests
    /// for an evicted version fail with code "unknown_version".
    std::size_t max_versions_per_design = 4;

    /// Latency histogram: bin count and support [0, hi] in microseconds
    /// (quantiles clamp to the observed exact extremes regardless).
    std::size_t latency_histogram_bins = 64;
    rational latency_histogram_hi = rational(1000000);
};

/// One consistent snapshot of the serving counters.
struct service_metrics {
    std::uint64_t requests = 0;           ///< accepted by submit()/serve_stream()
    std::uint64_t failures = 0;           ///< responses with ok == false
    std::uint64_t engine_batches = 0;     ///< scenario_engine::run invocations
    std::uint64_t batch_requests = 0;     ///< batch-kind requests served
    std::uint64_t coalesced_requests = 0; ///< of those, served from merged runs
    std::uint64_t scenarios = 0;          ///< scenarios evaluated in batches
    std::uint64_t edits_committed = 0;    ///< edit requests that committed a version
    std::uint64_t versions_evicted = 0;

    std::size_t queue_depth = 0; ///< requests waiting right now
    std::size_t queue_peak = 0;  ///< high-water mark since construction
    std::size_t designs = 0;
    std::size_t versions = 0; ///< live snapshots across every chain

    /// batch_requests / engine_batches — how many requests each engine
    /// run served on average (1.0 = no merging happened).
    double coalescing_efficiency = 1.0;

    double uptime_seconds = 0.0;
    double scenarios_per_second = 0.0;

    /// Latency distribution (microseconds, submit to completion), from
    /// the dogfooded stats_accumulator.
    std::size_t latency_samples = 0;
    double latency_mean_us = 0.0;
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
};

/// The persistent analysis daemon core.  Construction starts the worker
/// pool; destruction drains every queued request (each still receives its
/// response) and joins.  All public methods are thread-safe.
class analysis_service {
public:
    explicit analysis_service(service_options options = {});
    ~analysis_service();

    analysis_service(const analysis_service&) = delete;
    analysis_service& operator=(const analysis_service&) = delete;

    /// Compiles a copy of `sg` and appends it to `id`'s version chain
    /// (creating the chain at version 1).  Returns the new version.
    std::uint64_t register_design(const std::string& id, const signal_graph& sg);

    /// Enqueues one request; the future completes when a worker (or a
    /// coalesced batch) has served it.  Requests must reference a
    /// registered design by id — path/text/demo references are the
    /// tool's stand-alone mode, not the service's.
    [[nodiscard]] std::future<analysis_response> submit(analysis_request request);

    /// submit() + get(): the synchronous convenience.
    [[nodiscard]] analysis_response execute(analysis_request request);

    /// Newline-delimited JSON transport: one request document per input
    /// line, one response line flushed per request, in order.  Blank
    /// lines are skipped; malformed lines produce a structured-error
    /// response line and the stream continues.
    void serve_stream(std::istream& in, std::ostream& out);

    [[nodiscard]] service_metrics metrics() const;

    /// The `stats` request payload: the metrics snapshot as a JSON
    /// document (also callable directly).
    [[nodiscard]] std::string stats_json() const;

private:
    struct design_version;
    struct design_entry;
    struct pending;

    void worker_loop();
    void handle(pending job);
    void handle_batch(pending first);
    void finish(pending& job, analysis_response response);
    [[nodiscard]] analysis_response respond_error(const pending& job,
                                                  const std::string& diagnostic);

    [[nodiscard]] std::shared_ptr<design_version> resolve(const design_ref& ref);
    [[nodiscard]] std::shared_ptr<design_entry> entry_of(const std::string& id);
    std::uint64_t commit_version(design_entry& entry,
                                 std::shared_ptr<const signal_graph> graph);
    [[nodiscard]] rational nominal_of(design_version& version,
                                      const request_options& options);
    [[nodiscard]] std::vector<scenario> scenarios_for(design_version& version,
                                                      const analysis_request& request);

    [[nodiscard]] std::string edit_payload(pending& job, std::uint64_t& out_version);

    service_options options_;
    std::chrono::steady_clock::time_point start_;

    mutable std::mutex registry_mutex_;
    std::map<std::string, std::shared_ptr<design_entry>> designs_;
    std::uint64_t use_tick_ = 0;

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<pending> queue_;
    std::size_t queue_peak_ = 0;
    bool stopping_ = false;

    std::vector<std::thread> workers_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> failures_{0};
    std::atomic<std::uint64_t> engine_batches_{0};
    std::atomic<std::uint64_t> batch_requests_{0};
    std::atomic<std::uint64_t> coalesced_requests_{0};
    std::atomic<std::uint64_t> scenarios_{0};
    std::atomic<std::uint64_t> edits_{0};
    std::atomic<std::uint64_t> evictions_{0};

    mutable std::mutex latency_mutex_;
    stats_accumulator latency_; ///< microseconds as exact cycle times
};

} // namespace tsg

#endif // TSG_CORE_SERVICE_H
