// Persistent analysis service: concurrent clients, shared design
// snapshots, coalesced lane batches.
//
// The scenario engine amortizes compilation across the scenarios of one
// batch; this layer amortizes it across *clients*.  An analysis_service
// owns a registry of versioned designs — design id -> a chain of immutable
// compiled snapshots — and a worker pool draining one request queue, so
// many clients analyze the same compiled structure without ever
// recompiling it, and structural edits produce new versions instead of
// invalidating anyone's in-flight work:
//
//   * register_design() compiles a signal graph into version 1 of a chain
//     (registering the same id again appends the next version);
//   * kind::edit requests run the JSON edit script through an
//     incremental_engine seeded from the latest version and commit the
//     edited structure as a new immutable version; older versions stay
//     addressable (design_ref::version pins one) until LRU eviction
//     trims the chain to service_options::max_versions_per_design;
//   * batch requests (sweep, non-adaptive montecarlo) flow through the
//     coalescer: a worker that pops one merges every queued compatible
//     request for the same design into a single engine batch, so small
//     requests from different clients fill whole SoA lane groups and the
//     scenario fan-out actually parallelizes.  Results are demultiplexed
//     per request: each response's outcome slice is re-reduced with
//     reduce_scenario_outcomes(), so every aggregate (min/max/mean,
//     criticality counts, critical-cycle table, fallback tally) is
//     bit-identical to running that request alone.  Only the engine
//     accounting block (lane groups, sparse counters) reports the merged
//     batch's physical execution — the one documented difference.
//
// Serving metrics dogfood the statistical layer: per-request latencies
// stream through a stats_accumulator (core/stats.h) in microseconds, so
// the `stats` request kind reports p50/p95/p99 straight from the same
// histogram quantile machinery the timing analyses use.
//
// Admission control keeps the daemon responsive under bursty traffic:
// the request queue is bounded (service_options::max_queue_depth), and
// arrivals beyond the bound are shed immediately with a structured
// "overloaded" response instead of growing the deque without limit — a
// client sees either its result or a prompt, retryable error, never an
// unbounded wait.  Deterministic batch payloads are additionally cached
// across requests (keyed on design version + canonical request body),
// and per-design fleet counters break the serving traffic down in the
// `stats` payload.
//
// Transport is the caller's problem: submit() is the in-process API
// (thread-safe, returns a future), submit_async() the callback flavour
// the epoll transport (net/event_loop.h) drives, and serve_stream()
// speaks newline-delimited JSON over any iostream pair (the pipe mode
// tests and examples/tsg_serve.cpp's legacy socket loop both sit on
// it).  serve_stream handles one request per line in order, so a stream
// replay is byte-identical to running the tool once per request.
#ifndef TSG_CORE_SERVICE_H
#define TSG_CORE_SERVICE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "core/stats.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct service_options {
    /// Dispatch threads draining the request queue.  Each worker runs one
    /// request (or one coalesced batch) at a time; the scenario fan-out
    /// inside a batch is the engine's own pool (request_options::
    /// max_threads).  0 is clamped to 1.
    unsigned workers = 2;

    /// Merge compatible queued batch requests into one engine run.  Off
    /// reproduces strict one-request-per-batch execution (the solo
    /// baseline the benchmark compares against).
    bool coalesce = true;

    /// Scenario budget per merged batch: the coalescer stops admitting
    /// partners when the merged batch would exceed this many scenarios.
    std::size_t max_coalesce_scenarios = 256;

    /// Extra time a worker waits for merge partners after popping a batch
    /// request, before scanning the queue.  0 (the default) coalesces
    /// only what is already queued — natural batching under load.
    std::chrono::microseconds coalesce_window{0};

    /// Versions kept per design chain.  Committing an edit beyond this
    /// evicts the least-recently-used non-latest version; pinned requests
    /// for an evicted version fail with code "unknown_version".
    std::size_t max_versions_per_design = 4;

    /// Admission control: requests queued beyond this depth are shed with
    /// a structured "overloaded" response instead of growing the deque
    /// without bound.  Shed responses complete immediately (the future is
    /// ready when submit() returns).  0 disables shedding (the pre-
    /// admission-control behaviour).
    std::size_t max_queue_depth = 1024;

    /// When coalesce_window is 0, scale a waiting window from the recent
    /// request arrival rate: under bursty traffic a worker briefly waits
    /// for merge partners (up to adaptive_window_cap), at low rates it
    /// never waits — latency is only spent where coalescing can pay.
    bool adaptive_window = true;
    std::chrono::microseconds adaptive_window_cap{400};

    /// Cross-request payload cache: deterministic batch requests (sweep,
    /// seeded non-adaptive Monte Carlo) with an identical body hitting the
    /// same design version are served the first response's payload bytes
    /// without touching the engine.  Keyed on (design version, canonical
    /// request document minus the client correlation id).
    bool payload_cache = true;
    std::size_t max_cached_payloads = 128; ///< per design version

    /// Latency histogram: bin count and support [0, hi] in microseconds
    /// (quantiles clamp to the observed exact extremes regardless).
    std::size_t latency_histogram_bins = 64;
    rational latency_histogram_hi = rational(1000000);

    /// Per-design admission quota: a token bucket per design id refilled
    /// at `design_quota_rps` requests/second with capacity
    /// `design_quota_burst` (0 burst derives max(1, ceil(rps))).  Requests
    /// beyond the quota are shed with a structured "rate_limited" error
    /// carrying a retry_after_ms hint.  rps 0 disables quotas.  stats and
    /// health probes are exempt (they never name a design's work).
    double design_quota_rps = 0.0;
    double design_quota_burst = 0.0;
};

/// Per-design serving counters — the fleet view of one registered design.
struct design_traffic {
    std::uint64_t requests = 0;   ///< requests naming this design, shed included
    std::uint64_t failures = 0;   ///< of those, responses with ok == false
    std::uint64_t shed = 0;       ///< of those, shed by admission control
    std::uint64_t scenarios = 0;  ///< scenarios evaluated for this design
    std::uint64_t cache_hits = 0; ///< payloads served from the cross-request cache
    std::uint64_t rate_limited = 0;      ///< shed by the per-design quota
    std::uint64_t deadline_expired = 0;  ///< shed because deadline_ms passed
};

/// One consistent snapshot of the serving counters.
struct service_metrics {
    std::uint64_t requests = 0;           ///< accepted by submit()/serve_stream()
    std::uint64_t failures = 0;           ///< responses with ok == false
    std::uint64_t requests_shed = 0;      ///< shed with "overloaded" at admission
    std::uint64_t rate_limited = 0;       ///< shed with "rate_limited" (quota)
    std::uint64_t deadline_expired = 0;   ///< shed with "deadline_exceeded"
    std::uint64_t drain_rejected = 0;     ///< refused with "draining"
    bool draining = false;                ///< begin_drain() has been called
    std::uint64_t engine_batches = 0;     ///< scenario_engine::run invocations
    std::uint64_t batch_requests = 0;     ///< batch-kind requests served
    std::uint64_t coalesced_requests = 0; ///< of those, served from merged runs
    std::uint64_t cache_hits = 0;         ///< served from the payload cache
    std::uint64_t scenarios = 0;          ///< scenarios evaluated in batches
    std::uint64_t edits_committed = 0;    ///< edit requests that committed a version
    std::uint64_t versions_evicted = 0;

    std::size_t queue_depth = 0; ///< requests waiting right now
    std::size_t queue_peak = 0;  ///< high-water mark since construction
    std::size_t queue_limit = 0; ///< admission depth (0 = unbounded)
    std::size_t designs = 0;
    std::size_t versions = 0; ///< live snapshots across every chain

    /// Smoothed inter-arrival time of recent requests (microseconds; 0
    /// until two requests have arrived) — the adaptive window's input.
    double arrival_ewma_us = 0.0;

    /// Per-design traffic breakdown, sorted by design id.
    std::vector<std::pair<std::string, design_traffic>> fleet;

    /// batch_requests / engine_batches — how many requests each engine
    /// run served on average (1.0 = no merging happened).
    double coalescing_efficiency = 1.0;

    double uptime_seconds = 0.0;
    double scenarios_per_second = 0.0;

    /// Latency distribution (microseconds, submit to completion), from
    /// the dogfooded stats_accumulator.
    std::size_t latency_samples = 0;
    double latency_mean_us = 0.0;
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
};

/// The persistent analysis daemon core.  Construction starts the worker
/// pool; destruction drains every queued request (each still receives its
/// response) and joins.  All public methods are thread-safe.
class analysis_service {
public:
    explicit analysis_service(service_options options = {});
    ~analysis_service();

    analysis_service(const analysis_service&) = delete;
    analysis_service& operator=(const analysis_service&) = delete;

    /// Compiles a copy of `sg` and appends it to `id`'s version chain
    /// (creating the chain at version 1).  Returns the new version.
    std::uint64_t register_design(const std::string& id, const signal_graph& sg);

    /// Enqueues one request; the future completes when a worker (or a
    /// coalesced batch) has served it.  Requests must reference a
    /// registered design by id — path/text/demo references are the
    /// tool's stand-alone mode, not the service's.  When admission
    /// control sheds the request the future is ready immediately with an
    /// "overloaded" error response.
    [[nodiscard]] std::future<analysis_response> submit(analysis_request request);

    /// The transport-facing submission path: `done` runs exactly once, on
    /// the worker thread that completes the request.  Returns nullopt on
    /// acceptance; otherwise the structured error to hand the client
    /// (queue full, service stopping) — `done` then never runs, so a
    /// non-blocking caller (the epoll loop) can respond synchronously
    /// without parking a thread on a future.
    [[nodiscard]] std::optional<api_error> submit_async(
        analysis_request request, std::function<void(analysis_response)> done);

    /// submit() + get(): the synchronous convenience.
    [[nodiscard]] analysis_response execute(analysis_request request);

    /// Newline-delimited JSON transport: one request document per input
    /// line, one response line flushed per request, in order.  Blank
    /// lines are skipped; malformed lines produce a structured-error
    /// response line and the stream continues.
    void serve_stream(std::istream& in, std::ostream& out);

    [[nodiscard]] service_metrics metrics() const;

    /// The `stats` request payload: the metrics snapshot as a JSON
    /// document (also callable directly).
    [[nodiscard]] std::string stats_json() const;

    /// The `health` request payload: readiness plus drain state, cheap
    /// enough for load-balancer probes ({"status": "ok" | "draining"}).
    [[nodiscard]] std::string health_json() const;

    /// Graceful-drain entry point.  After this, new work is refused with
    /// a structured "draining" error (health probes still answer, and
    /// report status "draining"); everything already queued keeps running
    /// to completion.  Idempotent and thread-safe.
    void begin_drain();
    [[nodiscard]] bool draining() const { return draining_.load(std::memory_order_acquire); }

    /// Blocks until every queued and in-flight request has been served,
    /// or `timeout` passes.  Returns true when the service fell idle in
    /// time.  Usually preceded by begin_drain() so the queue only ever
    /// shrinks; without it new submissions can extend the wait.
    [[nodiscard]] bool wait_idle(std::chrono::milliseconds timeout);

    /// The arrival-rate-adaptive coalescing window: 0 at low rates (an
    /// isolated request should not wait for partners that are not
    /// coming), then a few inter-arrival times — clamped to `cap` — once
    /// arrivals are dense enough that a short wait fills a lane group.
    /// Pure; exposed for the backpressure tests.
    [[nodiscard]] static std::chrono::microseconds adaptive_coalesce_window(
        double arrival_ewma_us, std::chrono::microseconds cap);

private:
    struct design_version;
    struct design_entry;
    struct pending;

    void worker_loop();
    void handle(pending job);
    void handle_batch(pending first);
    void finish(pending& job, analysis_response response);
    /// Sheds `job` with a deadline_exceeded response and bumps counters.
    void shed_expired(pending& job);
    [[nodiscard]] analysis_response respond_error(const pending& job,
                                                  const std::string& diagnostic);

    /// Enqueues `job` unless admission control sheds it; on shedding the
    /// returned error is also delivered through the job's channel.
    [[nodiscard]] std::optional<api_error> admit(pending job);
    [[nodiscard]] std::chrono::microseconds coalesce_wait() const;

    /// Applies `f` to the named design's fleet counters (no-op on an
    /// empty id — requests that never resolved a design).
    template <typename F> void bump_fleet(const std::string& design_id, F&& f)
    {
        if (design_id.empty()) return;
        std::lock_guard<std::mutex> lk(fleet_mutex_);
        f(fleet_[design_id]);
    }

    [[nodiscard]] std::shared_ptr<design_version> resolve(const design_ref& ref);
    [[nodiscard]] std::shared_ptr<design_entry> entry_of(const std::string& id);
    std::uint64_t commit_version(design_entry& entry,
                                 std::shared_ptr<const signal_graph> graph);
    [[nodiscard]] rational nominal_of(design_version& version,
                                      const request_options& options);
    [[nodiscard]] std::vector<scenario> scenarios_for(design_version& version,
                                                      const analysis_request& request);

    [[nodiscard]] std::string edit_payload(pending& job, std::uint64_t& out_version);

    service_options options_;
    std::chrono::steady_clock::time_point start_;

    mutable std::mutex registry_mutex_;
    std::map<std::string, std::shared_ptr<design_entry>> designs_;
    std::uint64_t use_tick_ = 0;

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::condition_variable idle_cv_; ///< signalled when queue + workers fall idle
    std::deque<pending> queue_;
    std::size_t queue_peak_ = 0;
    std::size_t busy_workers_ = 0; ///< workers currently serving a job
    bool stopping_ = false;
    std::atomic<bool> draining_{false};
    /// Arrival-rate tracking for the adaptive window (under queue_mutex_).
    bool arrival_seen_ = false;
    std::chrono::steady_clock::time_point last_arrival_;
    double arrival_ewma_us_ = 0.0;

    std::vector<std::thread> workers_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> failures_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> rate_limited_{0};
    std::atomic<std::uint64_t> deadline_expired_{0};
    std::atomic<std::uint64_t> drain_rejected_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> engine_batches_{0};
    std::atomic<std::uint64_t> batch_requests_{0};
    std::atomic<std::uint64_t> coalesced_requests_{0};
    std::atomic<std::uint64_t> scenarios_{0};
    std::atomic<std::uint64_t> edits_{0};
    std::atomic<std::uint64_t> evictions_{0};

    mutable std::mutex latency_mutex_;
    stats_accumulator latency_; ///< microseconds as exact cycle times

    mutable std::mutex fleet_mutex_;
    std::map<std::string, design_traffic> fleet_;

    /// Per-design token buckets (design_quota_rps > 0).  tokens refills
    /// continuously at design_quota_rps up to the burst capacity; an
    /// admission takes one token or sheds with a retry_after_ms hint.
    struct token_bucket {
        double tokens = 0.0;
        std::chrono::steady_clock::time_point last{};
        bool primed = false;
    };
    /// Takes one token from `id`'s bucket.  Returns 0 on admission, else
    /// the suggested retry delay in milliseconds (>= 1).
    [[nodiscard]] std::uint64_t take_quota_token(const std::string& id);
    mutable std::mutex quota_mutex_;
    std::map<std::string, token_bucket> quotas_;
};

} // namespace tsg

#endif // TSG_CORE_SERVICE_H
