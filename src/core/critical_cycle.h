// Critical-cycle peeling — the backtracking tail of the border sweep,
// shared by the scalar analysis (core/cycle_time.cpp) and the scenario
// engine's lane and sparse-delta paths (core/scenario.cpp).
//
// The unfolded critical walk (origin_0 ~> origin_i*) is a closed walk whose
// delay/token ratio equals lambda.  It decomposes into simple cycles; their
// ratios average to lambda and no cycle exceeds lambda (Prop. 5), so one of
// them attains it — peel_critical_cycle scans the walk with a stack,
// testing each closed sub-cycle.
//
// Two exact ratio tests:
//   * rational — delay(C) / tokens(C) == lambda on exact rationals (the
//     scalar reference path);
//   * fixed-point — the same predicate cross-multiplied into int128 on the
//     scaled-int64 delays:  delay(C)/tokens == num/den  <=>
//     scaled(C) * den == num * scale * tokens  (scaled(C) = delay(C) *
//     scale exactly).  Bounds: scaled sub-cycle sums stay within the sweep
//     budget (INT64_MAX/4), den <= scale * periods < 2^52, so both products
//     fit int128 with room to spare.  Identical decisions, no rational
//     arithmetic in the loop — this is what keeps witness extraction off
//     the lane path's critical path.
#ifndef TSG_CORE_CRITICAL_CYCLE_H
#define TSG_CORE_CRITICAL_CYCLE_H

#include <cstdint>
#include <vector>

#include "core/compiled_graph.h"
#include "util/rational.h"

namespace tsg {
namespace detail {

/// Generic peel: `ratio_attained(arcs)` decides whether a candidate simple
/// sub-cycle (given as core arcs, causal order) attains lambda.
template <typename RatioFn>
std::vector<arc_id> peel_critical_walk(const compiled_graph::core_view& core,
                                       const std::vector<arc_id>& walk, RatioFn&& attained)
{
    const std::size_t n = core.graph.node_count();
    std::vector<int> stack_pos(n, -1);
    struct entry {
        arc_id arc; ///< arc leading *into* node
        node_id node;
    };
    std::vector<entry> stack;

    const node_id start = core.graph.from(walk.front());
    stack.push_back({invalid_arc, start});
    stack_pos[start] = 0;

    std::vector<arc_id> arcs;
    for (const arc_id a : walk) {
        const node_id v = core.graph.to(a);
        if (stack_pos[v] >= 0) {
            // Closed a simple sub-cycle: stack[stack_pos[v]+1 .. end] + a.
            arcs.clear();
            for (std::size_t k = static_cast<std::size_t>(stack_pos[v]) + 1;
                 k < stack.size(); ++k)
                arcs.push_back(stack[k].arc);
            arcs.push_back(a);
            if (attained(arcs)) return arcs;
            // Not critical: discard the sub-cycle and continue from v.
            while (stack.size() > static_cast<std::size_t>(stack_pos[v]) + 1) {
                stack_pos[stack.back().node] = -1;
                stack.pop_back();
            }
        } else {
            stack.push_back({a, v});
            stack_pos[v] = static_cast<int>(stack.size()) - 1;
        }
    }
    ensure(false, "peel_critical_cycle: no simple cycle attained the cycle time");
    return {};
}

} // namespace detail

/// Rational peel: `delay_of(core_arc)` yields the exact delay.
template <typename DelayFn>
std::vector<arc_id> peel_critical_cycle_rational(const compiled_graph::core_view& core,
                                                 const std::vector<arc_id>& walk,
                                                 const rational& lambda, DelayFn&& delay_of)
{
    return detail::peel_critical_walk(core, walk, [&](const std::vector<arc_id>& arcs) {
        rational delay(0);
        std::int64_t tokens = 0;
        for (const arc_id c : arcs) {
            delay += delay_of(c);
            tokens += core.token[c];
        }
        ensure(tokens > 0, "peel_critical_cycle: token-free cycle in live graph");
        return delay / rational(tokens) == lambda;
    });
}

/// Fixed-point peel: `scaled_of(core_arc)` yields delay * scale as an exact
/// int64.  Bit-identical decisions to the rational peel (see file header).
template <typename ScaledFn>
std::vector<arc_id> peel_critical_cycle_fixed(const compiled_graph::core_view& core,
                                              const std::vector<arc_id>& walk,
                                              const rational& lambda, std::int64_t scale,
                                              ScaledFn&& scaled_of)
{
    const int128 num = lambda.num();
    const int128 den = lambda.den();
    return detail::peel_critical_walk(core, walk, [&](const std::vector<arc_id>& arcs) {
        std::int64_t scaled = 0;
        std::int64_t tokens = 0;
        for (const arc_id c : arcs) {
            scaled += scaled_of(c);
            tokens += core.token[c];
        }
        ensure(tokens > 0, "peel_critical_cycle: token-free cycle in live graph");
        return static_cast<int128>(scaled) * den == num * scale * tokens;
    });
}

} // namespace tsg

#endif // TSG_CORE_CRITICAL_CYCLE_H
