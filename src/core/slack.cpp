#include "core/slack.h"

#include <algorithm>
#include <limits>

#include "core/compiled_graph.h"
#include "core/cycle_time.h"
#include "graph/scc.h"

namespace tsg {

namespace {

using core_view = compiled_graph::core_view;

/// Longest-path potentials for the reduced weights w(a) = weight[a] over
/// the core, via Bellman-Ford from a virtual all-zero source.  Works in
/// any ordered additive domain; throws internal_error when a positive
/// reduced cycle shows lambda was not maximal.
template <typename Value>
std::vector<Value> reduced_potentials(const core_view& core, const std::vector<Value>& weight)
{
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();
    std::vector<Value> v(n, Value{});
    for (std::size_t pass = 0; pass <= n; ++pass) {
        bool relaxed = false;
        for (arc_id a = 0; a < m; ++a) {
            const Value candidate = v[core.graph.from(a)] + weight[a];
            if (candidate > v[core.graph.to(a)]) {
                v[core.graph.to(a)] = candidate;
                relaxed = true;
            }
        }
        if (!relaxed) break;
        ensure(pass < n, "analyze_slack: positive reduced cycle — lambda not maximal");
    }
    // Normalize potentials to start at zero.
    Value lowest = v.empty() ? Value{} : v[0];
    for (const Value& value : v) lowest = std::min(lowest, value);
    for (Value& value : v) value = value - lowest;
    return v;
}

} // namespace

slack_result analyze_slack(const compiled_graph& cg)
{
    return analyze_slack(cg, analyze_cycle_time(cg).cycle_time);
}

slack_result analyze_slack(const compiled_graph& cg, const rational& cycle_time)
{
    const signal_graph& sg = cg.source();

    slack_result out;
    out.cycle_time = cycle_time;

    const core_view& core = cg.core();
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();

    // Reduced weights w = delay - lambda * tokens; by maximality of lambda
    // no cycle is positive, so longest-path potentials from a virtual
    // source converge within n Bellman-Ford passes.
    //
    // Fixed-point fast path: multiply through by s = lambda.den * scale —
    // w_fx = scaled_delay * lambda.den - lambda.num * scale * token is an
    // exact integer, order-isomorphic to the rational weights, and the
    // resulting potentials/slacks divide back out exactly.  Guarded against
    // overflow (potentials are bounded by (n+1) * max|w|); any risk drops
    // us back to the rational domain.
    out.potential.assign(sg.event_count(), rational(0));
    std::vector<rational> slack_by_core_arc(m);
    std::vector<rational> potential_by_node(n);

    bool fixed_done = false;
    if (cg.fixed_point()) {
        const std::int64_t lnum = out.cycle_time.num();
        const std::int64_t lden = out.cycle_time.den();
        const int128 token_cost = static_cast<int128>(lnum) * cg.scale();
        const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;
        const int128 s128 = static_cast<int128>(lden) * cg.scale();

        std::vector<std::int64_t> weight(m);
        int128 max_abs = 0;
        bool safe = true;
        for (arc_id a = 0; a < m && safe; ++a) {
            const int128 w = static_cast<int128>(core.scaled_delay[a]) * lden -
                             token_cost * core.token[a];
            const int128 mag = w < 0 ? -w : w;
            max_abs = std::max(max_abs, mag);
            if (mag > budget)
                safe = false;
            else
                weight[a] = static_cast<std::int64_t>(w);
        }
        // Potentials accumulate at most n+1 weights along any simple path;
        // the common divisor s must itself stay an int64.
        if (safe && max_abs * static_cast<int128>(n + 1) <= budget && s128 <= budget) {
            const std::vector<std::int64_t> v = reduced_potentials(core, weight);
            const auto s = static_cast<std::int64_t>(s128);
            for (node_id u = 0; u < n; ++u) potential_by_node[u] = rational(v[u], s);
            for (arc_id a = 0; a < m; ++a) {
                const std::int64_t num =
                    v[core.graph.to(a)] - v[core.graph.from(a)] - weight[a];
                slack_by_core_arc[a] = rational(num, s);
            }
            fixed_done = true;
        }
    }
    if (!fixed_done) {
        std::vector<rational> reduced(m);
        for (arc_id a = 0; a < m; ++a)
            reduced[a] = core.delay[a] - out.cycle_time * rational(core.token[a]);
        const std::vector<rational> v = reduced_potentials(core, reduced);
        for (node_id u = 0; u < n; ++u) potential_by_node[u] = v[u];
        for (arc_id a = 0; a < m; ++a)
            slack_by_core_arc[a] =
                v[core.graph.to(a)] - v[core.graph.from(a)] - reduced[a];
    }

    for (node_id u = 0; u < n; ++u) out.potential[core.node_event[u]] = potential_by_node[u];

    out.slack.assign(sg.arc_count(), rational(0));
    out.in_core.assign(sg.arc_count(), false);
    out.arc_critical.assign(sg.arc_count(), false);
    out.event_critical.assign(sg.event_count(), false);

    // Zero-slack subgraph and its non-trivial SCCs = the critical subgraph.
    digraph zero(n);
    std::vector<arc_id> zero_original;
    for (arc_id a = 0; a < m; ++a) {
        const arc_id orig = core.arc_original[a];
        out.in_core[orig] = true;
        out.slack[orig] = slack_by_core_arc[a];
        ensure(!out.slack[orig].is_negative(), "analyze_slack: negative slack");
        if (out.slack[orig].is_zero()) {
            zero.add_arc(core.graph.from(a), core.graph.to(a));
            zero_original.push_back(orig);
        }
    }

    const scc_result scc = strongly_connected_components(zero);
    std::vector<std::uint32_t> component_size(scc.count, 0);
    for (node_id u = 0; u < n; ++u) ++component_size[scc.component[u]];

    auto node_critical = [&](node_id u) {
        if (component_size[scc.component[u]] >= 2) return true;
        // Singleton components are critical only with a zero-slack self-loop.
        for (arc_id a = 0; a < zero.arc_count(); ++a)
            if (zero.from(a) == u && zero.to(a) == u) return true;
        return false;
    };

    for (arc_id za = 0; za < zero.arc_count(); ++za) {
        const node_id from = zero.from(za);
        const node_id to = zero.to(za);
        const bool same_critical_component =
            scc.component[from] == scc.component[to] && node_critical(from);
        if (same_critical_component) {
            out.arc_critical[zero_original[za]] = true;
            out.event_critical[core.node_event[from]] = true;
            out.event_critical[core.node_event[to]] = true;
        }
    }

    out.criticality_margin = rational(0);
    bool first = true;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!out.in_core[a] || out.slack[a].is_zero()) continue;
        if (first || out.slack[a] < out.criticality_margin) {
            out.criticality_margin = out.slack[a];
            first = false;
        }
    }
    return out;
}

slack_result analyze_slack(const signal_graph& sg)
{
    require(sg.finalized(), "analyze_slack: graph must be finalized");
    const compiled_graph cg(sg);
    return analyze_slack(cg);
}

} // namespace tsg
