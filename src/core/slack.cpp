#include "core/slack.h"

#include <algorithm>

#include "core/cycle_time.h"
#include "graph/scc.h"

namespace tsg {

slack_result analyze_slack(const signal_graph& sg)
{
    require(sg.finalized(), "analyze_slack: graph must be finalized");

    slack_result out;
    out.cycle_time = analyze_cycle_time(sg).cycle_time;

    const signal_graph::core_view core = sg.repetitive_core();
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();

    // Reduced weights w = delay - lambda * tokens; by maximality of lambda
    // no cycle is positive, so longest-path potentials from a virtual
    // source converge within n Bellman-Ford passes.
    std::vector<rational> reduced(m);
    for (arc_id a = 0; a < m; ++a) {
        const arc_info& arc = sg.arc(core.arc_original[a]);
        reduced[a] = arc.delay - out.cycle_time * rational(arc.marked ? 1 : 0);
    }

    std::vector<rational> v(n, rational(0));
    for (std::size_t pass = 0; pass <= n; ++pass) {
        bool relaxed = false;
        for (arc_id a = 0; a < m; ++a) {
            const rational candidate = v[core.graph.from(a)] + reduced[a];
            if (candidate > v[core.graph.to(a)]) {
                v[core.graph.to(a)] = candidate;
                relaxed = true;
            }
        }
        if (!relaxed) break;
        ensure(pass < n, "analyze_slack: positive reduced cycle — lambda not maximal");
    }

    // Normalize potentials to start at zero.
    rational lowest = v.empty() ? rational(0) : v[0];
    for (const rational& value : v) lowest = min(lowest, value);
    for (rational& value : v) value -= lowest;

    out.slack.assign(sg.arc_count(), rational(0));
    out.in_core.assign(sg.arc_count(), false);
    out.arc_critical.assign(sg.arc_count(), false);
    out.event_critical.assign(sg.event_count(), false);
    out.potential.assign(sg.event_count(), rational(0));
    for (node_id u = 0; u < n; ++u) out.potential[core.node_event[u]] = v[u];

    // Zero-slack subgraph and its non-trivial SCCs = the critical subgraph.
    digraph zero(n);
    std::vector<arc_id> zero_original;
    for (arc_id a = 0; a < m; ++a) {
        const arc_id orig = core.arc_original[a];
        out.in_core[orig] = true;
        out.slack[orig] = v[core.graph.to(a)] - v[core.graph.from(a)] - reduced[a];
        ensure(!out.slack[orig].is_negative(), "analyze_slack: negative slack");
        if (out.slack[orig].is_zero()) {
            zero.add_arc(core.graph.from(a), core.graph.to(a));
            zero_original.push_back(orig);
        }
    }

    const scc_result scc = strongly_connected_components(zero);
    std::vector<std::uint32_t> component_size(scc.count, 0);
    for (node_id u = 0; u < n; ++u) ++component_size[scc.component[u]];

    auto node_critical = [&](node_id u) {
        if (component_size[scc.component[u]] >= 2) return true;
        // Singleton components are critical only with a zero-slack self-loop.
        for (arc_id a = 0; a < zero.arc_count(); ++a)
            if (zero.from(a) == u && zero.to(a) == u) return true;
        return false;
    };

    for (arc_id za = 0; za < zero.arc_count(); ++za) {
        const node_id from = zero.from(za);
        const node_id to = zero.to(za);
        const bool same_critical_component =
            scc.component[from] == scc.component[to] && node_critical(from);
        if (same_critical_component) {
            out.arc_critical[zero_original[za]] = true;
            out.event_critical[core.node_event[from]] = true;
            out.event_critical[core.node_event[to]] = true;
        }
    }

    out.criticality_margin = rational(0);
    bool first = true;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!out.in_core[a] || out.slack[a].is_zero()) continue;
        if (first || out.slack[a] < out.criticality_margin) {
            out.criticality_margin = out.slack[a];
            first = false;
        }
    }
    return out;
}

} // namespace tsg
