#include "core/slack.h"

#include <algorithm>
#include <array>
#include <limits>

#include "core/compiled_graph.h"
#include "core/cycle_time.h"
#include "core/lane_domain.h"
#include "graph/scc.h"
#include "util/simd.h"

namespace tsg {

namespace {

using core_view = compiled_graph::core_view;

/// Longest-path potentials for the reduced weights w(a) = weight[a] over
/// the core, via Bellman-Ford from a virtual all-zero source.  Works in
/// any ordered additive domain; throws internal_error when a positive
/// reduced cycle shows lambda was not maximal.
template <typename Value>
std::vector<Value> reduced_potentials(const core_view& core, const std::vector<Value>& weight)
{
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();
    std::vector<Value> v(n, Value{});
    for (std::size_t pass = 0; pass <= n; ++pass) {
        bool relaxed = false;
        for (arc_id a = 0; a < m; ++a) {
            const Value candidate = v[core.graph.from(a)] + weight[a];
            if (candidate > v[core.graph.to(a)]) {
                v[core.graph.to(a)] = candidate;
                relaxed = true;
            }
        }
        if (!relaxed) break;
        ensure(pass < n, "analyze_slack: positive reduced cycle — lambda not maximal");
    }
    // Normalize potentials to start at zero.
    Value lowest = v.empty() ? Value{} : v[0];
    for (const Value& value : v) lowest = std::min(lowest, value);
    for (Value& value : v) value = value - lowest;
    return v;
}

/// Exact-rational slack of one delay assignment over the core: the scalar
/// fallback of analyze_slack and of an evicted/overflowing lane.
/// `delay_of(a)` is the exact delay of core arc a.
template <typename DelayFn>
void rational_core_slack(const core_view& core, DelayFn&& delay_of, const rational& cycle_time,
                         std::vector<rational>& slack_by_core_arc,
                         std::vector<rational>& potential_by_node)
{
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();
    std::vector<rational> reduced(m);
    for (arc_id a = 0; a < m; ++a)
        reduced[a] = delay_of(a) - cycle_time * rational(core.token[a]);
    const std::vector<rational> v = reduced_potentials(core, reduced);
    potential_by_node.assign(n, rational(0));
    for (node_id u = 0; u < n; ++u) potential_by_node[u] = v[u];
    slack_by_core_arc.assign(m, rational(0));
    for (arc_id a = 0; a < m; ++a)
        slack_by_core_arc[a] = v[core.graph.to(a)] - v[core.graph.from(a)] - reduced[a];
}

/// Shared tail of every slack computation: zero-slack subgraph, critical
/// SCCs, margin.  Consumes per-core-arc slacks and per-core-node
/// potentials, produces the full result in original-id space.
slack_result finish_slack(const compiled_graph& cg, const core_view& core,
                          const rational& cycle_time,
                          const std::vector<rational>& slack_by_core_arc,
                          const std::vector<rational>& potential_by_node)
{
    const signal_graph& sg = cg.source();
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();

    slack_result out;
    out.cycle_time = cycle_time;
    out.potential.assign(sg.event_count(), rational(0));
    for (node_id u = 0; u < n; ++u) out.potential[core.node_event[u]] = potential_by_node[u];

    out.slack.assign(sg.arc_count(), rational(0));
    out.in_core.assign(sg.arc_count(), false);
    out.arc_critical.assign(sg.arc_count(), false);
    out.event_critical.assign(sg.event_count(), false);

    // Zero-slack subgraph and its non-trivial SCCs = the critical subgraph.
    digraph zero(n);
    std::vector<arc_id> zero_original;
    for (arc_id a = 0; a < m; ++a) {
        const arc_id orig = core.arc_original[a];
        out.in_core[orig] = true;
        out.slack[orig] = slack_by_core_arc[a];
        ensure(!out.slack[orig].is_negative(), "analyze_slack: negative slack");
        if (out.slack[orig].is_zero()) {
            zero.add_arc(core.graph.from(a), core.graph.to(a));
            zero_original.push_back(orig);
        }
    }

    const scc_result scc = strongly_connected_components(zero);
    std::vector<std::uint32_t> component_size(scc.count, 0);
    for (node_id u = 0; u < n; ++u) ++component_size[scc.component[u]];

    auto node_critical = [&](node_id u) {
        if (component_size[scc.component[u]] >= 2) return true;
        // Singleton components are critical only with a zero-slack self-loop.
        for (arc_id a = 0; a < zero.arc_count(); ++a)
            if (zero.from(a) == u && zero.to(a) == u) return true;
        return false;
    };

    for (arc_id za = 0; za < zero.arc_count(); ++za) {
        const node_id from = zero.from(za);
        const node_id to = zero.to(za);
        const bool same_critical_component =
            scc.component[from] == scc.component[to] && node_critical(from);
        if (same_critical_component) {
            out.arc_critical[zero_original[za]] = true;
            out.event_critical[core.node_event[from]] = true;
            out.event_critical[core.node_event[to]] = true;
        }
    }

    out.criticality_margin = rational(0);
    bool first = true;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!out.in_core[a] || out.slack[a].is_zero()) continue;
        if (first || out.slack[a] < out.criticality_margin) {
            out.criticality_margin = out.slack[a];
            first = false;
        }
    }
    return out;
}

} // namespace

slack_result analyze_slack(const compiled_graph& cg)
{
    return analyze_slack(cg, analyze_cycle_time(cg).cycle_time);
}

slack_result analyze_slack(const compiled_graph& cg, const rational& cycle_time)
{
    const core_view core = cg.core();
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();

    // Reduced weights w = delay - lambda * tokens; by maximality of lambda
    // no cycle is positive, so longest-path potentials from a virtual
    // source converge within n Bellman-Ford passes.
    //
    // Fixed-point fast path: multiply through by s = lambda.den * scale —
    // w_fx = scaled_delay * lambda.den - lambda.num * scale * token is an
    // exact integer, order-isomorphic to the rational weights, and the
    // resulting potentials/slacks divide back out exactly.  Guarded against
    // overflow (potentials are bounded by (n+1) * max|w|); any risk drops
    // us back to the rational domain.
    std::vector<rational> slack_by_core_arc;
    std::vector<rational> potential_by_node;

    bool fixed_done = false;
    if (cg.fixed_point()) {
        const std::int64_t lnum = cycle_time.num();
        const std::int64_t lden = cycle_time.den();
        const int128 token_cost = static_cast<int128>(lnum) * cg.scale();
        const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;
        const int128 s128 = static_cast<int128>(lden) * cg.scale();

        std::vector<std::int64_t> weight(m);
        int128 max_abs = 0;
        bool safe = true;
        for (arc_id a = 0; a < m && safe; ++a) {
            const int128 w = static_cast<int128>(core.scaled_delay[a]) * lden -
                             token_cost * core.token[a];
            const int128 mag = w < 0 ? -w : w;
            max_abs = std::max(max_abs, mag);
            if (mag > budget)
                safe = false;
            else
                weight[a] = static_cast<std::int64_t>(w);
        }
        // Potentials accumulate at most n+1 weights along any simple path;
        // the common divisor s must itself stay an int64.
        if (safe && max_abs * static_cast<int128>(n + 1) <= budget && s128 <= budget) {
            const std::vector<std::int64_t> v = reduced_potentials(core, weight);
            const auto s = static_cast<std::int64_t>(s128);
            potential_by_node.resize(n);
            slack_by_core_arc.resize(m);
            for (node_id u = 0; u < n; ++u) potential_by_node[u] = rational(v[u], s);
            for (arc_id a = 0; a < m; ++a) {
                const std::int64_t num =
                    v[core.graph.to(a)] - v[core.graph.from(a)] - weight[a];
                slack_by_core_arc[a] = rational(num, s);
            }
            fixed_done = true;
        }
    }
    if (!fixed_done)
        rational_core_slack(
            core, [&](arc_id a) -> const rational& { return core.delay[a]; }, cycle_time,
            slack_by_core_arc, potential_by_node);

    return finish_slack(cg, core, cycle_time, slack_by_core_arc, potential_by_node);
}

slack_result analyze_slack(const signal_graph& sg)
{
    require(sg.finalized(), "analyze_slack: graph must be finalized");
    const compiled_graph cg(sg);
    return analyze_slack(cg);
}

// --- lane-batched slack ------------------------------------------------------

namespace {

template <unsigned W>
void analyze_slack_lanes_impl(const compiled_graph& cg, const lane_domain& dom,
                              std::span<const std::vector<rational>* const> lane_delay,
                              std::span<const rational> cycle_time, lane_workspace& ws,
                              std::span<slack_result> out)
{
    const core_view core = cg.core();
    const std::size_t n = core.graph.node_count();
    const std::size_t m = core.graph.arc_count();
    const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;

    // Per-lane reduced weights in each lane's own fixed-point domain,
    // s_l = lambda_l.den * scale_l — exactly the scalar fast path, with the
    // overflow guards applied per lane.  A lane failing any guard (or
    // already evicted from the SoA domain) runs the exact rational
    // Bellman-Ford alone below.
    std::array<std::int64_t, W> s;
    std::array<bool, W> fixed;
    std::array<bool, W> active{};
    ws.weight.assign(m * W, 0);
    for (unsigned l = 0; l < W; ++l) {
        fixed[l] = !dom.evicted(l);
        active[l] = !dom.evicted(l);
        s[l] = 0;
        if (!fixed[l]) continue;
        const std::int64_t lnum = cycle_time[l].num();
        const std::int64_t lden = cycle_time[l].den();
        const std::int64_t scale = dom.scale(l);
        const int128 token_cost = static_cast<int128>(lnum) * scale;
        const int128 s128 = static_cast<int128>(lden) * scale;
        const std::int64_t* TSG_RESTRICT d = dom.delay() + l;
        std::int64_t* TSG_RESTRICT w_out = ws.weight.data() + l;
        int128 max_abs = 0;
        bool safe = s128 <= budget;
        for (arc_id a = 0; a < m && safe; ++a) {
            const int128 w =
                static_cast<int128>(d[std::size_t{a} * W]) * lden - token_cost * core.token[a];
            const int128 mag = w < 0 ? -w : w;
            max_abs = std::max(max_abs, mag);
            if (mag > budget)
                safe = false;
            else
                w_out[std::size_t{a} * W] = static_cast<std::int64_t>(w);
        }
        if (!safe || max_abs * static_cast<int128>(n + 1) > budget) {
            fixed[l] = false;
            std::int64_t* wl = ws.weight.data() + l;
            for (arc_id a = 0; a < m; ++a) wl[std::size_t{a} * W] = 0; // benign
            continue;
        }
        s[l] = static_cast<std::int64_t>(s128);
    }

    // SoA Bellman-Ford: one pass relaxes all lanes of every arc; passes
    // continue until *no* lane relaxes.  Converged lanes relax nothing in
    // the extra passes, so each lane's potentials equal its scalar run.
    ws.potential.assign(n * W, 0);
    std::int64_t* TSG_RESTRICT v = ws.potential.data();
    const std::int64_t* TSG_RESTRICT w = ws.weight.data();
    for (std::size_t pass = 0; pass <= n; ++pass) {
        // Per-lane change flags instead of one scalar accumulator: the
        // inner loop stays a pure element-wise map (no horizontal
        // reduction), which every vectorizer handles.
        std::array<std::int64_t, W> changed{};
        for (arc_id a = 0; a < m; ++a) {
            const std::int64_t* TSG_RESTRICT src = v + std::size_t{core.graph.from(a)} * W;
            const std::int64_t* TSG_RESTRICT wa = w + std::size_t{a} * W;
            std::int64_t* TSG_RESTRICT dst = v + std::size_t{core.graph.to(a)} * W;
            std::int64_t* TSG_RESTRICT chg = changed.data();
            TSG_PRAGMA_SIMD
            for (unsigned l = 0; l < W; ++l) {
                const std::int64_t cand = src[l] + wa[l];
                const bool better = cand > dst[l];
                dst[l] = better ? cand : dst[l];
                chg[l] |= better ? 1 : 0;
            }
        }
        std::int64_t any = 0;
        for (unsigned l = 0; l < W; ++l) any |= changed[l];
        if (any == 0) break;
        ensure(pass < n, "analyze_slack: positive reduced cycle — lambda not maximal");
    }

    std::vector<rational> slack_by_core_arc;
    std::vector<rational> potential_by_node;
    for (unsigned l = 0; l < W; ++l) {
        if (!active[l]) continue;
        if (fixed[l]) {
            // Normalize to start at zero (scalar semantics), then convert
            // out of the lane's domain exactly.
            const std::int64_t* vl = ws.potential.data() + l;
            std::int64_t lowest = n == 0 ? 0 : vl[0];
            for (node_id u = 0; u < n; ++u)
                lowest = std::min(lowest, vl[std::size_t{u} * W]);
            potential_by_node.assign(n, rational(0));
            for (node_id u = 0; u < n; ++u)
                potential_by_node[u] = rational(vl[std::size_t{u} * W] - lowest, s[l]);
            const std::int64_t* wl = ws.weight.data() + l;
            slack_by_core_arc.assign(m, rational(0));
            for (arc_id a = 0; a < m; ++a) {
                const std::int64_t num = vl[std::size_t{core.graph.to(a)} * W] -
                                         vl[std::size_t{core.graph.from(a)} * W] -
                                         wl[std::size_t{a} * W];
                slack_by_core_arc[a] = rational(num, s[l]);
            }
        } else {
            const std::vector<rational>& delay = *lane_delay[l];
            rational_core_slack(
                core, [&](arc_id a) { return delay[core.arc_original[a]]; }, cycle_time[l],
                slack_by_core_arc, potential_by_node);
        }
        out[l] = finish_slack(cg, core, cycle_time[l], slack_by_core_arc, potential_by_node);
    }
}

} // namespace

void analyze_slack_lanes(const compiled_graph& cg, const lane_domain& dom,
                         std::span<const std::vector<rational>* const> lane_delay,
                         std::span<const rational> cycle_time, lane_workspace& ws,
                         std::span<slack_result> out)
{
    require(dom.width() == out.size() && dom.width() == lane_delay.size() &&
                dom.width() == cycle_time.size(),
            "analyze_slack_lanes: lane count mismatch");
    switch (dom.width()) {
    case 2: return analyze_slack_lanes_impl<2>(cg, dom, lane_delay, cycle_time, ws, out);
    case 4: return analyze_slack_lanes_impl<4>(cg, dom, lane_delay, cycle_time, ws, out);
    case 8: return analyze_slack_lanes_impl<8>(cg, dom, lane_delay, cycle_time, ws, out);
    case 16: return analyze_slack_lanes_impl<16>(cg, dom, lane_delay, cycle_time, ws, out);
    default:
        throw error("analyze_slack_lanes: unsupported lane width " +
                    std::to_string(dom.width()) + " (use 2, 4, 8 or 16)");
    }
}

} // namespace tsg
