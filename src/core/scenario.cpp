#include "core/scenario.h"

#include <algorithm>
#include <limits>
#include <map>

#include "core/critical_cycle.h"
#include "core/lane_domain.h"
#include "core/pert.h"
#include "core/slack.h"
#include "ratio/howard.h"
#include "util/prng.h"

namespace tsg {

namespace {

using core_view = compiled_graph::core_view;

/// Canonical cycle identity: causal order kept, rotated so the smallest
/// arc id leads.
std::vector<arc_id> canonical_cycle(std::vector<arc_id> arcs)
{
    if (arcs.empty()) return arcs;
    const auto smallest = std::min_element(arcs.begin(), arcs.end());
    std::rotate(arcs.begin(), smallest, arcs.end());
    return arcs;
}

/// Which solver a batch actually runs: resolved once, against the base
/// snapshot's structure.
cycle_time_solver resolve_batch_solver(const compiled_graph& base, cycle_time_solver requested)
{
    if (!base.has_core()) return cycle_time_solver::border_sweep; // PERT path, moot
    return resolve_cycle_time_solver(requested, base.source().border_events().size(),
                                     base.core().graph.arc_count());
}

/// Shared tail of every cyclic-scenario evaluation: critical arcs from the
/// slack layer (every critical cycle + margin), or the sorted witness when
/// slack is off (nothing without the witness).  `out.cycle_time` must
/// already hold lambda.
void finish_cyclic_outcome(scenario_outcome& out, const compiled_graph& bound,
                           bool with_slack, bool with_witness,
                           const std::vector<arc_id>& witness_arcs)
{
    if (with_slack) {
        const slack_result slack = analyze_slack(bound, out.cycle_time);
        out.criticality_margin = slack.criticality_margin;
        for (arc_id a = 0; a < slack.arc_critical.size(); ++a)
            if (slack.arc_critical[a]) out.critical_arcs.push_back(a);
    } else if (with_witness) {
        out.critical_arcs = witness_arcs;
        std::sort(out.critical_arcs.begin(), out.critical_arcs.end());
    }
}

/// Full analysis of one bound snapshot — the scalar evaluation shared by
/// the rebind path (evaluate) and the structural path (run_structural).
scenario_outcome evaluate_bound(const compiled_graph& bound, bool with_slack,
                                unsigned analysis_threads, cycle_time_solver solver,
                                bool with_witness)
{
    scenario_outcome out;
    if (!bound.has_core()) {
        // Acyclic: the what-if quantity is the PERT makespan.
        const pert_result pert = analyze_pert(bound);
        out.cycle_time = pert.makespan;
        out.fixed_point = bound.fixed_point();
        if (with_witness) {
            out.critical_arcs = pert.critical_arcs;
            std::sort(out.critical_arcs.begin(), out.critical_arcs.end());
        }
        return out;
    }

    analysis_options opts;
    opts.max_threads = analysis_threads;
    opts.solver = solver;
    const cycle_time_result ct = analyze_cycle_time(bound, opts);
    out.cycle_time = ct.cycle_time;
    out.fixed_point = ct.periods_used > 0 ? bound.fixed_point_for_periods(ct.periods_used)
                                          : bound.fixed_point();
    if (with_witness) out.critical_cycle = canonical_cycle(ct.critical_cycle_arcs);
    finish_cyclic_outcome(out, bound, with_slack, with_witness, ct.critical_cycle_arcs);
    return out;
}

} // namespace

scenario_outcome scenario_engine::evaluate(const std::vector<rational>& delay,
                                           bool with_slack, unsigned analysis_threads,
                                           cycle_time_solver solver, bool with_witness) const
{
    return evaluate_bound(base_->rebind(delay), with_slack, analysis_threads, solver,
                          with_witness);
}

structural_batch_result scenario_engine::run_structural(
    const std::vector<structural_scenario>& scenarios,
    const scenario_batch_options& options) const
{
    require(!scenarios.empty(), "scenario_engine::run_structural: empty batch");

    structural_batch_result out;
    out.outcomes.resize(scenarios.size());

    // One private incremental engine serves the whole batch: apply,
    // analyze, undo.  Serial by design — every edit patches the shared
    // structure in place, so the parallelism knob that remains is the
    // per-analysis thread budget.
    incremental_engine eng(base_->source());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const structural_scenario& s = scenarios[i];
        structural_outcome& res = out.outcomes[i];
        const bool edited = !s.edits.empty(); // delay-only what-ifs skip the engine
        if (edited) {
            try {
                eng.apply(s.edits);
            } catch (const error& e) {
                res.message = e.what(); // rejected: engine already rolled back
                continue;
            }
        }
        try {
            if (s.delay.empty()) {
                res.outcome = evaluate_bound(eng.compiled(), options.with_slack,
                                             options.max_threads, options.solver,
                                             options.with_witness);
            } else {
                res.outcome = evaluate_bound(eng.compiled().rebind(s.delay),
                                             options.with_slack, options.max_threads,
                                             options.solver, options.with_witness);
            }
            res.accepted = true;
        } catch (const error&) {
            if (edited) eng.undo();
            throw; // analysis/rebind failure is a caller bug, not a what-if result
        }
        if (edited) eng.undo();
    }
    out.counters = eng.counters();
    return out;
}

namespace {

/// One warm-chained Howard evaluation: rebind the snapshot, refresh the
/// worker's ratio problem in place, iterate from the previous scenario's
/// converged policy.
scenario_outcome evaluate_howard_warm(const compiled_graph& base,
                                      const std::vector<rational>& delay,
                                      ratio_problem& p, howard_state& state,
                                      bool with_slack, bool with_witness)
{
    const compiled_graph bound = base.rebind(delay);
    rebind_ratio_problem(p, bound);

    const ratio_result r = max_cycle_ratio_howard(p, howard_options{}, &state);
#ifndef NDEBUG
    // Policy iteration is start-independent at the fixed point; a warm
    // start changing lambda would be a library bug.
    ensure(max_cycle_ratio_howard(p).ratio == r.ratio,
           "scenario_engine: warm-started Howard diverged from cold start");
#endif

    scenario_outcome out;
    out.cycle_time = r.ratio;
    out.fixed_point = r.fixed_point;
    std::vector<arc_id> cycle;
    cycle.reserve(r.cycle.size());
    for (const arc_id a : r.cycle) cycle.push_back(p.arc_original[a]);
    cycle = canonical_cycle(std::move(cycle));
    finish_cyclic_outcome(out, bound, with_slack, with_witness, cycle);
    if (with_witness) out.critical_cycle = std::move(cycle);
    return out;
}

// --- lane-batched path -------------------------------------------------------

/// Per-worker reusable state for the lane path: the SoA domain, the sweep
/// workspace, and the per-group result slots.
struct lane_worker_state {
    lane_domain dom;
    lane_workspace ws;
    std::vector<lane_cycle_time> ct;
    std::vector<lane_pert> pert;
    std::vector<slack_result> slack;
    std::vector<rational> lambda;
    std::vector<const std::vector<rational>*> ptrs;
    std::vector<arc_id> hints; ///< per-lane delta_arc (invalid_arc = dense)
    std::vector<std::uint8_t> mark; ///< arc bitmap for O(m) witness sorting
};

/// Ascending copy of a set of *distinct* arc ids via an arc bitmap — the
/// witness cycles the lane path sorts are O(n) long, and one linear scan
/// over the arc space beats a comparison sort's branch-miss storm.  The
/// output order equals std::sort's (distinct keys), bit for bit.
std::vector<arc_id> sorted_arcs_via_bitmap(const std::vector<arc_id>& arcs,
                                           std::vector<std::uint8_t>& mark,
                                           std::size_t arc_count)
{
    mark.assign(arc_count, 0); // assign reuses capacity; the fill is vectorized
    for (const arc_id a : arcs) mark[a] = 1;
    std::vector<arc_id> out;
    out.reserve(arcs.size());
    for (arc_id a = 0; a < arc_count; ++a)
        if (mark[a]) out.push_back(a);
    return out;
}

/// Evaluates one full lane group (W consecutive scenarios).  Evicted lanes
/// fall back to the engine's scalar rational path one by one; sibling
/// lanes stay in the SoA sweep.  Returns the eviction count.
std::size_t run_lane_group(const scenario_engine& engine, const compiled_graph& base,
                           const scenario* group, unsigned width, bool cyclic,
                           std::uint32_t periods, bool with_slack, bool with_witness,
                           cycle_time_solver solver, lane_worker_state& st,
                           scenario_outcome* out)
{
    st.ptrs.resize(width);
    st.hints.resize(width);
    for (unsigned l = 0; l < width; ++l) {
        st.ptrs[l] = &group[l].delay;
        st.hints[l] = group[l].delta_arc;
    }
    const std::span<const std::vector<rational>* const> ptrs(st.ptrs);
    // Scenarios carrying a delta_arc promise (corner sweeps, one-arc
    // what-ifs) reuse the base snapshot's scaled rows and re-pack only the
    // dirty row; lanes without one take the dense per-lane rescale.
    st.dom.rebind_lanes(base, ptrs, periods, std::span<const arc_id>(st.hints));

    if (cyclic) {
        st.ct.resize(width);
        analyze_cycle_time_lanes(base, st.dom, periods, st.ws, st.ct, with_witness);
        if (with_slack) {
            st.lambda.assign(width, rational(0));
            for (unsigned l = 0; l < width; ++l)
                if (!st.dom.evicted(l)) st.lambda[l] = st.ct[l].cycle_time;
            st.slack.resize(width);
            analyze_slack_lanes(base, st.dom, ptrs, st.lambda, st.ws, st.slack);
        }
        for (unsigned l = 0; l < width; ++l) {
            if (st.dom.evicted(l)) {
                out[l] = engine.evaluate(group[l].delay, with_slack, 1, solver, with_witness);
                continue;
            }
            scenario_outcome o;
            o.cycle_time = st.ct[l].cycle_time;
            o.fixed_point = true; // non-evicted == the scalar rebind stayed fixed-point
            if (with_slack) {
                const slack_result& sl = st.slack[l];
                o.criticality_margin = sl.criticality_margin;
                for (arc_id a = 0; a < sl.arc_critical.size(); ++a)
                    if (sl.arc_critical[a]) o.critical_arcs.push_back(a);
            } else if (with_witness) {
                o.critical_arcs = sorted_arcs_via_bitmap(st.ct[l].critical_cycle_arcs,
                                                         st.mark, group[l].delay.size());
            }
            if (with_witness)
                o.critical_cycle = canonical_cycle(std::move(st.ct[l].critical_cycle_arcs));
            out[l] = std::move(o);
        }
    } else {
        st.pert.resize(width);
        analyze_pert_lanes(base, st.dom, st.ws, st.pert);
        for (unsigned l = 0; l < width; ++l) {
            if (st.dom.evicted(l)) {
                out[l] = engine.evaluate(group[l].delay, with_slack, 1, solver, with_witness);
                continue;
            }
            scenario_outcome o;
            o.cycle_time = st.pert[l].makespan;
            o.fixed_point = true;
            if (with_witness) {
                o.critical_arcs = st.pert[l].critical_arcs;
                std::sort(o.critical_arcs.begin(), o.critical_arcs.end());
            }
            out[l] = std::move(o);
        }
    }
    return st.dom.evicted_count();
}

// --- sparse delta rebinds ----------------------------------------------------

/// Batch-wide immutable state of the sparse corner path: the common
/// fixed-point domain every corner lives in, ordered in-adjacency that
/// reproduces the scalar relaxation order as a gather, and the nominal
/// base solve (full sentinel time/pred matrices per border run).
struct sparse_context {
    std::uint32_t periods = 0;
    std::int64_t scale = 0; ///< common scale S: every corner's delay is integral in S
    std::size_t n = 0;      ///< core nodes
    std::size_t m = 0;      ///< core arcs
    std::size_t b = 0;      ///< border runs

    std::vector<arc_id> core_of_arc; ///< original arc -> core arc (invalid outside)

    // In-adjacency in exactly the order the scalar sweep generates
    // candidates for a node: token in-arcs ordered like core.token_arcs,
    // then token-free in-arcs ordered by (topo position of source, slot in
    // the source's token-free out run).  Applying strict-improve in this
    // order reproduces the scalar values *and* predecessor tie-breaks.
    std::vector<std::uint32_t> in_tok_offset;
    std::vector<arc_id> in_tok_arcs;
    std::vector<std::uint32_t> in_tf_offset;
    std::vector<arc_id> in_tf_arcs;

    // Token out-adjacency (cone stepping across periods) and topo order.
    std::vector<std::uint32_t> out_tok_offset;
    std::vector<arc_id> out_tok_arcs;
    std::vector<std::uint32_t> topo_pos;

    std::vector<std::int64_t> base_delay; ///< per core arc, in scale S

    // Base solve, one sentinel matrix pair per border run: [(p * n) + v].
    std::vector<node_id> origin;
    std::vector<std::vector<std::int64_t>> base_time;
    std::vector<std::vector<arc_id>> base_pred;

    scenario_outcome base_outcome; ///< nominal outcome (non-core / no-op deltas)
};

/// Per-worker mutable state of the sparse path.  Stale overlay entries are
/// fenced by the epoch stamps, so nothing is cleared between scenarios.
struct sparse_worker_state {
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> changed;             ///< [(p * n) + v] == epoch: differs
    std::vector<std::uint32_t> queued;              ///< [(p * n) + v] == epoch: scheduled
    std::vector<std::vector<std::int64_t>> ov_time; ///< per run, [(p * n) + v]
    std::vector<std::vector<arc_id>> ov_pred;
    std::vector<std::vector<node_id>> changed_nodes; ///< per period, this run
    std::vector<std::uint32_t> heap;                ///< topo-position min-heap
    std::vector<arc_id> walk;
};

/// The scalar border sweep in sentinel form, capturing the full time and
/// predecessor matrices — the nominal reference the cone re-propagation
/// patches.  Identical relaxation order (and therefore identical real
/// values/preds) to the scalar run_sweep; see lane_domain.h for why the
/// sentinel encoding cannot confuse unreached and real values.
void sentinel_base_sweep(const core_view& core, const std::vector<std::int64_t>& delay,
                         node_id origin, std::uint32_t periods,
                         std::vector<std::int64_t>& time, std::vector<arc_id>& pred)
{
    const std::size_t n = core.graph.node_count();
    time.assign((std::size_t{periods} + 1) * n, lane_domain::unreached);
    pred.assign((std::size_t{periods} + 1) * n, invalid_arc);

    for (std::uint32_t i = 0; i <= periods; ++i) {
        std::int64_t* cur = time.data() + std::size_t{i} * n;
        arc_id* pr = pred.data() + std::size_t{i} * n;
        if (i == 0) {
            cur[origin] = 0;
        } else {
            const std::int64_t* prev = time.data() + std::size_t{i - 1} * n;
            for (const arc_id a : core.token_arcs) {
                const std::int64_t cand = prev[core.graph.from(a)] + delay[a];
                const node_id w = core.graph.to(a);
                if (cand > cur[w]) {
                    cur[w] = cand;
                    pr[w] = a;
                }
            }
        }
        for (const node_id v : core.topo) {
            if (cur[v] < 0) continue;
            const std::uint32_t first = core.token_free_offset[v];
            const std::uint32_t last = core.token_free_offset[v + 1];
            for (std::uint32_t k = first; k < last; ++k) {
                const arc_id a = core.token_free_arcs[k];
                const std::int64_t cand = cur[v] + delay[a];
                const node_id w = core.graph.to(a);
                if (cand > cur[w]) {
                    cur[w] = cand;
                    pr[w] = a;
                }
            }
        }
    }
}

/// Evaluates one single-arc-delta scenario by re-propagating only the
/// perturbed arc's forward cone on top of the base solve.  Returns the
/// number of arc relaxations performed (the sparse work).
std::uint64_t sparse_evaluate(const sparse_context& ctx, const compiled_graph& base,
                              const scenario& s, bool with_slack, bool with_witness,
                              sparse_worker_state& ws, scenario_outcome& out)
{
    const core_view core = base.core();
    const std::size_t n = ctx.n;
    const std::uint32_t P = ctx.periods;

    require(s.delay.size() == base.delay().size(),
            "scenario_engine: delay count does not match the arc count");
    require(!s.delay[s.delta_arc].is_negative(), "scenario_engine: negative delay");
#ifndef NDEBUG
    for (arc_id a = 0; a < s.delay.size(); ++a)
        if (a != s.delta_arc)
            ensure(s.delay[a] == base.delay()[a],
                   "scenario_engine: delta_arc promise violated (delay differs beyond it)");
#endif

    const arc_id ca = ctx.core_of_arc[s.delta_arc];
    if (ca == invalid_arc) {
        // Start-up arcs never move the steady state: the nominal solve is
        // the answer (slack and critical sets only cover core arcs).
        out = ctx.base_outcome;
        return 0;
    }

    const rational& nd = s.delay[s.delta_arc];
    const std::int64_t new_scaled =
        static_cast<std::int64_t>(static_cast<int128>(nd.num()) * (ctx.scale / nd.den()));
    if (new_scaled == ctx.base_delay[ca]) {
        out = ctx.base_outcome;
        return 0;
    }

    // --- value-driven delta re-propagation per border run -----------------
    // Classic incremental longest-path: re-relax the perturbed arc's head
    // (every period it can fire in), then only the nodes whose gathered
    // value or predecessor actually *differs* from the base solve — a
    // change that is absorbed (new max equals the old one) stops
    // propagating immediately.  Most corners touch a handful of nodes; a
    // corner on the critical path re-relaxes just its downstream arg-max
    // region.  Gathers apply candidates in the exact scalar relaxation
    // order (ordered in-adjacency), so every recomputed value *and*
    // tie-break is bit-identical to a full rebind's sweep.
    const node_id head = core.graph.to(ca);
    const bool marked = core.token[ca] != 0;
    ++ws.epoch;
    const std::uint32_t epoch = ws.epoch;
    const std::size_t rows = std::size_t{P} + 1;
    ws.changed.resize(ctx.b * rows * n, 0);
    ws.queued.resize(ctx.b * rows * n, 0);
    ws.ov_time.resize(ctx.b);
    ws.ov_pred.resize(ctx.b);
    ws.changed_nodes.resize(rows);
    std::uint64_t touched = 0;

    const auto delay_of = [&](arc_id a) -> std::int64_t {
        return a == ca ? new_scaled : ctx.base_delay[a];
    };

    for (std::size_t k = 0; k < ctx.b; ++k) {
        ws.ov_time[k].resize(rows * n);
        ws.ov_pred[k].resize(rows * n);
        const std::vector<std::int64_t>& bt = ctx.base_time[k];
        const std::vector<arc_id>& bp = ctx.base_pred[k];
        std::vector<std::int64_t>& ot = ws.ov_time[k];
        std::vector<arc_id>& op = ws.ov_pred[k];
        std::uint32_t* changed = ws.changed.data() + k * rows * n;
        std::uint32_t* queued = ws.queued.data() + k * rows * n;
        const node_id origin = ctx.origin[k];

        const auto value_at = [&](std::uint32_t p, node_id v) -> std::int64_t {
            const std::size_t idx = std::size_t{p} * n + v;
            return changed[idx] == epoch ? ot[idx] : bt[idx];
        };

        for (std::uint32_t p = 0; p <= P; ++p) {
            ws.changed_nodes[p].clear();
            // Work heap keyed by topo position: sources of any popped node
            // are either unchanged or already final (pushes only go
            // forward in topo order within a period).
            ws.heap.clear();
            const auto push = [&](node_id v) {
                const std::size_t idx = std::size_t{p} * n + v;
                if (queued[idx] != epoch) {
                    queued[idx] = epoch;
                    ws.heap.push_back(ctx.topo_pos[v]);
                    std::push_heap(ws.heap.begin(), ws.heap.end(),
                                   std::greater<std::uint32_t>());
                }
            };
            if (p > 0 || !marked) push(head);
            if (p > 0)
                for (const node_id u : ws.changed_nodes[p - 1])
                    for (std::uint32_t i = ctx.out_tok_offset[u];
                         i < ctx.out_tok_offset[u + 1]; ++i)
                        push(core.graph.to(ctx.out_tok_arcs[i]));

            while (!ws.heap.empty()) {
                std::pop_heap(ws.heap.begin(), ws.heap.end(),
                              std::greater<std::uint32_t>());
                const node_id w = core.topo[ws.heap.back()];
                ws.heap.pop_back();

                std::int64_t val = (p == 0 && w == origin) ? 0 : lane_domain::unreached;
                arc_id prd = invalid_arc;
                if (p > 0) {
                    for (std::uint32_t i = ctx.in_tok_offset[w]; i < ctx.in_tok_offset[w + 1];
                         ++i) {
                        const arc_id a = ctx.in_tok_arcs[i];
                        const std::int64_t cand =
                            value_at(p - 1, core.graph.from(a)) + delay_of(a);
                        if (cand > val) {
                            val = cand;
                            prd = a;
                        }
                    }
                    touched += ctx.in_tok_offset[w + 1] - ctx.in_tok_offset[w];
                }
                for (std::uint32_t i = ctx.in_tf_offset[w]; i < ctx.in_tf_offset[w + 1];
                     ++i) {
                    const arc_id a = ctx.in_tf_arcs[i];
                    const std::int64_t cand = value_at(p, core.graph.from(a)) + delay_of(a);
                    if (cand > val) {
                        val = cand;
                        prd = a;
                    }
                }
                touched += ctx.in_tf_offset[w + 1] - ctx.in_tf_offset[w];

                const std::size_t idx = std::size_t{p} * n + w;
                if (val == bt[idx] && prd == bp[idx]) continue; // absorbed: stop here
                ot[idx] = val;
                op[idx] = prd;
                changed[idx] = epoch;
                if (val != bt[idx]) {
                    // Value changes propagate; pred-only changes don't (the
                    // successors' gathers read the value, not the pred).
                    ws.changed_nodes[p].push_back(w);
                    for (std::uint32_t i = core.token_free_offset[w];
                         i < core.token_free_offset[w + 1]; ++i)
                        push(core.graph.to(core.token_free_arcs[i]));
                }
            }
        }
    }

    // --- lambda reduction (identical lexicographic order to the scalar) --
    bool any = false;
    std::size_t best_run = 0;
    std::uint32_t best_period = 0;
    rational lambda;
    for (std::size_t k = 0; k < ctx.b; ++k) {
        const std::vector<std::int64_t>& bt = ctx.base_time[k];
        const std::uint32_t* changed = ws.changed.data() + k * rows * n;
        for (std::uint32_t i = 1; i <= P; ++i) {
            const std::size_t idx = std::size_t{i} * n + ctx.origin[k];
            const std::int64_t v = changed[idx] == epoch ? ws.ov_time[k][idx] : bt[idx];
            if (v < 0) continue;
            const rational delta = rational(v, ctx.scale) / rational(i);
            if (!any || delta > lambda) {
                any = true;
                best_run = k;
                best_period = i;
                lambda = delta;
            }
        }
    }
    ensure(any, "analyze_cycle_time: no border simulation closed a cycle within b periods");

    out = scenario_outcome{};
    out.cycle_time = lambda;
    out.fixed_point = true; // the common domain fitting implies the scenario's own does

    if (with_witness) {
        // Witness backtrack through the patched matrices, then the peel in
        // the common fixed-point domain — identical decisions to the
        // scalar rational peel (core/critical_cycle.h).
        ws.walk.clear();
        node_id v = ctx.origin[best_run];
        std::uint32_t period = best_period;
        const std::uint32_t* best_changed = ws.changed.data() + best_run * rows * n;
        while (!(v == ctx.origin[best_run] && period == 0)) {
            const std::size_t idx = std::size_t{period} * n + v;
            const arc_id a = best_changed[idx] == epoch ? ws.ov_pred[best_run][idx]
                                                        : ctx.base_pred[best_run][idx];
            ensure(a != invalid_arc, "analyze_cycle_time: broken predecessor chain");
            ws.walk.push_back(a);
            period -= core.token[a];
            v = core.graph.from(a);
        }
        std::reverse(ws.walk.begin(), ws.walk.end());

        const std::vector<arc_id> cycle_core =
            peel_critical_cycle_fixed(core, ws.walk, lambda, ctx.scale, delay_of);
        std::vector<arc_id> witness;
        witness.reserve(cycle_core.size());
        for (const arc_id a : cycle_core) witness.push_back(core.arc_original[a]);
        out.critical_cycle = canonical_cycle(witness);
        if (with_slack) {
            const compiled_graph bound = base.rebind(s.delay);
            finish_cyclic_outcome(out, bound, true, true, witness);
        } else {
            out.critical_arcs = std::move(witness);
            std::sort(out.critical_arcs.begin(), out.critical_arcs.end());
        }
    } else if (with_slack) {
        const compiled_graph bound = base.rebind(s.delay);
        finish_cyclic_outcome(out, bound, true, false, {});
    }
    return touched;
}

/// Builds the sparse context, or reports ineligibility (common domain
/// overflow, base not fixed-point, a corner outside the scale cap, ...).
bool build_sparse_context(const compiled_graph& base, const std::vector<scenario>& scenarios,
                          std::uint32_t periods, sparse_context& ctx)
{
    if (!base.fixed_point_for_periods(periods)) return false;

    constexpr std::int64_t max_scale = std::numeric_limits<std::int32_t>::max();
    const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;

    // Common scale S = lcm(base scale, every corner's denominator): every
    // corner's whole assignment is integral in S, so one base solve in S
    // serves the entire batch.  (Each scenario's own rebind scale divides
    // S, so "fits in S" implies the scalar path would stay fixed-point too
    // — per-scenario fixed_point flags are exact.)
    std::int64_t scale = base.scale();
    for (const scenario& s : scenarios) {
        if (s.delta_arc >= base.delay().size()) return false;
        const std::int64_t den = s.delay.size() == base.delay().size()
                                     ? s.delay[s.delta_arc].den()
                                     : 1; // size validated later, per scenario
        if (scale % den == 0) continue;
        const std::int64_t g = std::gcd(scale, den);
        const int128 candidate = static_cast<int128>(scale / g) * den;
        if (candidate > max_scale) return false;
        scale = static_cast<std::int64_t>(candidate);
    }

    // Re-scale the base assignment into S and bound the total delay mass a
    // P-period sweep can accumulate, corner deltas included.
    const std::int64_t mult = scale / base.scale();
    const std::vector<std::int64_t>& base_scaled = base.scaled_delay();
    int128 total = 0;
    for (const std::int64_t d : base_scaled) {
        const int128 v = static_cast<int128>(d) * mult;
        if (v > std::numeric_limits<std::int64_t>::max()) return false;
        total += v;
    }
    int128 worst_extra = 0;
    for (const scenario& s : scenarios) {
        if (s.delay.size() != base.delay().size()) return false;
        const rational& nd = s.delay[s.delta_arc];
        if (nd.is_negative()) return false;
        const int128 new_scaled = static_cast<int128>(nd.num()) * (scale / nd.den());
        if (new_scaled > std::numeric_limits<std::int64_t>::max()) return false;
        const int128 extra =
            new_scaled - static_cast<int128>(base_scaled[s.delta_arc]) * mult;
        worst_extra = std::max(worst_extra, extra);
    }
    if (static_cast<int128>(periods + 1) * (total + worst_extra) > budget) return false;

    const core_view core = base.core();
    ctx.periods = periods;
    ctx.scale = scale;
    ctx.n = core.graph.node_count();
    ctx.m = core.graph.arc_count();
    ctx.b = base.source().border_events().size();

    ctx.core_of_arc.assign(base.delay().size(), invalid_arc);
    for (arc_id a = 0; a < ctx.m; ++a) ctx.core_of_arc[core.arc_original[a]] = a;

    ctx.base_delay.resize(ctx.m);
    for (arc_id a = 0; a < ctx.m; ++a)
        ctx.base_delay[a] = core.scaled_delay[a] * mult;

    // Ordered in-adjacency: token in-arcs in core.token_arcs order...
    ctx.topo_pos.assign(ctx.n, 0);
    for (std::size_t i = 0; i < core.topo.size(); ++i) ctx.topo_pos[core.topo[i]] = i;

    ctx.in_tok_offset.assign(ctx.n + 1, 0);
    ctx.out_tok_offset.assign(ctx.n + 1, 0);
    for (const arc_id a : core.token_arcs) {
        ++ctx.in_tok_offset[core.graph.to(a) + 1];
        ++ctx.out_tok_offset[core.graph.from(a) + 1];
    }
    for (std::size_t v = 0; v < ctx.n; ++v) {
        ctx.in_tok_offset[v + 1] += ctx.in_tok_offset[v];
        ctx.out_tok_offset[v + 1] += ctx.out_tok_offset[v];
    }
    ctx.in_tok_arcs.resize(core.token_arcs.size());
    ctx.out_tok_arcs.resize(core.token_arcs.size());
    {
        std::vector<std::uint32_t> in_cur(ctx.in_tok_offset.begin(),
                                          ctx.in_tok_offset.end() - 1);
        std::vector<std::uint32_t> out_cur(ctx.out_tok_offset.begin(),
                                           ctx.out_tok_offset.end() - 1);
        for (const arc_id a : core.token_arcs) {
            ctx.in_tok_arcs[in_cur[core.graph.to(a)]++] = a;
            ctx.out_tok_arcs[out_cur[core.graph.from(a)]++] = a;
        }
    }

    // ...and token-free in-arcs ordered by (topo position of the source,
    // slot within the source's token-free out run) — the exact candidate
    // order of the scalar scatter sweep.
    ctx.in_tf_offset.assign(ctx.n + 1, 0);
    for (const arc_id a : core.token_free_arcs) ++ctx.in_tf_offset[core.graph.to(a) + 1];
    for (std::size_t v = 0; v < ctx.n; ++v) ctx.in_tf_offset[v + 1] += ctx.in_tf_offset[v];
    ctx.in_tf_arcs.resize(core.token_free_arcs.size());
    {
        std::vector<std::uint32_t> cur(ctx.in_tf_offset.begin(), ctx.in_tf_offset.end() - 1);
        for (const node_id v : core.topo)
            for (std::uint32_t k = core.token_free_offset[v]; k < core.token_free_offset[v + 1];
                 ++k) {
                const arc_id a = core.token_free_arcs[k];
                ctx.in_tf_arcs[cur[core.graph.to(a)]++] = a;
            }
    }

    // Nominal base solve per border run.
    const std::vector<event_id>& border = base.source().border_events();
    ctx.origin.resize(ctx.b);
    ctx.base_time.resize(ctx.b);
    ctx.base_pred.resize(ctx.b);
    for (std::size_t k = 0; k < ctx.b; ++k) {
        const node_id origin = core.event_node[border[k]];
        ensure(origin != invalid_node, "analyze_cycle_time: border event outside the core");
        ctx.origin[k] = origin;
        sentinel_base_sweep(core, ctx.base_delay, origin, periods, ctx.base_time[k],
                            ctx.base_pred[k]);
    }
    return true;
}

} // namespace

thread_pool& scenario_engine::acquire_pool(unsigned max_threads) const
{
    const unsigned resolved = resolve_thread_count(max_threads);
    if (!pool_ || pool_->thread_count() != resolved)
        pool_ = std::make_unique<thread_pool>(resolved);
    return *pool_;
}

scenario_batch_result scenario_engine::run(const std::vector<scenario>& scenarios,
                                           const scenario_batch_options& options) const
{
    require(!scenarios.empty(), "scenario_engine::run: empty batch");
    require(options.lane_width == 0 || options.lane_width == 1 || options.lane_width == 2 ||
                options.lane_width == 4 || options.lane_width == 8 ||
                options.lane_width == 16,
            "scenario_engine::run: lane_width must be 0 (auto), 1, 2, 4, 8 or 16");

    scenario_batch_result out;
    out.outcomes.resize(scenarios.size());

    // The engine's long-lived pool; the lock also serializes concurrent
    // run() calls, which share the pool and the per-worker scratch state.
    const std::lock_guard<std::mutex> run_lock(run_mutex_);
    thread_pool& pool = acquire_pool(options.max_threads);

    const bool cyclic = base_->has_core();
    const std::uint32_t periods =
        cyclic ? static_cast<std::uint32_t>(base_->source().border_events().size()) : 1;
    if (cyclic)
        out.dense_sweep_arcs = std::uint64_t{base_->source().border_events().size()} *
                               (std::uint64_t{periods} + 1) * base_->core().graph.arc_count();

    cycle_time_solver solver = resolve_batch_solver(*base_, options.solver);
    const unsigned width = options.lane_width == 0 ? 8 : options.lane_width;
    if (options.delta == scenario_batch_options::delta_mode::sparse &&
        options.solver == cycle_time_solver::auto_select &&
        solver == cycle_time_solver::howard)
        solver = cycle_time_solver::border_sweep; // sparse was requested: it runs there
    require(!(options.delta == scenario_batch_options::delta_mode::sparse &&
              solver == cycle_time_solver::howard),
            "scenario_engine::run: sparse delta rebinds run on the border-sweep solver");

    if (solver == cycle_time_solver::howard && cyclic) {
        // Static contiguous chunks, one warm chain per worker: scenario i
        // warm-starts from scenario i-1 of the same chunk, so the chain —
        // and every outcome — is deterministic for a given thread budget.
        const std::size_t workers = std::min<std::size_t>(
            resolve_thread_count(options.max_threads), scenarios.size());
        pool.for_index(workers, [&](std::size_t w, unsigned) {
            const std::size_t begin = w * scenarios.size() / workers;
            const std::size_t end = (w + 1) * scenarios.size() / workers;
            ratio_problem p = make_ratio_problem(*base_);
            howard_state state;
            for (std::size_t i = begin; i < end; ++i)
                out.outcomes[i] =
                    evaluate_howard_warm(*base_, scenarios[i].delay, p, state,
                                         options.with_slack, options.with_witness);
        });
    } else {
        // Sparse delta rebinds for single-arc-perturbation batches.
        using delta_mode = scenario_batch_options::delta_mode;
        bool sparse_done = false;
        if (options.delta != delta_mode::dense && cyclic &&
            solver == cycle_time_solver::border_sweep) {
            bool all_delta = true;
            for (const scenario& s : scenarios) all_delta &= s.delta_arc != invalid_arc;
            sparse_context ctx;
            if (all_delta && build_sparse_context(*base_, scenarios, periods, ctx)) {
                // auto_detect probes before committing: the sparse cost is
                // value-dependent (how far each corner's delta propagates),
                // so evaluate a deterministic sample and compare the arcs
                // it actually touched against one dense sweep, scaled by
                // the dense path's SIMD advantage.  Corners that the max
                // absorbs cost O(1); corners on the arg-max re-relax their
                // downstream region and can make dense lanes the better
                // engine.
                bool engage = options.delta == delta_mode::sparse;
                if (!engage) {
                    sparse_worker_state probe_ws;
                    scenario_outcome discard;
                    const std::size_t probes = std::min<std::size_t>(scenarios.size(), 16);
                    std::uint64_t probe_touched = 0;
                    for (std::size_t i = 0; i < probes; ++i) {
                        const std::size_t idx =
                            i * (scenarios.size() - 1) / std::max<std::size_t>(probes - 1, 1);
                        probe_touched += sparse_evaluate(ctx, *base_, scenarios[idx],
                                                         /*with_slack=*/false,
                                                         /*with_witness=*/false, probe_ws,
                                                         discard);
                    }
                    // ~6 scalar gather-ops buy one SIMD lane-slot relax.
                    engage = probe_touched * 6 <= probes * out.dense_sweep_arcs;
                }
                if (engage) {
                    ctx.base_outcome = evaluate(base_->delay(), options.with_slack, 1,
                                                solver, options.with_witness);
                    std::vector<sparse_worker_state> states(pool.thread_count());
                    std::vector<std::uint64_t> touched(scenarios.size(), 0);
                    pool.for_index(scenarios.size(), [&](std::size_t i, unsigned worker) {
                        touched[i] = sparse_evaluate(ctx, *base_, scenarios[i],
                                                     options.with_slack,
                                                     options.with_witness, states[worker],
                                                     out.outcomes[i]);
                    });
                    for (const std::uint64_t t : touched) out.sparse_arcs_touched += t;
                    out.sparse_scenarios = scenarios.size();
                    sparse_done = true;
                }
            } else {
                require(options.delta != delta_mode::sparse,
                        "scenario_engine::run: sparse delta rebinds requested but the "
                        "batch is ineligible (every scenario needs delta_arc, a cyclic "
                        "graph, the border-sweep solver and a common fixed-point domain)");
            }
        } else {
            require(options.delta != delta_mode::sparse,
                    "scenario_engine::run: sparse delta rebinds requested but the "
                    "batch is ineligible (every scenario needs delta_arc, a cyclic "
                    "graph, the border-sweep solver and a common fixed-point domain)");
        }

        if (!sparse_done) {
            const std::size_t groups = width > 1 ? scenarios.size() / width : 0;
            if (groups > 0) {
                // Lane path: fixed-width groups (boundaries independent of
                // the thread layout), scalar epilogue for the tail.
                std::vector<lane_worker_state> states(pool.thread_count());
                std::vector<std::size_t> evictions(groups, 0);
                pool.for_index(groups, [&](std::size_t g, unsigned worker) {
                    evictions[g] = run_lane_group(
                        *this, *base_, scenarios.data() + g * width, width, cyclic, periods,
                        options.with_slack, options.with_witness, solver, states[worker],
                        out.outcomes.data() + g * width);
                });
                for (const std::size_t e : evictions) out.lane_evictions += e;
                for (const lane_worker_state& st : states) {
                    out.lane_rows_reused += st.dom.rows_reused();
                    out.lane_rows_repacked += st.dom.rows_repacked();
                }
                out.lane_groups = groups;
                out.lane_scenarios = groups * width - out.lane_evictions;
                for (std::size_t i = groups * width; i < scenarios.size(); ++i)
                    out.outcomes[i] = evaluate(scenarios[i].delay, options.with_slack, 1,
                                               solver, options.with_witness);
                out.scalar_scenarios =
                    scenarios.size() - groups * width + out.lane_evictions;
            } else {
                // Scalar path (forced, or batch smaller than one group).
                pool.for_index(scenarios.size(), [&](std::size_t i, unsigned) {
                    out.outcomes[i] = evaluate(scenarios[i].delay, options.with_slack, 1,
                                               solver, options.with_witness);
                });
                out.scalar_scenarios = scenarios.size();
            }
        }
    }

    // Serial reduction in scenario order — the batch result is independent
    // of the thread schedule.
    reduce_scenario_outcomes(out, base_->delay().size());
    return out;
}

void reduce_scenario_outcomes(scenario_batch_result& out, std::size_t arc_count)
{
    out.criticality_count.assign(arc_count, 0);
    out.fallback_count = 0;
    out.critical_cycles.clear();
    std::map<std::vector<arc_id>, std::size_t> cycle_stat; // cycle -> stats slot
    double sum = 0.0;
    for (std::size_t i = 0; i < out.outcomes.size(); ++i) {
        const scenario_outcome& o = out.outcomes[i];
        sum += o.cycle_time.to_double();
        if (i == 0 || o.cycle_time < out.min_cycle_time) {
            out.min_cycle_time = o.cycle_time;
            out.min_index = i;
        }
        if (i == 0 || o.cycle_time > out.max_cycle_time) {
            out.max_cycle_time = o.cycle_time;
            out.max_index = i;
        }
        for (const arc_id a : o.critical_arcs) ++out.criticality_count[a];
        if (!o.fixed_point) ++out.fallback_count;
        if (!o.critical_cycle.empty()) {
            const auto [it, inserted] =
                cycle_stat.try_emplace(o.critical_cycle, out.critical_cycles.size());
            if (inserted)
                out.critical_cycles.push_back({o.critical_cycle, 1, i});
            else
                ++out.critical_cycles[it->second].count;
        }
    }
    out.mean_cycle_time = sum / static_cast<double>(out.outcomes.size());
    std::stable_sort(out.critical_cycles.begin(), out.critical_cycles.end(),
                     [](const critical_cycle_stat& a, const critical_cycle_stat& b) {
                         if (a.count != b.count) return a.count > b.count;
                         return a.first_index < b.first_index;
                     });
}

std::vector<scenario> corner_sweep_scenarios(const signal_graph& sg,
                                             const corner_sweep_options& options)
{
    require(sg.finalized(), "corner_sweep_scenarios: graph must be finalized");
    require(!options.factor.is_negative() && options.factor < rational(1),
            "corner_sweep_scenarios: factor must lie in [0, 1)");

    const bool core_only = options.core_only && !sg.repetitive_events().empty();

    std::vector<rational> nominal;
    nominal.reserve(sg.arc_count());
    for (arc_id a = 0; a < sg.arc_count(); ++a) nominal.push_back(sg.arc(a).delay);

    std::vector<scenario> out;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!sg.arc_live(a)) continue;
        const arc_info& arc = sg.arc(a);
        if (core_only && !(sg.is_repetitive(arc.from) && sg.is_repetitive(arc.to)))
            continue;
        const std::string name =
            sg.event(arc.from).name + "->" + sg.event(arc.to).name;
        for (const int sign : {-1, +1}) {
            const rational factor =
                rational(1) + (sign < 0 ? -options.factor : options.factor);
            scenario s;
            s.label = "arc " + std::to_string(a) + " (" + name + ") x" + factor.str();
            s.delay = nominal;
            s.delay[a] = nominal[a] * factor;
            s.delta_arc = a; // single-arc promise: enables sparse delta rebinds
            out.push_back(std::move(s));
        }
    }
    return out;
}

namespace {

/// Independent per-sample PRNG stream: sample k's delays depend only on
/// (seed, k) — a SplitMix64 step keyed by the sample index — so serial,
/// parallel and lane-batched generation all produce the identical batch.
std::uint64_t sample_stream_seed(std::uint64_t seed, std::uint64_t k)
{
    std::uint64_t z = seed + (k + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

namespace {

/// Validates the shared Monte Carlo preconditions (everything except the
/// sample count, which table building does not need).
void validate_mc_options(const signal_graph& sg, const monte_carlo_options& options)
{
    require(sg.finalized(), "monte_carlo_scenarios: graph must be finalized");
    require(options.resolution > 0, "monte_carlo_scenarios: resolution must be positive");
    require(options.model.resolution > 0,
            "monte_carlo_scenarios: delay_model resolution must be positive");
    for (const delay_model::source& src : options.model.sources)
        require(src.sensitivity.size() == sg.arc_count(),
                "monte_carlo_scenarios: delay_model needs one sensitivity per arc");
}

/// Resolved per-arc sampling description.  The sampled delay
/// lo + (hi - lo) * u/res is a point on the arc's fixed grid, so it can be
/// built as ONE normalized rational (base + step*u over a precomputed
/// denominator) instead of a chain of rational ops, each paying its own
/// gcd.  Generation is the dominant cost of small-request Monte Carlo
/// serving, and this path cuts it several-fold; arcs whose grid components
/// would overflow int64 fall back to the exact rational chain over
/// `ranges` (identical values either way).
struct mc_sampling {
    struct sample_grid {
        std::int64_t base = 0; ///< lo.num * span.den * resolution
        std::int64_t step = 0; ///< span.num * lo.den
        std::int64_t den = 1;  ///< lo.den * span.den * resolution
        bool fast = false;
    };
    std::vector<sample_grid> grids;
    std::vector<delay_range> ranges; ///< exact ranges, for the fallback path
};

mc_sampling resolve_mc_sampling(const signal_graph& sg,
                                const monte_carlo_options& options)
{
    mc_sampling s;
    s.grids.resize(sg.arc_count());
    constexpr int128 lim = std::numeric_limits<std::int64_t>::max();

    // Reduces one arc's grid from raw (possibly unnormalized) fraction
    // components lo = ln/ld, span = sn/sd with sn >= 0 — the per-sample
    // rational construction canonicalizes, so the grid itself need not be.
    // Dividing out the common gcd once keeps the per-sample gcd running on
    // small operands.  Returns false when the components overflow int64.
    const auto install_grid = [&](arc_id a, int128 ln, int128 ld, int128 sn,
                                  int128 sd) {
        // Every component is non-negative and every denominator factor is
        // >= 1, so each guarded product only grows: the moment a partial
        // product exceeds int64, the full grid would too, and checking
        // after each multiply also keeps the int128 intermediates exact.
        if (ln > lim || ld > lim || sn > lim || sd > lim) return false;
        const int128 num_hi = ln * sd;
        const int128 den_lo = ld * sd;
        const int128 step = sn * ld;
        if (num_hi > lim || den_lo > lim || step > lim) return false;
        const int128 base = num_hi * options.resolution;
        const int128 den = den_lo * options.resolution;
        // u ranges over [0, resolution], so base + step*resolution bounds
        // the numerator.
        if (den > lim || base + step * options.resolution > lim) return false;
        mc_sampling::sample_grid& g = s.grids[a];
        g.base = static_cast<std::int64_t>(base);
        g.step = static_cast<std::int64_t>(step);
        g.den = static_cast<std::int64_t>(den);
        const std::int64_t common = std::gcd(std::gcd(g.base, g.step), g.den);
        if (common > 1) {
            g.base /= common;
            g.step /= common;
            g.den /= common;
        }
        g.fast = true;
        return true;
    };

    if (options.ranges.empty()) {
        require(!options.spread.is_negative(),
                "monte_carlo_scenarios: spread must be non-negative");
        // lo = max(0, d * (1 - spread)), hi = d * (1 + spread).  For d >= 0
        // the clamp distributes onto the loop-invariant factor, so each
        // arc's grid is a handful of integer multiplies — no per-arc
        // rational arithmetic at all.
        const rational one_minus = rational(1) - options.spread;
        const rational hi_f = rational(1) + options.spread;
        const rational lo_f = one_minus.is_negative() ? rational(0) : one_minus;
        const rational span_f = hi_f - lo_f;
        s.ranges.resize(sg.arc_count()); // filled only for fallback arcs
        for (arc_id a = 0; a < sg.arc_count(); ++a) {
            const rational& d = sg.arc(a).delay;
            if (d.is_negative() ||
                !install_grid(a, static_cast<int128>(d.num()) * lo_f.num(),
                              static_cast<int128>(d.den()) * lo_f.den(),
                              static_cast<int128>(d.num()) * span_f.num(),
                              static_cast<int128>(d.den()) * span_f.den()))
                s.ranges[a] = {max(rational(0), d * one_minus), d * hi_f};
        }
    } else {
        require(options.ranges.size() == sg.arc_count(),
                "monte_carlo_scenarios: need one delay range per arc");
        for (const delay_range& r : options.ranges)
            require(!r.lo.is_negative() && r.lo <= r.hi,
                    "monte_carlo_scenarios: ranges must satisfy 0 <= lo <= hi");
        s.ranges = options.ranges;
        for (arc_id a = 0; a < sg.arc_count(); ++a) {
            const delay_range& r = s.ranges[a];
            const rational span = r.hi - r.lo;
            (void)install_grid(a, r.lo.num(), r.lo.den(), span.num(), span.den());
        }
    }
    return s;
}

/// Grid value of arc `a` at grid position `u` — one rational construction
/// on the fast path, the exact chain on the fallback path.
rational mc_value(const mc_sampling& s, const monte_carlo_options& options,
                  arc_id a, std::int64_t u)
{
    const mc_sampling::sample_grid& g = s.grids[a];
    if (g.fast) return rational(g.base + g.step * u, g.den);
    const delay_range& r = s.ranges[a];
    return r.lo + (r.hi - r.lo) * rational(u, options.resolution);
}

/// The shared generation loop: full batch storage up front, then
/// per-worker generation — each worker fills disjoint slots from the
/// sample's own PRNG stream.  Sample k of this call is global stream
/// sample first_sample + k: the scenario is a pure function of
/// (seed, global index), so round partitions and whole batches generate
/// identical scenarios.  `value_at(a, u)` supplies the grid value — either
/// computed (mc_value) or looked up (monte_carlo_table).
template <class ValueAt>
std::vector<scenario> mc_generate(const signal_graph& sg,
                                  const monte_carlo_options& options,
                                  ValueAt&& value_at)
{
    require(options.samples > 0, "monte_carlo_scenarios: samples must be positive");
    const std::size_t K = options.model.sources.size();
    std::vector<scenario> out(options.samples);
    const bool parallel_worthwhile =
        options.samples * sg.arc_count() >= (std::size_t{1} << 15);
    parallel_for_index(
        options.samples, parallel_worthwhile ? options.max_threads : 1, [&](std::size_t k) {
            const std::size_t gk = options.first_sample + k;
            prng rng(sample_stream_seed(options.seed, gk));
            scenario& s = out[k];
            s.label = "mc#" + std::to_string(gk) + " seed=" + std::to_string(options.seed);

            // Global variation variables draw from their own stream (a
            // distinct seed-space key), so adding sources never shifts the
            // per-arc draws: zero sensitivities reproduce the independent
            // batch bit for bit.
            std::vector<rational> global;
            if (K > 0) {
                prng grng(sample_stream_seed(options.seed ^ 0xc2b2ae3d27d4eb4fULL, gk));
                global.reserve(K);
                for (std::size_t j = 0; j < K; ++j)
                    global.push_back(rational(
                        grng.uniform(-options.model.resolution, options.model.resolution),
                        options.model.resolution));
            }

            s.delay.reserve(sg.arc_count());
            for (arc_id a = 0; a < sg.arc_count(); ++a) {
                const std::int64_t u = rng.uniform(0, options.resolution);
                rational d = value_at(a, u);
                if (K > 0) {
                    const rational& nominal = sg.arc(a).delay;
                    for (std::size_t j = 0; j < K; ++j) {
                        const rational& sens = options.model.sources[j].sensitivity[a];
                        if (!sens.is_zero()) d += nominal * sens * global[j];
                    }
                    d = max(rational(0), d);
                }
                s.delay.push_back(d);
            }
        });
    return out;
}

} // namespace

std::vector<scenario> monte_carlo_scenarios(const signal_graph& sg,
                                            const monte_carlo_options& options)
{
    validate_mc_options(sg, options);
    const mc_sampling sampling = resolve_mc_sampling(sg, options);
    return mc_generate(sg, options, [&](arc_id a, std::int64_t u) {
        return mc_value(sampling, options, a, u);
    });
}

monte_carlo_table build_monte_carlo_table(const signal_graph& sg,
                                          const monte_carlo_options& options)
{
    validate_mc_options(sg, options);
    const mc_sampling sampling = resolve_mc_sampling(sg, options);
    monte_carlo_table table;
    table.resolution = options.resolution;
    table.arc_count = sg.arc_count();
    table.values.reserve(sg.arc_count() *
                         static_cast<std::size_t>(options.resolution + 1));
    for (arc_id a = 0; a < sg.arc_count(); ++a)
        for (std::int64_t u = 0; u <= options.resolution; ++u)
            table.values.push_back(mc_value(sampling, options, a, u));
    return table;
}

std::vector<scenario> monte_carlo_scenarios(const signal_graph& sg,
                                            const monte_carlo_options& options,
                                            const monte_carlo_table& table)
{
    validate_mc_options(sg, options);
    require(table.resolution == options.resolution &&
                table.arc_count == sg.arc_count(),
            "monte_carlo_scenarios: table was built for a different "
            "graph/spread/resolution");
    return mc_generate(sg, options,
                       [&](arc_id a, std::int64_t u) -> const rational& {
                           return table.at(a, u);
                       });
}

} // namespace tsg
