#include "core/scenario.h"

#include <algorithm>

#include "core/cycle_time.h"
#include "core/pert.h"
#include "core/slack.h"
#include "util/parallel.h"
#include "util/prng.h"

namespace tsg {

scenario_outcome scenario_engine::evaluate(const std::vector<rational>& delay,
                                           bool with_slack, unsigned analysis_threads) const
{
    const compiled_graph bound = base_->rebind(delay);

    scenario_outcome out;
    if (!bound.has_core()) {
        // Acyclic: the what-if quantity is the PERT makespan.
        const pert_result pert = analyze_pert(bound);
        out.cycle_time = pert.makespan;
        out.fixed_point = bound.fixed_point();
        out.critical_arcs = pert.critical_arcs;
        std::sort(out.critical_arcs.begin(), out.critical_arcs.end());
        return out;
    }

    analysis_options opts;
    opts.max_threads = analysis_threads;
    const cycle_time_result ct = analyze_cycle_time(bound, opts);
    out.cycle_time = ct.cycle_time;
    out.fixed_point = bound.fixed_point_for_periods(ct.periods_used);

    if (with_slack) {
        const slack_result slack = analyze_slack(bound, ct.cycle_time);
        out.criticality_margin = slack.criticality_margin;
        for (arc_id a = 0; a < slack.arc_critical.size(); ++a)
            if (slack.arc_critical[a]) out.critical_arcs.push_back(a);
    } else {
        out.critical_arcs = ct.critical_cycle_arcs;
        std::sort(out.critical_arcs.begin(), out.critical_arcs.end());
    }
    return out;
}

scenario_batch_result scenario_engine::run(const std::vector<scenario>& scenarios,
                                           const scenario_batch_options& options) const
{
    require(!scenarios.empty(), "scenario_engine::run: empty batch");

    scenario_batch_result out;
    out.outcomes.resize(scenarios.size());
    // Scenario-level parallelism owns the thread pool; the border runs
    // inside each scenario stay serial.
    parallel_for_index(scenarios.size(), options.max_threads, [&](std::size_t i) {
        out.outcomes[i] = evaluate(scenarios[i].delay, options.with_slack,
                                   /*analysis_threads=*/1);
    });

    // Serial reduction in scenario order — the batch result is independent
    // of the thread schedule.
    out.criticality_count.assign(base_->delay().size(), 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < out.outcomes.size(); ++i) {
        const scenario_outcome& o = out.outcomes[i];
        sum += o.cycle_time.to_double();
        if (i == 0 || o.cycle_time < out.min_cycle_time) {
            out.min_cycle_time = o.cycle_time;
            out.min_index = i;
        }
        if (i == 0 || o.cycle_time > out.max_cycle_time) {
            out.max_cycle_time = o.cycle_time;
            out.max_index = i;
        }
        for (const arc_id a : o.critical_arcs) ++out.criticality_count[a];
        if (!o.fixed_point) ++out.fallback_count;
    }
    out.mean_cycle_time = sum / static_cast<double>(out.outcomes.size());
    return out;
}

std::vector<scenario> corner_sweep_scenarios(const signal_graph& sg,
                                             const corner_sweep_options& options)
{
    require(sg.finalized(), "corner_sweep_scenarios: graph must be finalized");
    require(!options.factor.is_negative() && options.factor < rational(1),
            "corner_sweep_scenarios: factor must lie in [0, 1)");

    const bool core_only = options.core_only && !sg.repetitive_events().empty();

    std::vector<rational> nominal;
    nominal.reserve(sg.arc_count());
    for (arc_id a = 0; a < sg.arc_count(); ++a) nominal.push_back(sg.arc(a).delay);

    std::vector<scenario> out;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        const arc_info& arc = sg.arc(a);
        if (core_only && !(sg.is_repetitive(arc.from) && sg.is_repetitive(arc.to)))
            continue;
        const std::string name =
            sg.event(arc.from).name + "->" + sg.event(arc.to).name;
        for (const int sign : {-1, +1}) {
            const rational factor =
                rational(1) + (sign < 0 ? -options.factor : options.factor);
            scenario s;
            s.label = "arc " + std::to_string(a) + " (" + name + ") x" + factor.str();
            s.delay = nominal;
            s.delay[a] = nominal[a] * factor;
            out.push_back(std::move(s));
        }
    }
    return out;
}

std::vector<scenario> monte_carlo_scenarios(const signal_graph& sg,
                                            const monte_carlo_options& options)
{
    require(sg.finalized(), "monte_carlo_scenarios: graph must be finalized");
    require(options.samples > 0, "monte_carlo_scenarios: samples must be positive");
    require(options.resolution > 0, "monte_carlo_scenarios: resolution must be positive");

    // Resolve the per-arc ranges once.
    std::vector<delay_range> ranges;
    if (options.ranges.empty()) {
        require(!options.spread.is_negative(),
                "monte_carlo_scenarios: spread must be non-negative");
        ranges.reserve(sg.arc_count());
        for (arc_id a = 0; a < sg.arc_count(); ++a) {
            const rational d = sg.arc(a).delay;
            ranges.push_back({max(rational(0), d * (rational(1) - options.spread)),
                              d * (rational(1) + options.spread)});
        }
    } else {
        require(options.ranges.size() == sg.arc_count(),
                "monte_carlo_scenarios: need one delay range per arc");
        for (const delay_range& r : options.ranges)
            require(!r.lo.is_negative() && r.lo <= r.hi,
                    "monte_carlo_scenarios: ranges must satisfy 0 <= lo <= hi");
        ranges = options.ranges;
    }

    prng rng(options.seed);
    std::vector<scenario> out;
    out.reserve(options.samples);
    for (std::size_t k = 0; k < options.samples; ++k) {
        scenario s;
        s.label = "mc#" + std::to_string(k) + " seed=" + std::to_string(options.seed);
        s.delay.reserve(sg.arc_count());
        for (arc_id a = 0; a < sg.arc_count(); ++a) {
            const delay_range& r = ranges[a];
            const rational step =
                rational(rng.uniform(0, options.resolution), options.resolution);
            s.delay.push_back(r.lo + (r.hi - r.lo) * step);
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace tsg
