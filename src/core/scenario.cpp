#include "core/scenario.h"

#include <algorithm>
#include <map>

#include "core/pert.h"
#include "core/slack.h"
#include "ratio/howard.h"
#include "util/parallel.h"
#include "util/prng.h"

namespace tsg {

namespace {

/// Canonical cycle identity: causal order kept, rotated so the smallest
/// arc id leads.
std::vector<arc_id> canonical_cycle(std::vector<arc_id> arcs)
{
    if (arcs.empty()) return arcs;
    const auto smallest = std::min_element(arcs.begin(), arcs.end());
    std::rotate(arcs.begin(), smallest, arcs.end());
    return arcs;
}

/// Which solver a batch actually runs: resolved once, against the base
/// snapshot's structure.
cycle_time_solver resolve_batch_solver(const compiled_graph& base, cycle_time_solver requested)
{
    if (!base.has_core()) return cycle_time_solver::border_sweep; // PERT path, moot
    return resolve_cycle_time_solver(requested, base.source().border_events().size(),
                                     base.core().graph.arc_count());
}

/// Shared tail of every cyclic-scenario evaluation: critical arcs from the
/// slack layer (every critical cycle + margin), or just the sorted witness
/// when slack is off.  `out.cycle_time` must already hold lambda.
void finish_cyclic_outcome(scenario_outcome& out, const compiled_graph& bound,
                           bool with_slack, const std::vector<arc_id>& witness_arcs)
{
    if (with_slack) {
        const slack_result slack = analyze_slack(bound, out.cycle_time);
        out.criticality_margin = slack.criticality_margin;
        for (arc_id a = 0; a < slack.arc_critical.size(); ++a)
            if (slack.arc_critical[a]) out.critical_arcs.push_back(a);
    } else {
        out.critical_arcs = witness_arcs;
        std::sort(out.critical_arcs.begin(), out.critical_arcs.end());
    }
}

} // namespace

scenario_outcome scenario_engine::evaluate(const std::vector<rational>& delay,
                                           bool with_slack, unsigned analysis_threads,
                                           cycle_time_solver solver) const
{
    const compiled_graph bound = base_->rebind(delay);

    scenario_outcome out;
    if (!bound.has_core()) {
        // Acyclic: the what-if quantity is the PERT makespan.
        const pert_result pert = analyze_pert(bound);
        out.cycle_time = pert.makespan;
        out.fixed_point = bound.fixed_point();
        out.critical_arcs = pert.critical_arcs;
        std::sort(out.critical_arcs.begin(), out.critical_arcs.end());
        return out;
    }

    analysis_options opts;
    opts.max_threads = analysis_threads;
    opts.solver = solver;
    const cycle_time_result ct = analyze_cycle_time(bound, opts);
    out.cycle_time = ct.cycle_time;
    out.fixed_point = ct.periods_used > 0 ? bound.fixed_point_for_periods(ct.periods_used)
                                          : bound.fixed_point();
    out.critical_cycle = canonical_cycle(ct.critical_cycle_arcs);
    finish_cyclic_outcome(out, bound, with_slack, ct.critical_cycle_arcs);
    return out;
}

namespace {

/// One warm-chained Howard evaluation: rebind the snapshot, refresh the
/// worker's ratio problem in place, iterate from the previous scenario's
/// converged policy.
scenario_outcome evaluate_howard_warm(const compiled_graph& base,
                                      const std::vector<rational>& delay,
                                      ratio_problem& p, howard_state& state,
                                      bool with_slack)
{
    const compiled_graph bound = base.rebind(delay);
    rebind_ratio_problem(p, bound);

    const ratio_result r = max_cycle_ratio_howard(p, howard_options{}, &state);
#ifndef NDEBUG
    // Policy iteration is start-independent at the fixed point; a warm
    // start changing lambda would be a library bug.
    ensure(max_cycle_ratio_howard(p).ratio == r.ratio,
           "scenario_engine: warm-started Howard diverged from cold start");
#endif

    scenario_outcome out;
    out.cycle_time = r.ratio;
    out.fixed_point = r.fixed_point;
    std::vector<arc_id> cycle;
    cycle.reserve(r.cycle.size());
    for (const arc_id a : r.cycle) cycle.push_back(p.arc_original[a]);
    out.critical_cycle = canonical_cycle(std::move(cycle));
    finish_cyclic_outcome(out, bound, with_slack, out.critical_cycle);
    return out;
}

} // namespace

scenario_batch_result scenario_engine::run(const std::vector<scenario>& scenarios,
                                           const scenario_batch_options& options) const
{
    require(!scenarios.empty(), "scenario_engine::run: empty batch");

    scenario_batch_result out;
    out.outcomes.resize(scenarios.size());

    const cycle_time_solver solver = resolve_batch_solver(*base_, options.solver);
    if (solver == cycle_time_solver::howard && base_->has_core()) {
        // Static contiguous chunks, one warm chain per worker: scenario i
        // warm-starts from scenario i-1 of the same chunk, so the chain —
        // and every outcome — is deterministic for a given thread budget.
        const std::size_t workers = std::min<std::size_t>(
            resolve_thread_count(options.max_threads), scenarios.size());
        parallel_for_index(workers, static_cast<unsigned>(workers), [&](std::size_t w) {
            const std::size_t begin = w * scenarios.size() / workers;
            const std::size_t end = (w + 1) * scenarios.size() / workers;
            ratio_problem p = make_ratio_problem(*base_);
            howard_state state;
            for (std::size_t i = begin; i < end; ++i)
                out.outcomes[i] = evaluate_howard_warm(*base_, scenarios[i].delay, p,
                                                       state, options.with_slack);
        });
    } else {
        // Scenario-level parallelism owns the thread pool; the border runs
        // inside each scenario stay serial.
        parallel_for_index(scenarios.size(), options.max_threads, [&](std::size_t i) {
            out.outcomes[i] = evaluate(scenarios[i].delay, options.with_slack,
                                       /*analysis_threads=*/1, solver);
        });
    }

    // Serial reduction in scenario order — the batch result is independent
    // of the thread schedule.
    out.criticality_count.assign(base_->delay().size(), 0);
    std::map<std::vector<arc_id>, std::size_t> cycle_stat; // cycle -> stats slot
    double sum = 0.0;
    for (std::size_t i = 0; i < out.outcomes.size(); ++i) {
        const scenario_outcome& o = out.outcomes[i];
        sum += o.cycle_time.to_double();
        if (i == 0 || o.cycle_time < out.min_cycle_time) {
            out.min_cycle_time = o.cycle_time;
            out.min_index = i;
        }
        if (i == 0 || o.cycle_time > out.max_cycle_time) {
            out.max_cycle_time = o.cycle_time;
            out.max_index = i;
        }
        for (const arc_id a : o.critical_arcs) ++out.criticality_count[a];
        if (!o.fixed_point) ++out.fallback_count;
        if (!o.critical_cycle.empty()) {
            const auto [it, inserted] =
                cycle_stat.try_emplace(o.critical_cycle, out.critical_cycles.size());
            if (inserted)
                out.critical_cycles.push_back({o.critical_cycle, 1, i});
            else
                ++out.critical_cycles[it->second].count;
        }
    }
    out.mean_cycle_time = sum / static_cast<double>(out.outcomes.size());
    std::stable_sort(out.critical_cycles.begin(), out.critical_cycles.end(),
                     [](const critical_cycle_stat& a, const critical_cycle_stat& b) {
                         if (a.count != b.count) return a.count > b.count;
                         return a.first_index < b.first_index;
                     });
    return out;
}

std::vector<scenario> corner_sweep_scenarios(const signal_graph& sg,
                                             const corner_sweep_options& options)
{
    require(sg.finalized(), "corner_sweep_scenarios: graph must be finalized");
    require(!options.factor.is_negative() && options.factor < rational(1),
            "corner_sweep_scenarios: factor must lie in [0, 1)");

    const bool core_only = options.core_only && !sg.repetitive_events().empty();

    std::vector<rational> nominal;
    nominal.reserve(sg.arc_count());
    for (arc_id a = 0; a < sg.arc_count(); ++a) nominal.push_back(sg.arc(a).delay);

    std::vector<scenario> out;
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        const arc_info& arc = sg.arc(a);
        if (core_only && !(sg.is_repetitive(arc.from) && sg.is_repetitive(arc.to)))
            continue;
        const std::string name =
            sg.event(arc.from).name + "->" + sg.event(arc.to).name;
        for (const int sign : {-1, +1}) {
            const rational factor =
                rational(1) + (sign < 0 ? -options.factor : options.factor);
            scenario s;
            s.label = "arc " + std::to_string(a) + " (" + name + ") x" + factor.str();
            s.delay = nominal;
            s.delay[a] = nominal[a] * factor;
            out.push_back(std::move(s));
        }
    }
    return out;
}

std::vector<scenario> monte_carlo_scenarios(const signal_graph& sg,
                                            const monte_carlo_options& options)
{
    require(sg.finalized(), "monte_carlo_scenarios: graph must be finalized");
    require(options.samples > 0, "monte_carlo_scenarios: samples must be positive");
    require(options.resolution > 0, "monte_carlo_scenarios: resolution must be positive");

    // Resolve the per-arc ranges once.
    std::vector<delay_range> ranges;
    if (options.ranges.empty()) {
        require(!options.spread.is_negative(),
                "monte_carlo_scenarios: spread must be non-negative");
        ranges.reserve(sg.arc_count());
        for (arc_id a = 0; a < sg.arc_count(); ++a) {
            const rational d = sg.arc(a).delay;
            ranges.push_back({max(rational(0), d * (rational(1) - options.spread)),
                              d * (rational(1) + options.spread)});
        }
    } else {
        require(options.ranges.size() == sg.arc_count(),
                "monte_carlo_scenarios: need one delay range per arc");
        for (const delay_range& r : options.ranges)
            require(!r.lo.is_negative() && r.lo <= r.hi,
                    "monte_carlo_scenarios: ranges must satisfy 0 <= lo <= hi");
        ranges = options.ranges;
    }

    prng rng(options.seed);
    std::vector<scenario> out;
    out.reserve(options.samples);
    for (std::size_t k = 0; k < options.samples; ++k) {
        scenario s;
        s.label = "mc#" + std::to_string(k) + " seed=" + std::to_string(options.seed);
        s.delay.reserve(sg.arc_count());
        for (arc_id a = 0; a < sg.arc_count(); ++a) {
            const delay_range& r = ranges[a];
            const rational step =
                rational(rng.uniform(0, options.resolution), options.resolution);
            s.delay.push_back(r.lo + (r.hi - r.lo) * step);
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace tsg
