// Statistical timing layer: streaming distribution statistics over the
// scenario engine.
//
// The engine (core/scenario.h) turns one compiled structure plus N delay
// assignments into N exact cycle times.  Production questions are about
// the *distribution* of those cycle times — "what is P(cycle time > T)?",
// "which arcs are probabilistically critical?" — the statistical-timing
// direction of the SSTA literature.  This layer answers them without ever
// holding a batch larger than one round in memory:
//
//   * stats_accumulator — streaming accumulators over scenario outcomes:
//     cycle-time mean/variance (Welford), exact-rational min/max with the
//     attaining sample indices, a fixed-bin histogram with quantile
//     estimates (p50/p95/p99), per-arc criticality probability (fraction
//     of samples whose witness critical cycle contains the arc) and
//     per-group (per-gate) criticality, all with normal-approximation
//     confidence intervals.
//   * monte_carlo_statistics — fixed-size runs evaluated in streaming
//     rounds (generate round, evaluate on the engine, fold, discard).
//   * monte_carlo_adaptive — grows the run round by round until the
//     confidence interval of the chosen target statistic (the lambda mean,
//     or a quantile) is narrower than stats_options::epsilon, or a sample
//     cap is hit.
//
// Determinism.  Monte Carlo sample k depends only on (seed, k) — never on
// the round partition, the thread layout or the lane width (see
// monte_carlo_scenarios) — and the accumulator folds samples in index
// order through fixed-size *blocks*: each block of block_size consecutive
// samples is reduced serially (Welford), and completed blocks combine
// left-to-right by Chan's parallel update.  Block boundaries sit at fixed
// absolute sample indices, so any partition of the sample stream — one
// big batch, adaptive rounds, per-worker slices merged in order — runs
// the identical sequence of floating-point operations and produces
// bit-identical statistics.  In particular an adaptive run is a bit-exact
// prefix replay of the fixed run with the same seed (asserted by
// tests/test_stats.cpp and bench/bench_stats.cpp).
//
// Everything except the moments stays exact or integral: min/max are
// rationals, histogram/criticality tallies are integers binned by exact
// comparisons against precomputed edges, so those merge deterministically
// by construction; only mean/variance need the block discipline.
#ifndef TSG_CORE_STATS_H
#define TSG_CORE_STATS_H

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct stats_options {
    /// Fixed-bin histogram resolution for quantile estimation.
    std::size_t histogram_bins = 64;

    /// Histogram support [lo, hi].  hi <= lo derives the default
    /// [0, 2 * nominal cycle time] (or [0, 1] on zero-delay models).
    /// Samples outside the support land in underflow/overflow tallies and
    /// quantile estimates clamp to the observed exact min/max.
    rational histogram_lo = rational(0);
    rational histogram_hi = rational(0);

    /// Two-sided normal quantile for every confidence interval this layer
    /// reports (default: 95%).
    double confidence_z = 1.959963984540054;

    /// Adaptive target: stop when the CI half-width of the target
    /// statistic drops to epsilon or below.  Must be > 0 for
    /// monte_carlo_adaptive; ignored by fixed-size runs.
    double epsilon = 0.0;

    /// Negative: the adaptive target is the lambda mean.  In [0, 1]: the
    /// target is this quantile's CI (rank-based, histogram-resolved).
    double quantile = -1.0;

    /// Adaptive sample bounds: at least min_samples are evaluated before
    /// convergence may stop the run; max_samples caps it (converged stays
    /// false when the cap hits first).
    std::size_t min_samples = 32;
    std::size_t max_samples = std::size_t{1} << 16;

    /// Samples added per streaming round; 0 picks the default (256, a
    /// multiple of every lane width, so rounds chunk into whole lane
    /// groups).  Results are bit-identical for every round size.
    std::size_t round_samples = 0;

    /// Track per-arc (and per-group) criticality probabilities.  Requires
    /// witness extraction per sample, so Monte-Carlo-scale mean/quantile
    /// runs are faster with it off (the engine's statistics mode).
    bool criticality = false;

    /// Exact timing-yield threshold: a positive value tallies
    /// P(cycle_time <= yield_target) per sample (exact rational compare,
    /// so the tally is bit-deterministic for every round partition) with a
    /// binomial normal-approximation CI.  Non-positive disables the tally.
    rational yield_target = rational(0);

    /// Adaptive target override: converge on the *yield* CI half-width
    /// instead of the mean/quantile CI.  Requires a positive yield_target.
    /// The optimizer (core/optimize.h) drives its accept/reject decisions
    /// off this objective.
    bool yield_objective = false;

    /// Additionally fold arc criticality into per-signal (per-gate) groups
    /// via signal_arc_groups().  Implies criticality.
    bool group_by_signal = false;

    /// Engine knobs forwarded to scenario_batch_options.
    unsigned max_threads = 0;
    unsigned lane_width = 0;
    cycle_time_solver solver = cycle_time_solver::auto_select;

    /// Optional wall-clock deadline for streaming runs.  The epoch default
    /// means "none".  Checked between rounds (never inside one, so results
    /// that complete stay bit-identical); a run that passes it throws a
    /// deadline_exceeded tsg::error instead of burning further rounds.
    std::chrono::steady_clock::time_point deadline{};
};

/// Maps arcs to named groups for group-level criticality (an arc belongs
/// to the gate/signal owning its target event).  group_of_arc entries of
/// no_group mean "not attributed".
struct arc_group_map {
    static constexpr std::uint32_t no_group = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> group_of_arc; ///< one per original arc
    std::vector<std::string> names;          ///< one per group
};

/// Groups arcs by the signal owning their target event (arcs into events
/// without a signal stay unattributed) — the per-gate criticality grouping
/// of circuit-extracted models.
[[nodiscard]] arc_group_map signal_arc_groups(const signal_graph& sg);

/// Streaming statistics over scenario outcomes, folded in sample-index
/// order.  See the header comment for the block discipline that makes
/// accumulation bit-deterministic across workers, lanes and rounds.
class stats_accumulator {
public:
    /// Samples per moments block.  Fixed so block boundaries (absolute
    /// sample indices) never depend on the execution layout.
    static constexpr std::size_t block_size = 64;

    stats_accumulator() = default;

    /// `arc_count` sizes the criticality tallies; the histogram covers
    /// [lo, hi] with `bins` equal-width bins (requires lo < hi, bins > 0).
    stats_accumulator(std::size_t arc_count, std::size_t bins, const rational& lo,
                      const rational& hi);

    /// Enables group-level criticality (call before the first add()).
    void set_groups(const arc_group_map& groups);

    /// Folds the next sample (absolute index == count()).  Criticality
    /// tallies read outcome.critical_arcs — run the engine with witnesses
    /// (or slack) on when criticality matters.
    void add(const scenario_outcome& outcome);

    /// Folds a whole batch, outcomes in order.  `max_threads` fans the
    /// per-block moment reduction out (blocks are independent); the fold
    /// of block results is serial and in index order, so the result is
    /// bit-identical to a serial add() loop for every thread count.
    void accumulate(const scenario_batch_result& batch, unsigned max_threads = 1);

    /// Appends `tail`, which must have been accumulated from the samples
    /// directly following this accumulator's (tail's sample 0 == this
    /// count()).  Requires count() to be block-aligned and the two
    /// configurations to match.  Bit-identical to having add()ed tail's
    /// samples here directly.
    void merge(const stats_accumulator& tail);

    // --- moments -----------------------------------------------------------

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const; ///< unbiased sample variance
    [[nodiscard]] double stddev() const;

    /// z * stddev / sqrt(n); infinity below 2 samples.
    [[nodiscard]] double mean_ci_half_width(double z) const;

    // --- exact extremes (require count() > 0) ------------------------------

    [[nodiscard]] const rational& min_cycle_time() const { return min_; }
    [[nodiscard]] const rational& max_cycle_time() const { return max_; }
    [[nodiscard]] std::size_t min_index() const noexcept { return min_index_; }
    [[nodiscard]] std::size_t max_index() const noexcept { return max_index_; }

    // --- histogram and quantiles -------------------------------------------

    [[nodiscard]] const std::vector<std::uint64_t>& histogram() const noexcept
    {
        return hist_;
    }
    [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
    [[nodiscard]] const rational& histogram_lo() const noexcept { return lo_; }
    [[nodiscard]] const rational& histogram_hi() const noexcept { return hi_; }

    /// Histogram-interpolated quantile estimate (q in [0, 1]), clamped to
    /// the observed exact [min, max].
    [[nodiscard]] double quantile(double q) const;

    /// Rank-based CI half-width of the q-quantile estimate: the rank
    /// interval q*n -/+ z*sqrt(n*q*(1-q)) mapped through the histogram's
    /// inverse CDF.  Resolution-limited by the bin width.
    [[nodiscard]] double quantile_ci_half_width(double q, double z) const;

    // --- criticality -------------------------------------------------------

    /// Per original arc: samples whose critical set contained the arc.
    [[nodiscard]] const std::vector<std::uint64_t>& criticality_count() const noexcept
    {
        return crit_;
    }
    [[nodiscard]] double criticality_probability(arc_id a) const;
    /// Normal-approximation CI half-width: z * sqrt(p * (1 - p) / n).
    [[nodiscard]] double criticality_ci_half_width(arc_id a, double z) const;

    /// Per group (set_groups order): samples in which *any* of the group's
    /// arcs was critical — each sample counts a group at most once.
    [[nodiscard]] const std::vector<std::uint64_t>& group_criticality_count() const noexcept
    {
        return group_crit_;
    }
    [[nodiscard]] const std::vector<std::string>& group_names() const noexcept
    {
        return group_names_;
    }
    [[nodiscard]] double group_criticality_probability(std::size_t group) const;
    [[nodiscard]] double group_criticality_ci_half_width(std::size_t group, double z) const;

    // --- timing yield ------------------------------------------------------

    /// Enables the exact yield tally P(cycle_time <= target) (call before
    /// the first add(); requires target > 0).
    void set_yield_target(const rational& target);

    [[nodiscard]] bool tracks_yield() const noexcept { return track_yield_; }
    [[nodiscard]] const rational& yield_target() const noexcept { return yield_target_; }
    /// Samples with cycle_time <= yield_target (exact rational compare).
    [[nodiscard]] std::uint64_t yield_count() const noexcept { return yield_count_; }
    [[nodiscard]] double yield_probability() const;
    /// Binomial normal-approximation CI: z * sqrt(p * (1 - p) / n).
    [[nodiscard]] double yield_ci_half_width(double z) const;

    /// Samples whose rebind fell back to exact rational arithmetic.
    [[nodiscard]] std::size_t fallback_count() const noexcept { return fallback_; }

private:
    /// One Welford partial: n samples with running mean and M2.
    struct moment_block {
        std::uint64_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;
    };

    [[nodiscard]] static moment_block merge_moments(const moment_block& a,
                                                    const moment_block& b);
    [[nodiscard]] static moment_block block_of(const scenario_batch_result& batch,
                                               std::size_t first, std::size_t n);
    [[nodiscard]] moment_block folded() const;
    void fold_value(double x);
    void add_tallies(const scenario_outcome& outcome);
    [[nodiscard]] double value_at_rank(double rank) const;

    std::size_t count_ = 0;

    std::vector<moment_block> blocks_; ///< completed blocks, index order
    moment_block tail_;                ///< open block (< block_size samples)

    rational min_;
    rational max_;
    std::size_t min_index_ = 0;
    std::size_t max_index_ = 0;

    rational lo_ = rational(0);
    rational hi_ = rational(1);
    double lo_d_ = 0.0;
    double bin_width_d_ = 0.0;
    std::vector<rational> edges_; ///< exact bin edges, bins + 1 entries
    std::vector<std::uint64_t> hist_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;

    bool track_yield_ = false;
    rational yield_target_ = rational(0);
    std::uint64_t yield_count_ = 0;

    std::vector<std::uint64_t> crit_;
    std::vector<std::uint32_t> group_of_arc_;
    std::vector<std::string> group_names_;
    std::vector<std::uint64_t> group_crit_;
    std::vector<std::uint32_t> group_mark_; ///< per-sample dedup, epoch-stamped
    std::uint32_t group_epoch_ = 0;

    std::size_t fallback_ = 0;
};

/// One completed statistics run (fixed-size or adaptive).
struct stats_run_result {
    stats_accumulator stats;

    /// Cycle time at the engine's nominal delays (also the anchor of the
    /// default histogram support).
    rational nominal_cycle_time;

    std::size_t rounds = 0; ///< streaming rounds evaluated
    bool adaptive = false;
    bool converged = true;  ///< adaptive: CI target reached before the cap

    /// The adaptive target's half-widths: requested (epsilon) and achieved
    /// at the final sample count.  Fixed runs report the achieved width of
    /// the same target with target_half_width = 0.
    double target_half_width = 0.0;
    double achieved_half_width = 0.0;

    // Engine accounting summed across rounds (scenario_batch_result).
    std::size_t lane_groups = 0;
    std::size_t lane_scenarios = 0;
    std::size_t lane_evictions = 0;
    std::size_t scalar_scenarios = 0;
};

/// Evaluates `mc.samples` Monte Carlo scenarios in streaming rounds and
/// returns the accumulated statistics.  Memory stays bounded by one round
/// regardless of the sample count; the result is bit-identical to any
/// other round partition (and to monte_carlo_adaptive stopping at the
/// same count).
[[nodiscard]] stats_run_result monte_carlo_statistics(const scenario_engine& engine,
                                                      const signal_graph& sg,
                                                      const monte_carlo_options& mc,
                                                      const stats_options& options = {});

/// Grows the run in rounds until the CI half-width of the target statistic
/// (options.quantile < 0: the lambda mean; else that quantile) drops to
/// options.epsilon, or options.max_samples is hit.  mc.samples is ignored;
/// the (seed, index) streams make any prefix replay the fixed run exactly.
[[nodiscard]] stats_run_result monte_carlo_adaptive(const scenario_engine& engine,
                                                    const signal_graph& sg,
                                                    const monte_carlo_options& mc,
                                                    const stats_options& options);

} // namespace tsg

#endif // TSG_CORE_STATS_H
