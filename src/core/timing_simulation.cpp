#include "core/timing_simulation.h"

#include <algorithm>

#include "core/compiled_graph.h"
#include "graph/longest_path.h"

namespace tsg {

timing_simulation_result simulate_timing(const unfolding& unf)
{
    const longest_path_result lp =
        dag_longest_paths(unf.dag(), unf.arc_delays(), unf.initial_instances());

    timing_simulation_result r;
    r.time = lp.distance;
    r.occurs = lp.reached;
    r.cause = lp.pred;
    return r;
}

timing_simulation_result simulate_timing(const unfolding& unf, const compiled_graph& cg)
{
    require(&cg.source() == &unf.graph(),
            "simulate_timing: compiled snapshot does not match the unfolding's graph");
    if (!cg.fixed_point_for_periods(unf.periods())) return simulate_timing(unf);

    // Unfolding arcs carry the delays of their originals — look the scaled
    // values up once and sweep in int64.
    std::vector<std::int64_t> weight;
    weight.reserve(unf.dag().arc_count());
    for (arc_id a = 0; a < unf.dag().arc_count(); ++a)
        weight.push_back(cg.scaled_delay()[unf.original_arc(a)]);

    const auto lp = dag_longest_paths_fixed(unf.dag(), weight, unf.initial_instances());

    timing_simulation_result r;
    r.time.reserve(lp.distance.size());
    for (const std::int64_t t : lp.distance) r.time.push_back(cg.unscale(t));
    r.occurs = lp.reached;
    r.cause = lp.pred;
    return r;
}

std::optional<rational> timing_simulation_result::at(const unfolding& unf, event_id e,
                                                     std::uint32_t period) const
{
    const node_id inst = unf.instance(e, period);
    if (inst == invalid_node || !occurs.at(inst)) return std::nullopt;
    return time[inst];
}

std::optional<rational> timing_simulation_result::average_distance(const unfolding& unf,
                                                                   event_id e,
                                                                   std::uint32_t period) const
{
    const std::optional<rational> t = at(unf, e, period);
    if (!t) return std::nullopt;
    return *t / rational(static_cast<std::int64_t>(period) + 1);
}

std::vector<node_id> critical_chain(const unfolding& unf, const timing_simulation_result& sim,
                                    node_id target)
{
    require(target < unf.dag().node_count(), "critical_chain: bad target");
    require(sim.occurs.at(target), "critical_chain: target never occurs");

    std::vector<node_id> chain{target};
    node_id cur = target;
    while (sim.cause.at(cur) != invalid_arc) {
        cur = unf.dag().from(sim.cause[cur]);
        chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

} // namespace tsg
