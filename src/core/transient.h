// Start-up transient analysis (the quasi-periodicity of Section III.B).
//
// Every timing simulation of a live Timed Signal Graph eventually locks
// into a repeating pattern: there exist a pattern period epsilon (in
// unfolding periods) and a settle index K such that
//
//     t(e_{i + epsilon}) = t(e_i) + lambda * epsilon     for all i >= K
//
// for every repetitive event e.  This module measures both: how long the
// initial history (the disengageable arcs, the marking) perturbs the
// schedule, and how many unfolding periods one timing pattern spans (the
// occurrence period of the critical structure; compare the Muller ring's
// 6,7,7 step pattern with epsilon = 3).
#ifndef TSG_CORE_TRANSIENT_H
#define TSG_CORE_TRANSIENT_H

#include <cstdint>

#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

struct transient_result {
    rational cycle_time;

    /// Smallest pattern period epsilon >= 1 for which the relation above
    /// holds from some index on.
    std::uint32_t pattern_period = 0;

    /// Smallest K such that every repetitive event is exactly periodic from
    /// its K-th instantiation on (verified over the simulated horizon).
    std::uint32_t settle_period = 0;

    /// Horizon that was simulated to establish the result.
    std::uint32_t horizon = 0;
};

class compiled_graph;

/// Runs the full timing simulation over up to `max_periods` periods and
/// extracts the pattern period and settling point.  Throws tsg::error when
/// no periodic pattern is confirmed within the horizon (raise it for
/// graphs with extreme transients).
[[nodiscard]] transient_result analyze_transient(const signal_graph& sg,
                                                 std::uint32_t max_periods = 128);

/// Same analysis on a pre-compiled snapshot (shares the cycle-time kernel
/// and the fixed-point unfolding sweep).
[[nodiscard]] transient_result analyze_transient(const compiled_graph& cg,
                                                 std::uint32_t max_periods = 128);

} // namespace tsg

#endif // TSG_CORE_TRANSIENT_H
