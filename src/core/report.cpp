#include "core/report.h"

#include <sstream>

#include "core/compiled_graph.h"
#include "core/cycle_time.h"
#include "core/pert.h"
#include "core/slack.h"
#include "core/transient.h"
#include "sg/cut_set.h"
#include "util/strings.h"

namespace tsg {

namespace {

std::string event_list(const signal_graph& sg, const std::vector<event_id>& events)
{
    std::string out;
    for (const event_id e : events) {
        if (!out.empty()) out += ", ";
        out += sg.event(e).name;
    }
    return out.empty() ? "(none)" : out;
}

void report_acyclic(std::ostringstream& os, const compiled_graph& cg)
{
    const signal_graph& sg = cg.source();
    const pert_result pert = analyze_pert(cg);
    os << "## PERT analysis (acyclic graph)\n\n";
    os << "* makespan: **" << pert.makespan.str() << "**\n";
    os << "* critical path: ";
    for (std::size_t i = 0; i < pert.critical_path.size(); ++i)
        os << (i ? " -> " : "") << sg.event(pert.critical_path[i]).name;
    os << "\n";
}

} // namespace

std::string performance_report_markdown(const signal_graph& sg, const report_options& options)
{
    require(sg.finalized(), "performance_report_markdown: graph must be finalized");

    std::ostringstream os;
    os << "# " << options.title << "\n\n";

    os << "## Model\n\n";
    os << "* events: " << sg.event_count() << " (" << sg.repetitive_events().size()
       << " repetitive, " << sg.initial_events().size() << " initial, "
       << sg.transient_events().size() << " transient)\n";
    os << "* arcs: " << sg.arc_count() << ", initial tokens: " << sg.token_count() << "\n";

    // One compiled snapshot feeds every analysis below (compile once,
    // analyze many — the whole point of the kernel).
    const compiled_graph cg(sg);

    if (sg.repetitive_events().empty()) {
        os << "\n";
        report_acyclic(os, cg);
        return os.str();
    }

    os << "* border set (" << sg.border_events().size()
       << "): " << event_list(sg, sg.border_events()) << "\n";
    const std::vector<event_id> greedy = greedy_cut_set(sg);
    os << "* greedy cut set (" << greedy.size() << "): " << event_list(sg, greedy) << "\n";
    if (options.min_cut_budget > 0) {
        if (const auto minimum = minimum_cut_set(sg, options.min_cut_budget))
            os << "* minimum cut set (" << minimum->size()
               << "): " << event_list(sg, *minimum) << "\n";
        else
            os << "* minimum cut set: search budget exceeded\n";
    }

    // The report tabulates per-run deltas, so it pins the border sweep —
    // the only solver that produces simulation data.
    analysis_options report_opts;
    report_opts.solver = cycle_time_solver::border_sweep;
    const cycle_time_result analysis = analyze_cycle_time(cg, report_opts);
    os << "\n## Cycle time\n\n";
    os << "* lambda = **" << analysis.cycle_time.str() << "**";
    if (!analysis.cycle_time.is_integer())
        os << " (~" << format_double(analysis.cycle_time.to_double(), 4) << ")";
    os << "\n* critical cycle (occurrence period " << analysis.critical_occurrence_period
       << "): ";
    for (std::size_t i = 0; i < analysis.critical_cycle_events.size(); ++i)
        os << (i ? " -> " : "") << sg.event(analysis.critical_cycle_events[i]).name;
    os << "\n* critical border events: "
       << event_list(sg, analysis.critical_border_events()) << "\n";

    os << "\n| origin | collected average occurrence distances | on critical cycle |\n";
    os << "|---|---|---|\n";
    for (const border_run& run : analysis.runs) {
        os << "| " << sg.event(run.origin).name << " | ";
        for (const auto& d : run.deltas) os << (d ? d->str() : "-") << " ";
        os << "| " << (run.critical ? "yes" : "no") << " |\n";
    }

    if (options.include_slack) {
        const slack_result slack = analyze_slack(cg);
        os << "\n## Arc slack (steady state)\n\n";
        os << "| arc | delay | slack | critical |\n|---|---|---|---|\n";
        for (arc_id a = 0; a < sg.arc_count(); ++a) {
            if (!slack.in_core[a]) continue;
            const arc_info& arc = sg.arc(a);
            os << "| " << sg.event(arc.from).name << " -> " << sg.event(arc.to).name
               << " | " << arc.delay.str() << " | " << slack.slack[a].str() << " | "
               << (slack.arc_critical[a] ? "yes" : "") << " |\n";
        }
        os << "\ncriticality margin: " << slack.criticality_margin.str() << "\n";

        if (options.include_schedule) {
            os << "\n## Steady periodic schedule\n\n";
            os << "occurrence k of each event may start at offset + k * lambda:\n\n";
            os << "| event | offset |\n|---|---|\n";
            for (const event_id e : sg.repetitive_events())
                os << "| " << sg.event(e).name << " | " << slack.potential[e].str()
                   << " |\n";
        }
    }

    if (options.include_transient) {
        os << "\n## Start-up transient\n\n";
        try {
            const transient_result transient = analyze_transient(cg);
            os << "* timing pattern period: " << transient.pattern_period
               << " unfolding period(s)\n";
            os << "* settled from instantiation " << transient.settle_period
               << " on (horizon " << transient.horizon << ")\n";
        } catch (const error& e) {
            os << "* not settled within the default horizon: " << e.what() << "\n";
        }
    }
    return os.str();
}

} // namespace tsg
