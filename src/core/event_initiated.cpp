#include "core/event_initiated.h"

#include "graph/longest_path.h"

namespace tsg {

initiated_simulation_result simulate_from(const unfolding& unf, node_id origin)
{
    require(origin < unf.dag().node_count(), "simulate_from: bad origin instance");

    const longest_path_result lp =
        dag_longest_paths(unf.dag(), unf.arc_delays(), {origin});

    initiated_simulation_result r;
    r.origin = origin;
    r.time = lp.distance;
    r.reached = lp.reached;
    r.cause = lp.pred;
    // Events not preceded by the origin have occurrence time 0 by definition.
    for (node_id v = 0; v < unf.dag().node_count(); ++v)
        if (!r.reached[v]) r.time[v] = rational(0);
    return r;
}

initiated_simulation_result simulate_from_event(const unfolding& unf, event_id e,
                                                std::uint32_t period)
{
    const node_id inst = unf.instance(e, period);
    require(inst != invalid_node, "simulate_from_event: instantiation does not exist");
    return simulate_from(unf, inst);
}

std::optional<rational> initiated_simulation_result::at(const unfolding& unf, event_id e,
                                                        std::uint32_t period) const
{
    const node_id inst = unf.instance(e, period);
    if (inst == invalid_node || !reached.at(inst)) return std::nullopt;
    return time[inst];
}

std::optional<rational> initiated_simulation_result::delta(const unfolding& unf,
                                                           std::uint32_t period) const
{
    const event_id e = unf.event_of(origin);
    const std::uint32_t i = unf.period_of(origin);
    if (period <= i) return std::nullopt;
    const std::optional<rational> t = at(unf, e, period);
    if (!t) return std::nullopt;
    return *t / rational(static_cast<std::int64_t>(period) - i);
}

} // namespace tsg
