// Structural edit descriptions for the incremental timing kernel.
//
// A graph_edit names one primitive mutation of a finalized Timed Signal
// Graph; an edit_batch is the unit of application (and of undo) for
// core/incremental.h.  The type lives in its own header so batch layers
// (core/scenario.h) can talk about edits without pulling in the engine.
#ifndef TSG_CORE_GRAPH_EDIT_H
#define TSG_CORE_GRAPH_EDIT_H

#include <cstdint>
#include <vector>

#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

/// One primitive structural or delay edit.  Construct through the named
/// factories; unused fields are ignored by the engine.
struct graph_edit {
    enum class op : std::uint8_t {
        add_arc,    ///< append a new arc (id = current arc_count())
        remove_arc, ///< tombstone an arc; its id is never reused
        set_delay,  ///< replace an arc's delay
        retarget,   ///< move an arc to new endpoints, keeping its id
        set_marking,///< add or remove the arc's initial token
    };

    op kind = op::set_delay;
    arc_id arc = invalid_arc;       ///< target arc (all ops except add_arc)
    event_id from = invalid_node;   ///< add_arc / retarget
    event_id to = invalid_node;     ///< add_arc / retarget
    rational delay;                 ///< add_arc / set_delay
    bool marked = false;            ///< add_arc / set_marking
    bool disengageable = false;     ///< add_arc (the *user's* flag; the
                                    ///< engine re-normalizes one-shot sources)

    [[nodiscard]] static graph_edit add(event_id from, event_id to, rational delay,
                                        bool marked = false, bool disengageable = false)
    {
        graph_edit e;
        e.kind = op::add_arc;
        e.from = from;
        e.to = to;
        e.delay = std::move(delay);
        e.marked = marked;
        e.disengageable = disengageable;
        return e;
    }

    [[nodiscard]] static graph_edit remove(arc_id arc)
    {
        graph_edit e;
        e.kind = op::remove_arc;
        e.arc = arc;
        return e;
    }

    [[nodiscard]] static graph_edit set_delay_of(arc_id arc, rational delay)
    {
        graph_edit e;
        e.kind = op::set_delay;
        e.arc = arc;
        e.delay = std::move(delay);
        return e;
    }

    [[nodiscard]] static graph_edit retarget_to(arc_id arc, event_id from, event_id to)
    {
        graph_edit e;
        e.kind = op::retarget;
        e.arc = arc;
        e.from = from;
        e.to = to;
        return e;
    }

    [[nodiscard]] static graph_edit set_marking_of(arc_id arc, bool marked)
    {
        graph_edit e;
        e.kind = op::set_marking;
        e.arc = arc;
        e.marked = marked;
        return e;
    }
};

/// The atomic unit of application: either every edit lands (and the graph
/// revalidates) or none does.
using edit_batch = std::vector<graph_edit>;

} // namespace tsg

#endif // TSG_CORE_GRAPH_EDIT_H
