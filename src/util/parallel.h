// Minimal index-space thread pool for embarrassingly parallel analyses.
//
// Two layers:
//
//   * thread_pool — a reusable, long-lived worker pool.  Workers are spawned
//     once and parked on a condition variable between jobs, so a caller that
//     dispatches thousands of small index ranges (the scenario engine's lane
//     groups) pays the thread-spawn cost once per pool, not once per run.
//     One job at a time: for_index() publishes a job, wakes the workers,
//     participates itself, and returns when every index is done.
//   * parallel_for_index — the original fire-and-forget free function, now a
//     thin wrapper that builds a transient pool (or runs inline when the
//     range or budget is too small for threads to pay off).
//
// In both forms workers pull indices from an atomic counter and only write
// to disjoint slots of caller-owned result vectors; every reduction happens
// serially after the join — so results are bit-identical to a serial run
// regardless of the thread count.  The first exception thrown by any worker
// is rethrown on the calling thread.
#ifndef TSG_UTIL_PARALLEL_H
#define TSG_UTIL_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsg {

/// Resolves a caller-facing thread-count knob: 0 means "one per hardware
/// thread", anything else is taken literally (1 forces a serial run).
[[nodiscard]] inline unsigned resolve_thread_count(unsigned requested) noexcept
{
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/// A reusable pool of `threads - 1` parked workers (the dispatching thread
/// is the remaining worker).  Construction is cheap for threads <= 1: no
/// threads are spawned and every job runs inline.
///
/// Not a task queue: one for_index() job runs at a time, and dispatching is
/// not thread-safe — callers that share a pool serialize their dispatches
/// (the scenario engine holds a mutex around its batch runs).
class thread_pool {
public:
    explicit thread_pool(unsigned threads) : threads_(threads == 0 ? 1 : threads)
    {
        workers_.reserve(threads_ - 1);
        for (unsigned t = 0; t + 1 < threads_; ++t)
            workers_.emplace_back([this, t] { worker_loop(t + 1); });
    }

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool()
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread& w : workers_) w.join();
    }

    /// Total workers, including the dispatching thread.
    [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }

    /// Runs body(index, worker) for every index in [0, count); `worker` is a
    /// stable id in [0, thread_count()) usable for per-worker scratch state.
    /// Returns after all indices complete; rethrows the first worker error.
    void for_index(std::size_t count, const std::function<void(std::size_t, unsigned)>& body)
    {
        if (count == 0) return;
        if (threads_ <= 1 || count == 1) {
            for (std::size_t i = 0; i < count; ++i) body(i, 0);
            return;
        }

        {
            const std::lock_guard<std::mutex> lock(mutex_);
            body_ = &body;
            count_ = count;
            next_.store(0, std::memory_order_relaxed);
            failed_.store(false, std::memory_order_relaxed);
            failure_ = nullptr;
            active_ = static_cast<unsigned>(workers_.size());
            ++generation_;
        }
        wake_.notify_all();

        run_indices(body, count, 0); // the dispatching thread participates

        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return active_ == 0; });
        body_ = nullptr;
        if (failure_) std::rethrow_exception(failure_);
    }

private:
    void run_indices(const std::function<void(std::size_t, unsigned)>& body, std::size_t count,
                     unsigned worker)
    {
        while (!failed_.load(std::memory_order_relaxed)) {
            const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            try {
                body(i, worker);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mutex_);
                if (!failure_) failure_ = std::current_exception();
                failed_.store(true, std::memory_order_relaxed);
                return;
            }
        }
    }

    void worker_loop(unsigned worker)
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t, unsigned)>* body = nullptr;
            std::size_t count = 0;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
                if (stop_) return;
                seen = generation_;
                body = body_;
                count = count_;
            }
            run_indices(*body, count, worker);
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                if (--active_ == 0) done_.notify_all();
            }
        }
    }

    unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t, unsigned)>* body_ = nullptr;
    std::size_t count_ = 0;
    std::uint64_t generation_ = 0;
    unsigned active_ = 0;
    bool stop_ = false;
    std::atomic<std::size_t> next_{0};
    std::atomic<bool> failed_{false};
    std::exception_ptr failure_;
};

/// Runs body(i) for every i in [0, count), on up to `threads` threads.
/// Falls back to a plain loop when count or threads is small enough that
/// spawning would only add overhead.  Wrapper over thread_pool for callers
/// without a long-lived pool (the cycle-time border runs, condensation).
template <typename Body>
void parallel_for_index(std::size_t count, unsigned threads, Body&& body)
{
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(resolve_thread_count(threads), count));
    if (workers <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }
    thread_pool pool(workers);
    const std::function<void(std::size_t, unsigned)> job = [&body](std::size_t i, unsigned) {
        body(i);
    };
    pool.for_index(count, job);
}

} // namespace tsg

#endif // TSG_UTIL_PARALLEL_H
