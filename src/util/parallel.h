// Minimal index-space thread pool for embarrassingly parallel analyses.
//
// The cycle-time border runs are independent event-initiated simulations;
// parallel_for_index fans them out over std::thread workers pulling indices
// from an atomic counter.  Workers only write to disjoint slots of
// caller-owned result vectors, and every reduction happens serially after
// the join — so results are bit-identical to a serial run regardless of the
// thread count.  The first exception thrown by any worker is rethrown on
// the calling thread.
#ifndef TSG_UTIL_PARALLEL_H
#define TSG_UTIL_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace tsg {

/// Resolves a caller-facing thread-count knob: 0 means "one per hardware
/// thread", anything else is taken literally (1 forces a serial run).
[[nodiscard]] inline unsigned resolve_thread_count(unsigned requested) noexcept
{
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/// Runs body(i) for every i in [0, count), on up to `threads` threads.
/// Falls back to a plain loop when count or threads is small enough that
/// spawning would only add overhead.
template <typename Body>
void parallel_for_index(std::size_t count, unsigned threads, Body&& body)
{
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(resolve_thread_count(threads), count));
    if (workers <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr failure;
    std::mutex failure_mutex;

    const auto work = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            try {
                body(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(failure_mutex);
                if (!failure) failure = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t) pool.emplace_back(work);
    work(); // the calling thread participates
    for (std::thread& t : pool) t.join();
    if (failure) std::rethrow_exception(failure);
}

} // namespace tsg

#endif // TSG_UTIL_PARALLEL_H
