// Minimal JSON document model shared by every machine-readable surface.
//
// One recursive value type (json_value), one recursive-descent parser and
// one writer serve the unified request/response codec (core/api.h), the
// edit-script parser and the service's NDJSON framing.  Scope is exactly
// what those surfaces need — in-memory strings, exact number spellings,
// insertion-ordered objects — not a general-purpose JSON library:
//
//   * numbers keep their raw spelling (text), so integer arc ids and exact
//     "num/den"-adjacent values never round-trip through double;
//   * object members preserve insertion order (find() is linear — the
//     documents here have a handful of keys);
//   * write() emits a compact single-line rendering whose re-parse
//     reproduces the value exactly (the NDJSON framing guarantee);
//   * parse errors throw tsg::error with a caller-supplied context prefix,
//     so "edit script: unexpected end of JSON" keeps naming the surface
//     the malformed text came from.
#ifndef TSG_UTIL_JSON_H
#define TSG_UTIL_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tsg {

struct json_value {
    enum class kind : std::uint8_t { null_v, bool_v, number_v, string_v, array_v, object_v };

    kind k = kind::null_v;
    bool boolean = false;
    std::string text; ///< raw number spelling, or decoded string content
    std::vector<json_value> items;                          ///< array elements
    std::vector<std::pair<std::string, json_value>> members; ///< object, insertion order

    /// First member with this key, or nullptr.
    [[nodiscard]] const json_value* find(const std::string& key) const;

    // --- builders ----------------------------------------------------------

    [[nodiscard]] static json_value null();
    [[nodiscard]] static json_value boolean_value(bool b);
    [[nodiscard]] static json_value number(std::int64_t v);
    [[nodiscard]] static json_value number(std::uint64_t v);
    [[nodiscard]] static json_value number(double v, int decimals = 6); ///< non-finite -> null
    /// A number from its exact raw spelling (caller guarantees validity).
    [[nodiscard]] static json_value raw_number(std::string spelling);
    [[nodiscard]] static json_value string(std::string s);
    [[nodiscard]] static json_value array();
    [[nodiscard]] static json_value object();

    /// Appends an object member (no duplicate-key check) and returns it.
    json_value& set(std::string key, json_value v);

    /// Appends an array element and returns it.
    json_value& push(json_value v);

    /// Structural equality: same kind, same decoded strings, numbers by raw
    /// spelling, objects by ordered member list.  The identity relation of
    /// the codec round-trip tests.
    [[nodiscard]] bool operator==(const json_value& other) const;

    /// Compact single-line rendering; parse(write()) == *this.
    [[nodiscard]] std::string write() const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// `context` prefixes every diagnostic ("json", "edit script", "request").
[[nodiscard]] json_value json_parse(const std::string& text,
                                    const std::string& context = "json");

/// Quotes and escapes a string for embedding in a JSON document.
[[nodiscard]] std::string json_quote(const std::string& s);

} // namespace tsg

#endif // TSG_UTIL_JSON_H
