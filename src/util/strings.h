// Minimal string helpers used by the parsers and report writers.
#ifndef TSG_UTIL_STRINGS_H
#define TSG_UTIL_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace tsg {

/// Strips leading and trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view text);

/// Splits on any of the characters in `separators`, dropping empty pieces.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             std::string_view separators = " \t");

/// Joins pieces with the given separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view separator);

/// True when `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Formats a double with the given number of significant decimals, trimming
/// trailing zeros ("6.67", "10", "9.5").
[[nodiscard]] std::string format_double(double value, int decimals = 4);

} // namespace tsg

#endif // TSG_UTIL_STRINGS_H
