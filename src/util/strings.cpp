#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace tsg {

std::string trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return std::string(text.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view text, std::string_view separators)
{
    std::vector<std::string> pieces;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        const bool at_sep = i == text.size() || separators.find(text[i]) != std::string_view::npos;
        if (at_sep) {
            if (i > start) pieces.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return pieces;
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0) out += separator;
        out += pieces[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    std::string out(buffer);
    if (out.find('.') != std::string::npos) {
        while (!out.empty() && out.back() == '0') out.pop_back();
        if (!out.empty() && out.back() == '.') out.pop_back();
    }
    return out;
}

} // namespace tsg
