#include "util/rational.h"

#include <cmath>
#include <ostream>

namespace tsg {

rational rational::from_double(double x, std::int64_t max_den)
{
    require(std::isfinite(x), "rational::from_double: non-finite value");
    require(max_den >= 1, "rational::from_double: max_den must be positive");

    // Continued-fraction (Stern-Brocot) approximation.
    const bool negative = x < 0;
    double v = negative ? -x : x;

    std::int64_t p0 = 0, q0 = 1; // previous convergent
    std::int64_t p1 = 1, q1 = 0; // current convergent
    double frac = v;
    for (int iter = 0; iter < 64; ++iter) {
        const double fl = std::floor(frac);
        if (fl > static_cast<double>(INT64_MAX / 2)) break;
        const auto a = static_cast<std::int64_t>(fl);
        const std::int64_t p2 = a * p1 + p0;
        const std::int64_t q2 = a * q1 + q0;
        if (q2 > max_den) break;
        p0 = p1; q0 = q1;
        p1 = p2; q1 = q2;
        const double rem = frac - fl;
        if (rem < 1e-15) break;
        frac = 1.0 / rem;
    }
    if (q1 == 0) return rational(0);
    rational r(negative ? -p1 : p1, q1);
    return r;
}

rational rational::parse(const std::string& text)
{
    require(!text.empty(), "rational::parse: empty string");
    std::size_t slash = text.find('/');
    try {
        if (slash == std::string::npos) {
            std::size_t used = 0;
            const std::int64_t n = std::stoll(text, &used);
            require(used == text.size(), "rational::parse: trailing junk in '" + text + "'");
            return rational(n);
        }
        std::size_t used_n = 0;
        std::size_t used_d = 0;
        const std::string num_text = text.substr(0, slash);
        const std::string den_text = text.substr(slash + 1);
        require(!num_text.empty() && !den_text.empty(),
                "rational::parse: malformed '" + text + "'");
        const std::int64_t n = std::stoll(num_text, &used_n);
        const std::int64_t d = std::stoll(den_text, &used_d);
        require(used_n == num_text.size() && used_d == den_text.size(),
                "rational::parse: trailing junk in '" + text + "'");
        return rational(n, d);
    } catch (const std::invalid_argument&) {
        throw error("rational::parse: not a number: '" + text + "'");
    } catch (const std::out_of_range&) {
        throw error("rational::parse: out of range: '" + text + "'");
    }
}

std::string rational::str() const
{
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const rational& r)
{
    return os << r.str();
}

} // namespace tsg
