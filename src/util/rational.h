// Exact rational arithmetic over 64-bit integers.
//
// Cycle times of Timed Signal Graphs are ratios of delay sums to token
// counts (e.g. the Muller ring of Section VIII.D has cycle time 20/3), so
// the library computes them exactly instead of in floating point.  The
// class keeps values normalized (positive denominator, gcd(num, den) == 1)
// and performs comparisons and arithmetic through 128-bit intermediates so
// that no intermediate overflow occurs for the magnitudes that arise in
// timing analysis (sums of at most ~2^20 delays of magnitude <= 2^31).
#ifndef TSG_UTIL_RATIONAL_H
#define TSG_UTIL_RATIONAL_H

#include <cstdint>
#include <compare>
#include <functional>
#include <iosfwd>
#include <numeric>
#include <string>

#include "util/error.h"

namespace tsg {

/// 128-bit intermediate for overflow-free cross multiplication.
/// (__extension__ silences -Wpedantic: __int128 is a GCC/Clang extension,
/// available on every platform this library targets.)
__extension__ typedef __int128 int128;

/// An exact rational number num/den with int64 components, always kept in
/// canonical form: den > 0 and gcd(|num|, den) == 1.
class rational {
public:
    /// Value 0/1.
    constexpr rational() noexcept : num_(0), den_(1) {}

    /// Integer value n/1.  Intentionally implicit: delays written as plain
    /// integer literals should convert silently, mirroring the paper's use
    /// of integer gate delays.
    constexpr rational(std::int64_t n) noexcept : num_(n), den_(1) {}

    /// Value n/d, normalized.  Throws tsg::error if d == 0.
    constexpr rational(std::int64_t n, std::int64_t d) : num_(n), den_(d)
    {
        if (den_ == 0) throw error("rational: zero denominator");
        normalize();
    }

    [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
    [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

    [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }
    [[nodiscard]] constexpr bool is_zero() const noexcept { return num_ == 0; }
    [[nodiscard]] constexpr bool is_negative() const noexcept { return num_ < 0; }

    [[nodiscard]] double to_double() const noexcept
    {
        return static_cast<double>(num_) / static_cast<double>(den_);
    }

    /// Nearest rational with a small denominator approximating `x`; used
    /// when importing floating-point delays.  Throws on non-finite input.
    [[nodiscard]] static rational from_double(double x, std::int64_t max_den = 1'000'000);

    /// Parses "n", "-n", or "n/d" (optionally signed numerator).
    /// Throws tsg::error on malformed text.
    [[nodiscard]] static rational parse(const std::string& text);

    /// Renders as "n" when integral, otherwise "n/d".
    [[nodiscard]] std::string str() const;

    constexpr rational& operator+=(const rational& o) { return assign_add(o.num_, o.den_); }
    constexpr rational& operator-=(const rational& o) { return assign_add(-o.num_, o.den_); }

    constexpr rational& operator*=(const rational& o)
    {
        // Cross-reduce before multiplying to keep components small.
        const std::int64_t g1 = std::gcd(abs64(num_), o.den_);
        const std::int64_t g2 = std::gcd(abs64(o.num_), den_);
        num_ = checked_mul(num_ / g1, o.num_ / g2);
        den_ = checked_mul(den_ / g2, o.den_ / g1);
        return *this;
    }

    constexpr rational& operator/=(const rational& o)
    {
        if (o.num_ == 0) throw error("rational: division by zero");
        rational inv;
        inv.num_ = o.den_;
        inv.den_ = o.num_;
        if (inv.den_ < 0) { inv.num_ = -inv.num_; inv.den_ = -inv.den_; }
        return (*this) *= inv;
    }

    friend constexpr rational operator+(rational a, const rational& b) { return a += b; }
    friend constexpr rational operator-(rational a, const rational& b) { return a -= b; }
    friend constexpr rational operator*(rational a, const rational& b) { return a *= b; }
    friend constexpr rational operator/(rational a, const rational& b) { return a /= b; }
    friend constexpr rational operator-(const rational& a)
    {
        rational r;
        r.num_ = -a.num_;
        r.den_ = a.den_;
        return r;
    }

    friend constexpr bool operator==(const rational& a, const rational& b) noexcept
    {
        return a.num_ == b.num_ && a.den_ == b.den_; // canonical form
    }

    friend constexpr std::strong_ordering operator<=>(const rational& a,
                                                      const rational& b) noexcept
    {
        const int128 lhs = static_cast<int128>(a.num_) * b.den_;
        const int128 rhs = static_cast<int128>(b.num_) * a.den_;
        if (lhs < rhs) return std::strong_ordering::less;
        if (lhs > rhs) return std::strong_ordering::greater;
        return std::strong_ordering::equal;
    }

    friend std::ostream& operator<<(std::ostream& os, const rational& r);

private:
    constexpr void normalize()
    {
        if (den_ < 0) {
            num_ = -num_;
            den_ = -den_;
        }
        const std::int64_t g = std::gcd(abs64(num_), den_);
        if (g > 1) {
            num_ /= g;
            den_ /= g;
        }
    }

    constexpr rational& assign_add(std::int64_t on, std::int64_t od)
    {
        const std::int64_t g = std::gcd(den_, od);
        const std::int64_t scale_self = od / g;
        const std::int64_t scale_other = den_ / g;
        const int128 n =
            static_cast<int128>(num_) * scale_self + static_cast<int128>(on) * scale_other;
        const int128 d = static_cast<int128>(den_) * scale_self;
        num_ = narrow(n);
        den_ = narrow(d);
        normalize();
        return *this;
    }

    [[nodiscard]] static constexpr std::int64_t abs64(std::int64_t v) noexcept
    {
        return v < 0 ? -v : v;
    }

    [[nodiscard]] static constexpr std::int64_t narrow(int128 v)
    {
        if (v > INT64_MAX || v < INT64_MIN) throw error("rational: overflow");
        return static_cast<std::int64_t>(v);
    }

    [[nodiscard]] static constexpr std::int64_t checked_mul(std::int64_t a, std::int64_t b)
    {
        return narrow(static_cast<int128>(a) * b);
    }

    std::int64_t num_;
    std::int64_t den_;
};

[[nodiscard]] constexpr rational abs(const rational& r)
{
    return r.is_negative() ? -r : r;
}

[[nodiscard]] constexpr rational min(const rational& a, const rational& b)
{
    return b < a ? b : a;
}

[[nodiscard]] constexpr rational max(const rational& a, const rational& b)
{
    return a < b ? b : a;
}

} // namespace tsg

template <>
struct std::hash<tsg::rational> {
    std::size_t operator()(const tsg::rational& r) const noexcept
    {
        const std::size_t h1 = std::hash<std::int64_t>{}(r.num());
        const std::size_t h2 = std::hash<std::int64_t>{}(r.den());
        return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
    }
};

#endif // TSG_UTIL_RATIONAL_H
