// Error types shared by the whole library.
//
// User-facing failures (malformed input, model-property violations that the
// caller can provoke with bad data) throw tsg::error.  Violated internal
// invariants throw tsg::internal_error; encountering one is a library bug.
#ifndef TSG_UTIL_ERROR_H
#define TSG_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace tsg {

/// Base class for every exception thrown by the library on bad input or
/// violated model properties (non-live graph, non-distributive circuit, ...).
class error : public std::runtime_error {
public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant of the library fails; indicates a bug
/// in the library itself, never in caller-supplied data.
class internal_error : public std::logic_error {
public:
    explicit internal_error(const std::string& what) : std::logic_error(what) {}
};

/// Throws tsg::error with `message` unless `condition` holds.
inline void require(bool condition, const std::string& message)
{
    if (!condition) throw error(message);
}

/// Throws tsg::internal_error with `message` unless `condition` holds.
inline void ensure(bool condition, const std::string& message)
{
    if (!condition) throw internal_error(message);
}

} // namespace tsg

/// Debug-only bounds/invariant check for hot-path accessors: full require()
/// diagnostics in debug builds, unchecked indexing in release (NDEBUG)
/// builds where the graph sweeps dominate the profile.
#ifndef NDEBUG
#define TSG_DCHECK(condition, message) ::tsg::require((condition), (message))
#else
#define TSG_DCHECK(condition, message) ((void)0)
#endif

#endif // TSG_UTIL_ERROR_H
