// Small deterministic PRNG (xoroshiro128++) for reproducible random model
// generation in tests and benchmarks.  Not cryptographic.
#ifndef TSG_UTIL_PRNG_H
#define TSG_UTIL_PRNG_H

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace tsg {

/// Deterministic 64-bit PRNG with a tiny state, seedable from one word.
/// The same seed yields the same stream on every platform.
class prng {
public:
    explicit prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
    {
        // SplitMix64 seeding, recommended initialization for xoroshiro.
        std::uint64_t z = seed;
        s0_ = split_mix(z);
        s1_ = split_mix(z);
        if (s0_ == 0 && s1_ == 0) s1_ = 1; // the all-zero state is invalid
    }

    /// Next raw 64-bit value (xoroshiro128++).
    std::uint64_t next() noexcept
    {
        const std::uint64_t r = rotl(s0_ + s1_, 17) + s0_;
        const std::uint64_t t = s1_ ^ s0_;
        s0_ = rotl(s0_, 49) ^ t ^ (t << 21);
        s1_ = rotl(t, 28);
        return r;
    }

    /// Uniform integer in [lo, hi] inclusive.  Throws if lo > hi.
    std::int64_t uniform(std::int64_t lo, std::int64_t hi)
    {
        require(lo <= hi, "prng::uniform: empty range");
        const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        if (span == 0) return static_cast<std::int64_t>(next()); // full 64-bit range
        // Rejection sampling to remove modulo bias.
        const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
        std::uint64_t v = next();
        while (v >= limit) v = next();
        return lo + static_cast<std::int64_t>(v % span);
    }

    /// Uniform double in [0, 1).
    double uniform01() noexcept
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with probability p of true.
    bool chance(double p) { return uniform01() < p; }

    /// Uniformly chosen index into a container of the given size (> 0).
    std::size_t index(std::size_t size)
    {
        require(size > 0, "prng::index: empty container");
        return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(size) - 1));
    }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            using std::swap;
            swap(items[i - 1], items[index(i)]);
        }
    }

private:
    [[nodiscard]] static std::uint64_t rotl(std::uint64_t x, int k) noexcept
    {
        return (x << k) | (x >> (64 - k));
    }

    [[nodiscard]] static std::uint64_t split_mix(std::uint64_t& z) noexcept
    {
        z += 0x9e3779b97f4a7c15ULL;
        std::uint64_t r = z;
        r = (r ^ (r >> 30)) * 0xbf58476d1ce4e5b9ULL;
        r = (r ^ (r >> 27)) * 0x94d049bb133111ebULL;
        return r ^ (r >> 31);
    }

    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace tsg

#endif // TSG_UTIL_PRNG_H
