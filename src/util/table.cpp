#include "util/table.h"

#include <algorithm>

namespace tsg {

void text_table::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void text_table::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string text_table::str() const
{
    std::size_t columns = header_.size();
    for (const auto& row : rows_) columns = std::max(columns, row.size());

    std::vector<std::size_t> widths(columns, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (std::size_t c = 0; c < columns; ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string();
            line += cell;
            if (c + 1 < columns) line += std::string(widths[c] - cell.size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ') line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!header_.empty()) {
        out += render_row(header_);
        std::size_t rule = 0;
        for (std::size_t c = 0; c < columns; ++c) rule += widths[c] + (c + 1 < columns ? 2 : 0);
        out += std::string(rule, '-') + "\n";
    }
    for (const auto& row : rows_) out += render_row(row);
    return out;
}

} // namespace tsg
