#include "util/json.h"

#include <cctype>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace tsg {

namespace {

struct cursor {
    const std::string& text;
    const std::string& context;
    std::size_t pos = 0;

    void skip_ws()
    {
        while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }
    char peek()
    {
        skip_ws();
        require(pos < text.size(), context + ": unexpected end of JSON");
        return text[pos];
    }
    void expect(char c)
    {
        require(peek() == c, context + ": expected '" + std::string(1, c) + "' at offset " +
                                 std::to_string(pos));
        ++pos;
    }
};

std::string parse_string(cursor& in)
{
    in.expect('"');
    std::string out;
    while (true) {
        require(in.pos < in.text.size(), in.context + ": unterminated string");
        const char c = in.text[in.pos++];
        if (c == '"') return out;
        if (c == '\\') {
            require(in.pos < in.text.size(), in.context + ": dangling escape");
            const char e = in.text[in.pos++];
            switch (e) {
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            default: out += e; break; // \" \\ \/ and anything else literal
            }
        } else {
            out += c;
        }
    }
}

json_value parse_value(cursor& in)
{
    json_value v;
    const char c = in.peek();
    if (c == '{') {
        in.expect('{');
        v.k = json_value::kind::object_v;
        if (in.peek() != '}') {
            while (true) {
                std::string key = parse_string(in);
                in.expect(':');
                v.members.emplace_back(std::move(key), parse_value(in));
                if (in.peek() != ',') break;
                in.expect(',');
            }
        }
        in.expect('}');
        return v;
    }
    if (c == '[') {
        in.expect('[');
        v.k = json_value::kind::array_v;
        if (in.peek() != ']') {
            while (true) {
                v.items.push_back(parse_value(in));
                if (in.peek() != ',') break;
                in.expect(',');
            }
        }
        in.expect(']');
        return v;
    }
    if (c == '"') {
        v.k = json_value::kind::string_v;
        v.text = parse_string(in);
        return v;
    }
    if (in.text.compare(in.pos, 4, "true") == 0) {
        in.pos += 4;
        v.k = json_value::kind::bool_v;
        v.boolean = true;
        return v;
    }
    if (in.text.compare(in.pos, 5, "false") == 0) {
        in.pos += 5;
        v.k = json_value::kind::bool_v;
        return v;
    }
    if (in.text.compare(in.pos, 4, "null") == 0) {
        in.pos += 4;
        return v;
    }
    const std::size_t start = in.pos;
    while (in.pos < in.text.size() &&
           (std::isdigit(static_cast<unsigned char>(in.text[in.pos])) ||
            std::string("+-.eE").find(in.text[in.pos]) != std::string::npos))
        ++in.pos;
    require(in.pos > start, in.context + ": malformed JSON value");
    v.k = json_value::kind::number_v;
    v.text = in.text.substr(start, in.pos - start);
    return v;
}

} // namespace

const json_value* json_value::find(const std::string& key) const
{
    for (const auto& [name, value] : members)
        if (name == key) return &value;
    return nullptr;
}

json_value json_value::null() { return {}; }

json_value json_value::boolean_value(bool b)
{
    json_value v;
    v.k = kind::bool_v;
    v.boolean = b;
    return v;
}

json_value json_value::number(std::int64_t v) { return raw_number(std::to_string(v)); }

json_value json_value::number(std::uint64_t v) { return raw_number(std::to_string(v)); }

json_value json_value::number(double v, int decimals)
{
    if (!std::isfinite(v)) return null(); // JSON has no inf/nan literal
    return raw_number(format_double(v, decimals));
}

json_value json_value::raw_number(std::string spelling)
{
    json_value v;
    v.k = kind::number_v;
    v.text = std::move(spelling);
    return v;
}

json_value json_value::string(std::string s)
{
    json_value v;
    v.k = kind::string_v;
    v.text = std::move(s);
    return v;
}

json_value json_value::array()
{
    json_value v;
    v.k = kind::array_v;
    return v;
}

json_value json_value::object()
{
    json_value v;
    v.k = kind::object_v;
    return v;
}

json_value& json_value::set(std::string key, json_value v)
{
    members.emplace_back(std::move(key), std::move(v));
    return members.back().second;
}

json_value& json_value::push(json_value v)
{
    items.push_back(std::move(v));
    return items.back();
}

bool json_value::operator==(const json_value& other) const
{
    if (k != other.k) return false;
    switch (k) {
    case kind::null_v: return true;
    case kind::bool_v: return boolean == other.boolean;
    case kind::number_v:
    case kind::string_v: return text == other.text;
    case kind::array_v: return items == other.items;
    case kind::object_v: return members == other.members;
    }
    return false;
}

std::string json_value::write() const
{
    std::ostringstream os;
    switch (k) {
    case kind::null_v: os << "null"; break;
    case kind::bool_v: os << (boolean ? "true" : "false"); break;
    case kind::number_v: os << text; break;
    case kind::string_v: os << json_quote(text); break;
    case kind::array_v: {
        os << '[';
        for (std::size_t i = 0; i < items.size(); ++i)
            os << (i ? ", " : "") << items[i].write();
        os << ']';
        break;
    }
    case kind::object_v: {
        os << '{';
        for (std::size_t i = 0; i < members.size(); ++i) {
            os << (i ? ", " : "") << json_quote(members[i].first) << ": "
               << members[i].second.write();
        }
        os << '}';
        break;
    }
    }
    return os.str();
}

json_value json_parse(const std::string& text, const std::string& context)
{
    cursor in{text, context};
    json_value v = parse_value(in);
    in.skip_ws();
    require(in.pos == text.size(), context + ": trailing garbage after the document");
    return v;
}

std::string json_quote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out += c; break;
        }
    }
    out += '"';
    return out;
}

} // namespace tsg
