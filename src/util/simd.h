// Portable auto-vectorization helpers for the structure-of-arrays lane
// kernels (core/lane_domain.h and the lane sweeps in cycle_time/slack/pert).
//
// The hot loops are all the same shape: a fixed-trip-count inner loop over
// the L lanes of one arc, doing int64 add / compare / select on contiguous
// SoA slots.  That shape is exactly what compilers auto-vectorize — provided
// we promise them the pointers don't alias and ask for vector codegen even
// at -O2.  This header centralizes those promises instead of scattering
// compiler pragmas through the kernels:
//
//   * TSG_PRAGMA_SIMD — placed immediately before a lane loop.  Expands to
//     `#pragma omp simd` when OpenMP(-simd) codegen is on (CMake adds
//     -fopenmp-simd, which activates the pragma without the OpenMP runtime),
//     with GCC/Clang-specific vectorize hints as fallbacks.  Harmless no-op
//     on compilers that know none of the spellings.
//   * TSG_RESTRICT — `restrict` qualification for the SoA pointers so the
//     value / predecessor / delay arrays are known not to overlap.
//
// Verification: build with `-fopt-info-vec` (GCC) or `-Rpass=loop-vectorize`
// (Clang) and look for the relax_lanes loops in core/cycle_time.cpp,
// core/slack.cpp and core/pert.cpp being vectorized.  The kernels remain
// exact in any case — vectorization only changes instruction selection, not
// the arithmetic: every lane is an independent int64 computation whose
// results are bitwise identical in scalar and vector form.
#ifndef TSG_UTIL_SIMD_H
#define TSG_UTIL_SIMD_H

#if defined(TSG_OPENMP_SIMD) || defined(_OPENMP)
// TSG_OPENMP_SIMD is defined by the build alongside -fopenmp-simd (the flag
// enables `#pragma omp simd` codegen but deliberately leaves _OPENMP unset).
#define TSG_PRAGMA_SIMD _Pragma("omp simd")
#elif defined(__clang__)
#define TSG_PRAGMA_SIMD _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define TSG_PRAGMA_SIMD _Pragma("GCC ivdep")
#else
#define TSG_PRAGMA_SIMD
#endif

#if defined(__GNUC__) || defined(__clang__)
#define TSG_RESTRICT __restrict__
#else
#define TSG_RESTRICT
#endif

#endif // TSG_UTIL_SIMD_H
