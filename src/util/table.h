// Column-aligned ASCII tables for the benchmark harnesses, which reprint the
// paper's tables next to our measured values.
#ifndef TSG_UTIL_TABLE_H
#define TSG_UTIL_TABLE_H

#include <string>
#include <vector>

namespace tsg {

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to the widest cell.  Cells are plain strings; numeric formatting
/// is the caller's job (see rational::str and format_double).
class text_table {
public:
    text_table() = default;

    /// Sets the header row; column count is inferred from it.
    void set_header(std::vector<std::string> header);

    /// Appends a data row.  Rows shorter than the header are padded with
    /// empty cells; longer rows extend the column count.
    void add_row(std::vector<std::string> row);

    /// Renders with single-space-padded columns and a rule under the header.
    [[nodiscard]] std::string str() const;

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tsg

#endif // TSG_UTIL_TABLE_H
