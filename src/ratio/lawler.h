// Lawler-style parametric search for the maximum cycle ratio.
//
// Lawler's classic scheme tests a candidate ratio lambda by asking whether
// the graph has a positive cycle under weights  delay - lambda * transit;
// a positive cycle proves lambda < lambda* and yields a better candidate.
// Two variants are provided:
//   * an exact search that tightens lambda to the ratio of each witness
//     cycle (finitely many cycle ratios exist, so it terminates with the
//     exact rational answer and a witness);
//   * the textbook bisection to a caller-chosen tolerance, kept for cost
//     comparisons in the benchmarks.
#ifndef TSG_RATIO_LAWLER_H
#define TSG_RATIO_LAWLER_H

#include "ratio/ratio_problem.h"

namespace tsg {

/// Exact maximum cycle ratio with witness.  Requires liveness (every cycle
/// carries a token) and at least one cycle.
[[nodiscard]] ratio_result max_cycle_ratio_lawler(const ratio_problem& p);

/// Bisection to |hi - lo| <= tolerance; returns the midpoint.  Kept for
/// benchmark comparisons; prefer the exact variant.
[[nodiscard]] double max_cycle_ratio_lawler_bisection(const ratio_problem& p,
                                                      double tolerance = 1e-9);

/// Convenience: the cycle time of a Signal Graph via the exact variant.
[[nodiscard]] rational cycle_time_lawler(const signal_graph& sg);

} // namespace tsg

#endif // TSG_RATIO_LAWLER_H
