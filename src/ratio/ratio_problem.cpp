#include "ratio/ratio_problem.h"

#include "core/compiled_graph.h"

namespace tsg {

ratio_problem make_ratio_problem(const compiled_graph& cg)
{
    require(!cg.source().repetitive_events().empty(), "make_ratio_problem: graph is acyclic");

    const compiled_graph::core_view& core = cg.core();

    ratio_problem p;
    p.graph = core.graph; // CSR snapshot, adjacency index already frozen
    p.node_event = core.node_event;
    p.arc_original = core.arc_original;
    p.delay = core.delay;
    p.transit.reserve(core.token.size());
    for (const std::uint8_t t : core.token) p.transit.push_back(t);
    if (cg.fixed_point()) {
        p.scale = cg.scale();
        p.scaled_delay = core.scaled_delay;
    }
    return p;
}

void rebind_ratio_problem(ratio_problem& p, const compiled_graph& cg)
{
    const compiled_graph::core_view& core = cg.core();
    require(core.delay.size() == p.graph.arc_count(),
            "rebind_ratio_problem: snapshot core does not match the problem structure");
    p.delay = core.delay;
    if (cg.fixed_point()) {
        p.scale = cg.scale();
        p.scaled_delay = core.scaled_delay;
    } else {
        p.scale = 0;
        p.scaled_delay.clear();
    }
}

ratio_problem make_ratio_problem(const signal_graph& sg)
{
    require(sg.finalized(), "make_ratio_problem: graph must be finalized");
    const compiled_graph cg(sg);
    return make_ratio_problem(cg);
}

rational cycle_ratio(const ratio_problem& p, const std::vector<arc_id>& cycle)
{
    require(!cycle.empty(), "cycle_ratio: empty cycle");
    rational delay(0);
    std::int64_t transit = 0;
    for (const arc_id a : cycle) {
        delay += p.delay.at(a);
        transit += p.transit.at(a);
    }
    require(transit > 0, "cycle_ratio: cycle carries no token (graph not live)");
    return delay / rational(transit);
}

} // namespace tsg
