#include "ratio/ratio_problem.h"

namespace tsg {

ratio_problem make_ratio_problem(const signal_graph& sg)
{
    require(sg.finalized(), "make_ratio_problem: graph must be finalized");
    require(!sg.repetitive_events().empty(), "make_ratio_problem: graph is acyclic");

    const signal_graph::core_view core = sg.repetitive_core();

    ratio_problem p;
    p.graph = core.graph;
    p.node_event = core.node_event;
    p.arc_original = core.arc_original;
    p.delay.reserve(core.arc_original.size());
    p.transit.reserve(core.arc_original.size());
    for (const arc_id a : core.arc_original) {
        p.delay.push_back(sg.arc(a).delay);
        p.transit.push_back(sg.arc(a).marked ? 1 : 0);
    }
    return p;
}

rational cycle_ratio(const ratio_problem& p, const std::vector<arc_id>& cycle)
{
    require(!cycle.empty(), "cycle_ratio: empty cycle");
    rational delay(0);
    std::int64_t transit = 0;
    for (const arc_id a : cycle) {
        delay += p.delay.at(a);
        transit += p.transit.at(a);
    }
    require(transit > 0, "cycle_ratio: cycle carries no token (graph not live)");
    return delay / rational(transit);
}

} // namespace tsg
