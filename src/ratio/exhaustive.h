// Exhaustive maximum cycle ratio: enumerate every simple cycle and take the
// best.  Exponential in the worst case (the very motivation for the paper's
// algorithm) but exact, hence the ground truth in the test suite and the
// engine behind the Example 5/6 reproduction.
#ifndef TSG_RATIO_EXHAUSTIVE_H
#define TSG_RATIO_EXHAUSTIVE_H

#include <cstddef>
#include <vector>

#include "ratio/ratio_problem.h"

namespace tsg {

struct cycle_listing {
    std::vector<arc_id> arcs;  ///< problem-graph arcs in causal order
    rational delay;            ///< total delay
    std::int64_t transit = 0;  ///< total tokens (the occurrence period epsilon)
    rational ratio;            ///< delay / transit
};

struct exhaustive_result {
    rational ratio;                     ///< the maximum cycle ratio
    std::vector<cycle_listing> cycles;  ///< every simple cycle
    std::vector<std::size_t> critical;  ///< indices of cycles attaining the max
};

/// Enumerates all simple cycles (Johnson) and computes each ratio.  Throws
/// tsg::error when more than `max_cycles` cycles exist — the result would
/// not be trustworthy as ground truth.
[[nodiscard]] exhaustive_result max_cycle_ratio_exhaustive(const ratio_problem& p,
                                                           std::size_t max_cycles = 1'000'000);

/// Convenience: the cycle time of a Signal Graph by exhaustive enumeration.
[[nodiscard]] rational cycle_time_exhaustive(const signal_graph& sg,
                                             std::size_t max_cycles = 1'000'000);

} // namespace tsg

#endif // TSG_RATIO_EXHAUSTIVE_H
