// Karp-style maximum cycle ratio via the token-graph transformation.
//
// Karp's 1978 algorithm computes the maximum *mean* cycle (all transit
// times 1).  Marked graphs reduce to that case: make one vertex per token-
// carrying arc; connect token p to token q with weight
//
//     W(p, q) = delay(p) + longest token-free path from head(p) to tail(q)
//
// (the token-free subgraph is a DAG by liveness).  Cycles of the token
// graph correspond to cycles of the original graph, with mean weight equal
// to the delay/token ratio.  Complexity: O(b*(n+m)) for the transformation
// plus O(b*m_t) for Karp, where b is the token count and m_t <= b^2 —
// attractive precisely when b is small, the same regime in which the
// paper's O(b^2 m) algorithm shines.
#ifndef TSG_RATIO_KARP_H
#define TSG_RATIO_KARP_H

#include "ratio/ratio_problem.h"

namespace tsg {

/// Maximum cycle ratio by token-graph + Karp.  Requires a strongly
/// connected problem with transit times in {0, 1} and at least one token.
/// Returns the exact ratio (no witness cycle).
[[nodiscard]] rational max_cycle_ratio_karp(const ratio_problem& p);

/// Maximum mean cycle (Karp's original problem: ratio with every transit
/// time = 1) of an arbitrary digraph with at least one cycle.
[[nodiscard]] rational max_mean_cycle_karp(const digraph& g,
                                           const std::vector<rational>& weight);

/// Convenience: the cycle time of a Signal Graph via Karp.
[[nodiscard]] rational cycle_time_karp(const signal_graph& sg);

} // namespace tsg

#endif // TSG_RATIO_KARP_H
