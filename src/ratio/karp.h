// Karp-style maximum cycle ratio via the token-graph transformation.
//
// Karp's 1978 algorithm computes the maximum *mean* cycle (all transit
// times 1).  Marked graphs reduce to that case: make one vertex per token-
// carrying arc; connect token p to token q with weight
//
//     W(p, q) = delay(p) + longest token-free path from head(p) to tail(q)
//
// (the token-free subgraph is a DAG by liveness).  Cycles of the token
// graph correspond to cycles of the original graph, with mean weight equal
// to the delay/token ratio.  Complexity: O(b*(n+m)) for the transformation
// plus O(b*m_t) for Karp, where b is the token count and m_t <= b^2 —
// attractive precisely when b is small, the same regime in which the
// paper's O(b^2 m) algorithm shines.
//
// When the ratio problem carries the compiled fixed-point delay domain,
// both the token-free DAG sweeps and the Karp DP run on int64 additions.
#ifndef TSG_RATIO_KARP_H
#define TSG_RATIO_KARP_H

#include <optional>

#include "ratio/ratio_problem.h"

namespace tsg {

namespace detail {

/// Karp's dynamic program: D[k][v] = longest walk with exactly k arcs from
/// a super-source reaching every node with weight 0; the answer is
/// max_v min_k finish(D_n(v) - D_k(v), n - k).  `finish` converts a weight
/// difference and a walk-length difference into the exact rational mean.
template <typename Graph, typename Weight, typename Finish>
rational karp_mean_cycle(const Graph& g, const std::vector<Weight>& weight, Finish finish)
{
    require(g.node_count() > 0, "max_mean_cycle_karp: empty graph");
    require(weight.size() == g.arc_count(), "max_mean_cycle_karp: weight size mismatch");

    const std::size_t n = g.node_count();

    // Row-rolled storage is not possible because the final formula needs
    // all rows.
    std::vector<std::vector<std::optional<Weight>>> dist(
        n + 1, std::vector<std::optional<Weight>>(n));
    for (node_id v = 0; v < n; ++v) dist[0][v] = Weight{};

    for (std::size_t k = 1; k <= n; ++k) {
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            const node_id u = g.from(a);
            const node_id v = g.to(a);
            if (!dist[k - 1][u]) continue;
            const Weight candidate = *dist[k - 1][u] + weight[a];
            if (!dist[k][v] || candidate > *dist[k][v]) dist[k][v] = candidate;
        }
    }

    // lambda = max_v min_{0 <= k < n} (D_n(v) - D_k(v)) / (n - k).
    std::optional<rational> best;
    for (node_id v = 0; v < n; ++v) {
        if (!dist[n][v]) continue;
        std::optional<rational> worst;
        for (std::size_t k = 0; k < n; ++k) {
            if (!dist[k][v]) continue;
            const rational value =
                finish(*dist[n][v] - *dist[k][v], static_cast<std::int64_t>(n - k));
            if (!worst || value < *worst) worst = value;
        }
        ensure(worst.has_value(), "max_mean_cycle_karp: row n reachable but no earlier row");
        if (!best || *worst > *best) best = worst;
    }
    require(best.has_value(), "max_mean_cycle_karp: graph has no cycle");
    return *best;
}

} // namespace detail

/// Maximum cycle ratio by token-graph + Karp.  Requires a strongly
/// connected problem with transit times in {0, 1} and at least one token.
/// Returns the exact ratio (no witness cycle).
[[nodiscard]] rational max_cycle_ratio_karp(const ratio_problem& p);

/// Maximum mean cycle (Karp's original problem: ratio with every transit
/// time = 1) of an arbitrary graph with at least one cycle.
template <typename Graph>
[[nodiscard]] rational max_mean_cycle_karp(const Graph& g,
                                           const std::vector<rational>& weight)
{
    return detail::karp_mean_cycle(
        g, weight, [](const rational& diff, std::int64_t len) { return diff / rational(len); });
}

/// Convenience: the cycle time of a Signal Graph via Karp.
[[nodiscard]] rational cycle_time_karp(const signal_graph& sg);

} // namespace tsg

#endif // TSG_RATIO_KARP_H
