#include "ratio/condensation.h"

#include <string>

#include "graph/scc.h"
#include "util/parallel.h"

namespace tsg {

namespace {

/// One nontrivial component, renumbered into its own ratio problem plus
/// the map back to original arc ids.
struct component_problem {
    std::uint32_t scc_id = 0;
    ratio_problem problem;
    std::vector<arc_id> arc_original; ///< component arc -> input problem arc
};

condensed_ratio_result solve_single(const ratio_problem& p, const condensation_options& options)
{
    const ratio_result r = max_cycle_ratio_howard(p, options.howard);
    condensed_ratio_result out;
    out.ratio = r.ratio;
    out.cycle = r.cycle;
    out.fixed_point = r.fixed_point;
    out.component_count = 1;
    out.cyclic_component_count = 1;
    out.critical_component = 0;
    return out;
}

} // namespace

condensed_ratio_result max_cycle_ratio_condensed(const ratio_problem& p,
                                                 const condensation_options& options)
{
    require(p.graph.node_count() > 0, "max_cycle_ratio_condensed: empty graph");

    const scc_result scc = strongly_connected_components(p.graph);

    // Nontrivial components: >= 2 nodes, or a single node with a self-loop.
    std::vector<std::uint32_t> size(scc.count, 0);
    for (node_id v = 0; v < p.graph.node_count(); ++v) ++size[scc.component[v]];
    std::vector<bool> cyclic(scc.count, false);
    for (std::uint32_t c = 0; c < scc.count; ++c) cyclic[c] = size[c] >= 2;
    for (arc_id a = 0; a < p.graph.arc_count(); ++a)
        if (p.graph.from(a) == p.graph.to(a)) cyclic[scc.component[p.graph.from(a)]] = true;

    if (scc.count == 1 && cyclic[0]) return solve_single(p, options);

    // Carve one sub-problem per nontrivial component.  Nodes keep their
    // relative order (local ids ascend with original ids) and arcs keep
    // their relative order, so per-component tie-breaking matches a direct
    // solve of that component.
    std::vector<component_problem> components;
    std::vector<node_id> local(p.graph.node_count(), invalid_node);
    {
        std::vector<std::uint32_t> comp_slot(scc.count, UINT32_MAX);
        for (std::uint32_t c = 0; c < scc.count; ++c) {
            if (!cyclic[c]) continue;
            comp_slot[c] = static_cast<std::uint32_t>(components.size());
            components.emplace_back();
            components.back().scc_id = c;
        }
        for (node_id v = 0; v < p.graph.node_count(); ++v) {
            const std::uint32_t slot = comp_slot[scc.component[v]];
            if (slot == UINT32_MAX) continue;
            local[v] = components[slot].problem.graph.add_node();
            if (!p.node_event.empty())
                components[slot].problem.node_event.push_back(p.node_event[v]);
        }
        for (arc_id a = 0; a < p.graph.arc_count(); ++a) {
            const node_id u = p.graph.from(a);
            const node_id v = p.graph.to(a);
            if (!scc.same(u, v)) continue; // cross-component arcs carry no cycle
            const std::uint32_t slot = comp_slot[scc.component[u]];
            if (slot == UINT32_MAX) continue;
            component_problem& cp = components[slot];
            cp.problem.graph.add_arc(local[u], local[v]);
            cp.problem.delay.push_back(p.delay[a]);
            cp.problem.transit.push_back(p.transit[a]);
            if (p.scale != 0 && p.scaled_delay.size() == p.graph.arc_count())
                cp.problem.scaled_delay.push_back(p.scaled_delay[a]);
            cp.arc_original.push_back(a);
        }
        for (component_problem& cp : components) {
            if (p.scale != 0 && cp.problem.scaled_delay.size() == cp.problem.graph.arc_count())
                cp.problem.scale = p.scale;
            cp.problem.graph.freeze(); // shared read-only across the fan-out
        }
    }

    require(!components.empty(),
            "max_cycle_ratio_condensed: no strongly connected component contains "
            "a cycle (the graph is acyclic — nothing oscillates)");

    // Independent solves, one per component; serial reduction in component
    // order keeps the winner (and its witness) thread-count independent.
    std::vector<ratio_result> results(components.size());
    parallel_for_index(components.size(), options.max_threads, [&](std::size_t i) {
        try {
            results[i] = max_cycle_ratio_howard(components[i].problem, options.howard);
        } catch (const error& e) {
            throw error("max_cycle_ratio_condensed: component " +
                        std::to_string(components[i].scc_id) +
                        " (component-local ids): " + e.what());
        }
    });

    condensed_ratio_result out;
    out.component_count = scc.count;
    out.cyclic_component_count = static_cast<std::uint32_t>(components.size());
    bool first = true;
    for (std::size_t i = 0; i < components.size(); ++i) {
        if (!first && !(results[i].ratio > out.ratio)) continue;
        out.ratio = results[i].ratio;
        out.fixed_point = results[i].fixed_point;
        out.critical_component = components[i].scc_id;
        out.cycle.clear();
        out.cycle.reserve(results[i].cycle.size());
        for (const arc_id a : results[i].cycle)
            out.cycle.push_back(components[i].arc_original[a]);
        first = false;
    }
    return out;
}

} // namespace tsg
