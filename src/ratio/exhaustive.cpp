#include "ratio/exhaustive.h"

#include "graph/johnson.h"

namespace tsg {

exhaustive_result max_cycle_ratio_exhaustive(const ratio_problem& p, std::size_t max_cycles)
{
    const cycle_enumeration enumeration = enumerate_simple_cycles(p.graph, max_cycles);
    require(!enumeration.truncated,
            "max_cycle_ratio_exhaustive: more than the allowed number of cycles");
    require(!enumeration.cycles.empty(), "max_cycle_ratio_exhaustive: graph has no cycles");

    exhaustive_result out;
    bool first = true;
    for (const auto& arcs : enumeration.cycles) {
        cycle_listing listing;
        listing.arcs = arcs;
        for (const arc_id a : arcs) {
            listing.delay += p.delay.at(a);
            listing.transit += p.transit.at(a);
        }
        require(listing.transit > 0,
                "max_cycle_ratio_exhaustive: token-free cycle (graph not live)");
        listing.ratio = listing.delay / rational(listing.transit);
        if (first || listing.ratio > out.ratio) out.ratio = listing.ratio;
        first = false;
        out.cycles.push_back(std::move(listing));
    }
    for (std::size_t i = 0; i < out.cycles.size(); ++i)
        if (out.cycles[i].ratio == out.ratio) out.critical.push_back(i);
    return out;
}

rational cycle_time_exhaustive(const signal_graph& sg, std::size_t max_cycles)
{
    return max_cycle_ratio_exhaustive(make_ratio_problem(sg), max_cycles).ratio;
}

} // namespace tsg
