// The maximum cycle ratio problem extracted from a Signal Graph.
//
// The cycle time of a live Timed Signal Graph equals
//
//     lambda = max over simple cycles C of  delay(C) / tokens(C)
//
// (Section V, Propositions 4-5) — an instance of the classic maximum
// cost-to-time-ratio cycle problem with the initial marking as transit
// times.  This header defines the shared problem form consumed by the
// baseline solvers (exhaustive, Karp, Lawler, Howard) that the paper cites
// as alternatives [1, 8, 11, 13]; the solvers cross-validate the paper's
// timing-simulation algorithm in tests and benchmarks, and Howard (behind
// the SCC condensation driver, ratio/condensation.h) doubles as the
// production cycle-time engine for large cores and warm-started scenario
// batches (see cycle_time_solver in core/cycle_time.h).
//
// The problem graph is a frozen CSR snapshot (see graph/csr.h); built from
// a compiled_graph it shares the compiled repetitive-core view — flat
// adjacency, exact delays, and the fixed-point scaled delays (delay *
// scale as exact int64s), so integer-domain solvers (Karp's DP, Howard's
// policy iteration) never touch a rational inside their sweeps.  Problems
// without the fixed-point domain (scale == 0: hand-built instances, or
// the overflow fallback after a pathological rebind) run every solver in
// exact rational arithmetic with identical results.
#ifndef TSG_RATIO_RATIO_PROBLEM_H
#define TSG_RATIO_RATIO_PROBLEM_H

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "sg/signal_graph.h"
#include "util/rational.h"

namespace tsg {

class compiled_graph;

struct ratio_problem {
    csr_graph graph;                    ///< strongly connected
    std::vector<rational> delay;        ///< per arc, >= 0
    std::vector<std::int64_t> transit;  ///< per arc tokens, 0 or 1 from Signal Graphs
    std::vector<event_id> node_event;   ///< node -> originating event (may be empty)
    std::vector<arc_id> arc_original;   ///< arc -> originating sg arc (may be empty)

    /// Fixed-point delay domain shared from the compiled graph: delays
    /// scaled by `scale` as exact int64s.  scale == 0 means "rational
    /// arithmetic only" (hand-built problems, or the overflow fallback).
    std::int64_t scale = 0;
    std::vector<std::int64_t> scaled_delay; ///< per arc, valid when scale != 0
};

/// Builds the ratio problem over the repetitive core of a finalized graph.
[[nodiscard]] ratio_problem make_ratio_problem(const signal_graph& sg);

/// Builds the ratio problem from a compiled snapshot, sharing its core
/// view and fixed-point delay domain.
[[nodiscard]] ratio_problem make_ratio_problem(const compiled_graph& cg);

/// Refreshes only the delay domain of `p` (delay, scale, scaled_delay)
/// from another snapshot of the *same structure* — the per-scenario path:
/// build the problem once, rebind thousands of delay assignments without
/// re-copying graph, transit or id maps.  Throws when the snapshot's core
/// does not match the problem's arc count.
void rebind_ratio_problem(ratio_problem& p, const compiled_graph& cg);

struct ratio_result {
    rational ratio;             ///< the maximum cycle ratio
    std::vector<arc_id> cycle;  ///< witness cycle (problem-graph arcs); may be
                                ///< empty for solvers that return the value only
    bool fixed_point = false;   ///< solved in the scaled-int64 domain (Howard
                                ///< and the condensation driver set this)
    std::uint32_t iterations = 0; ///< policy-improvement rounds (Howard only);
                                  ///< the warm-start win is visible here
};

/// delay(C) / tokens(C) of a cycle given as problem-graph arcs.  Throws when
/// the cycle carries no token (such cycles are excluded by liveness).
[[nodiscard]] rational cycle_ratio(const ratio_problem& p, const std::vector<arc_id>& cycle);

} // namespace tsg

#endif // TSG_RATIO_RATIO_PROBLEM_H
