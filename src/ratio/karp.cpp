#include "ratio/karp.h"

#include <optional>

#include "graph/longest_path.h"
#include "graph/scc.h"

namespace tsg {

rational max_mean_cycle_karp(const digraph& g, const std::vector<rational>& weight)
{
    require(g.node_count() > 0, "max_mean_cycle_karp: empty graph");
    require(weight.size() == g.arc_count(), "max_mean_cycle_karp: weight size mismatch");

    const std::size_t n = g.node_count();

    // D[k][v] = longest walk with exactly k arcs from the super-source
    // (which reaches every node with weight 0).  Row-rolled storage is not
    // possible because the final formula needs all rows.
    std::vector<std::vector<std::optional<rational>>> dist(
        n + 1, std::vector<std::optional<rational>>(n));
    for (node_id v = 0; v < n; ++v) dist[0][v] = rational(0);

    for (std::size_t k = 1; k <= n; ++k) {
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            const node_id u = g.from(a);
            const node_id v = g.to(a);
            if (!dist[k - 1][u]) continue;
            const rational candidate = *dist[k - 1][u] + weight[a];
            if (!dist[k][v] || candidate > *dist[k][v]) dist[k][v] = candidate;
        }
    }

    // lambda = max_v min_{0 <= k < n} (D_n(v) - D_k(v)) / (n - k).
    std::optional<rational> best;
    for (node_id v = 0; v < n; ++v) {
        if (!dist[n][v]) continue;
        std::optional<rational> worst;
        for (std::size_t k = 0; k < n; ++k) {
            if (!dist[k][v]) continue;
            const rational value =
                (*dist[n][v] - *dist[k][v]) / rational(static_cast<std::int64_t>(n - k));
            if (!worst || value < *worst) worst = value;
        }
        ensure(worst.has_value(), "max_mean_cycle_karp: row n reachable but no earlier row");
        if (!best || *worst > *best) best = worst;
    }
    require(best.has_value(), "max_mean_cycle_karp: graph has no cycle");
    return *best;
}

rational max_cycle_ratio_karp(const ratio_problem& p)
{
    require(is_strongly_connected(p.graph), "max_cycle_ratio_karp: graph not strongly connected");

    // Collect token arcs; verify transit times are 0/1.
    std::vector<arc_id> token_arcs;
    std::vector<bool> token_free(p.graph.arc_count(), false);
    for (arc_id a = 0; a < p.graph.arc_count(); ++a) {
        require(p.transit[a] == 0 || p.transit[a] == 1,
                "max_cycle_ratio_karp: transit times must be 0 or 1");
        if (p.transit[a] == 1)
            token_arcs.push_back(a);
        else
            token_free[a] = true;
    }
    require(!token_arcs.empty(), "max_cycle_ratio_karp: no tokens (graph not live)");

    // Token graph: one node per token arc.
    digraph token_graph(token_arcs.size());
    std::vector<rational> token_weight;

    for (std::size_t i = 0; i < token_arcs.size(); ++i) {
        const arc_id pa = token_arcs[i];
        // Longest token-free paths from the head of token arc i.
        const longest_path_result lp = dag_longest_paths(
            p.graph, p.delay, {p.graph.to(pa)}, &token_free);
        for (std::size_t j = 0; j < token_arcs.size(); ++j) {
            const arc_id qa = token_arcs[j];
            const node_id q_tail = p.graph.from(qa);
            if (!lp.reached[q_tail]) continue;
            token_graph.add_arc(static_cast<node_id>(i), static_cast<node_id>(j));
            token_weight.push_back(p.delay[pa] + lp.distance[q_tail]);
        }
    }

    return max_mean_cycle_karp(token_graph, token_weight);
}

rational cycle_time_karp(const signal_graph& sg)
{
    return max_cycle_ratio_karp(make_ratio_problem(sg));
}

} // namespace tsg
