#include "ratio/karp.h"

#include <limits>

#include "graph/longest_path.h"
#include "graph/scc.h"

namespace tsg {

namespace {

/// Shared shape of the token-graph reduction, weight domain left to the
/// caller: `path_weight(pa, lp_distance)` combines token arc pa's delay
/// with a token-free longest-path distance into one token-graph weight.
struct token_arcs_view {
    std::vector<arc_id> arcs;
    std::vector<bool> token_free;
};

token_arcs_view collect_token_arcs(const ratio_problem& p)
{
    token_arcs_view out;
    out.token_free.assign(p.graph.arc_count(), false);
    for (arc_id a = 0; a < p.graph.arc_count(); ++a) {
        require(p.transit[a] == 0 || p.transit[a] == 1,
                "max_cycle_ratio_karp: transit times must be 0 or 1");
        if (p.transit[a] == 1)
            out.arcs.push_back(a);
        else
            out.token_free[a] = true;
    }
    require(!out.arcs.empty(), "max_cycle_ratio_karp: no tokens (graph not live)");
    return out;
}

} // namespace

rational max_cycle_ratio_karp(const ratio_problem& p)
{
    require(is_strongly_connected(p.graph), "max_cycle_ratio_karp: graph not strongly connected");

    const token_arcs_view tokens = collect_token_arcs(p);
    const std::size_t count = tokens.arcs.size();

    // Fixed-point fast path: token-free DAG sweeps and the Karp DP both run
    // on scaled int64 delays.  Guard the whole domain *before* any int64
    // sweep: a DAG path sums at most every scaled delay once, and a DP walk
    // accumulates at most count+1 token weights, each at most twice the
    // total scaled delay mass.  Compiled problems satisfy this budget by
    // construction; hand-built ones fall back to the rational domain.
    const int128 budget = std::numeric_limits<std::int64_t>::max() / 4;
    bool fixed_safe = p.scale != 0 && p.scaled_delay.size() == p.graph.arc_count();
    if (fixed_safe) {
        int128 total = 0;
        for (const std::int64_t w : p.scaled_delay) total += w < 0 ? -int128(w) : w;
        fixed_safe = total * 2 * static_cast<int128>(count + 1) <= budget &&
                     static_cast<int128>(count + 1) * p.scale <= budget;
    }
    if (fixed_safe) {
        csr_graph token_graph;
        token_graph.add_nodes(count);
        std::vector<std::int64_t> token_weight;
        for (std::size_t i = 0; i < count; ++i) {
            const arc_id pa = tokens.arcs[i];
            const auto lp = dag_longest_paths_fixed(p.graph, p.scaled_delay,
                                                    {p.graph.to(pa)}, &tokens.token_free);
            for (std::size_t j = 0; j < count; ++j) {
                const arc_id qa = tokens.arcs[j];
                const node_id q_tail = p.graph.from(qa);
                if (!lp.reached[q_tail]) continue;
                token_graph.add_arc(static_cast<node_id>(i), static_cast<node_id>(j));
                token_weight.push_back(p.scaled_delay[pa] + lp.distance[q_tail]);
            }
        }
        const std::int64_t scale = p.scale;
        return detail::karp_mean_cycle(
            token_graph, token_weight,
            [scale](std::int64_t diff, std::int64_t len) {
                return rational(diff, len * scale);
            });
    }

    csr_graph token_graph;
    token_graph.add_nodes(count);
    std::vector<rational> token_weight;
    for (std::size_t i = 0; i < count; ++i) {
        const arc_id pa = tokens.arcs[i];
        // Longest token-free paths from the head of token arc i.
        const longest_path_result lp = dag_longest_paths(
            p.graph, p.delay, {p.graph.to(pa)}, &tokens.token_free);
        for (std::size_t j = 0; j < count; ++j) {
            const arc_id qa = tokens.arcs[j];
            const node_id q_tail = p.graph.from(qa);
            if (!lp.reached[q_tail]) continue;
            token_graph.add_arc(static_cast<node_id>(i), static_cast<node_id>(j));
            token_weight.push_back(p.delay[pa] + lp.distance[q_tail]);
        }
    }

    return max_mean_cycle_karp(token_graph, token_weight);
}

rational cycle_time_karp(const signal_graph& sg)
{
    return max_cycle_ratio_karp(make_ratio_problem(sg));
}

} // namespace tsg
