#include "ratio/howard.h"

#include <algorithm>

namespace tsg {

namespace {

struct value_determination {
    std::vector<rational> lambda; ///< ratio of the policy cycle each node reaches
    std::vector<rational> value;  ///< potential v(u)
    std::vector<arc_id> best_cycle;
    rational best_lambda;
};

/// Computes per-node cycle ratios and potentials for a fixed policy.
value_determination determine_values(const ratio_problem& p, const std::vector<arc_id>& policy)
{
    const std::size_t n = p.graph.node_count();
    value_determination out;
    out.lambda.assign(n, rational(0));
    out.value.assign(n, rational(0));

    enum class state : std::uint8_t { unvisited, in_progress, done };
    std::vector<state> mark(n, state::unvisited);

    bool have_best = false;
    for (node_id root = 0; root < n; ++root) {
        if (mark[root] != state::unvisited) continue;

        // Follow the policy until we meet a processed node or close a cycle.
        std::vector<node_id> path;
        node_id v = root;
        while (mark[v] == state::unvisited) {
            mark[v] = state::in_progress;
            path.push_back(v);
            v = p.graph.to(policy[v]);
        }

        if (mark[v] == state::in_progress) {
            // Closed a new policy cycle starting at v.
            const auto cycle_begin =
                std::find(path.begin(), path.end(), v) - path.begin();
            std::vector<arc_id> cycle_arcs;
            rational delay(0);
            std::int64_t tokens = 0;
            for (std::size_t i = static_cast<std::size_t>(cycle_begin); i < path.size(); ++i) {
                const arc_id a = policy[path[i]];
                cycle_arcs.push_back(a);
                delay += p.delay[a];
                tokens += p.transit[a];
            }
            require(tokens > 0, "max_cycle_ratio_howard: token-free cycle (graph not live)");
            const rational ratio = delay / rational(tokens);

            // Anchor v(cycle head) = 0 and propagate backwards around the
            // cycle; the sum of (delay - ratio*transit) around it is 0, so
            // the assignment is consistent.
            out.lambda[v] = ratio;
            out.value[v] = rational(0);
            for (std::size_t i = path.size(); i-- > static_cast<std::size_t>(cycle_begin) + 1;) {
                const node_id u = path[i];
                const arc_id a = policy[u];
                const node_id succ = p.graph.to(a);
                out.lambda[u] = ratio;
                out.value[u] = p.delay[a] - ratio * rational(p.transit[a]) + out.value[succ];
                mark[u] = state::done;
            }
            mark[v] = state::done;

            if (!have_best || ratio > out.best_lambda) {
                out.best_lambda = ratio;
                out.best_cycle = cycle_arcs;
                have_best = true;
            }

            // Tree prefix before the cycle.
            for (std::size_t i = static_cast<std::size_t>(cycle_begin); i-- > 0;) {
                const node_id u = path[i];
                const arc_id a = policy[u];
                const node_id succ = p.graph.to(a);
                out.lambda[u] = out.lambda[succ];
                out.value[u] = p.delay[a] - out.lambda[u] * rational(p.transit[a]) + out.value[succ];
                mark[u] = state::done;
            }
        } else {
            // Ran into an already-processed region: whole path is a tree.
            for (std::size_t i = path.size(); i-- > 0;) {
                const node_id u = path[i];
                const arc_id a = policy[u];
                const node_id succ = p.graph.to(a);
                out.lambda[u] = out.lambda[succ];
                out.value[u] = p.delay[a] - out.lambda[u] * rational(p.transit[a]) + out.value[succ];
                mark[u] = state::done;
            }
        }
    }
    ensure(have_best, "max_cycle_ratio_howard: no policy cycle found");
    return out;
}

} // namespace

ratio_result max_cycle_ratio_howard(const ratio_problem& p)
{
    const std::size_t n = p.graph.node_count();
    require(n > 0, "max_cycle_ratio_howard: empty graph");

    std::vector<arc_id> policy(n, invalid_arc);
    for (node_id v = 0; v < n; ++v) {
        require(p.graph.out_degree(v) > 0,
                "max_cycle_ratio_howard: dead-end node (not strongly connected)");
        policy[v] = p.graph.out_arcs(v)[0];
    }

    const std::size_t iteration_cap = 100 * n * std::max<std::size_t>(p.graph.arc_count(), 1) + 64;
    value_determination vd = determine_values(p, policy);

    for (std::size_t iter = 0; iter < iteration_cap; ++iter) {
        // Phase 1: ratio improvement — switch to arcs reaching cycles with
        // strictly larger ratio.
        bool improved = false;
        for (node_id u = 0; u < n; ++u) {
            for (const arc_id a : p.graph.out_arcs(u)) {
                const node_id x = p.graph.to(a);
                if (vd.lambda[x] > vd.lambda[p.graph.to(policy[u])]) {
                    policy[u] = a;
                    improved = true;
                }
            }
        }

        // Phase 2 (only when ratios are stable): potential improvement among
        // arcs with equal target ratio.
        if (!improved) {
            for (node_id u = 0; u < n; ++u) {
                for (const arc_id a : p.graph.out_arcs(u)) {
                    const node_id x = p.graph.to(a);
                    if (vd.lambda[x] != vd.lambda[u]) continue;
                    const rational candidate =
                        p.delay[a] - vd.lambda[u] * rational(p.transit[a]) + vd.value[x];
                    if (candidate > vd.value[u]) {
                        policy[u] = a;
                        vd.value[u] = candidate; // Gauss-Seidel update
                        improved = true;
                    }
                }
            }
        }

        if (!improved) {
            ratio_result result;
            result.ratio = vd.best_lambda;
            result.cycle = vd.best_cycle;
            return result;
        }
        vd = determine_values(p, policy);
    }
    ensure(false, "max_cycle_ratio_howard: iteration cap exceeded");
    return {};
}

rational cycle_time_howard(const signal_graph& sg)
{
    return max_cycle_ratio_howard(make_ratio_problem(sg)).ratio;
}

} // namespace tsg
