#include "ratio/howard.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

namespace tsg {

namespace {

// The iteration is identical in both arithmetic domains; a domain supplies
// the weight/ratio/potential types and the three operations the sweeps
// need.  Both domains order every comparison identically (scaling by a
// positive constant preserves order), so the decision sequence — and thus
// the converged policy and witness cycle — is bit-for-bit the same.

/// Exact rational arithmetic; the fallback for hand-built problems and for
/// scaled-delay masses beyond the int64 budget.
struct rational_howard_domain {
    using weight_type = rational; ///< accumulates cycle delay
    using lambda_type = rational; ///< cycle ratio
    using value_type = rational;  ///< node potential

    const std::vector<rational>& weight;

    [[nodiscard]] weight_type zero_weight() const { return rational(0); }
    [[nodiscard]] lambda_type make_lambda(const weight_type& delay, std::int64_t tokens) const
    {
        return delay / rational(tokens);
    }
    [[nodiscard]] static bool lambda_less(const lambda_type& a, const lambda_type& b)
    {
        return a < b;
    }
    [[nodiscard]] static bool lambda_equal(const lambda_type& a, const lambda_type& b)
    {
        return a == b;
    }
    /// v(u) for policy arc a into a node with potential `succ`, at ratio l.
    [[nodiscard]] value_type step(arc_id a, std::int64_t transit, const lambda_type& l,
                                  const value_type& succ) const
    {
        return weight[a] - l * rational(transit) + succ;
    }
    /// The converged lambda is already the exact rational ratio.
    [[nodiscard]] rational exact_ratio(const ratio_problem&, const lambda_type& l,
                                       const std::vector<arc_id>&) const
    {
        return l;
    }
};

/// Scaled-int64 domain: ratios are reduced fractions over the scaled
/// delays, potentials are int128 values pre-multiplied by the ratio
/// denominator (v_fixed = v * scale * den), so every sweep is integer
/// adds and int128 compares.  Overflow-free by the eligibility budget:
/// |num| <= mass <= 2^62 and den <= total transit <= 2^31 bound every
/// potential by mass * (den + total transit) < 2^95 << 2^127.
struct fixed_howard_domain {
    using weight_type = std::int64_t;
    struct lambda_type {
        std::int64_t num; ///< scaled cycle delay, reduced
        std::int64_t den; ///< cycle tokens, reduced
    };
    using value_type = int128;

    const std::vector<std::int64_t>& weight;

    [[nodiscard]] weight_type zero_weight() const { return 0; }
    [[nodiscard]] lambda_type make_lambda(weight_type delay, std::int64_t tokens) const
    {
        const std::int64_t g = std::gcd(delay < 0 ? -delay : delay, tokens);
        return g > 1 ? lambda_type{delay / g, tokens / g} : lambda_type{delay, tokens};
    }
    [[nodiscard]] static bool lambda_less(const lambda_type& a, const lambda_type& b)
    {
        return static_cast<int128>(a.num) * b.den < static_cast<int128>(b.num) * a.den;
    }
    [[nodiscard]] static bool lambda_equal(const lambda_type& a, const lambda_type& b)
    {
        return a.num == b.num && a.den == b.den; // reduced form
    }
    [[nodiscard]] value_type step(arc_id a, std::int64_t transit, const lambda_type& l,
                                  const value_type& succ) const
    {
        return static_cast<int128>(l.den) * weight[a] -
               static_cast<int128>(l.num) * transit + succ;
    }
    /// Exact unscaling, O(1): ratio = num / (den * scale).  Falls back to
    /// re-summing the witness arcs' rational delays in the (pathological)
    /// case where den * scale leaves int64.
    [[nodiscard]] rational exact_ratio(const ratio_problem& p, const lambda_type& l,
                                       const std::vector<arc_id>& cycle) const
    {
        try {
            return rational(l.num, l.den) / rational(p.scale);
        } catch (const error&) {
            return cycle_ratio(p, cycle);
        }
    }
};

/// True when the scaled-delay domain is present and its magnitudes fit the
/// int128 potential budget documented on fixed_howard_domain.
bool fixed_point_eligible(const ratio_problem& p)
{
    if (p.scale == 0 || p.scaled_delay.size() != p.graph.arc_count()) return false;
    const int128 mass_budget = std::numeric_limits<std::int64_t>::max() / 4;
    int128 mass = 0;
    std::int64_t tokens = 0;
    for (arc_id a = 0; a < p.graph.arc_count(); ++a) {
        const std::int64_t w = p.scaled_delay[a];
        mass += w < 0 ? -static_cast<int128>(w) : w;
        if (p.transit[a] < 0 || p.transit[a] > INT32_MAX - tokens) return false;
        tokens += p.transit[a];
    }
    return mass <= mass_budget;
}

/// Per-iteration state plus reused workspace: the sweeps run per scenario
/// in warm-start batches, so no buffer is reallocated between rounds.
template <typename Domain>
struct value_determination {
    std::vector<typename Domain::lambda_type> lambda; ///< ratio each node reaches
    std::vector<typename Domain::value_type> value;   ///< potential v(u)
    std::vector<arc_id> best_cycle;
    typename Domain::lambda_type best_lambda{};

    std::vector<std::uint8_t> mark; ///< workspace: unvisited/in-progress/done
    std::vector<node_id> path;      ///< workspace: current policy walk
};

/// Computes per-node cycle ratios and potentials for a fixed policy.
template <typename Domain>
void determine_values(const ratio_problem& p, const Domain& domain,
                      const std::vector<arc_id>& policy, value_determination<Domain>& out)
{
    const std::size_t n = p.graph.node_count();
    out.lambda.assign(n, typename Domain::lambda_type{});
    out.value.assign(n, typename Domain::value_type{});

    enum : std::uint8_t { unvisited, in_progress, done };
    out.mark.assign(n, unvisited);

    bool have_best = false;
    for (node_id root = 0; root < n; ++root) {
        if (out.mark[root] != unvisited) continue;

        // Follow the policy until we meet a processed node or close a cycle.
        out.path.clear();
        node_id v = root;
        while (out.mark[v] == unvisited) {
            out.mark[v] = in_progress;
            out.path.push_back(v);
            v = p.graph.to(policy[v]);
        }
        const std::vector<node_id>& path = out.path;

        if (out.mark[v] == in_progress) {
            // Closed a new policy cycle starting at v.
            const auto cycle_begin =
                std::find(path.begin(), path.end(), v) - path.begin();
            typename Domain::weight_type delay = domain.zero_weight();
            std::int64_t tokens = 0;
            for (std::size_t i = static_cast<std::size_t>(cycle_begin); i < path.size(); ++i) {
                const arc_id a = policy[path[i]];
                delay += domain.weight[a];
                tokens += p.transit[a];
            }
            if (tokens <= 0) // message built lazily: this runs per policy cycle
                throw error("max_cycle_ratio_howard: token-free cycle through arc " +
                            std::to_string(policy[path[static_cast<std::size_t>(
                                cycle_begin)]]) +
                            " (graph not live)");
            const auto ratio = domain.make_lambda(delay, tokens);

            // Anchor v(cycle head) = 0 and propagate backwards around the
            // cycle; the sum of (delay - ratio*transit) around it is 0, so
            // the assignment is consistent.
            out.lambda[v] = ratio;
            out.value[v] = typename Domain::value_type{};
            for (std::size_t i = path.size(); i-- > static_cast<std::size_t>(cycle_begin) + 1;) {
                const node_id u = path[i];
                const arc_id a = policy[u];
                const node_id succ = p.graph.to(a);
                out.lambda[u] = ratio;
                out.value[u] = domain.step(a, p.transit[a], ratio, out.value[succ]);
                out.mark[u] = done;
            }
            out.mark[v] = done;

            if (!have_best || Domain::lambda_less(out.best_lambda, ratio)) {
                out.best_lambda = ratio;
                out.best_cycle.assign(path.begin() + cycle_begin, path.end());
                for (arc_id& c : out.best_cycle) c = policy[c];
                have_best = true;
            }

            // Tree prefix before the cycle.
            for (std::size_t i = static_cast<std::size_t>(cycle_begin); i-- > 0;) {
                const node_id u = path[i];
                const arc_id a = policy[u];
                const node_id succ = p.graph.to(a);
                out.lambda[u] = out.lambda[succ];
                out.value[u] = domain.step(a, p.transit[a], out.lambda[u], out.value[succ]);
                out.mark[u] = done;
            }
        } else {
            // Ran into an already-processed region: whole path is a tree.
            for (std::size_t i = path.size(); i-- > 0;) {
                const node_id u = path[i];
                const arc_id a = policy[u];
                const node_id succ = p.graph.to(a);
                out.lambda[u] = out.lambda[succ];
                out.value[u] = domain.step(a, p.transit[a], out.lambda[u], out.value[succ]);
                out.mark[u] = done;
            }
        }
    }
    ensure(have_best, "max_cycle_ratio_howard: no policy cycle found");
}

template <typename Domain>
ratio_result iterate(const ratio_problem& p, const Domain& domain,
                     const howard_options& options, howard_state* state)
{
    const std::size_t n = p.graph.node_count();

    // Initial policy: the warm-start state when it matches this structure
    // (same node count, every entry an out-arc of its node), the first
    // out-arc of every node otherwise.
    std::vector<arc_id> policy(n, invalid_arc);
    bool warm = state != nullptr && state->policy.size() == n;
    for (node_id v = 0; warm && v < n; ++v)
        warm = state->policy[v] < p.graph.arc_count() && p.graph.from(state->policy[v]) == v;
    for (node_id v = 0; v < n; ++v) {
        if (p.graph.out_degree(v) == 0) // message built lazily: hot path
            throw error("max_cycle_ratio_howard: node " + std::to_string(v) +
                        " has no out-arc (graph not strongly connected — solve "
                        "arbitrary graphs through max_cycle_ratio_condensed)");
        policy[v] = warm ? state->policy[v] : p.graph.out_arcs(v)[0];
    }

    const std::size_t automatic_cap =
        100 * n * std::max<std::size_t>(p.graph.arc_count(), 1) + 64;
    const std::size_t cap =
        options.max_iterations > 0 ? options.max_iterations : automatic_cap;
    const std::size_t m = p.graph.arc_count();
    value_determination<Domain> vd;
    determine_values(p, domain, policy, vd);

    for (std::size_t iter = 0; iter < cap; ++iter) {
        // Phase 1: ratio improvement — switch to arcs reaching cycles with
        // strictly larger ratio.  The sweep walks the flat arc arrays
        // (ascending arc ids visit each node's arcs in out_arcs order, and
        // lambda is read-only here, so the decisions match a node-major
        // sweep exactly — without the per-node adjacency indirection).
        bool improved = false;
        for (arc_id a = 0; a < m; ++a) {
            const node_id u = p.graph.from(a);
            if (Domain::lambda_less(vd.lambda[p.graph.to(policy[u])],
                                    vd.lambda[p.graph.to(a)])) {
                policy[u] = a;
                improved = true;
            }
        }

        // Phase 2 (only when ratios are stable): potential improvement among
        // arcs with equal target ratio, Gauss-Seidel in ascending arc order.
        if (!improved) {
            for (arc_id a = 0; a < m; ++a) {
                const node_id u = p.graph.from(a);
                const node_id x = p.graph.to(a);
                if (!Domain::lambda_equal(vd.lambda[x], vd.lambda[u])) continue;
                const auto candidate =
                    domain.step(a, p.transit[a], vd.lambda[u], vd.value[x]);
                if (vd.value[u] < candidate) {
                    policy[u] = a;
                    vd.value[u] = candidate;
                    improved = true;
                }
            }
        }

        if (!improved) {
            if (state != nullptr) state->policy = policy;
            ratio_result result;
            result.ratio = domain.exact_ratio(p, vd.best_lambda, vd.best_cycle);
            result.cycle = std::move(vd.best_cycle);
            result.iterations = static_cast<std::uint32_t>(iter);
            return result;
        }
        determine_values(p, domain, policy, vd);
    }
    require(options.max_iterations == 0,
            "max_cycle_ratio_howard: iteration cap (" + std::to_string(cap) +
                ") exceeded before convergence");
    ensure(false, "max_cycle_ratio_howard: automatic iteration cap exceeded");
    return {};
}

} // namespace

ratio_result max_cycle_ratio_howard(const ratio_problem& p, const howard_options& options,
                                    howard_state* state)
{
    require(p.graph.node_count() > 0, "max_cycle_ratio_howard: empty graph");

    if (fixed_point_eligible(p)) {
        ratio_result result = iterate(p, fixed_howard_domain{p.scaled_delay}, options, state);
        result.fixed_point = true;
        return result;
    }
    return iterate(p, rational_howard_domain{p.delay}, options, state);
}

rational cycle_time_howard(const signal_graph& sg)
{
    return max_cycle_ratio_howard(make_ratio_problem(sg)).ratio;
}

} // namespace tsg
