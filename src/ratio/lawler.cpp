#include "ratio/lawler.h"

#include "graph/longest_path.h"

namespace tsg {

namespace {

/// Any cycle of the problem graph, found by following arbitrary out-arcs
/// until a node repeats.  Exists whenever the graph is strongly connected
/// and non-trivial.
std::vector<arc_id> some_cycle(const ratio_problem& p)
{
    const std::size_t n = p.graph.node_count();
    require(n > 0, "max_cycle_ratio: empty graph");

    std::vector<arc_id> via(n, invalid_arc); // arc used to enter each visited node
    std::vector<bool> visited(n, false);
    node_id v = 0;
    visited[v] = true;
    while (true) {
        require(p.graph.out_degree(v) > 0, "max_cycle_ratio: dead-end node (not strongly connected)");
        const arc_id a = p.graph.out_arcs(v)[0];
        const node_id w = p.graph.to(a);
        if (visited[w]) {
            // Close the cycle from w back to w.
            std::vector<arc_id> cycle{a};
            node_id cur = v;
            while (cur != w) {
                const arc_id back = via[cur];
                cycle.push_back(back);
                cur = p.graph.from(back);
            }
            std::reverse(cycle.begin(), cycle.end());
            return cycle;
        }
        via[w] = a;
        visited[w] = true;
        v = w;
    }
}

std::vector<rational> parametric_weights(const ratio_problem& p, const rational& lambda)
{
    std::vector<rational> w(p.graph.arc_count());
    for (arc_id a = 0; a < p.graph.arc_count(); ++a)
        w[a] = p.delay[a] - lambda * rational(p.transit[a]);
    return w;
}

} // namespace

ratio_result max_cycle_ratio_lawler(const ratio_problem& p)
{
    ratio_result best;
    best.cycle = some_cycle(p);
    best.ratio = cycle_ratio(p, best.cycle);

    // Each round either proves optimality or strictly improves lambda to
    // another cycle's ratio; the set of cycle ratios is finite.
    const std::size_t iteration_cap = 10 * p.graph.arc_count() * p.graph.node_count() + 64;
    for (std::size_t iter = 0; iter < iteration_cap; ++iter) {
        const positive_cycle_result test =
            find_positive_cycle(p.graph, parametric_weights(p, best.ratio));
        if (!test.found) return best;
        const rational improved = cycle_ratio(p, test.cycle);
        ensure(improved > best.ratio, "max_cycle_ratio_lawler: non-improving witness");
        best.ratio = improved;
        best.cycle = test.cycle;
    }
    ensure(false, "max_cycle_ratio_lawler: iteration cap exceeded");
    return best;
}

double max_cycle_ratio_lawler_bisection(const ratio_problem& p, double tolerance)
{
    require(tolerance > 0, "max_cycle_ratio_lawler_bisection: tolerance must be positive");

    // Lower bound: ratio of an arbitrary cycle.  Upper bound: total delay
    // (any simple cycle has delay <= sum of all delays and >= 1 token).
    double lo = cycle_ratio(p, some_cycle(p)).to_double();
    rational total(0);
    for (const rational& d : p.delay) total += d;
    double hi = total.to_double() + 1.0;

    while (hi - lo > tolerance) {
        const double mid = lo + (hi - lo) / 2;
        const positive_cycle_result test =
            find_positive_cycle(p.graph, parametric_weights(p, rational::from_double(mid)));
        if (test.found)
            lo = mid;
        else
            hi = mid;
    }
    return lo + (hi - lo) / 2;
}

rational cycle_time_lawler(const signal_graph& sg)
{
    return max_cycle_ratio_lawler(make_ratio_problem(sg)).ratio;
}

} // namespace tsg
