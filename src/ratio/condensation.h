// SCC condensation driver for the maximum cycle ratio.
//
// Howard's iteration (ratio/howard.h) requires a strongly connected
// problem: every node must reach a policy cycle.  Arbitrary live graphs —
// hand-built ratio problems, graphs with dead-end nodes or acyclic
// bridges — decompose into strongly connected components instead; every
// cycle lies inside one component, so
//
//     max cycle ratio(G) = max over nontrivial SCCs C of max cycle ratio(C)
//
// (an SCC is nontrivial when it has >= 2 nodes or a self-loop).  The
// driver runs Tarjan's decomposition, carves one sub-problem per
// nontrivial component (delays, transit times and the fixed-point domain
// are inherited), solves each with Howard fanned over the util/parallel.h
// thread pool, and takes the maximum.  The reduction is serial in
// component order, so the result — including the witness cycle — is
// identical for every thread count.  A single strongly connected input
// short-circuits to one direct Howard solve with no copies.
#ifndef TSG_RATIO_CONDENSATION_H
#define TSG_RATIO_CONDENSATION_H

#include "ratio/howard.h"
#include "ratio/ratio_problem.h"

namespace tsg {

struct condensation_options {
    /// Thread budget for the per-component fan-out (0 = hardware
    /// concurrency, 1 = serial).  Results are identical for every setting.
    unsigned max_threads = 1;

    howard_options howard;
};

struct condensed_ratio_result {
    rational ratio;            ///< maximum over all components
    std::vector<arc_id> cycle; ///< witness cycle, *original* problem arcs,
                               ///< in causal order
    bool fixed_point = false;  ///< the winning solve ran on scaled int64s

    std::uint32_t component_count = 0;        ///< SCCs in the problem graph
    std::uint32_t cyclic_component_count = 0; ///< nontrivial SCCs solved
    std::uint32_t critical_component = 0;     ///< scc_result id of the winner
};

/// Maximum cycle ratio of an arbitrary live graph.  Throws tsg::error when
/// no component contains a cycle (the condensation is the whole graph —
/// nothing oscillates) or when some cycle carries no token.
[[nodiscard]] condensed_ratio_result max_cycle_ratio_condensed(
    const ratio_problem& p, const condensation_options& options = {});

} // namespace tsg

#endif // TSG_RATIO_CONDENSATION_H
