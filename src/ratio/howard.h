// Howard's policy iteration for the maximum cycle ratio.
//
// Each node selects one out-arc (a "policy"); the policy graph is
// functional, so every node leads into exactly one policy cycle.  Value
// determination computes, per node, the ratio of its policy cycle and a
// potential; policy improvement first switches to arcs reaching
// higher-ratio cycles, then (at equal ratio) to arcs with better potential.
// On strongly connected inputs the fixed point is the maximum cycle ratio,
// reached after remarkably few iterations in practice — the algorithm
// family the paper's related work [8] competes with.
#ifndef TSG_RATIO_HOWARD_H
#define TSG_RATIO_HOWARD_H

#include "ratio/ratio_problem.h"

namespace tsg {

/// Exact maximum cycle ratio with a witness cycle.  Requires a strongly
/// connected, live problem (every cycle carries a token).
[[nodiscard]] ratio_result max_cycle_ratio_howard(const ratio_problem& p);

/// Convenience: the cycle time of a Signal Graph via Howard's iteration.
[[nodiscard]] rational cycle_time_howard(const signal_graph& sg);

} // namespace tsg

#endif // TSG_RATIO_HOWARD_H
