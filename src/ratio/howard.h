// Howard's policy iteration for the maximum cycle ratio.
//
// Each node selects one out-arc (a "policy"); the policy graph is
// functional, so every node leads into exactly one policy cycle.  Value
// determination computes, per node, the ratio of its policy cycle and a
// potential; policy improvement first switches to arcs reaching
// higher-ratio cycles, then (at equal ratio) to arcs with better potential.
// On strongly connected inputs the fixed point is the maximum cycle ratio,
// reached after remarkably few iterations in practice — the algorithm
// family the paper's related work [8] competes with.
//
// Arithmetic domains.  When the problem carries the compiled fixed-point
// delay domain (ratio_problem::scale != 0), the whole iteration runs on
// integers: cycle ratios are reduced int64 fractions over the scaled
// delays, compared by int128 cross multiplication, and potentials are
// int128 values pre-multiplied by the ratio denominator, so a policy sweep
// is integer adds and compares — no rational normalization.  Scaling by
// positive constants preserves every comparison, so the iteration takes
// the *same* decisions as the rational computation and returns the same
// ratio and witness cycle bit for bit.  Hand-built problems (scale == 0)
// and problems whose scaled-delay mass exceeds the overflow budget run the
// rational fallback transparently.
//
// Warm starts.  A howard_state carries the converged policy out of one
// solve and into the next.  When only the delays changed (the scenario
// engine's rebind batches), the previous policy is usually optimal or
// near-optimal and the iteration converges in one or two sweeps; the
// resulting ratio is bit-identical to a cold start (policy iteration is
// start-independent at the fixed point — asserted in debug builds by the
// scenario engine).
//
// Requires a strongly connected, live problem; solve arbitrary graphs
// through max_cycle_ratio_condensed (ratio/condensation.h), which fans
// Howard over the strongly connected components.
#ifndef TSG_RATIO_HOWARD_H
#define TSG_RATIO_HOWARD_H

#include "ratio/ratio_problem.h"

namespace tsg {

struct howard_options {
    /// Policy-improvement round budget; 0 means the automatic cap
    /// (generous: policy iteration converges in far fewer rounds).
    /// Exceeding an explicit cap throws tsg::error; exceeding the
    /// automatic cap is a library bug and throws tsg::internal_error.
    std::size_t max_iterations = 0;
};

/// Warm-start carrier: the converged policy (one out-arc per node) of a
/// previous solve on the *same graph structure*.  A state that does not
/// match the problem (size or arc endpoints) is ignored and overwritten.
struct howard_state {
    std::vector<arc_id> policy;
};

/// Exact maximum cycle ratio with a witness cycle.  Requires a strongly
/// connected, live problem (every cycle carries a token); use
/// max_cycle_ratio_condensed for graphs that are not strongly connected.
/// With a warm-start `state` the converged policy is written back into it
/// on success.
[[nodiscard]] ratio_result max_cycle_ratio_howard(const ratio_problem& p,
                                                  const howard_options& options = {},
                                                  howard_state* state = nullptr);

/// Convenience: the cycle time of a Signal Graph via Howard's iteration.
[[nodiscard]] rational cycle_time_howard(const signal_graph& sg);

} // namespace tsg

#endif // TSG_RATIO_HOWARD_H
