#include "net/connection.h"

#include <cstring>

namespace tsg::net {

bool line_splitter::feed(const char* data, std::size_t n, std::vector<std::string>& out)
{
    if (oversized_) return false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (data[i] != '\n') continue;
        buffer_.append(data + start, i - start);
        start = i + 1;
        if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
        if (max_line_bytes_ != 0 && buffer_.size() > max_line_bytes_) {
            oversized_ = true;
            return false;
        }
        out.push_back(std::move(buffer_));
        buffer_.clear();
    }
    buffer_.append(data + start, n - start);
    if (max_line_bytes_ != 0 && buffer_.size() > max_line_bytes_) {
        oversized_ = true;
        return false;
    }
    return true;
}

} // namespace tsg::net
