#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/api.h"
#include "core/service.h"
#include "util/error.h"

namespace tsg::net {

namespace {

constexpr std::uint64_t k_listener_tag = 0;
constexpr std::uint64_t k_bus_tag = 1;
constexpr std::uint64_t k_drain_tag = 2;

void throw_errno(const char* what)
{
    throw error(std::string(what) + ": " + std::strerror(errno));
}

std::string shed_line(const char* code, const std::string& id, const std::string& message)
{
    analysis_response response;
    response.id = id;
    response.ok = false;
    response.error = {code, message};
    return analysis_response_json(response);
}

std::string overloaded_line(const std::string& id, const std::string& message)
{
    return shed_line("overloaded", id, message);
}

/// eventfd writes are 8 bytes and atomic, but a signal can still
/// interrupt before any byte moves — retry instead of dropping the wake.
/// Async-signal-safe (write(2) plus errno only).
void eventfd_signal(int fd)
{
    const std::uint64_t one = 1;
    for (;;) {
        const ssize_t n = ::write(fd, &one, sizeof(one));
        if (n >= 0 || errno != EINTR) return; // EAGAIN: the counter is already hot
    }
}

void eventfd_drain(int fd)
{
    std::uint64_t value = 0;
    while (::read(fd, &value, sizeof(value)) < 0 && errno == EINTR) {
    }
}

} // namespace

/// The hand-off between worker threads and the loop.  Workers post
/// completed response lines here and poke the eventfd; the loop drains
/// on wakeup.  Held by shared_ptr from every in-flight callback, so a
/// completion that outlives the server finds `open == false` and drops
/// harmlessly instead of touching freed loop state.
struct event_loop_server::completion_bus {
    struct completion {
        std::uint64_t conn_id;
        std::uint64_t seq;
        std::string line;
    };

    std::mutex mutex;
    std::vector<completion> items;
    int efd = -1;
    bool open = true;

    ~completion_bus()
    {
        if (efd >= 0) ::close(efd);
    }

    void post(std::uint64_t conn_id, std::uint64_t seq, std::string line)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!open) return;
        items.push_back({conn_id, seq, std::move(line)});
        eventfd_signal(efd);
    }

    void wake()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!open) return;
        eventfd_signal(efd);
    }

    void close_bus()
    {
        std::lock_guard<std::mutex> lock(mutex);
        open = false;
        items.clear();
    }
};

struct event_loop_server::counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> drain_rejected{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::size_t> active{0};
    std::atomic<std::uint64_t> idle{0};
    std::atomic<std::uint64_t> slow{0};
    std::atomic<std::uint64_t> oversized{0};
    std::atomic<std::uint64_t> lines_in{0};
    std::atomic<std::uint64_t> parse_errors{0};
    std::atomic<std::uint64_t> responses_out{0};
    std::atomic<std::uint64_t> responses_dropped{0};
    std::atomic<std::uint64_t> reads_paused{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> sends{0};
    std::atomic<std::uint64_t> batched_lines{0};
};

event_loop_server::event_loop_server(analysis_service& service, event_loop_options options)
    : service_(service), options_(options), counters_(std::make_unique<counters>())
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw_errno("socket");

    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
    addr.sin_port = ::htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        throw_errno("bind");
    }
    if (::listen(listen_fd_, options_.listen_backlog) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        throw_errno("listen");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
        port_ = ::ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        throw_errno("epoll_create1");
    }

    bus_ = std::make_shared<completion_bus>();
    bus_->efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    drain_efd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (bus_->efd < 0 || drain_efd_ < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        ::close(epoll_fd_);
        if (drain_efd_ >= 0) ::close(drain_efd_);
        listen_fd_ = epoll_fd_ = drain_efd_ = -1;
        errno = saved;
        throw_errno("eventfd");
    }

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = k_listener_tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) throw_errno("epoll_ctl");
    ev.data.u64 = k_bus_tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, bus_->efd, &ev) != 0) throw_errno("epoll_ctl");
    ev.data.u64 = k_drain_tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, drain_efd_, &ev) != 0) throw_errno("epoll_ctl");
}

event_loop_server::~event_loop_server()
{
    stop();
    if (bus_) bus_->close_bus();
    for (auto& [id, conn] : conns_) ::close(conn->fd());
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (drain_efd_ >= 0) ::close(drain_efd_);
}

void event_loop_server::begin_drain()
{
    draining_.store(true, std::memory_order_release);
    if (drain_efd_ >= 0) eventfd_signal(drain_efd_);
}

void event_loop_server::start()
{
    thread_ = std::thread([this] { run(); });
}

void event_loop_server::stop()
{
    stop_.store(true, std::memory_order_release);
    if (bus_) bus_->wake();
    if (thread_.joinable()) thread_.join();
}

void event_loop_server::run()
{
    epoll_event events[64];
    while (!stop_.load(std::memory_order_acquire)) {
        // A finite wait keeps the idle/slow sweep running even when the
        // sockets are silent; an empty server can sleep longer.  A drain
        // in progress polls fast so completion is observed promptly.
        const int timeout_ms =
            drain_armed_ ? 10
                         : (conns_.empty() || options_.idle_timeout.count() <= 0 ? 200 : 50);
        const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t tag = events[i].data.u64;
            if (tag == k_listener_tag) {
                accept_ready();
            } else if (tag == k_bus_tag) {
                eventfd_drain(bus_->efd);
                drain_completions();
            } else if (tag == k_drain_tag) {
                eventfd_drain(drain_efd_);
                if (!drain_armed_) {
                    drain_armed_ = true;
                    drain_deadline_ =
                        std::chrono::steady_clock::now() + options_.drain_timeout;
                    // The service refuses new work with "draining" from
                    // here on; everything already queued keeps running.
                    service_.begin_drain();
                }
            } else {
                handle_io(tag, events[i].events);
            }
        }
        sweep_timeouts();
        if (drain_armed_ &&
            (drain_complete() || std::chrono::steady_clock::now() >= drain_deadline_))
            break;
    }

    // Teardown on the loop thread: close the bus first so worker
    // callbacks racing with this shutdown drop their completions instead
    // of queueing into a server being torn down.
    bus_->close_bus();
    for (auto& [id, conn] : conns_) ::close(conn->fd());
    conns_.clear();
    counters_->active.store(0, std::memory_order_relaxed);
    finished_.store(true, std::memory_order_release);
}

bool event_loop_server::drain_complete()
{
    const auto busy = [](connection& conn) {
        return conn.has_pending_slots() || !conn.backlog().empty() || conn.unsent() > 0;
    };
    for (const auto& [id, conn] : conns_)
        if (busy(*conn)) return false;

    // Quiet sockets may still hide request bytes in kernel buffers that
    // epoll has reported but this iteration has not read.  Pull them now:
    // any line surfaced gets its structured "draining" answer before the
    // loop is allowed to exit.
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it != conns_.end()) read_some(*it->second);
    }
    for (const auto& [id, conn] : conns_)
        if (busy(*conn)) return false;
    return true;
}

void event_loop_server::accept_ready()
{
    for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return; // EAGAIN or a transient accept error: back to the loop
        }
        if (drain_armed_) {
            // A draining daemon still answers the door — with a structured
            // refusal a retrying client can act on, not a silent RST.
            const std::string line =
                shed_line("draining", "",
                          "the analysis service is draining for shutdown; retry "
                          "against another instance") +
                "\n";
            [[maybe_unused]] ssize_t n =
                ::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
            ::close(fd);
            counters_->drain_rejected.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (conns_.size() >= options_.max_connections) {
            // Best effort: tell the client why before hanging up.
            const std::string line =
                overloaded_line("", "connection limit reached (" +
                                        std::to_string(options_.max_connections) +
                                        "); retry later") +
                "\n";
            [[maybe_unused]] ssize_t n =
                ::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
            ::close(fd);
            counters_->rejected.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (options_.so_sndbuf > 0)
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                         sizeof(options_.so_sndbuf));
        const std::uint64_t id = next_conn_id_++;
        auto conn = std::make_unique<connection>(fd, id, options_.limits);
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conns_.emplace(id, std::move(conn));
        counters_->accepted.fetch_add(1, std::memory_order_relaxed);
        counters_->active.store(conns_.size(), std::memory_order_relaxed);
    }
}

void event_loop_server::handle_io(std::uint64_t conn_id, std::uint32_t events)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    connection& conn = *it->second;

    if (events & (EPOLLHUP | EPOLLERR)) {
        close_conn(conn_id);
        return;
    }
    if (events & EPOLLOUT) {
        if (!flush_writes(conn)) return;
        update_flow(conn);
        if (conns_.find(conn_id) == conns_.end()) return;
    }
    if (events & (EPOLLIN | EPOLLRDHUP)) read_some(conn);
}

void event_loop_server::read_some(connection& conn)
{
    const std::uint64_t conn_id = conn.id();
    char buf[16384];
    bool peer_closed = false;
    for (;;) {
        if (conn.paused_read) break;
        const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
        if (n > 0) {
            counters_->bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                          std::memory_order_relaxed);
            conn.touch();
            std::vector<std::string> lines;
            const bool ok = conn.splitter().feed(buf, static_cast<std::size_t>(n), lines);
            counters_->lines_in.fetch_add(lines.size(), std::memory_order_relaxed);
            for (std::string& line : lines) conn.backlog().push_back(std::move(line));
            if (!ok) {
                // Framing is unrecoverable past the bound: answer with one
                // structured error and hang up.  Lines completed before
                // the oversize are abandoned with the connection — their
                // responses could not be ordered against the poisoned tail.
                counters_->oversized.fetch_add(1, std::memory_order_relaxed);
                fail_conn(conn, "bad_request",
                          "request line exceeds " +
                              std::to_string(conn.limits().max_line_bytes) +
                              " bytes; closing connection");
                return;
            }
            update_flow(conn);
            if (conns_.find(conn_id) == conns_.end()) return;
            continue;
        }
        if (n == 0) {
            peer_closed = true;
            break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn_id);
        return;
    }
    if (peer_closed) {
        conn.read_closed = true;
        update_flow(conn);
        if (conns_.find(conn_id) == conns_.end()) return;
        maybe_close_finished(conn);
    }
}

void event_loop_server::process_backlog(connection& conn)
{
    while (!conn.backlog().empty() && !conn.at_inflight_cap()) {
        std::string line = std::move(conn.backlog().front());
        conn.backlog().pop_front();
        if (line.find_first_not_of(" \t") == std::string::npos) continue;

        const std::uint64_t seq = conn.open_slot();
        analysis_request request;
        bool parsed = false;
        analysis_response err_response;
        try {
            request = parse_analysis_request(line);
            parsed = true;
        } catch (const error& e) {
            counters_->parse_errors.fetch_add(1, std::memory_order_relaxed);
            err_response.error = classify_error(e.what(), "bad_request");
        } catch (const std::exception& e) {
            counters_->parse_errors.fetch_add(1, std::memory_order_relaxed);
            err_response.error = {"internal", e.what()};
        }
        if (!parsed) {
            conn.complete_slot(seq, analysis_response_json(err_response));
            continue;
        }

        // Per-connection request-rate limit.  Probe kinds are exempt: a
        // load balancer's health checks must not compete with the client
        // traffic they supervise.
        if (request.kind != request_kind::health && request.kind != request_kind::stats) {
            const std::uint64_t retry_ms = conn.take_rate_token();
            if (retry_ms > 0) {
                analysis_response limited;
                limited.id = request.id;
                limited.ok = false;
                limited.error = {"rate_limited",
                                 "connection request rate exceeds " +
                                     std::to_string(conn.limits().max_requests_per_second) +
                                     " requests/s; retry after the hinted backoff",
                                 retry_ms};
                conn.complete_slot(seq, analysis_response_json(limited));
                continue;
            }
        }

        const std::string request_id = request.id;
        auto bus = bus_;
        const std::uint64_t conn_id = conn.id();
        const auto refusal = service_.submit_async(
            std::move(request), [bus, conn_id, seq](analysis_response response) {
                bus->post(conn_id, seq, analysis_response_json(response));
            });
        if (refusal) {
            // Admission control shed it: the callback never runs, the
            // loop answers the slot directly — shedding costs no hand-off.
            analysis_response shed;
            shed.id = request_id;
            shed.error = *refusal;
            conn.complete_slot(seq, analysis_response_json(shed));
        }
    }
}

void event_loop_server::flush_ready(connection& conn)
{
    const std::size_t appended = conn.collect_ready();
    if (appended == 0) {
        maybe_close_finished(conn);
        return;
    }
    counters_->responses_out.fetch_add(appended, std::memory_order_relaxed);
    if (appended > 1)
        counters_->batched_lines.fetch_add(appended, std::memory_order_relaxed);
    if (flush_writes(conn)) maybe_close_finished(conn);
}

bool event_loop_server::flush_writes(connection& conn)
{
    const std::uint64_t conn_id = conn.id();
    while (conn.unsent() > 0) {
        const ssize_t n = ::send(conn.fd(), conn.send_data(), conn.unsent(), MSG_NOSIGNAL);
        if (n > 0) {
            counters_->bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                           std::memory_order_relaxed);
            counters_->sends.fetch_add(1, std::memory_order_relaxed);
            conn.consumed(static_cast<std::size_t>(n));
            conn.touch();
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn_id); // EPIPE / ECONNRESET / ...: the peer is gone
        return false;
    }
    if (conn.unsent() > 0) {
        if (conn.over_write_cap()) {
            // The reader is slower than its own request stream allows;
            // drop it rather than buffer its responses without bound.
            counters_->slow.fetch_add(1, std::memory_order_relaxed);
            close_conn(conn_id);
            return false;
        }
        if (!conn.want_write) {
            conn.want_write = true;
            update_interest(conn);
        }
    } else if (conn.want_write) {
        conn.want_write = false;
        update_interest(conn);
    }
    return true;
}

void event_loop_server::update_flow(connection& conn)
{
    const std::uint64_t conn_id = conn.id();
    process_backlog(conn);
    flush_ready(conn);
    if (conns_.find(conn_id) == conns_.end()) return;

    // Pause reading while the connection is saturated: the in-flight cap
    // is reached (or parsed lines are still waiting on it), or the peer
    // half-closed.  TCP pushes the backpressure to the client.
    const bool should_pause =
        conn.read_closed || conn.at_inflight_cap() || !conn.backlog().empty();
    if (should_pause != conn.paused_read) {
        if (should_pause) counters_->reads_paused.fetch_add(1, std::memory_order_relaxed);
        conn.paused_read = should_pause;
        update_interest(conn);
    }
}

void event_loop_server::update_interest(connection& conn)
{
    epoll_event ev{};
    ev.events = (conn.paused_read ? 0u : (EPOLLIN | EPOLLRDHUP)) |
                (conn.want_write ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd(), &ev);
}

void event_loop_server::maybe_close_finished(connection& conn)
{
    if (conn.read_closed && !conn.has_pending_slots() && conn.backlog().empty() &&
        conn.unsent() == 0)
        close_conn(conn.id());
}

void event_loop_server::close_conn(std::uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd(), nullptr);
    ::close(it->second->fd());
    conns_.erase(it);
    counters_->closed.fetch_add(1, std::memory_order_relaxed);
    counters_->active.store(conns_.size(), std::memory_order_relaxed);
}

void event_loop_server::fail_conn(connection& conn, const char* code,
                                  const std::string& message)
{
    analysis_response response;
    response.error = {code, message};
    conn.write_buffer().append(analysis_response_json(response));
    conn.write_buffer().push_back('\n');
    counters_->responses_out.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t conn_id = conn.id();
    if (flush_writes(conn)) close_conn(conn_id);
}

void event_loop_server::sweep_timeouts()
{
    if (options_.idle_timeout.count() <= 0 || conns_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> drop;
    for (const auto& [id, conn] : conns_) {
        // A connection waiting on its own in-flight work is the server's
        // debt, not the client's silence — unless it is also refusing to
        // read what it is already owed.
        const bool waiting_on_us = conn->has_pending_slots() && conn->unsent() == 0;
        if (waiting_on_us) continue;
        if (now - conn->last_activity() > options_.idle_timeout) drop.push_back(id);
    }
    for (const std::uint64_t id : drop) {
        counters_->idle.fetch_add(1, std::memory_order_relaxed);
        close_conn(id);
    }
}

void event_loop_server::drain_completions()
{
    std::vector<completion_bus::completion> items;
    {
        std::lock_guard<std::mutex> lock(bus_->mutex);
        items.swap(bus_->items);
    }
    std::vector<std::uint64_t> touched;
    for (completion_bus::completion& item : items) {
        auto it = conns_.find(item.conn_id);
        if (it == conns_.end() || !it->second->complete_slot(item.seq, std::move(item.line))) {
            counters_->responses_dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        touched.push_back(item.conn_id);
    }
    for (const std::uint64_t id : touched) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue; // closed by an earlier flush
        update_flow(*it->second);
    }
}

event_loop_metrics event_loop_server::metrics() const
{
    event_loop_metrics m;
    m.connections_accepted = counters_->accepted.load(std::memory_order_relaxed);
    m.connections_rejected = counters_->rejected.load(std::memory_order_relaxed);
    m.connections_drain_rejected =
        counters_->drain_rejected.load(std::memory_order_relaxed);
    m.connections_closed = counters_->closed.load(std::memory_order_relaxed);
    m.connections_active = counters_->active.load(std::memory_order_relaxed);
    m.disconnects_idle = counters_->idle.load(std::memory_order_relaxed);
    m.disconnects_slow = counters_->slow.load(std::memory_order_relaxed);
    m.disconnects_oversized = counters_->oversized.load(std::memory_order_relaxed);
    m.lines_in = counters_->lines_in.load(std::memory_order_relaxed);
    m.parse_errors = counters_->parse_errors.load(std::memory_order_relaxed);
    m.responses_out = counters_->responses_out.load(std::memory_order_relaxed);
    m.responses_dropped = counters_->responses_dropped.load(std::memory_order_relaxed);
    m.reads_paused = counters_->reads_paused.load(std::memory_order_relaxed);
    m.bytes_in = counters_->bytes_in.load(std::memory_order_relaxed);
    m.bytes_out = counters_->bytes_out.load(std::memory_order_relaxed);
    m.sends = counters_->sends.load(std::memory_order_relaxed);
    m.batched_lines = counters_->batched_lines.load(std::memory_order_relaxed);
    return m;
}

} // namespace tsg::net
