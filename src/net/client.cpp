#include "net/client.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.h"
#include "util/json.h"

namespace tsg::net {

namespace {

/// Pulls the pieces the retry policy needs out of one response line.
/// A line that fails to parse as a response document is treated as an
/// internal error (the daemon never emits one — a mangled line means the
/// stream is broken and the caller will see the loss on the next read).
analysis_response parse_response_line(const std::string& line)
{
    analysis_response response;
    try {
        const json_value doc = json_parse(line, "response");
        if (const json_value* id = doc.find("id")) response.id = id->text;
        if (const json_value* ok = doc.find("ok")) response.ok = ok->boolean;
        if (const json_value* version = doc.find("design_version"))
            response.design_version = std::strtoull(version->text.c_str(), nullptr, 10);
        if (const json_value* scenarios = doc.find("scenarios"))
            response.scenarios = std::strtoull(scenarios->text.c_str(), nullptr, 10);
        if (const json_value* coalesced = doc.find("coalesced"))
            response.coalesced = coalesced->boolean;
        if (const json_value* elapsed = doc.find("elapsed_ms"))
            response.elapsed_ms = std::strtod(elapsed->text.c_str(), nullptr);
        if (response.ok) {
            if (const json_value* payload = doc.find("payload"))
                response.payload = payload->write();
        } else if (const json_value* err = doc.find("error")) {
            if (const json_value* code = err->find("code")) response.error.code = code->text;
            if (const json_value* message = err->find("message"))
                response.error.message = message->text;
            if (const json_value* retry = err->find("retry_after_ms"))
                response.error.retry_after_ms =
                    std::strtoull(retry->text.c_str(), nullptr, 10);
        }
    } catch (const std::exception& e) {
        response.ok = false;
        response.error = {"internal", std::string("unparseable response line: ") + e.what()};
    }
    return response;
}

} // namespace

client::client(client_options options)
    : options_(options), jitter_(options.jitter_seed)
{
}

client::~client() { disconnect(); }

bool client::retryable(const api_error& error)
{
    // draining: this instance is going away, but a restart (or a peer
    // behind the same balancer) will take the request.  deadline_exceeded
    // is terminal by design — the time the retry would spend has already
    // run out once.
    return error.code == "overloaded" || error.code == "rate_limited" ||
           error.code == "draining";
}

void client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    read_buffer_.clear();
}

bool client::ensure_connected()
{
    if (fd_ >= 0) return true;
    const auto deadline = std::chrono::steady_clock::now() + options_.dial_timeout;
    for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) return false;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
        addr.sin_port = ::htons(options_.port);
        int rc;
        do {
            rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
        } while (rc != 0 && errno == EINTR);
        if (rc == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            fd_ = fd;
            return true;
        }
        ::close(fd);
        // Loopback dials fail fast (ECONNREFUSED while the daemon is
        // restarting); poll the listener until the dial budget runs out.
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

bool client::send_line(const std::string& line)
{
    if (fd_ < 0) return false;
    std::size_t sent = 0;
    while (sent < line.size()) {
        const ssize_t n =
            ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        disconnect();
        return false;
    }
    return true;
}

bool client::read_line(std::string& line)
{
    if (fd_ < 0) return false;
    const auto deadline = std::chrono::steady_clock::now() + options_.response_timeout;
    for (;;) {
        const std::size_t pos = read_buffer_.find('\n');
        if (pos != std::string::npos) {
            line = read_buffer_.substr(0, pos);
            read_buffer_.erase(0, pos + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            return true;
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            disconnect();
            return false;
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int remaining_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count() +
            1);
        const int pr = ::poll(&pfd, 1, remaining_ms);
        if (pr < 0) {
            if (errno == EINTR) continue;
            disconnect();
            return false;
        }
        if (pr == 0) {
            disconnect();
            return false;
        }
        char buf[16384];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            read_buffer_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        disconnect(); // EOF or a hard error: the connection is gone
        return false;
    }
}

std::chrono::milliseconds client::backoff_delay(unsigned attempt, std::uint64_t hint_ms)
{
    const auto base = static_cast<double>(options_.backoff_base.count());
    const double exp = base * static_cast<double>(1ULL << std::min(attempt, 20u));
    const double capped = std::min(exp, static_cast<double>(options_.backoff_cap.count()));
    // Jitter in [0.5, 1.0]: desynchronizes a fleet of retrying clients
    // without ever collapsing the wait to zero.
    const double jittered = capped * (0.5 + 0.5 * jitter_.uniform01());
    const double with_hint = std::max(jittered, static_cast<double>(hint_ms));
    return std::chrono::milliseconds(static_cast<std::int64_t>(with_hint));
}

call_outcome client::call(const analysis_request& request)
{
    const std::string line = analysis_request_json(request).write() + "\n";
    const auto started = std::chrono::steady_clock::now();
    call_outcome outcome;
    ++metrics_.requests;

    for (unsigned attempt = 1;; ++attempt) {
        outcome.attempts = attempt;
        std::uint64_t hint_ms = 0;
        bool lost = false;

        if (!ensure_connected()) {
            lost = true;
        } else {
            if (!send_line(line) || !read_line(outcome.response.payload)) {
                lost = true;
            } else {
                outcome.response = parse_response_line(outcome.response.payload);
                ++metrics_.responses;
                if (outcome.response.ok || !retryable(outcome.response.error)) break;
                ++outcome.sheds;
                ++metrics_.sheds_seen;
                hint_ms = outcome.response.error.retry_after_ms;
            }
        }
        if (lost) {
            ++outcome.reconnects;
            ++metrics_.reconnects;
            outcome.response.ok = false;
            outcome.response.id = request.id;
            outcome.response.error = {"internal", "connection lost before a response"};
        }
        if (attempt >= options_.max_attempts) {
            ++metrics_.gave_up;
            break;
        }
        ++metrics_.retries;
        std::this_thread::sleep_for(backoff_delay(attempt, hint_ms));
    }
    outcome.latency_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started)
                             .count();
    return outcome;
}

/// One request of a call_many batch: where it is in its retry life.
struct client::slot {
    std::size_t index = 0; ///< position in the input (and output) vector
    std::string line;      ///< serialized request, reused across attempts
    unsigned attempts = 0;
    unsigned sheds = 0;
    unsigned reconnects = 0;
    std::chrono::steady_clock::time_point eligible{}; ///< earliest next send
    std::chrono::steady_clock::time_point started{};
};

std::vector<call_outcome> client::call_many(const std::vector<analysis_request>& requests)
{
    std::vector<call_outcome> outcomes(requests.size());
    if (requests.empty()) return outcomes;
    metrics_.requests += requests.size();

    const auto now0 = std::chrono::steady_clock::now();
    std::deque<slot> sendq;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        slot s;
        s.index = i;
        s.line = analysis_request_json(requests[i]).write() + "\n";
        s.eligible = now0;
        s.started = now0;
        sendq.push_back(std::move(s));
    }
    std::deque<slot> outstanding; ///< FIFO: responses match in send order
    std::size_t unresolved = requests.size();

    const auto resolve = [&](slot& s, analysis_response response) {
        call_outcome& outcome = outcomes[s.index];
        outcome.response = std::move(response);
        outcome.attempts = s.attempts;
        outcome.sheds = s.sheds;
        outcome.reconnects = s.reconnects;
        outcome.latency_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - s.started)
                                 .count();
        --unresolved;
    };
    const auto requeue_or_give_up = [&](slot s, const analysis_response& last,
                                        std::uint64_t hint_ms) {
        if (s.attempts >= options_.max_attempts) {
            ++metrics_.gave_up;
            resolve(s, last);
            return;
        }
        ++metrics_.retries;
        s.eligible = std::chrono::steady_clock::now() + backoff_delay(s.attempts, hint_ms);
        sendq.push_back(std::move(s));
    };

    while (unresolved > 0) {
        const auto now = std::chrono::steady_clock::now();

        // Fill the pipeline with every eligible queued request.
        bool sent_any = false;
        for (auto it = sendq.begin();
             it != sendq.end() && outstanding.size() < options_.max_pipeline;) {
            if (it->eligible > now) {
                ++it;
                continue;
            }
            slot s = std::move(*it);
            it = sendq.erase(it);
            ++s.attempts;
            if (!ensure_connected() || !send_line(s.line)) {
                ++s.reconnects;
                ++metrics_.reconnects;
                analysis_response lost;
                lost.ok = false;
                lost.error = {"internal", "connection lost before a response"};
                requeue_or_give_up(std::move(s), lost, 0);
                break; // the connection is down; let the loop re-dial
            }
            outstanding.push_back(std::move(s));
            sent_any = true;
        }

        if (!outstanding.empty()) {
            std::string line;
            if (!read_line(line)) {
                // The connection died with work in flight: the daemon
                // answers everything it accepts, so unanswered means
                // unaccepted — every outstanding request retries.
                while (!outstanding.empty()) {
                    slot s = std::move(outstanding.front());
                    outstanding.pop_front();
                    ++s.reconnects;
                    ++metrics_.reconnects;
                    analysis_response lost;
                    lost.ok = false;
                    lost.error = {"internal", "connection lost before a response"};
                    requeue_or_give_up(std::move(s), lost, 0);
                }
                continue;
            }
            analysis_response response = parse_response_line(line);
            ++metrics_.responses;
            slot s = std::move(outstanding.front());
            outstanding.pop_front();
            if (response.ok || !retryable(response.error)) {
                resolve(s, std::move(response));
            } else {
                ++s.sheds;
                ++metrics_.sheds_seen;
                const std::uint64_t hint = response.error.retry_after_ms;
                requeue_or_give_up(std::move(s), response, hint);
            }
            continue;
        }

        if (!sent_any && !sendq.empty()) {
            // Everything is backing off: sleep until the earliest slot.
            auto earliest = sendq.front().eligible;
            for (const slot& s : sendq) earliest = std::min(earliest, s.eligible);
            const auto wake = std::max(earliest, now + std::chrono::milliseconds(1));
            std::this_thread::sleep_until(wake);
        }
    }
    return outcomes;
}

} // namespace tsg::net
