// The serving transport: a single-threaded epoll event loop feeding the
// analysis service's worker pool.
//
// PR 7's daemon spent one blocking thread per connection; this loop
// serves every connection from one thread with non-blocking sockets, so
// connection count stops being a thread count and the worker pool stays
// the only place analysis work runs — execution is unchanged and
// bit-identical, only the transport moved:
//
//   read  -> incremental NDJSON framing (net/connection.h) -> parse ->
//   analysis_service::submit_async() -> worker completes -> completion
//   bus (eventfd) wakes the loop -> ordered response slot -> batched
//   send()
//
// Degradation paths are all structured, bounded and counted — the
// contract the fault-injection tests pin:
//
//   * malformed line        -> one "bad_request" response, connection lives;
//   * oversized line        -> one error response, connection closed
//                              (framing is unrecoverable past the bound);
//   * service queue full    -> "overloaded" response straight from the
//                              loop (admission control's shed path, no
//                              thread handoff);
//   * per-connection in-flight cap -> reading pauses (EPOLLIN off) until
//                              responses drain: TCP backpressure reaches
//                              the client instead of buffering its burst;
//   * slow reader           -> write buffer hits its cap -> disconnect;
//   * idle / stalled client -> timeout disconnect;
//   * disconnect mid-flight -> late completions are dropped by id, the
//                              connection slot is reclaimed immediately.
//
// Responses leave in request order per connection (a worker-pool race
// never reorders a pipelined client's replies), and every wakeup ships
// all ready lines in as few send() calls as the socket accepts.
#ifndef TSG_NET_EVENT_LOOP_H
#define TSG_NET_EVENT_LOOP_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>

#include "net/connection.h"

namespace tsg {
class analysis_service;
}

namespace tsg::net {

struct event_loop_options {
    /// 127.0.0.1 listening port; 0 binds an ephemeral port (port()
    /// reports the bound one — the test harness's mode).
    std::uint16_t port = 0;
    int listen_backlog = 64;

    /// Accepted connections beyond this are answered with one
    /// "overloaded" error line and closed immediately.
    std::size_t max_connections = 256;

    /// Per-connection bounds (line size, write buffer, in-flight cap).
    connection_limits limits;

    /// When nonzero, each accepted socket's kernel send buffer is shrunk
    /// to this many bytes (SO_SNDBUF) — the fault-injection tests use it
    /// to exercise the write-buffer cap without megabytes of traffic.
    int so_sndbuf = 0;

    /// A connection is dropped when it neither sends nor accepts bytes
    /// for this long while nothing is owed to it (or while it refuses to
    /// read what it is owed).  0 disables the sweep.
    std::chrono::milliseconds idle_timeout{30000};

    /// Graceful-drain budget: after begin_drain() the loop keeps serving
    /// until every connection's in-flight work has flushed, but no longer
    /// than this before it exits anyway.
    std::chrono::milliseconds drain_timeout{5000};
};

/// One consistent snapshot of the transport counters.
struct event_loop_metrics {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0; ///< over max_connections
    std::uint64_t connections_drain_rejected = 0; ///< refused while draining
    std::uint64_t connections_closed = 0;
    std::size_t connections_active = 0;

    std::uint64_t disconnects_idle = 0;
    std::uint64_t disconnects_slow = 0;      ///< write-buffer cap exceeded
    std::uint64_t disconnects_oversized = 0; ///< request line over the bound

    std::uint64_t lines_in = 0;      ///< complete request lines framed
    std::uint64_t parse_errors = 0;  ///< lines answered with a codec error
    std::uint64_t responses_out = 0; ///< response lines written
    std::uint64_t responses_dropped = 0; ///< completed after their connection died
    std::uint64_t reads_paused = 0;  ///< in-flight cap pauses (transitions)

    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t sends = 0;          ///< send() calls that moved bytes
    std::uint64_t batched_lines = 0;  ///< response lines that shared a flush
};

/// The epoll transport.  Construction binds and listens (throws
/// tsg::error on failure); run() blocks serving until stop(), start()
/// runs the same loop on an owned background thread.  metrics() is
/// thread-safe; everything else belongs to the owner.
class event_loop_server {
public:
    explicit event_loop_server(analysis_service& service,
                               event_loop_options options = {});
    ~event_loop_server();

    event_loop_server(const event_loop_server&) = delete;
    event_loop_server& operator=(const event_loop_server&) = delete;

    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Serves until stop().  Call at most once (directly or via start()).
    void run();

    /// run() on an owned background thread (joined by stop()/destruction).
    void start();

    /// Signals the loop to exit and joins the start() thread if any.
    /// Idempotent; safe from any thread.
    void stop();

    /// Graceful drain: flips the service into its draining state, keeps
    /// answering new lines with structured "draining" errors, finishes
    /// and flushes all in-flight work, then exits run() — no later than
    /// options.drain_timeout after the call.  Async-signal-safe (an
    /// atomic store plus an eventfd write), so SIGTERM handlers may call
    /// it directly.  Idempotent.
    void begin_drain();
    [[nodiscard]] bool draining() const { return draining_.load(std::memory_order_acquire); }

    /// True once run() has returned (the drain completed or stop() was
    /// honoured) — the harness's "the daemon is gone" observation point.
    [[nodiscard]] bool finished() const { return finished_.load(std::memory_order_acquire); }

    [[nodiscard]] event_loop_metrics metrics() const;

private:
    struct completion_bus;
    struct counters;

    void accept_ready();
    void drain_completions();
    void handle_io(std::uint64_t conn_id, std::uint32_t events);
    void read_some(connection& conn);
    void process_backlog(connection& conn);
    void flush_ready(connection& conn);
    /// False when the connection was closed by the attempt.
    bool flush_writes(connection& conn);
    void update_flow(connection& conn);
    void update_interest(connection& conn);
    void maybe_close_finished(connection& conn);
    void close_conn(std::uint64_t conn_id);
    void fail_conn(connection& conn, const char* code, const std::string& message);
    void sweep_timeouts();
    /// True when, with the drain armed, no connection holds in-flight
    /// slots, unparsed backlog or unsent bytes — including bytes still
    /// sitting unread in kernel buffers (a final read sweep pulls them).
    [[nodiscard]] bool drain_complete();

    analysis_service& service_;
    event_loop_options options_;

    int epoll_fd_ = -1;
    int listen_fd_ = -1;
    int drain_efd_ = -1;
    std::uint16_t port_ = 0;

    std::shared_ptr<completion_bus> bus_;
    std::unordered_map<std::uint64_t, std::unique_ptr<connection>> conns_;
    std::uint64_t next_conn_id_ = 3; ///< 0/1/2 tag listener, bus and drain fd

    std::atomic<bool> stop_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> finished_{false};
    /// Loop-thread drain state: armed on the first drain event, after
    /// which the loop winds down toward the deadline.
    bool drain_armed_ = false;
    std::chrono::steady_clock::time_point drain_deadline_{};
    std::thread thread_;

    std::unique_ptr<counters> counters_;
};

} // namespace tsg::net

#endif // TSG_NET_EVENT_LOOP_H
