// A bidirectional std::streambuf over one file descriptor, so the
// service's iostream transport (core/service.h: serve_stream) runs
// unchanged over a socket or pipe.
//
// This is the legacy thread-per-connection transport's buffer (the epoll
// loop in net/event_loop.h manages its own buffers), hardened against the
// failure modes a real peer produces:
//
//   * writes go through send(MSG_NOSIGNAL) on sockets — a peer that
//     closed mid-response yields EPIPE instead of a process-killing
//     SIGPIPE (plain write() is the fallback for non-socket fds, where
//     the caller is expected to ignore SIGPIPE);
//   * short writes are completed in a loop, EINTR retries transparently;
//   * a dead peer (EPIPE/ECONNRESET/any write error) fails the streambuf,
//     which fails the ostream, which stops serve_stream — the connection
//     thread unwinds instead of spinning on a corpse.
#ifndef TSG_NET_FD_STREAM_H
#define TSG_NET_FD_STREAM_H

#include <cerrno>
#include <cstddef>
#include <streambuf>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tsg::net {

class fd_streambuf : public std::streambuf {
public:
    explicit fd_streambuf(int fd) : fd_(fd)
    {
        setg(in_, in_, in_);
        setp(out_, out_ + sizeof(out_));
        struct stat st{};
        socket_ = ::fstat(fd, &st) == 0 && S_ISSOCK(st.st_mode);
    }

protected:
    int_type underflow() override
    {
        ssize_t n;
        do {
            n = ::read(fd_, in_, sizeof(in_));
        } while (n < 0 && errno == EINTR);
        if (n <= 0) return traits_type::eof();
        setg(in_, in_, in_ + n);
        return traits_type::to_int_type(in_[0]);
    }

    int_type overflow(int_type ch) override
    {
        if (flush_out() < 0) return traits_type::eof();
        if (!traits_type::eq_int_type(ch, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(ch);
            pbump(1);
        }
        return traits_type::not_eof(ch);
    }

    int sync() override { return flush_out(); }

private:
    int flush_out()
    {
        const char* p = pbase();
        while (p < pptr()) {
            const std::size_t remaining = static_cast<std::size_t>(pptr() - p);
            const ssize_t n = socket_ ? ::send(fd_, p, remaining, MSG_NOSIGNAL)
                                      : ::write(fd_, p, remaining);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) return -1; // EPIPE/ECONNRESET/...: the peer is gone
            p += n;
        }
        setp(out_, out_ + sizeof(out_));
        return 0;
    }

    int fd_;
    bool socket_ = false;
    char in_[4096];
    char out_[4096];
};

} // namespace tsg::net

#endif // TSG_NET_FD_STREAM_H
