// Per-connection state for the epoll serving transport: incremental
// NDJSON framing, ordered response slots, and buffered batched writes.
//
// The framing half (line_splitter) is a standalone value type so the
// fault-injection and fuzz tests can hammer it without sockets: bytes go
// in under any chunking, complete lines come out — the reassembly is
// chunking-independent by construction, and a line that outgrows the
// configured bound reports an oversize condition instead of buffering
// without limit.
//
// The connection half enforces the serving contract the event loop
// needs:
//
//   * responses leave in request order even though the worker pool
//     completes them out of order — each parsed line claims the next
//     slot in a FIFO; a slot's response line is written only once every
//     earlier slot has flushed;
//   * writes are batched: every ready line is appended to one
//     contiguous write buffer and shipped with as few send() calls as
//     the socket accepts (the Galois buffered-network idiom);
//   * the write buffer is bounded — a slow reader that lets it grow past
//     the cap is disconnected rather than allowed to pin server memory.
#ifndef TSG_NET_CONNECTION_H
#define TSG_NET_CONNECTION_H

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace tsg::net {

/// Incremental NDJSON framing: feed arbitrary byte chunks, pop complete
/// lines.  '\n' terminates a line; a trailing '\r' is stripped (telnet
/// and CRLF clients work).  Bytes of an incomplete line stay buffered
/// across feeds, so any split of the stream reassembles identically.
class line_splitter {
public:
    /// `max_line_bytes` bounds one line (terminator excluded); 0 means
    /// unbounded.
    explicit line_splitter(std::size_t max_line_bytes = 0)
        : max_line_bytes_(max_line_bytes)
    {
    }

    /// Appends `n` bytes and moves every newly completed line into
    /// `out`.  Returns false when a line (complete or still partial)
    /// exceeds the bound — framing is lost at that point and the caller
    /// should fail the stream; the splitter keeps rejecting afterwards.
    bool feed(const char* data, std::size_t n, std::vector<std::string>& out);

    /// Bytes of the current incomplete line.
    [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

    [[nodiscard]] bool oversized() const { return oversized_; }

private:
    std::string buffer_;
    std::size_t max_line_bytes_ = 0;
    bool oversized_ = false;
};

/// Hard bounds one connection lives under.
struct connection_limits {
    std::size_t max_line_bytes = 1 << 20;     ///< one request line
    std::size_t write_buffer_cap = 8u << 20;  ///< pending response bytes
    std::size_t max_inflight = 64;            ///< unanswered requests

    /// Per-connection request-rate limit: a token bucket refilled at
    /// `max_requests_per_second` with capacity `rate_burst` (0 burst
    /// derives max(1, ceil(rate))).  Requests over the rate are answered
    /// with a structured "rate_limited" error carrying a retry_after_ms
    /// hint — the connection itself stays up.  0 disables the limit.
    double max_requests_per_second = 0.0;
    double rate_burst = 0.0;
};

/// One client connection of the event loop.  Plain state plus the
/// response-ordering bookkeeping; all socket calls live in the loop.
class connection {
public:
    connection(int fd, std::uint64_t id, connection_limits limits)
        : fd_(fd), id_(id), limits_(limits), splitter_(limits.max_line_bytes),
          last_activity_(std::chrono::steady_clock::now())
    {
    }

    [[nodiscard]] int fd() const { return fd_; }
    [[nodiscard]] std::uint64_t id() const { return id_; }
    [[nodiscard]] const connection_limits& limits() const { return limits_; }

    line_splitter& splitter() { return splitter_; }

    // --- ordered response slots -------------------------------------------

    /// Claims the next slot and returns its sequence number.
    std::uint64_t open_slot()
    {
        slots_.push_back({});
        return front_seq_ + slots_.size() - 1;
    }

    /// Marks slot `seq` ready with its serialized response line.
    /// Returns false when the slot is unknown (already flushed — cannot
    /// happen for well-behaved callers, guards double completion).
    bool complete_slot(std::uint64_t seq, std::string line)
    {
        if (seq < front_seq_ || seq - front_seq_ >= slots_.size()) return false;
        slot& s = slots_[static_cast<std::size_t>(seq - front_seq_)];
        if (s.ready) return false;
        s.ready = true;
        s.line = std::move(line);
        return true;
    }

    /// Unanswered requests (slots not yet completed).
    [[nodiscard]] std::size_t inflight() const
    {
        std::size_t n = 0;
        for (const slot& s : slots_)
            if (!s.ready) ++n;
        return n;
    }

    /// Moves every ready head slot into the write buffer (one line each,
    /// '\n'-terminated) and returns how many lines were appended — the
    /// batch the next send() ships together.
    std::size_t collect_ready()
    {
        std::size_t appended = 0;
        while (!slots_.empty() && slots_.front().ready) {
            write_buffer_.append(slots_.front().line);
            write_buffer_.push_back('\n');
            slots_.pop_front();
            ++front_seq_;
            ++appended;
        }
        return appended;
    }

    [[nodiscard]] bool has_pending_slots() const { return !slots_.empty(); }

    // --- write buffer -------------------------------------------------------

    std::string& write_buffer() { return write_buffer_; }
    [[nodiscard]] std::size_t unsent() const
    {
        return write_buffer_.size() - write_pos_;
    }
    [[nodiscard]] bool over_write_cap() const
    {
        return limits_.write_buffer_cap != 0 && unsent() > limits_.write_buffer_cap;
    }
    [[nodiscard]] const char* send_data() const
    {
        return write_buffer_.data() + write_pos_;
    }
    void consumed(std::size_t n)
    {
        write_pos_ += n;
        if (write_pos_ == write_buffer_.size()) {
            write_buffer_.clear();
            write_pos_ = 0;
        }
    }

    // --- backlog / flow control --------------------------------------------

    /// Parsed lines waiting because the in-flight cap is reached.
    std::deque<std::string>& backlog() { return backlog_; }

    [[nodiscard]] bool at_inflight_cap() const
    {
        return inflight() >= limits_.max_inflight;
    }

    bool paused_read = false;  ///< EPOLLIN currently deregistered
    bool want_write = false;   ///< EPOLLOUT currently registered
    bool read_closed = false;  ///< peer half-closed (recv returned 0)

    std::chrono::steady_clock::time_point last_activity() const
    {
        return last_activity_;
    }
    void touch() { last_activity_ = std::chrono::steady_clock::now(); }

    // --- request-rate limiting ---------------------------------------------

    /// Takes one token from the connection's rate bucket.  Returns 0 when
    /// the request is admitted, else the suggested retry delay in whole
    /// milliseconds (>= 1).  No-op (always 0) when the limit is off.
    [[nodiscard]] std::uint64_t take_rate_token()
    {
        const double rate = limits_.max_requests_per_second;
        if (rate <= 0.0) return 0;
        const double burst =
            limits_.rate_burst > 0.0 ? limits_.rate_burst : (rate < 1.0 ? 1.0 : rate);
        const auto now = std::chrono::steady_clock::now();
        if (!rate_primed_) {
            rate_tokens_ = burst;
            rate_primed_ = true;
        } else {
            const double dt = std::chrono::duration<double>(now - rate_last_).count();
            rate_tokens_ = std::min(burst, rate_tokens_ + rate * dt);
        }
        rate_last_ = now;
        if (rate_tokens_ >= 1.0) {
            rate_tokens_ -= 1.0;
            return 0;
        }
        const double wait_ms = (1.0 - rate_tokens_) / rate * 1000.0;
        const auto hinted = static_cast<std::uint64_t>(wait_ms) + 1;
        return hinted;
    }

private:
    struct slot {
        bool ready = false;
        std::string line;
    };

    int fd_;
    std::uint64_t id_;
    connection_limits limits_;
    line_splitter splitter_;
    std::deque<slot> slots_;
    std::uint64_t front_seq_ = 0;
    std::string write_buffer_;
    std::size_t write_pos_ = 0;
    std::deque<std::string> backlog_;
    std::chrono::steady_clock::time_point last_activity_;
    double rate_tokens_ = 0.0;
    std::chrono::steady_clock::time_point rate_last_{};
    bool rate_primed_ = false;
};

} // namespace tsg::net

#endif // TSG_NET_CONNECTION_H
