// The retrying NDJSON client: the sanctioned way to talk to a tsg_serve
// fleet.
//
// The serving layers shed load with *structured, retryable* errors —
// "overloaded" (queue full), "rate_limited" (quota, with a
// retry_after_ms hint), "draining" (instance shutting down for a rolling
// restart) — and the transport can drop a connection mid-flight.  Raw
// socket callers have to rediscover the same policy every time; this
// client packages it once:
//
//   * connect / reconnect to 127.0.0.1:port with a bounded dial retry
//     (a restarting daemon is briefly not listening — that gap is
//     retryable, not fatal);
//   * pipelined NDJSON: up to max_pipeline requests in flight on one
//     connection.  The server answers in request order per connection,
//     so responses complete outstanding requests FIFO; a connection loss
//     makes every outstanding request a retry candidate (the daemon
//     answers every request it accepts — see the drain contract — so an
//     unanswered request at EOF was never accepted);
//   * retry policy: retryable sheds and transport losses are retried
//     with jittered exponential backoff (deterministic tsg::prng
//     jitter), honouring the server's retry_after_ms hint when it is
//     larger, up to max_attempts per request; terminal errors
//     (bad_request, unknown_design, deadline_exceeded, ...) come back
//     immediately.
//
// call() is the one-request convenience; call_many() pipelines a whole
// batch and converges it to completion.  Both are synchronous and
// single-threaded by design: a load generator runs one client per
// thread (bench_serve's retry round), a CAD session runs one, period.
#ifndef TSG_NET_CLIENT_H
#define TSG_NET_CLIENT_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/api.h"
#include "util/prng.h"

namespace tsg::net {

struct client_options {
    /// 127.0.0.1 port of the daemon.
    std::uint16_t port = 0;

    /// Total attempts per request (first try included).  Attempts beyond
    /// the budget surface the last structured error to the caller.
    unsigned max_attempts = 8;

    /// Exponential backoff schedule: attempt k sleeps
    /// min(base * 2^(k-1), cap) scaled by a jitter factor in [0.5, 1.0],
    /// or the server's retry_after_ms hint when that is larger.
    std::chrono::milliseconds backoff_base{2};
    std::chrono::milliseconds backoff_cap{250};

    /// Jitter seed — deterministic streams for reproducible tests.
    std::uint64_t jitter_seed = 0x74736721ULL;

    /// Outstanding requests per connection in call_many().
    std::size_t max_pipeline = 32;

    /// Bound on one blocking read for a response line.  Expired reads
    /// count as a connection loss (the connection is rebuilt).
    std::chrono::milliseconds response_timeout{10000};

    /// Bound on one connect() dial; a refused dial backs off and retries
    /// within the same attempt budget.
    std::chrono::milliseconds dial_timeout{1000};
};

/// What one converged request went through — the bench's raw material.
struct call_outcome {
    analysis_response response;  ///< the final (served or given-up) response
    unsigned attempts = 1;       ///< tries consumed, first included
    unsigned sheds = 0;          ///< structured retryable sheds along the way
    unsigned reconnects = 0;     ///< connection losses along the way
    double latency_ms = 0.0;     ///< first submission to final response
};

/// Aggregate counters across a client's lifetime.
struct client_metrics {
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t retries = 0;       ///< re-submissions (sheds + losses)
    std::uint64_t sheds_seen = 0;    ///< retryable structured sheds observed
    std::uint64_t reconnects = 0;    ///< connections (re)established after the first
    std::uint64_t gave_up = 0;       ///< requests that exhausted max_attempts
};

class client {
public:
    explicit client(client_options options);
    ~client();

    client(const client&) = delete;
    client& operator=(const client&) = delete;

    /// True when a response's structured error invites a retry.
    [[nodiscard]] static bool retryable(const api_error& error);

    /// Sends one request and converges it: retryable sheds and transport
    /// losses are retried under the backoff policy; the returned outcome
    /// holds the final response (ok, terminal error, or the last
    /// retryable error once the budget is spent).
    call_outcome call(const analysis_request& request);

    /// Pipelines `requests` (up to max_pipeline outstanding) and
    /// converges every one of them.  Outcomes are returned in input
    /// order.  Requests are never abandoned early: a retryable shed goes
    /// back into the send queue until it serves or exhausts its budget.
    std::vector<call_outcome> call_many(const std::vector<analysis_request>& requests);

    [[nodiscard]] const client_metrics& metrics() const { return metrics_; }

private:
    struct slot; ///< one in-flight request of call_many

    /// Ensures a live connection; returns false once the dial budget of
    /// the current attempt window is spent.
    bool ensure_connected();
    void disconnect();
    /// Blocking send of one NDJSON line; false on a lost connection.
    bool send_line(const std::string& line);
    /// Blocking bounded read of one NDJSON line; false on loss/timeout.
    bool read_line(std::string& line);
    /// The jittered backoff for attempt `k` honouring `hint_ms`.
    [[nodiscard]] std::chrono::milliseconds backoff_delay(unsigned attempt,
                                                          std::uint64_t hint_ms);

    client_options options_;
    prng jitter_;
    int fd_ = -1;
    std::string read_buffer_; ///< bytes past the last returned line
    client_metrics metrics_;
};

} // namespace tsg::net

#endif // TSG_NET_CLIENT_H
