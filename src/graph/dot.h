// Graphviz DOT export for debugging and documentation figures.
#ifndef TSG_GRAPH_DOT_H
#define TSG_GRAPH_DOT_H

#include <functional>
#include <string>

#include "graph/digraph.h"

namespace tsg {

/// Renders `g` in DOT syntax.  `node_label` and `arc_label` supply display
/// strings; pass empty functions to fall back to numeric ids / no labels.
[[nodiscard]] std::string to_dot(const digraph& g,
                                 const std::function<std::string(node_id)>& node_label = {},
                                 const std::function<std::string(arc_id)>& arc_label = {},
                                 const std::string& graph_name = "g");

} // namespace tsg

#endif // TSG_GRAPH_DOT_H
