// Enumeration of all elementary (simple) cycles — Johnson's algorithm.
//
// Used by the exhaustive max-cycle-ratio baseline (ground truth in tests and
// the Example 5/6 reproduction).  The number of simple cycles can be
// exponential in the arc count, which is exactly why the paper's timing-
// simulation algorithm exists; callers must bound the enumeration.
#ifndef TSG_GRAPH_JOHNSON_H
#define TSG_GRAPH_JOHNSON_H

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace tsg {

struct cycle_enumeration {
    /// Each cycle is the sequence of arcs traversed, starting at the cycle's
    /// smallest-numbered node.  Parallel arcs yield distinct cycles.
    std::vector<std::vector<arc_id>> cycles;
    /// True when enumeration stopped early because `max_cycles` was reached.
    bool truncated = false;
};

/// Enumerates elementary cycles of `g` (Johnson 1975), including self-loops,
/// stopping after `max_cycles` cycles.  O((n + m)(c + 1)) for c cycles.
[[nodiscard]] cycle_enumeration enumerate_simple_cycles(const digraph& g,
                                                        std::size_t max_cycles = 1'000'000);

} // namespace tsg

#endif // TSG_GRAPH_JOHNSON_H
