// Enumeration of all elementary (simple) cycles — Johnson's algorithm.
//
// Used by the exhaustive max-cycle-ratio baseline (ground truth in tests and
// the Example 5/6 reproduction).  The number of simple cycles can be
// exponential in the arc count, which is exactly why the paper's timing-
// simulation algorithm exists; callers must bound the enumeration.
// Templated over the graph representation (digraph / csr_graph).
#ifndef TSG_GRAPH_JOHNSON_H
#define TSG_GRAPH_JOHNSON_H

#include <algorithm>
#include <cstddef>
#include <vector>

#include "graph/digraph.h"
#include "graph/scc.h"

namespace tsg {

struct cycle_enumeration {
    /// Each cycle is the sequence of arcs traversed, starting at the cycle's
    /// smallest-numbered node.  Parallel arcs yield distinct cycles.
    std::vector<std::vector<arc_id>> cycles;
    /// True when enumeration stopped early because `max_cycles` was reached.
    bool truncated = false;
};

namespace detail {

/// State for one run of Johnson's `circuit` search from a start node, with
/// the search restricted to nodes of one SCC (all numbered >= start).
template <typename Graph>
class johnson_search {
public:
    johnson_search(const Graph& g, const std::vector<bool>& allowed, node_id start,
                   std::size_t max_cycles, cycle_enumeration& out)
        : g_(g),
          allowed_(allowed),
          start_(start),
          max_cycles_(max_cycles),
          out_(out),
          blocked_(g.node_count(), false),
          unblock_list_(g.node_count())
    {
    }

    /// Returns false when the cycle budget ran out.
    bool run()
    {
        circuit(start_);
        return !aborted_;
    }

private:
    /// Johnson's CIRCUIT(v); returns true when some cycle through v (and the
    /// current path) was closed.  Sets aborted_ when the budget is exhausted.
    bool circuit(node_id v)
    {
        bool found_cycle = false;
        blocked_[v] = true;
        for (const arc_id a : g_.out_arcs(v)) {
            if (aborted_) break;
            const node_id w = g_.to(a);
            if (!allowed_[w]) continue;
            if (w == start_) {
                path_.push_back(a);
                out_.cycles.push_back(path_);
                path_.pop_back();
                found_cycle = true;
                if (out_.cycles.size() >= max_cycles_) {
                    out_.truncated = true;
                    aborted_ = true;
                }
            } else if (!blocked_[w]) {
                path_.push_back(a);
                if (circuit(w)) found_cycle = true;
                path_.pop_back();
            }
        }
        if (found_cycle) {
            unblock(v);
        } else {
            for (const arc_id a : g_.out_arcs(v)) {
                const node_id w = g_.to(a);
                if (!allowed_[w] || w == start_) continue;
                auto& list = unblock_list_[w];
                if (std::find(list.begin(), list.end(), v) == list.end()) list.push_back(v);
            }
        }
        return found_cycle;
    }

    void unblock(node_id v)
    {
        blocked_[v] = false;
        auto pending = std::move(unblock_list_[v]);
        unblock_list_[v].clear();
        for (const node_id w : pending)
            if (blocked_[w]) unblock(w);
    }

    const Graph& g_;
    const std::vector<bool>& allowed_;
    const node_id start_;
    const std::size_t max_cycles_;
    cycle_enumeration& out_;
    bool aborted_ = false;
    std::vector<bool> blocked_;
    std::vector<std::vector<node_id>> unblock_list_;
    std::vector<arc_id> path_;
};

} // namespace detail

/// Enumerates elementary cycles of `g` (Johnson 1975), including self-loops,
/// stopping after `max_cycles` cycles.  O((n + m)(c + 1)) for c cycles.
template <typename Graph>
[[nodiscard]] cycle_enumeration enumerate_simple_cycles(const Graph& g,
                                                        std::size_t max_cycles = 1'000'000)
{
    cycle_enumeration out;
    const std::size_t n = g.node_count();
    if (n == 0) return out;

    for (node_id start = 0; start < n; ++start) {
        // Restrict to the SCC of `start` within the subgraph on nodes >= start.
        digraph sub;
        std::vector<node_id> to_sub(n, invalid_node);
        std::vector<node_id> to_full;
        for (node_id v = start; v < n; ++v) {
            to_sub[v] = static_cast<node_id>(to_full.size());
            to_full.push_back(v);
            sub.add_node();
        }
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            const node_id u = g.from(a);
            const node_id v = g.to(a);
            if (u >= start && v >= start) sub.add_arc(to_sub[u], to_sub[v]);
        }
        const scc_result scc = strongly_connected_components(sub);
        const std::uint32_t start_comp = scc.component[to_sub[start]];

        std::vector<bool> allowed(n, false);
        bool nontrivial = false;
        for (node_id v = start; v < n; ++v) {
            if (scc.component[to_sub[v]] == start_comp) {
                allowed[v] = true;
                if (v != start) nontrivial = true;
            }
        }
        // Self-loops on `start` still form cycles even in a singleton SCC.
        bool has_self_loop = false;
        for (const arc_id a : g.out_arcs(start))
            if (g.to(a) == start) has_self_loop = true;
        if (!nontrivial && !has_self_loop) continue;

        detail::johnson_search<Graph> search(g, allowed, start, max_cycles, out);
        if (!search.run()) return out; // budget exhausted
    }
    return out;
}

} // namespace tsg

#endif // TSG_GRAPH_JOHNSON_H
