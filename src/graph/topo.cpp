#include "graph/topo.h"

namespace tsg {

namespace {

std::optional<std::vector<node_id>> kahn(const digraph& g, const std::vector<bool>* arc_kept)
{
    const std::size_t n = g.node_count();
    std::vector<std::uint32_t> in_degree(n, 0);
    for (arc_id a = 0; a < g.arc_count(); ++a) {
        if (arc_kept && !(*arc_kept)[a]) continue;
        ++in_degree[g.to(a)];
    }

    std::vector<node_id> order;
    order.reserve(n);
    std::vector<node_id> ready;
    for (node_id v = 0; v < n; ++v)
        if (in_degree[v] == 0) ready.push_back(v);

    while (!ready.empty()) {
        const node_id v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (const arc_id a : g.out_arcs(v)) {
            if (arc_kept && !(*arc_kept)[a]) continue;
            if (--in_degree[g.to(a)] == 0) ready.push_back(g.to(a));
        }
    }

    if (order.size() != n) return std::nullopt; // a cycle remains
    return order;
}

} // namespace

std::optional<std::vector<node_id>> topological_order(const digraph& g)
{
    return kahn(g, nullptr);
}

std::optional<std::vector<node_id>> topological_order_filtered(const digraph& g,
                                                               const std::vector<bool>& arc_kept)
{
    require(arc_kept.size() == g.arc_count(),
            "topological_order_filtered: filter size mismatch");
    return kahn(g, &arc_kept);
}

} // namespace tsg
