// Strongly connected components (Tarjan, iterative).
//
// Templated over the graph representation (digraph / csr_graph) so the
// compiled timing kernel and the mutable model layer share one
// implementation.
#ifndef TSG_GRAPH_SCC_H
#define TSG_GRAPH_SCC_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace tsg {

/// Result of an SCC decomposition.  Components are numbered in reverse
/// topological order of the condensation (Tarjan's natural output order):
/// if there is an arc from component x to component y != x then x > y.
struct scc_result {
    std::vector<std::uint32_t> component; ///< node -> component index
    std::uint32_t count = 0;              ///< number of components

    /// True when node n lies on some cycle: its component has more than one
    /// node, or it carries a self-loop (checked by the caller-facing helper
    /// below, which needs the graph).
    [[nodiscard]] bool same(node_id a, node_id b) const
    {
        return component.at(a) == component.at(b);
    }
};

/// Tarjan's algorithm; O(n + m), iterative (no recursion depth limits).
template <typename Graph>
[[nodiscard]] scc_result strongly_connected_components(const Graph& g)
{
    const std::size_t n = g.node_count();
    constexpr std::uint32_t unvisited = UINT32_MAX;

    scc_result result;
    result.component.assign(n, unvisited);

    std::vector<std::uint32_t> index(n, unvisited);
    std::vector<std::uint32_t> low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<node_id> stack;
    std::uint32_t next_index = 0;

    // Explicit DFS frames: (node, position in its out-arc list).
    struct frame {
        node_id node;
        std::size_t arc_pos;
    };
    std::vector<frame> frames;

    for (node_id root = 0; root < n; ++root) {
        if (index[root] != unvisited) continue;
        frames.push_back({root, 0});
        index[root] = low[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!frames.empty()) {
            frame& f = frames.back();
            const auto& arcs = g.out_arcs(f.node);
            if (f.arc_pos < arcs.size()) {
                const node_id next = g.to(arcs[f.arc_pos]);
                ++f.arc_pos;
                if (index[next] == unvisited) {
                    index[next] = low[next] = next_index++;
                    stack.push_back(next);
                    on_stack[next] = true;
                    frames.push_back({next, 0});
                } else if (on_stack[next]) {
                    low[f.node] = std::min(low[f.node], index[next]);
                }
            } else {
                const node_id done = f.node;
                frames.pop_back();
                if (!frames.empty())
                    low[frames.back().node] = std::min(low[frames.back().node], low[done]);
                if (low[done] == index[done]) {
                    // Pop the component rooted at `done`.
                    while (true) {
                        const node_id member = stack.back();
                        stack.pop_back();
                        on_stack[member] = false;
                        result.component[member] = result.count;
                        if (member == done) break;
                    }
                    ++result.count;
                }
            }
        }
    }
    return result;
}

/// True when the whole graph is one strongly connected component (and
/// non-empty).
template <typename Graph>
[[nodiscard]] bool is_strongly_connected(const Graph& g)
{
    if (g.node_count() == 0) return false;
    return strongly_connected_components(g).count == 1;
}

/// Nodes that lie on at least one directed cycle: nodes in a component of
/// size >= 2 plus nodes with a self-loop.
template <typename Graph>
[[nodiscard]] std::vector<bool> nodes_on_cycles(const Graph& g)
{
    const scc_result scc = strongly_connected_components(g);
    std::vector<std::uint32_t> size(scc.count, 0);
    for (node_id v = 0; v < g.node_count(); ++v) ++size[scc.component[v]];

    std::vector<bool> cyclic(g.node_count(), false);
    for (node_id v = 0; v < g.node_count(); ++v)
        if (size[scc.component[v]] >= 2) cyclic[v] = true;
    for (arc_id a = 0; a < g.arc_count(); ++a)
        if (g.from(a) != invalid_node && g.from(a) == g.to(a)) cyclic[g.from(a)] = true;
    return cyclic;
}

} // namespace tsg

#endif // TSG_GRAPH_SCC_H
