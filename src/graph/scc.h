// Strongly connected components (Tarjan, iterative).
#ifndef TSG_GRAPH_SCC_H
#define TSG_GRAPH_SCC_H

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace tsg {

/// Result of an SCC decomposition.  Components are numbered in reverse
/// topological order of the condensation (Tarjan's natural output order):
/// if there is an arc from component x to component y != x then x > y.
struct scc_result {
    std::vector<std::uint32_t> component; ///< node -> component index
    std::uint32_t count = 0;              ///< number of components

    /// True when node n lies on some cycle: its component has more than one
    /// node, or it carries a self-loop (checked by the caller-facing helper
    /// below, which needs the graph).
    [[nodiscard]] bool same(node_id a, node_id b) const
    {
        return component.at(a) == component.at(b);
    }
};

/// Tarjan's algorithm; O(n + m), iterative (no recursion depth limits).
[[nodiscard]] scc_result strongly_connected_components(const digraph& g);

/// True when the whole graph is one strongly connected component (and
/// non-empty).
[[nodiscard]] bool is_strongly_connected(const digraph& g);

/// Nodes that lie on at least one directed cycle: nodes in a component of
/// size >= 2 plus nodes with a self-loop.
[[nodiscard]] std::vector<bool> nodes_on_cycles(const digraph& g);

} // namespace tsg

#endif // TSG_GRAPH_SCC_H
