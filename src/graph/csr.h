// Frozen CSR (compressed sparse row) adjacency for the analysis hot loops.
//
// digraph keeps one heap-allocated vector per node — fine for incremental
// model construction, hostile to the cache during the longest-path sweeps
// every analysis in this library runs.  csr_graph is the flat counterpart:
// out- and in-adjacency live in two contiguous arc arrays indexed by
// per-node offsets, so a sweep walks sequential memory.  The read interface
// mirrors digraph (from/to/out_arcs/in_arcs/degrees), which lets the
// templated graph algorithms (topo, scc, longest paths, Johnson) run
// unchanged on either representation.
//
// Arcs can still be appended digraph-style; the adjacency index is rebuilt
// lazily on the next query.  Within one node the CSR arc order equals
// insertion order (the counting sort below is stable in arc id), so
// tie-breaking in every argmax sweep is identical to digraph's — results
// stay bit-for-bit the same after the swap.  Call freeze() before sharing
// an instance across threads: the lazy rebuild mutates internal caches.
#ifndef TSG_GRAPH_CSR_H
#define TSG_GRAPH_CSR_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "util/error.h"

namespace tsg {

class csr_graph {
public:
    csr_graph() = default;

    /// Snapshots an existing digraph (same node/arc ids, same arc order).
    explicit csr_graph(const digraph& g)
    {
        nodes_ = g.node_count();
        tail_.reserve(g.arc_count());
        head_.reserve(g.arc_count());
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            tail_.push_back(g.from(a));
            head_.push_back(g.to(a));
        }
        build_index();
    }

    node_id add_node()
    {
        indexed_ = false;
        return static_cast<node_id>(nodes_++);
    }

    void add_nodes(std::size_t count)
    {
        indexed_ = false;
        nodes_ += count;
    }

    arc_id add_arc(node_id from, node_id to)
    {
        require(from < nodes_ && to < nodes_, "csr_graph::add_arc: bad endpoint");
        indexed_ = false;
        tail_.push_back(from);
        head_.push_back(to);
        return static_cast<arc_id>(tail_.size() - 1);
    }

    void reserve(std::size_t nodes, std::size_t arcs)
    {
        (void)nodes; // node storage is just a counter
        tail_.reserve(arcs);
        head_.reserve(arcs);
    }

    /// Builds the adjacency index now.  Required before concurrent reads;
    /// otherwise the first out_arcs/in_arcs call builds it on demand.
    void freeze() const
    {
        if (!indexed_) build_index();
    }

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
    [[nodiscard]] std::size_t arc_count() const noexcept { return tail_.size(); }

    [[nodiscard]] node_id from(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "csr_graph::from: bad arc id");
        return tail_[a];
    }

    [[nodiscard]] node_id to(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "csr_graph::to: bad arc id");
        return head_[a];
    }

    [[nodiscard]] std::span<const arc_id> out_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "csr_graph::out_arcs: bad node id");
        freeze();
        return {out_list_.data() + out_offset_[n], out_offset_[n + 1] - out_offset_[n]};
    }

    [[nodiscard]] std::span<const arc_id> in_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "csr_graph::in_arcs: bad node id");
        freeze();
        return {in_list_.data() + in_offset_[n], in_offset_[n + 1] - in_offset_[n]};
    }

    [[nodiscard]] std::size_t out_degree(node_id n) const { return out_arcs(n).size(); }
    [[nodiscard]] std::size_t in_degree(node_id n) const { return in_arcs(n).size(); }

private:
    void build_index() const
    {
        const std::size_t n = nodes_;
        const std::size_t m = tail_.size();
        out_offset_.assign(n + 1, 0);
        in_offset_.assign(n + 1, 0);
        for (std::size_t a = 0; a < m; ++a) {
            ++out_offset_[tail_[a] + 1];
            ++in_offset_[head_[a] + 1];
        }
        for (std::size_t v = 0; v < n; ++v) {
            out_offset_[v + 1] += out_offset_[v];
            in_offset_[v + 1] += in_offset_[v];
        }
        out_list_.resize(m);
        in_list_.resize(m);
        std::vector<std::uint32_t> out_cursor(out_offset_.begin(), out_offset_.end() - 1);
        std::vector<std::uint32_t> in_cursor(in_offset_.begin(), in_offset_.end() - 1);
        for (std::size_t a = 0; a < m; ++a) {
            out_list_[out_cursor[tail_[a]]++] = static_cast<arc_id>(a);
            in_list_[in_cursor[head_[a]]++] = static_cast<arc_id>(a);
        }
        indexed_ = true;
    }

    std::size_t nodes_ = 0;
    std::vector<node_id> tail_; // arc -> source node
    std::vector<node_id> head_; // arc -> target node

    // Lazily (re)built adjacency index; mutated under const, hence the
    // freeze-before-sharing rule above.
    mutable std::vector<std::uint32_t> out_offset_; // node -> first out slot
    mutable std::vector<std::uint32_t> in_offset_;  // node -> first in slot
    mutable std::vector<arc_id> out_list_;
    mutable std::vector<arc_id> in_list_;
    mutable bool indexed_ = false;
};

} // namespace tsg

#endif // TSG_GRAPH_CSR_H
