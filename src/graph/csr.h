// Frozen CSR (compressed sparse row) adjacency for the analysis hot loops.
//
// digraph keeps one heap-allocated vector per node — fine for incremental
// model construction, hostile to the cache during the longest-path sweeps
// every analysis in this library runs.  csr_graph is the flat counterpart:
// out- and in-adjacency live in two contiguous arc arrays indexed by
// per-node offsets, so a sweep walks sequential memory.  The read interface
// mirrors digraph (from/to/out_arcs/in_arcs/degrees), which lets the
// templated graph algorithms (topo, scc, longest paths, Johnson) run
// unchanged on either representation.
//
// Arcs can still be appended digraph-style; the adjacency index is rebuilt
// lazily on the next query.  Within one node the CSR arc order equals
// insertion order (the counting sort below is stable in arc id), so
// tie-breaking in every argmax sweep is identical to digraph's — results
// stay bit-for-bit the same after the swap.  Call freeze() before sharing
// an instance across threads: the lazy rebuild mutates internal caches.
//
// In-place patching.  The incremental edit layer mutates a compiled CSR
// without rebuilding it: patch_add_arc / patch_remove_arc / patch_retarget
// / patch_restore_arc edit the adjacency index directly.  The first patch
// switches the instance into *patched mode*, where each node's offset span
// is a capacity and a separate live count marks how much of it is used —
// the slack slots between count and capacity absorb insertions in O(degree)
// without moving other nodes.  When a node's slack runs out the whole index
// is rebuilt with fresh slack proportional to each node's degree (amortized
// O(1) per insertion; reported via patch_compactions()).  Tombstoned arcs
// keep their id — payload arrays stay index-stable — but both endpoints
// read invalid_node and the arc leaves the adjacency index.  Within each
// node's live span arcs stay sorted by ascending id, which preserves every
// deterministic tie-break downstream.
#ifndef TSG_GRAPH_CSR_H
#define TSG_GRAPH_CSR_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "util/error.h"

namespace tsg {

class csr_graph {
public:
    csr_graph() = default;

    /// Snapshots an existing digraph (same node/arc ids, same arc order).
    /// Tombstoned arcs come across as tombstones.
    explicit csr_graph(const digraph& g)
    {
        nodes_ = g.node_count();
        tail_.reserve(g.arc_count());
        head_.reserve(g.arc_count());
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            tail_.push_back(g.from(a));
            head_.push_back(g.to(a));
        }
        dead_ = g.arc_count() - g.live_arc_count();
        build_index();
    }

    node_id add_node()
    {
        indexed_ = false;
        return static_cast<node_id>(nodes_++);
    }

    void add_nodes(std::size_t count)
    {
        indexed_ = false;
        nodes_ += count;
    }

    arc_id add_arc(node_id from, node_id to)
    {
        require(from < nodes_ && to < nodes_, "csr_graph::add_arc: bad endpoint");
        require(!patched_, "csr_graph::add_arc: use patch_add_arc in patched mode");
        indexed_ = false;
        tail_.push_back(from);
        head_.push_back(to);
        return static_cast<arc_id>(tail_.size() - 1);
    }

    void reserve(std::size_t nodes, std::size_t arcs)
    {
        (void)nodes; // node storage is just a counter
        tail_.reserve(arcs);
        head_.reserve(arcs);
    }

    /// Builds the adjacency index now.  Required before concurrent reads;
    /// otherwise the first out_arcs/in_arcs call builds it on demand.
    void freeze() const
    {
        if (!indexed_) build_index();
    }

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
    [[nodiscard]] std::size_t arc_count() const noexcept { return tail_.size(); }

    [[nodiscard]] node_id from(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "csr_graph::from: bad arc id");
        return tail_[a];
    }

    [[nodiscard]] node_id to(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "csr_graph::to: bad arc id");
        return head_[a];
    }

    [[nodiscard]] std::span<const arc_id> out_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "csr_graph::out_arcs: bad node id");
        freeze();
        const std::size_t count =
            patched_ ? out_count_[n] : out_offset_[n + 1] - out_offset_[n];
        return {out_list_.data() + out_offset_[n], count};
    }

    [[nodiscard]] std::span<const arc_id> in_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "csr_graph::in_arcs: bad node id");
        freeze();
        const std::size_t count =
            patched_ ? in_count_[n] : in_offset_[n + 1] - in_offset_[n];
        return {in_list_.data() + in_offset_[n], count};
    }

    [[nodiscard]] std::size_t out_degree(node_id n) const { return out_arcs(n).size(); }
    [[nodiscard]] std::size_t in_degree(node_id n) const { return in_arcs(n).size(); }

    // --- in-place patching (the incremental edit layer) -------------------

    [[nodiscard]] bool live(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "csr_graph::live: bad arc id");
        return tail_[a] != invalid_node;
    }

    [[nodiscard]] std::size_t live_arc_count() const noexcept { return tail_.size() - dead_; }

    /// Index rebuilds forced by exhausted slack (amortized-compaction cost).
    [[nodiscard]] std::uint64_t patch_compactions() const noexcept { return compactions_; }

    /// Appends a live arc with a fresh (maximal) id, patching the adjacency
    /// index in place.  O(1) amortized; a node whose slack is exhausted
    /// triggers one index rebuild.
    arc_id patch_add_arc(node_id from, node_id to)
    {
        require(from < nodes_ && to < nodes_, "csr_graph::patch_add_arc: bad endpoint");
        enter_patch_mode();
        const auto a = static_cast<arc_id>(tail_.size());
        tail_.push_back(from);
        head_.push_back(to);
        // A rebuild inside the first insert already places the arc in both
        // lists (it derives everything from tail_/head_); skip the second.
        if (!slot_insert(out_offset_, out_count_, out_list_, from, a))
            slot_insert(in_offset_, in_count_, in_list_, to, a);
        return a;
    }

    /// Tombstones a live arc: it leaves the adjacency index, its endpoints
    /// read invalid_node, its id survives.  O(degree).
    void patch_remove_arc(arc_id a)
    {
        require(a < arc_count() && live(a), "csr_graph::patch_remove_arc: arc not live");
        enter_patch_mode();
        slot_erase(out_offset_, out_count_, out_list_, tail_[a], a);
        slot_erase(in_offset_, in_count_, in_list_, head_[a], a);
        tail_[a] = invalid_node;
        head_[a] = invalid_node;
        ++dead_;
    }

    /// Resurrects a tombstoned arc with the given endpoints, at its
    /// id-sorted adjacency position (the edit layer's undo of remove).
    void patch_restore_arc(arc_id a, node_id from, node_id to)
    {
        require(a < arc_count() && !live(a), "csr_graph::patch_restore_arc: arc is live");
        require(from < nodes_ && to < nodes_, "csr_graph::patch_restore_arc: bad endpoint");
        enter_patch_mode();
        tail_[a] = from;
        head_[a] = to;
        if (!slot_insert(out_offset_, out_count_, out_list_, from, a))
            slot_insert(in_offset_, in_count_, in_list_, to, a);
        --dead_;
    }

    /// Moves a live arc to new endpoints, keeping its id.  O(degree).
    void patch_retarget(arc_id a, node_id from, node_id to)
    {
        require(a < arc_count() && live(a), "csr_graph::patch_retarget: arc not live");
        require(from < nodes_ && to < nodes_, "csr_graph::patch_retarget: bad endpoint");
        enter_patch_mode();
        slot_erase(out_offset_, out_count_, out_list_, tail_[a], a);
        slot_erase(in_offset_, in_count_, in_list_, head_[a], a);
        tail_[a] = from;
        head_[a] = to;
        if (!slot_insert(out_offset_, out_count_, out_list_, from, a))
            slot_insert(in_offset_, in_count_, in_list_, to, a);
    }

    /// Removes the *last* arc entirely, shrinking arc_count() — the edit
    /// layer's undo of patch_add_arc (no tombstone leak per speculation).
    void patch_pop_arc()
    {
        require(arc_count() > 0, "csr_graph::patch_pop_arc: no arcs");
        enter_patch_mode();
        const auto a = static_cast<arc_id>(arc_count() - 1);
        if (live(a)) {
            slot_erase(out_offset_, out_count_, out_list_, tail_[a], a);
            slot_erase(in_offset_, in_count_, in_list_, head_[a], a);
        } else {
            --dead_;
        }
        tail_.pop_back();
        head_.pop_back();
    }

private:
    void build_index() const
    {
        const std::size_t n = nodes_;
        const std::size_t m = tail_.size();
        out_offset_.assign(n + 1, 0);
        in_offset_.assign(n + 1, 0);
        for (std::size_t a = 0; a < m; ++a) {
            if (tail_[a] == invalid_node) continue; // tombstone
            ++out_offset_[tail_[a] + 1];
            ++in_offset_[head_[a] + 1];
        }
        for (std::size_t v = 0; v < n; ++v) {
            out_offset_[v + 1] += out_offset_[v];
            in_offset_[v + 1] += in_offset_[v];
        }
        out_list_.resize(out_offset_[n]);
        in_list_.resize(in_offset_[n]);
        std::vector<std::uint32_t> out_cursor(out_offset_.begin(), out_offset_.end() - 1);
        std::vector<std::uint32_t> in_cursor(in_offset_.begin(), in_offset_.end() - 1);
        for (std::size_t a = 0; a < m; ++a) {
            if (tail_[a] == invalid_node) continue;
            out_list_[out_cursor[tail_[a]]++] = static_cast<arc_id>(a);
            in_list_[in_cursor[head_[a]]++] = static_cast<arc_id>(a);
        }
        if (patched_) {
            // An exact rebuild leaves zero slack; refresh the live counts.
            out_count_.resize(n);
            in_count_.resize(n);
            for (std::size_t v = 0; v < n; ++v) {
                out_count_[v] = out_offset_[v + 1] - out_offset_[v];
                in_count_[v] = in_offset_[v + 1] - in_offset_[v];
            }
        }
        indexed_ = true;
    }

    void enter_patch_mode()
    {
        if (patched_) return;
        freeze();
        const std::size_t n = nodes_;
        out_count_.resize(n);
        in_count_.resize(n);
        for (std::size_t v = 0; v < n; ++v) {
            out_count_[v] = out_offset_[v + 1] - out_offset_[v];
            in_count_[v] = in_offset_[v + 1] - in_offset_[v];
        }
        patched_ = true;
    }

    /// Rebuilds both adjacency indexes from tail_/head_ with fresh slack:
    /// each node's capacity is its live degree plus half again plus two, so
    /// the next ~degree/2 insertions at that node are O(degree) shifts.
    void rebuild_with_slack()
    {
        const std::size_t n = nodes_;
        const std::size_t m = tail_.size();
        out_count_.assign(n, 0);
        in_count_.assign(n, 0);
        for (std::size_t a = 0; a < m; ++a) {
            if (tail_[a] == invalid_node) continue;
            ++out_count_[tail_[a]];
            ++in_count_[head_[a]];
        }
        out_offset_.assign(n + 1, 0);
        in_offset_.assign(n + 1, 0);
        for (std::size_t v = 0; v < n; ++v) {
            out_offset_[v + 1] = out_offset_[v] + out_count_[v] + out_count_[v] / 2 + 2;
            in_offset_[v + 1] = in_offset_[v] + in_count_[v] + in_count_[v] / 2 + 2;
        }
        out_list_.assign(out_offset_[n], invalid_arc);
        in_list_.assign(in_offset_[n], invalid_arc);
        std::vector<std::uint32_t> out_cursor(out_offset_.begin(), out_offset_.end() - 1);
        std::vector<std::uint32_t> in_cursor(in_offset_.begin(), in_offset_.end() - 1);
        for (std::size_t a = 0; a < m; ++a) {
            if (tail_[a] == invalid_node) continue;
            out_list_[out_cursor[tail_[a]]++] = static_cast<arc_id>(a);
            in_list_[in_cursor[head_[a]]++] = static_cast<arc_id>(a);
        }
        ++compactions_;
        indexed_ = true;
    }

    /// Inserts arc `a` into node `n`'s live span at its id-sorted position.
    /// Returns true when exhausted slack forced a full rebuild (which places
    /// every live arc, including ones the caller has not inserted yet).
    bool slot_insert(std::vector<std::uint32_t>& offset, std::vector<std::uint32_t>& count,
                     std::vector<arc_id>& list, node_id n, arc_id a)
    {
        const std::uint32_t off = offset[n];
        const std::uint32_t cnt = count[n];
        if (off + cnt == offset[n + 1]) {
            rebuild_with_slack();
            return true;
        }
        arc_id* first = list.data() + off;
        arc_id* last = first + cnt;
        arc_id* pos = std::lower_bound(first, last, a);
        std::copy_backward(pos, last, last + 1);
        *pos = a;
        ++count[n];
        return false;
    }

    /// Erases arc `a` from node `n`'s live span.  Never rebuilds.
    void slot_erase(std::vector<std::uint32_t>& offset, std::vector<std::uint32_t>& count,
                    std::vector<arc_id>& list, node_id n, arc_id a)
    {
        arc_id* first = list.data() + offset[n];
        arc_id* last = first + count[n];
        arc_id* pos = std::lower_bound(first, last, a);
        TSG_DCHECK(pos != last && *pos == a, "csr_graph: adjacency desynchronized");
        std::copy(pos + 1, last, pos);
        --count[n];
    }

    std::size_t nodes_ = 0;
    std::vector<node_id> tail_; // arc -> source node
    std::vector<node_id> head_; // arc -> target node
    std::size_t dead_ = 0;      // tombstoned arcs

    // Lazily (re)built adjacency index; mutated under const, hence the
    // freeze-before-sharing rule above.  In patched mode the offsets are
    // per-node *capacities* and out_count_/in_count_ give the live prefix.
    mutable std::vector<std::uint32_t> out_offset_; // node -> first out slot
    mutable std::vector<std::uint32_t> in_offset_;  // node -> first in slot
    mutable std::vector<arc_id> out_list_;
    mutable std::vector<arc_id> in_list_;
    mutable std::vector<std::uint32_t> out_count_;  // patched mode: live out degree
    mutable std::vector<std::uint32_t> in_count_;   // patched mode: live in degree
    mutable bool indexed_ = false;
    bool patched_ = false;
    std::uint64_t compactions_ = 0;
};

} // namespace tsg

#endif // TSG_GRAPH_CSR_H
