// Topological ordering and acyclicity tests (Kahn's algorithm).
#ifndef TSG_GRAPH_TOPO_H
#define TSG_GRAPH_TOPO_H

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace tsg {

/// A topological order of all nodes, or nullopt when the graph has a cycle.
[[nodiscard]] std::optional<std::vector<node_id>> topological_order(const digraph& g);

/// Topological order of the subgraph induced by keeping only arcs for which
/// `arc_kept[a]` is true.  Returns nullopt when that subgraph has a cycle.
[[nodiscard]] std::optional<std::vector<node_id>> topological_order_filtered(
    const digraph& g, const std::vector<bool>& arc_kept);

[[nodiscard]] inline bool is_acyclic(const digraph& g)
{
    return topological_order(g).has_value();
}

} // namespace tsg

#endif // TSG_GRAPH_TOPO_H
