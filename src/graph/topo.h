// Topological ordering and acyclicity tests (Kahn's algorithm).
//
// Templated over the graph representation so the same code serves both the
// mutable digraph and the frozen csr_graph snapshots of the compiled
// timing kernel.
#ifndef TSG_GRAPH_TOPO_H
#define TSG_GRAPH_TOPO_H

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace tsg {

namespace detail {

template <typename Graph>
std::optional<std::vector<node_id>> kahn(const Graph& g, const std::vector<bool>* arc_kept)
{
    const std::size_t n = g.node_count();
    std::vector<std::uint32_t> in_degree(n, 0);
    for (arc_id a = 0; a < g.arc_count(); ++a) {
        if (arc_kept && !(*arc_kept)[a]) continue;
        ++in_degree[g.to(a)];
    }

    std::vector<node_id> order;
    order.reserve(n);
    std::vector<node_id> ready;
    for (node_id v = 0; v < n; ++v)
        if (in_degree[v] == 0) ready.push_back(v);

    while (!ready.empty()) {
        const node_id v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (const arc_id a : g.out_arcs(v)) {
            if (arc_kept && !(*arc_kept)[a]) continue;
            if (--in_degree[g.to(a)] == 0) ready.push_back(g.to(a));
        }
    }

    if (order.size() != n) return std::nullopt; // a cycle remains
    return order;
}

} // namespace detail

/// A topological order of all nodes, or nullopt when the graph has a cycle.
template <typename Graph>
[[nodiscard]] std::optional<std::vector<node_id>> topological_order(const Graph& g)
{
    return detail::kahn(g, nullptr);
}

/// Topological order of the subgraph induced by keeping only arcs for which
/// `arc_kept[a]` is true.  Returns nullopt when that subgraph has a cycle.
template <typename Graph>
[[nodiscard]] std::optional<std::vector<node_id>> topological_order_filtered(
    const Graph& g, const std::vector<bool>& arc_kept)
{
    require(arc_kept.size() == g.arc_count(),
            "topological_order_filtered: filter size mismatch");
    return detail::kahn(g, &arc_kept);
}

template <typename Graph>
[[nodiscard]] inline bool is_acyclic(const Graph& g)
{
    return topological_order(g).has_value();
}

} // namespace tsg

#endif // TSG_GRAPH_TOPO_H
