#include "graph/reach.h"

namespace tsg {

namespace {

std::vector<bool> bfs(const digraph& g, node_id start, bool forward)
{
    require(start < g.node_count(), "reachability: bad start node");
    std::vector<bool> seen(g.node_count(), false);
    std::vector<node_id> queue{start};
    seen[start] = true;
    while (!queue.empty()) {
        const node_id v = queue.back();
        queue.pop_back();
        const auto& arcs = forward ? g.out_arcs(v) : g.in_arcs(v);
        for (const arc_id a : arcs) {
            const node_id next = forward ? g.to(a) : g.from(a);
            if (!seen[next]) {
                seen[next] = true;
                queue.push_back(next);
            }
        }
    }
    return seen;
}

} // namespace

std::vector<bool> reachable_from(const digraph& g, node_id source)
{
    return bfs(g, source, /*forward=*/true);
}

std::vector<bool> reaching_to(const digraph& g, node_id target)
{
    return bfs(g, target, /*forward=*/false);
}

} // namespace tsg
