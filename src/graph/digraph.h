// Compact directed multigraph.
//
// Nodes and arcs are dense 32-bit indices; payloads (delays, markings, event
// attributes) live in parallel arrays owned by the client models.  Parallel
// arcs and self-loops are allowed — a Timed Signal Graph may connect the
// same pair of events through arcs with different delays.
#ifndef TSG_GRAPH_DIGRAPH_H
#define TSG_GRAPH_DIGRAPH_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.h"

namespace tsg {

using node_id = std::uint32_t;
using arc_id = std::uint32_t;

inline constexpr node_id invalid_node = std::numeric_limits<node_id>::max();
inline constexpr arc_id invalid_arc = std::numeric_limits<arc_id>::max();

/// Directed multigraph with O(1) arc endpoint lookup and per-node in/out
/// adjacency lists.  Nodes can only be added; arcs can additionally be
/// removed (tombstoned), restored and retargeted by the incremental edit
/// layer.  A removed arc keeps its id — arc ids are stable handles into the
/// client models' parallel payload arrays — but both endpoints read as
/// invalid_node and the arc disappears from every adjacency list, so
/// adjacency-driven algorithms never see it.  Flat loops over arc ids must
/// skip ids with from(a) == invalid_node.
///
/// Adjacency lists are kept sorted by ascending arc id across removals and
/// retargets (add_arc appends the maximal id, so untouched graphs get the
/// invariant for free).  The relative adjacency order is what every
/// deterministic tie-break downstream keys on; keeping it canonical makes
/// an edited graph bit-identical to a from-scratch rebuild of its live arcs.
class digraph {
public:
    digraph() = default;

    /// Creates `count` isolated nodes up front.
    explicit digraph(std::size_t count) { add_nodes(count); }

    node_id add_node()
    {
        out_.emplace_back();
        in_.emplace_back();
        return static_cast<node_id>(out_.size() - 1);
    }

    void add_nodes(std::size_t count)
    {
        out_.resize(out_.size() + count);
        in_.resize(in_.size() + count);
    }

    void reserve_nodes(std::size_t count)
    {
        out_.reserve(count);
        in_.reserve(count);
    }

    void reserve_arcs(std::size_t count)
    {
        tail_.reserve(count);
        head_.reserve(count);
    }

    arc_id add_arc(node_id from, node_id to)
    {
        require(from < node_count() && to < node_count(), "digraph::add_arc: bad endpoint");
        const auto a = static_cast<arc_id>(tail_.size());
        tail_.push_back(from);
        head_.push_back(to);
        out_[from].push_back(a);
        in_[to].push_back(a);
        return a;
    }

    /// Tombstones an arc: removes it from both adjacency lists and marks the
    /// endpoints invalid.  The arc id (and the arc_count() slot) survives so
    /// client payload arrays keep their indexing; is_live(a) turns false.
    void remove_arc(arc_id a)
    {
        require(is_live(a), "digraph::remove_arc: arc already removed");
        adj_erase(out_[tail_[a]], a);
        adj_erase(in_[head_[a]], a);
        tail_[a] = invalid_node;
        head_[a] = invalid_node;
        ++dead_;
    }

    /// Resurrects a tombstoned arc with the given endpoints (the edit layer
    /// logs them for undo).  The arc rejoins both adjacency lists at its
    /// id-sorted position.
    void restore_arc(arc_id a, node_id from, node_id to)
    {
        require(a < arc_count() && !is_live(a), "digraph::restore_arc: arc is live");
        require(from < node_count() && to < node_count(),
                "digraph::restore_arc: bad endpoint");
        tail_[a] = from;
        head_[a] = to;
        adj_insert(out_[from], a);
        adj_insert(in_[to], a);
        --dead_;
    }

    /// Moves a live arc to new endpoints, keeping its id.
    void retarget_arc(arc_id a, node_id from, node_id to)
    {
        require(is_live(a), "digraph::retarget_arc: arc is removed");
        require(from < node_count() && to < node_count(),
                "digraph::retarget_arc: bad endpoint");
        adj_erase(out_[tail_[a]], a);
        adj_erase(in_[head_[a]], a);
        tail_[a] = from;
        head_[a] = to;
        adj_insert(out_[from], a);
        adj_insert(in_[to], a);
    }

    /// Removes the *last* arc entirely, shrinking arc_count().  Used by the
    /// edit layer to undo a speculative add without leaking a tombstone per
    /// speculation.  The arc may be live or already tombstoned.
    void pop_arc()
    {
        require(arc_count() > 0, "digraph::pop_arc: no arcs");
        const auto a = static_cast<arc_id>(arc_count() - 1);
        if (is_live(a)) {
            adj_erase(out_[tail_[a]], a);
            adj_erase(in_[head_[a]], a);
        } else {
            --dead_;
        }
        tail_.pop_back();
        head_.pop_back();
    }

    [[nodiscard]] bool is_live(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "digraph::is_live: bad arc id");
        return tail_[a] != invalid_node;
    }

    [[nodiscard]] std::size_t node_count() const noexcept { return out_.size(); }
    [[nodiscard]] std::size_t arc_count() const noexcept { return tail_.size(); }

    /// Arcs minus tombstones.
    [[nodiscard]] std::size_t live_arc_count() const noexcept { return tail_.size() - dead_; }

    [[nodiscard]] node_id from(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "digraph::from: bad arc id");
        return tail_[a];
    }

    [[nodiscard]] node_id to(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "digraph::to: bad arc id");
        return head_[a];
    }

    [[nodiscard]] const std::vector<arc_id>& out_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "digraph::out_arcs: bad node id");
        return out_[n];
    }

    [[nodiscard]] const std::vector<arc_id>& in_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "digraph::in_arcs: bad node id");
        return in_[n];
    }

    [[nodiscard]] std::size_t out_degree(node_id n) const { return out_arcs(n).size(); }
    [[nodiscard]] std::size_t in_degree(node_id n) const { return in_arcs(n).size(); }

private:
    static void adj_insert(std::vector<arc_id>& list, arc_id a)
    {
        list.insert(std::lower_bound(list.begin(), list.end(), a), a);
    }

    static void adj_erase(std::vector<arc_id>& list, arc_id a)
    {
        const auto it = std::lower_bound(list.begin(), list.end(), a);
        TSG_DCHECK(it != list.end() && *it == a, "digraph: adjacency desynchronized");
        list.erase(it);
    }

    std::vector<node_id> tail_; // arc -> source node
    std::vector<node_id> head_; // arc -> target node
    std::vector<std::vector<arc_id>> out_;
    std::vector<std::vector<arc_id>> in_;
    std::size_t dead_ = 0; // tombstoned arcs
};

} // namespace tsg

#endif // TSG_GRAPH_DIGRAPH_H
