// Compact directed multigraph.
//
// Nodes and arcs are dense 32-bit indices; payloads (delays, markings, event
// attributes) live in parallel arrays owned by the client models.  Parallel
// arcs and self-loops are allowed — a Timed Signal Graph may connect the
// same pair of events through arcs with different delays.
#ifndef TSG_GRAPH_DIGRAPH_H
#define TSG_GRAPH_DIGRAPH_H

#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.h"

namespace tsg {

using node_id = std::uint32_t;
using arc_id = std::uint32_t;

inline constexpr node_id invalid_node = std::numeric_limits<node_id>::max();
inline constexpr arc_id invalid_arc = std::numeric_limits<arc_id>::max();

/// Directed multigraph with O(1) arc endpoint lookup and per-node in/out
/// adjacency lists.  Nodes and arcs can only be added, never removed; the
/// analysis algorithms all work on immutable snapshots.
class digraph {
public:
    digraph() = default;

    /// Creates `count` isolated nodes up front.
    explicit digraph(std::size_t count) { add_nodes(count); }

    node_id add_node()
    {
        out_.emplace_back();
        in_.emplace_back();
        return static_cast<node_id>(out_.size() - 1);
    }

    void add_nodes(std::size_t count)
    {
        out_.resize(out_.size() + count);
        in_.resize(in_.size() + count);
    }

    void reserve_nodes(std::size_t count)
    {
        out_.reserve(count);
        in_.reserve(count);
    }

    void reserve_arcs(std::size_t count)
    {
        tail_.reserve(count);
        head_.reserve(count);
    }

    arc_id add_arc(node_id from, node_id to)
    {
        require(from < node_count() && to < node_count(), "digraph::add_arc: bad endpoint");
        const auto a = static_cast<arc_id>(tail_.size());
        tail_.push_back(from);
        head_.push_back(to);
        out_[from].push_back(a);
        in_[to].push_back(a);
        return a;
    }

    [[nodiscard]] std::size_t node_count() const noexcept { return out_.size(); }
    [[nodiscard]] std::size_t arc_count() const noexcept { return tail_.size(); }

    [[nodiscard]] node_id from(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "digraph::from: bad arc id");
        return tail_[a];
    }

    [[nodiscard]] node_id to(arc_id a) const
    {
        TSG_DCHECK(a < arc_count(), "digraph::to: bad arc id");
        return head_[a];
    }

    [[nodiscard]] const std::vector<arc_id>& out_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "digraph::out_arcs: bad node id");
        return out_[n];
    }

    [[nodiscard]] const std::vector<arc_id>& in_arcs(node_id n) const
    {
        TSG_DCHECK(n < node_count(), "digraph::in_arcs: bad node id");
        return in_[n];
    }

    [[nodiscard]] std::size_t out_degree(node_id n) const { return out_arcs(n).size(); }
    [[nodiscard]] std::size_t in_degree(node_id n) const { return in_arcs(n).size(); }

private:
    std::vector<node_id> tail_; // arc -> source node
    std::vector<node_id> head_; // arc -> target node
    std::vector<std::vector<arc_id>> out_;
    std::vector<std::vector<arc_id>> in_;
};

} // namespace tsg

#endif // TSG_GRAPH_DIGRAPH_H
