// Reachability queries.
#ifndef TSG_GRAPH_REACH_H
#define TSG_GRAPH_REACH_H

#include <vector>

#include "graph/digraph.h"

namespace tsg {

/// Nodes reachable from `source` (inclusive) following arc direction.
[[nodiscard]] std::vector<bool> reachable_from(const digraph& g, node_id source);

/// Nodes from which `target` is reachable (inclusive), i.e. reachability in
/// the reversed graph.
[[nodiscard]] std::vector<bool> reaching_to(const digraph& g, node_id target);

} // namespace tsg

#endif // TSG_GRAPH_REACH_H
