#include "graph/longest_path.h"

#include <algorithm>

#include "graph/topo.h"

namespace tsg {

longest_path_result dag_longest_paths(const digraph& g, const std::vector<rational>& arc_weight,
                                      const std::vector<node_id>& sources,
                                      const std::vector<bool>* arc_kept)
{
    require(arc_weight.size() == g.arc_count(), "dag_longest_paths: weight size mismatch");

    const auto order = arc_kept ? topological_order_filtered(g, *arc_kept)
                                : topological_order(g);
    require(order.has_value(), "dag_longest_paths: graph is not acyclic");

    longest_path_result r;
    r.distance.assign(g.node_count(), rational(0));
    r.reached.assign(g.node_count(), false);
    r.pred.assign(g.node_count(), invalid_arc);

    for (const node_id s : sources) {
        require(s < g.node_count(), "dag_longest_paths: bad source");
        r.reached[s] = true;
    }

    for (const node_id v : *order) {
        if (!r.reached[v]) continue;
        for (const arc_id a : g.out_arcs(v)) {
            if (arc_kept && !(*arc_kept)[a]) continue;
            const node_id w = g.to(a);
            const rational candidate = r.distance[v] + arc_weight[a];
            if (!r.reached[w] || candidate > r.distance[w]) {
                r.reached[w] = true;
                r.distance[w] = candidate;
                r.pred[w] = a;
            }
        }
    }
    return r;
}

positive_cycle_result find_positive_cycle(const digraph& g,
                                          const std::vector<rational>& arc_weight)
{
    require(arc_weight.size() == g.arc_count(), "find_positive_cycle: weight size mismatch");

    const std::size_t n = g.node_count();
    positive_cycle_result result;
    if (n == 0) return result;

    // Longest-path Bellman-Ford from a virtual source connected to every
    // node with weight 0: all distances start at 0.
    std::vector<rational> dist(n, rational(0));
    std::vector<arc_id> pred(n, invalid_arc);

    node_id witness = invalid_node;
    for (std::size_t pass = 0; pass < n; ++pass) {
        bool relaxed = false;
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            const node_id u = g.from(a);
            const node_id v = g.to(a);
            const rational candidate = dist[u] + arc_weight[a];
            if (candidate > dist[v]) {
                dist[v] = candidate;
                pred[v] = a;
                relaxed = true;
                witness = v;
            }
        }
        if (!relaxed) return result; // converged: no positive cycle
    }

    // A relaxation occurred on the n-th pass: `witness` is reachable from a
    // positive cycle.  Walk predecessors n steps to land inside the cycle.
    node_id v = witness;
    for (std::size_t i = 0; i < n; ++i) {
        ensure(pred[v] != invalid_arc, "find_positive_cycle: broken predecessor chain");
        v = g.from(pred[v]);
    }

    // Extract the cycle through v.
    std::vector<arc_id> cycle;
    node_id cur = v;
    do {
        const arc_id a = pred[cur];
        ensure(a != invalid_arc, "find_positive_cycle: broken cycle chain");
        cycle.push_back(a);
        cur = g.from(a);
    } while (cur != v);
    std::reverse(cycle.begin(), cycle.end());

    result.found = true;
    result.cycle = std::move(cycle);
    return result;
}

rational path_weight(const std::vector<arc_id>& arcs, const std::vector<rational>& arc_weight)
{
    rational total(0);
    for (const arc_id a : arcs) total += arc_weight.at(a);
    return total;
}

} // namespace tsg
