#include "graph/dot.h"

#include <sstream>

namespace tsg {

namespace {

std::string escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string to_dot(const digraph& g, const std::function<std::string(node_id)>& node_label,
                   const std::function<std::string(arc_id)>& arc_label,
                   const std::string& graph_name)
{
    std::ostringstream os;
    os << "digraph " << graph_name << " {\n";
    for (node_id v = 0; v < g.node_count(); ++v) {
        os << "  n" << v;
        if (node_label) os << " [label=\"" << escape(node_label(v)) << "\"]";
        os << ";\n";
    }
    for (arc_id a = 0; a < g.arc_count(); ++a) {
        os << "  n" << g.from(a) << " -> n" << g.to(a);
        if (arc_label) {
            const std::string label = arc_label(a);
            if (!label.empty()) os << " [label=\"" << escape(label) << "\"]";
        }
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace tsg
