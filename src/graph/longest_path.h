// Longest-path computations with exact rational weights.
//
// Two flavours are needed by the library:
//   * DAG longest paths (PERT) — the engine behind timing simulation, which
//     is a longest-path sweep over the (acyclic) unfolding;
//   * Bellman-Ford positive-cycle detection — the oracle inside the Lawler
//     binary-search baseline for maximum cycle ratio.
#ifndef TSG_GRAPH_LONGEST_PATH_H
#define TSG_GRAPH_LONGEST_PATH_H

#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "util/rational.h"

namespace tsg {

struct longest_path_result {
    std::vector<rational> distance; ///< valid only where reached[v]
    std::vector<bool> reached;      ///< v reachable from some source
    std::vector<arc_id> pred;       ///< arg-max in-arc, invalid_arc at sources
};

/// Single- or multi-source longest paths on a DAG.  Throws tsg::error when
/// the graph (restricted by `arc_kept`, if given) is not acyclic.
/// Sources start at distance 0.  O(n + m).
[[nodiscard]] longest_path_result dag_longest_paths(
    const digraph& g, const std::vector<rational>& arc_weight,
    const std::vector<node_id>& sources, const std::vector<bool>* arc_kept = nullptr);

struct positive_cycle_result {
    bool found = false;
    std::vector<arc_id> cycle; ///< arcs of one positive-weight cycle if found
};

/// Detects whether `g` contains a directed cycle of strictly positive total
/// weight (Bellman-Ford on longest paths from a virtual super-source).
/// O(n * m).  When found, returns one witness cycle.
[[nodiscard]] positive_cycle_result find_positive_cycle(const digraph& g,
                                                        const std::vector<rational>& arc_weight);

/// Sum of arc weights along a path or cycle.
[[nodiscard]] rational path_weight(const std::vector<arc_id>& arcs,
                                   const std::vector<rational>& arc_weight);

} // namespace tsg

#endif // TSG_GRAPH_LONGEST_PATH_H
