// Longest-path computations, exact in either weight domain.
//
// Two flavours are needed by the library:
//   * DAG longest paths (PERT) — the engine behind timing simulation, which
//     is a longest-path sweep over the (acyclic) unfolding;
//   * Bellman-Ford positive-cycle detection — the oracle inside the Lawler
//     binary-search baseline for maximum cycle ratio.
//
// Everything is templated over the graph representation (digraph or the
// compiled csr_graph) and, for the DAG sweeps, over the weight domain: the
// compiled timing kernel runs them on fixed-point int64 delays and converts
// back to exact rationals only at the result boundary.
#ifndef TSG_GRAPH_LONGEST_PATH_H
#define TSG_GRAPH_LONGEST_PATH_H

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "graph/topo.h"
#include "util/rational.h"

namespace tsg {

template <typename Weight>
struct basic_longest_path_result {
    std::vector<Weight> distance;   ///< valid only where reached[v]
    std::vector<bool> reached;      ///< v reachable from some source
    std::vector<arc_id> pred;       ///< arg-max in-arc, invalid_arc at sources
};

using longest_path_result = basic_longest_path_result<rational>;

/// DAG longest paths relaxed along a caller-supplied topological order of
/// the (possibly arc-filtered) graph.  The compiled kernel precomputes the
/// order once and reuses it across sweeps; dag_longest_paths below computes
/// it on the fly.  Sources start at distance 0.  O(n + m).
template <typename Graph, typename Weight>
[[nodiscard]] basic_longest_path_result<Weight> dag_longest_paths_ordered(
    const Graph& g, const std::vector<node_id>& order, const std::vector<Weight>& arc_weight,
    const std::vector<node_id>& sources, const std::vector<bool>* arc_kept = nullptr)
{
    require(arc_weight.size() == g.arc_count(), "dag_longest_paths: weight size mismatch");

    basic_longest_path_result<Weight> r;
    r.distance.assign(g.node_count(), Weight{});
    r.reached.assign(g.node_count(), false);
    r.pred.assign(g.node_count(), invalid_arc);

    for (const node_id s : sources) {
        require(s < g.node_count(), "dag_longest_paths: bad source");
        r.reached[s] = true;
    }

    for (const node_id v : order) {
        if (!r.reached[v]) continue;
        for (const arc_id a : g.out_arcs(v)) {
            if (arc_kept && !(*arc_kept)[a]) continue;
            const node_id w = g.to(a);
            const Weight candidate = r.distance[v] + arc_weight[a];
            if (!r.reached[w] || candidate > r.distance[w]) {
                r.reached[w] = true;
                r.distance[w] = candidate;
                r.pred[w] = a;
            }
        }
    }
    return r;
}

namespace detail {

/// Computes the (possibly arc-filtered) topological order and delegates to
/// the ordered sweep; shared by the rational and fixed-point entry points
/// below (their split exists only so that braced-init-list weights still
/// pick a concrete element type).
template <typename Graph, typename Weight>
[[nodiscard]] basic_longest_path_result<Weight> dag_longest_paths_any(
    const Graph& g, const std::vector<Weight>& arc_weight,
    const std::vector<node_id>& sources, const std::vector<bool>* arc_kept)
{
    const auto order = arc_kept ? topological_order_filtered(g, *arc_kept)
                                : topological_order(g);
    require(order.has_value(), "dag_longest_paths: graph is not acyclic");
    return dag_longest_paths_ordered(g, *order, arc_weight, sources, arc_kept);
}

} // namespace detail

/// Single- or multi-source longest paths on a DAG.  Throws tsg::error when
/// the graph (restricted by `arc_kept`, if given) is not acyclic.
/// Sources start at distance 0.  O(n + m).
template <typename Graph>
[[nodiscard]] basic_longest_path_result<rational> dag_longest_paths(
    const Graph& g, const std::vector<rational>& arc_weight,
    const std::vector<node_id>& sources, const std::vector<bool>* arc_kept = nullptr)
{
    return detail::dag_longest_paths_any(g, arc_weight, sources, arc_kept);
}

/// Fixed-point variant: same sweep on scaled int64 delays (the caller owns
/// the scaling and converts back at the boundary).
template <typename Graph>
[[nodiscard]] basic_longest_path_result<std::int64_t> dag_longest_paths_fixed(
    const Graph& g, const std::vector<std::int64_t>& arc_weight,
    const std::vector<node_id>& sources, const std::vector<bool>* arc_kept = nullptr)
{
    return detail::dag_longest_paths_any(g, arc_weight, sources, arc_kept);
}

struct positive_cycle_result {
    bool found = false;
    std::vector<arc_id> cycle; ///< arcs of one positive-weight cycle if found
};

/// Detects whether `g` contains a directed cycle of strictly positive total
/// weight (Bellman-Ford on longest paths from a virtual super-source).
/// O(n * m).  When found, returns one witness cycle.
template <typename Graph>
[[nodiscard]] positive_cycle_result find_positive_cycle(const Graph& g,
                                                        const std::vector<rational>& arc_weight)
{
    require(arc_weight.size() == g.arc_count(), "find_positive_cycle: weight size mismatch");

    const std::size_t n = g.node_count();
    positive_cycle_result result;
    if (n == 0) return result;

    // Longest-path Bellman-Ford from a virtual source connected to every
    // node with weight 0: all distances start at 0.
    std::vector<rational> dist(n, rational(0));
    std::vector<arc_id> pred(n, invalid_arc);

    node_id witness = invalid_node;
    for (std::size_t pass = 0; pass < n; ++pass) {
        bool relaxed = false;
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            const node_id u = g.from(a);
            const node_id v = g.to(a);
            const rational candidate = dist[u] + arc_weight[a];
            if (candidate > dist[v]) {
                dist[v] = candidate;
                pred[v] = a;
                relaxed = true;
                witness = v;
            }
        }
        if (!relaxed) return result; // converged: no positive cycle
    }

    // A relaxation occurred on the n-th pass: `witness` is reachable from a
    // positive cycle.  Walk predecessors n steps to land inside the cycle.
    node_id v = witness;
    for (std::size_t i = 0; i < n; ++i) {
        ensure(pred[v] != invalid_arc, "find_positive_cycle: broken predecessor chain");
        v = g.from(pred[v]);
    }

    // Extract the cycle through v.
    std::vector<arc_id> cycle;
    node_id cur = v;
    do {
        const arc_id a = pred[cur];
        ensure(a != invalid_arc, "find_positive_cycle: broken cycle chain");
        cycle.push_back(a);
        cur = g.from(a);
    } while (cur != v);
    std::reverse(cycle.begin(), cycle.end());

    result.found = true;
    result.cycle = std::move(cycle);
    return result;
}

/// Sum of arc weights along a path or cycle.
[[nodiscard]] inline rational path_weight(const std::vector<arc_id>& arcs,
                                          const std::vector<rational>& arc_weight)
{
    rational total(0);
    for (const arc_id a : arcs) total += arc_weight.at(a);
    return total;
}

} // namespace tsg

#endif // TSG_GRAPH_LONGEST_PATH_H
