#include "sg/signal_graph.h"

#include <algorithm>
#include <cctype>

#include "graph/scc.h"
#include "graph/topo.h"

namespace tsg {

parsed_event_name parse_event_name(const std::string& name)
{
    parsed_event_name parsed;
    if (name.size() < 2) return parsed;
    const char last = name.back();
    if (last != '+' && last != '-') return parsed;
    parsed.signal = name.substr(0, name.size() - 1);
    parsed.pol = last == '+' ? polarity::rise : polarity::fall;
    return parsed;
}

event_id signal_graph::add_event(const std::string& name)
{
    const parsed_event_name parsed = parse_event_name(name);
    return add_event(name, parsed.signal, parsed.pol);
}

event_id signal_graph::add_event(const std::string& name, std::string signal, polarity pol)
{
    require(!finalized_, "signal_graph: cannot add events after finalize()");
    require(!name.empty(), "signal_graph: event name must not be empty");
    require(by_name_.find(name) == by_name_.end(),
            "signal_graph: duplicate event name '" + name + "'");

    const event_id e = structure_.add_node();
    events_.push_back(event_info{name, std::move(signal), pol, event_kind::repetitive});
    by_name_.emplace(name, e);
    return e;
}

arc_id signal_graph::add_arc(event_id from, event_id to, rational delay, bool marked,
                             bool disengageable)
{
    require(!finalized_, "signal_graph: cannot add arcs after finalize()");
    require(from < event_count() && to < event_count(), "signal_graph: bad arc endpoint");
    require(!delay.is_negative(), "signal_graph: negative delay on arc " +
                                      events_[from].name + " -> " + events_[to].name);

    const arc_id a = structure_.add_arc(from, to);
    arcs_.push_back(arc_info{from, to, delay, marked, disengageable});
    ensure(a + 1 == arcs_.size(), "signal_graph: arc id desynchronized");
    return a;
}

event_id signal_graph::find_event(const std::string& name) const
{
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? invalid_node : it->second;
}

event_id signal_graph::event_by_name(const std::string& name) const
{
    const event_id e = find_event(name);
    require(e != invalid_node, "signal_graph: no event named '" + name + "'");
    return e;
}

void signal_graph::finalize()
{
    require(!finalized_, "signal_graph: finalize() called twice");
    require(event_count() > 0, "signal_graph: empty graph");
    classify_events();
    validate();
    finalized_ = true;
}

void signal_graph::classify_events()
{
    const std::vector<bool> cyclic = nodes_on_cycles(structure_);

    repetitive_.clear();
    initial_.clear();
    transient_.clear();
    for (event_id e = 0; e < event_count(); ++e) {
        if (cyclic[e]) {
            events_[e].kind = event_kind::repetitive;
            repetitive_.push_back(e);
        } else if (structure_.in_degree(e) == 0) {
            events_[e].kind = event_kind::initial;
            initial_.push_back(e);
        } else {
            events_[e].kind = event_kind::transient;
            transient_.push_back(e);
        }
    }

    // Arcs out of one-shot events only constrain the first occurrence of
    // their target; the paper draws them crossed.  Normalize the flag so
    // clients need not set it by hand.
    for (arc_id a = 0; a < arc_count(); ++a)
        if (structure_.is_live(a) &&
            events_[arcs_[a].from].kind != event_kind::repetitive)
            arcs_[a].disengageable = true;

    border_.clear();
    for (const event_id e : repetitive_) {
        const bool has_marked_in = std::any_of(
            structure_.in_arcs(e).begin(), structure_.in_arcs(e).end(),
            [&](arc_id a) { return arcs_[a].marked; });
        if (has_marked_in) border_.push_back(e);
    }
}

void signal_graph::validate()
{
    // No repetitive event may precede a disengageable arc (well-formedness,
    // Section III.A), and arcs from repetitive to one-shot events would make
    // the graph unbounded (tokens accumulate on the arc forever).
    for (arc_id id = 0; id < arc_count(); ++id) {
        if (!structure_.is_live(id)) continue;
        const arc_info& arc = arcs_[id];
        const bool from_repetitive = events_[arc.from].kind == event_kind::repetitive;
        const bool to_repetitive = events_[arc.to].kind == event_kind::repetitive;
        if (arc.disengageable)
            require(!from_repetitive,
                    "signal_graph: disengageable arc sourced at repetitive event '" +
                        events_[arc.from].name + "' violates well-formedness");
        require(!(from_repetitive && !to_repetitive),
                "signal_graph: arc from repetitive '" + events_[arc.from].name +
                    "' to one-shot '" + events_[arc.to].name + "' makes the graph unbounded");
    }

    if (repetitive_.empty()) return; // purely acyclic graph: PERT territory

    // The repetitive core must be one strongly connected component.
    const core_view core = repetitive_core();
    require(is_strongly_connected(core.graph),
            "signal_graph: repetitive events do not form one strongly connected component");

    // Liveness: every cycle must carry an initial token, i.e. the token-free
    // core subgraph must be acyclic.
    std::vector<bool> token_free(core.graph.arc_count(), false);
    for (arc_id a = 0; a < core.graph.arc_count(); ++a)
        token_free[a] = !arcs_[core.arc_original[a]].marked;
    require(topological_order_filtered(core.graph, token_free).has_value(),
            "signal_graph: not live — some cycle carries no initial token");
}

void signal_graph::require_finalized() const
{
    require(finalized_, "signal_graph: call finalize() before analysis queries");
}

const std::vector<event_id>& signal_graph::repetitive_events() const
{
    require_finalized();
    return repetitive_;
}

const std::vector<event_id>& signal_graph::initial_events() const
{
    require_finalized();
    return initial_;
}

const std::vector<event_id>& signal_graph::transient_events() const
{
    require_finalized();
    return transient_;
}

const std::vector<event_id>& signal_graph::border_events() const
{
    require_finalized();
    return border_;
}

std::size_t signal_graph::token_count() const
{
    return static_cast<std::size_t>(
        std::count_if(arcs_.begin(), arcs_.end(), [](const arc_info& a) { return a.marked; }));
}

rational signal_graph::path_delay(const std::vector<arc_id>& arcs) const
{
    rational total(0);
    for (const arc_id a : arcs) total += arcs_.at(a).delay;
    return total;
}

signal_graph::core_view signal_graph::repetitive_core() const
{
    const std::vector<bool> cyclic = nodes_on_cycles(structure_);

    // Size everything up front: the rebuild loops below are hot for the
    // analyses that extract the core repeatedly on large graphs.
    std::size_t core_nodes = 0;
    for (event_id e = 0; e < event_count(); ++e)
        if (cyclic[e]) ++core_nodes;
    std::size_t core_arcs = 0;
    for (arc_id a = 0; a < arc_count(); ++a)
        if (structure_.is_live(a) && cyclic[arcs_[a].from] && cyclic[arcs_[a].to])
            ++core_arcs;

    core_view core;
    core.event_node.assign(event_count(), invalid_node);
    core.node_event.reserve(core_nodes);
    core.graph.reserve_nodes(core_nodes);
    core.graph.reserve_arcs(core_arcs);
    core.arc_original.reserve(core_arcs);
    for (event_id e = 0; e < event_count(); ++e) {
        if (!cyclic[e]) continue;
        core.event_node[e] = core.graph.add_node();
        core.node_event.push_back(e);
    }
    for (arc_id a = 0; a < arc_count(); ++a) {
        if (!structure_.is_live(a)) continue;
        const auto& arc = arcs_[a];
        const node_id u = core.event_node[arc.from];
        const node_id v = core.event_node[arc.to];
        if (u == invalid_node || v == invalid_node) continue;
        core.graph.add_arc(u, v);
        core.arc_original.push_back(a);
    }
    return core;
}

} // namespace tsg
