// Token-game execution semantics of Signal Graphs (Section III.A).
//
// An event is enabled when every *engaged* input arc carries a token; firing
// consumes one token per input arc and produces one per output arc.
// Disengageable arcs stop constraining their target after the first
// consumption, and one-shot (initial/transient) events fire at most once.
#ifndef TSG_SG_TOKEN_GAME_H
#define TSG_SG_TOKEN_GAME_H

#include <cstdint>
#include <vector>

#include "sg/signal_graph.h"

namespace tsg {

class token_game {
public:
    explicit token_game(const signal_graph& sg);

    /// Tokens currently on each arc.
    [[nodiscard]] const std::vector<std::uint32_t>& tokens() const noexcept { return tokens_; }

    /// True when `e` may fire in the current marking.
    [[nodiscard]] bool enabled(event_id e) const;

    /// All currently enabled events, in ascending id order.
    [[nodiscard]] std::vector<event_id> enabled_events() const;

    /// Fires `e`; throws tsg::error when it is not enabled.
    void fire(event_id e);

    /// Number of times `e` has fired since construction/reset.
    [[nodiscard]] std::uint64_t fire_count(event_id e) const { return fired_.at(e); }

    /// Largest token count ever observed on any arc (boundedness probe).
    [[nodiscard]] std::uint32_t max_tokens_seen() const noexcept { return max_tokens_; }

    /// Restores the initial marking.
    void reset();

private:
    [[nodiscard]] bool arc_engaged(arc_id a) const;

    const signal_graph& sg_;
    std::vector<std::uint32_t> tokens_;
    std::vector<bool> disengaged_;
    std::vector<std::uint64_t> fired_;
    std::uint32_t max_tokens_ = 0;
};

} // namespace tsg

#endif // TSG_SG_TOKEN_GAME_H
