#include "sg/token_game.h"

#include <algorithm>

namespace tsg {

token_game::token_game(const signal_graph& sg) : sg_(sg)
{
    require(sg.finalized(), "token_game: graph must be finalized");
    reset();
}

void token_game::reset()
{
    tokens_.assign(sg_.arc_count(), 0);
    disengaged_.assign(sg_.arc_count(), false);
    fired_.assign(sg_.event_count(), 0);
    max_tokens_ = 0;
    for (arc_id a = 0; a < sg_.arc_count(); ++a)
        if (sg_.arc(a).marked) tokens_[a] = 1;
    max_tokens_ = sg_.arc_count() ? 1 : 0;
}

bool token_game::arc_engaged(arc_id a) const
{
    return !(sg_.arc(a).disengageable && disengaged_[a]);
}

bool token_game::enabled(event_id e) const
{
    // One-shot events fire exactly once.
    if (sg_.event(e).kind != event_kind::repetitive && fired_[e] > 0) return false;
    for (const arc_id a : sg_.structure().in_arcs(e))
        if (arc_engaged(a) && tokens_[a] == 0) return false;
    return true;
}

std::vector<event_id> token_game::enabled_events() const
{
    std::vector<event_id> out;
    for (event_id e = 0; e < sg_.event_count(); ++e)
        if (enabled(e)) out.push_back(e);
    return out;
}

void token_game::fire(event_id e)
{
    require(e < sg_.event_count(), "token_game::fire: bad event");
    require(enabled(e), "token_game::fire: event '" + sg_.event(e).name + "' is not enabled");

    for (const arc_id a : sg_.structure().in_arcs(e)) {
        if (!arc_engaged(a)) continue;
        --tokens_[a];
        if (sg_.arc(a).disengageable) disengaged_[a] = true;
    }
    for (const arc_id a : sg_.structure().out_arcs(e)) {
        ++tokens_[a];
        max_tokens_ = std::max(max_tokens_, tokens_[a]);
    }
    ++fired_[e];
}

} // namespace tsg
