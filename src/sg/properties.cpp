#include "sg/properties.h"

#include <algorithm>
#include <deque>
#include <map>

#include "graph/reach.h"
#include "graph/topo.h"
#include "sg/unfolding.h"

namespace tsg {

namespace {

/// 0-1 BFS over the repetitive core with marked arcs costing 1.
std::vector<int> token_distances(const signal_graph& sg,
                                 const signal_graph::core_view& core, node_id source)
{
    std::vector<int> dist(core.graph.node_count(), -1);
    std::deque<node_id> queue;
    dist[source] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        const node_id v = queue.front();
        queue.pop_front();
        for (const arc_id a : core.graph.out_arcs(v)) {
            const int cost = sg.arc(core.arc_original[a]).marked ? 1 : 0;
            const node_id w = core.graph.to(a);
            const int candidate = dist[v] + cost;
            if (dist[w] == -1 || candidate < dist[w]) {
                dist[w] = candidate;
                if (cost == 0)
                    queue.push_front(w);
                else
                    queue.push_back(w);
            }
        }
    }
    return dist;
}

} // namespace

int min_token_distance(const signal_graph& sg, event_id from, event_id to)
{
    const signal_graph::core_view core = sg.repetitive_core();
    const node_id s = core.event_node.at(from);
    const node_id t = core.event_node.at(to);
    require(s != invalid_node && t != invalid_node,
            "min_token_distance: events must both be repetitive");
    return token_distances(sg, core, s)[t];
}

bool is_safe(const signal_graph& sg)
{
    require(sg.finalized(), "is_safe: graph must be finalized");
    const signal_graph::core_view core = sg.repetitive_core();

    // Cache distances per distinct arc head.
    std::map<node_id, std::vector<int>> from_head;
    for (arc_id a = 0; a < core.graph.arc_count(); ++a) {
        const node_id head = core.graph.to(a);
        const node_id tail = core.graph.from(a);
        auto it = from_head.find(head);
        if (it == from_head.end())
            it = from_head.emplace(head, token_distances(sg, core, head)).first;
        const int back = it->second[tail];
        if (back < 0) return false; // not on a cycle at all (cannot happen in a strong core)
        const int arc_tokens = sg.arc(core.arc_original[a]).marked ? 1 : 0;
        if (arc_tokens + back != 1) return false;
    }
    return true;
}

signal_property_report check_signal_properties(const signal_graph& sg, std::uint32_t periods)
{
    require(sg.finalized(), "check_signal_properties: graph must be finalized");
    signal_property_report report;

    const unfolding unf(sg, periods);
    const auto order = topological_order(unf.dag());
    ensure(order.has_value(), "check_signal_properties: unfolding must be acyclic");
    std::vector<std::uint32_t> topo_pos(unf.dag().node_count());
    for (std::uint32_t i = 0; i < order->size(); ++i) topo_pos[(*order)[i]] = i;

    // Group instantiations by signal.
    std::map<std::string, std::vector<node_id>> by_signal;
    for (node_id inst = 0; inst < unf.dag().node_count(); ++inst) {
        const event_info& info = sg.event(unf.event_of(inst));
        if (info.pol == polarity::none || info.signal.empty()) continue;
        by_signal[info.signal].push_back(inst);
    }

    for (auto& [signal, instances] : by_signal) {
        if (instances.size() < 2) continue;
        std::sort(instances.begin(), instances.end(),
                  [&](node_id a, node_id b) { return topo_pos[a] < topo_pos[b]; });

        // Adjacent instantiations must be ordered by precedence; by
        // transitivity the whole chain is then totally ordered.
        for (std::size_t i = 0; i + 1 < instances.size(); ++i) {
            const std::vector<bool> reach = reachable_from(unf.dag(), instances[i]);
            if (!reach[instances[i + 1]]) {
                report.auto_concurrency_free = false;
                report.diagnostics.push_back(
                    "signal '" + signal + "': concurrent transitions " +
                    unf.instance_name(instances[i]) + " and " +
                    unf.instance_name(instances[i + 1]));
            }
        }

        // Polarities must alternate along the chain.
        for (std::size_t i = 0; i + 1 < instances.size(); ++i) {
            const polarity p0 = sg.event(unf.event_of(instances[i])).pol;
            const polarity p1 = sg.event(unf.event_of(instances[i + 1])).pol;
            if (p0 == p1) {
                report.switch_over_ok = false;
                report.diagnostics.push_back(
                    "signal '" + signal + "': consecutive transitions " +
                    unf.instance_name(instances[i]) + " and " +
                    unf.instance_name(instances[i + 1]) + " have equal polarity");
            }
        }
    }
    return report;
}

} // namespace tsg
