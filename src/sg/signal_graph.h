// The Timed Signal Graph model of Nielsen & Kishinevsky (DAC'94, Section III).
//
// A Signal Graph is a tuple <A, I, ->, M, O>:
//   A  — events (signal transitions such as a+, a-, or plain actions);
//   I  — initial events, which occur exactly once at the start;
//   -> — the precedence (AND-causality) relation, the arcs;
//   M  — the initial marking, one boolean per arc (initially-safe graphs);
//   O  — the disengageable arcs, which constrain only the first occurrence
//        of their target (drawn "crossed" in the paper's figures).
// Arcs additionally carry non-negative rational delays, turning the Signal
// Graph into a *Timed* Signal Graph.
//
// Events are classified structurally when `finalize()` is called:
//   * repetitive — lies on a directed cycle, occurs infinitely often (A_r);
//   * initial    — no incoming arcs, occurs once at the origin of time (I);
//   * transient  — occurs once, caused by initial/transient events (e.g. the
//     buffer output f- in the paper's Figure 1).
// `finalize()` also validates the well-formedness restrictions the paper
// imposes (Section III.A): the repetitive core is strongly connected, every
// cycle carries at least one initial token (liveness), no repetitive event
// precedes a disengageable arc, and no arc leads from a repetitive event to
// a non-repetitive one (which would make the graph unbounded).
#ifndef TSG_SG_SIGNAL_GRAPH_H
#define TSG_SG_SIGNAL_GRAPH_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/digraph.h"
#include "util/rational.h"

namespace tsg {

/// Events are identified by dense indices equal to their node ids in the
/// underlying structure digraph.
using event_id = node_id;

/// Transition direction of an event, when it models a signal edge.
enum class polarity : std::uint8_t {
    rise, ///< 0 -> 1 transition, written "a+"
    fall, ///< 1 -> 0 transition, written "a-"
    none, ///< not a signal transition (abstract event)
};

/// Structural classification computed by signal_graph::finalize().
enum class event_kind : std::uint8_t {
    repetitive, ///< member of A_r: lies on a cycle
    initial,    ///< member of I: no causes, fires once at t = 0
    transient,  ///< fires once, downstream of initial events only
};

struct event_info {
    std::string name;   ///< unique display name, e.g. "a+", "e-", "req.2+"
    std::string signal; ///< owning signal ("a"); empty for abstract events
    polarity pol = polarity::none;
    event_kind kind = event_kind::repetitive; ///< valid after finalize()
};

struct arc_info {
    event_id from = invalid_node;
    event_id to = invalid_node;
    rational delay;            ///< propagation delay, >= 0
    bool marked = false;       ///< initial token (M)
    bool disengageable = false;///< member of O ("crossed" arc)
};

/// Splits an event name of the form `<signal>[.index]<+|->` into signal and
/// polarity; names without a trailing +/- yield polarity::none and an empty
/// signal.  Examples: "a+" -> {a, rise}; "req.2-" -> {req.2, fall};
/// "start" -> {"", none}.
struct parsed_event_name {
    std::string signal;
    polarity pol = polarity::none;
};
[[nodiscard]] parsed_event_name parse_event_name(const std::string& name);

/// A (Timed) Signal Graph.  Build it directly or through sg_builder, then
/// call finalize() exactly once before running any analysis.
class signal_graph {
public:
    signal_graph() = default;

    /// Adds an event.  Signal and polarity are parsed from the name unless
    /// supplied explicitly.  Throws on duplicate names.
    event_id add_event(const std::string& name);
    event_id add_event(const std::string& name, std::string signal, polarity pol);

    /// Adds an arc with the given delay (>= 0), marking and disengageable
    /// flag.  Endpoints must exist.
    arc_id add_arc(event_id from, event_id to, rational delay, bool marked = false,
                   bool disengageable = false);

    /// Classifies events, validates the model restrictions, and freezes the
    /// graph.  Throws tsg::error with a diagnostic when a restriction is
    /// violated.  Must be called exactly once, after which the graph is
    /// immutable.
    void finalize();

    [[nodiscard]] bool finalized() const noexcept { return finalized_; }

    // --- structure access ------------------------------------------------

    [[nodiscard]] std::size_t event_count() const noexcept { return events_.size(); }
    [[nodiscard]] std::size_t arc_count() const noexcept { return arcs_.size(); }

    /// Arc-id slots minus tombstones.  Equal to arc_count() unless the
    /// incremental edit layer removed arcs.
    [[nodiscard]] std::size_t live_arc_count() const noexcept
    {
        return structure_.live_arc_count();
    }

    /// False for arcs tombstoned by the incremental edit layer.  Flat loops
    /// over arc ids must skip dead arcs; dead arc_info slots read as
    /// invalid endpoints, zero delay, no marking.
    [[nodiscard]] bool arc_live(arc_id a) const { return structure_.is_live(a); }

    [[nodiscard]] const event_info& event(event_id e) const { return events_.at(e); }
    [[nodiscard]] const arc_info& arc(arc_id a) const { return arcs_.at(a); }

    /// The underlying digraph (nodes are event ids, arcs are arc ids).
    [[nodiscard]] const digraph& structure() const noexcept { return structure_; }

    /// Event lookup by name; returns invalid_node when absent.
    [[nodiscard]] event_id find_event(const std::string& name) const;

    /// Event lookup by name; throws tsg::error when absent.
    [[nodiscard]] event_id event_by_name(const std::string& name) const;

    // --- classification queries (require finalize()) ----------------------

    [[nodiscard]] const std::vector<event_id>& repetitive_events() const;
    [[nodiscard]] const std::vector<event_id>& initial_events() const;
    [[nodiscard]] const std::vector<event_id>& transient_events() const;

    [[nodiscard]] bool is_repetitive(event_id e) const
    {
        return event(e).kind == event_kind::repetitive;
    }

    /// The border set (Section VI.A): repetitive events with at least one
    /// initially marked input arc.  For a live graph this is a cut set of
    /// all cycles; its instantiations separate unfolding periods.
    [[nodiscard]] const std::vector<event_id>& border_events() const;

    /// Number of initially marked arcs.
    [[nodiscard]] std::size_t token_count() const;

    /// Sum of delays along a sequence of arc ids.
    [[nodiscard]] rational path_delay(const std::vector<arc_id>& arcs) const;

    /// A standalone digraph holding only the repetitive events and the arcs
    /// between them, for the cycle-oriented baselines.
    struct core_view {
        digraph graph;                     ///< nodes = core events, re-indexed
        std::vector<event_id> node_event;  ///< core node -> original event
        std::vector<arc_id> arc_original;  ///< core arc -> original arc
        std::vector<node_id> event_node;   ///< original event -> core node or invalid_node
    };
    [[nodiscard]] core_view repetitive_core() const;

private:
    /// The incremental edit layer (core/incremental.h) is the one mutator
    /// allowed past finalize(): it re-establishes the exact classification
    /// and validation invariants finalize() proved, incrementally, after
    /// every edit batch it applies.
    friend class incremental_engine;

    void classify_events();
    void validate();
    void require_finalized() const;

    std::vector<event_info> events_;
    std::vector<arc_info> arcs_;
    digraph structure_;
    std::unordered_map<std::string, event_id> by_name_;

    bool finalized_ = false;
    std::vector<event_id> repetitive_;
    std::vector<event_id> initial_;
    std::vector<event_id> transient_;
    std::vector<event_id> border_;
};

} // namespace tsg

#endif // TSG_SG_SIGNAL_GRAPH_H
