#include "sg/sg_io.h"

#include <fstream>
#include <sstream>

#include "graph/dot.h"
#include "sg/builder.h"
#include "util/strings.h"

namespace tsg {

namespace {

struct token {
    std::string text;
    std::size_t line;
};

std::vector<token> tokenize(const std::string& text)
{
    std::vector<token> tokens;
    std::size_t line = 1;
    std::string current;
    auto flush = [&] {
        if (!current.empty()) {
            tokens.push_back({current, line});
            current.clear();
        }
    };
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '#') { // comment to end of line
            flush();
            while (i < text.size() && text[i] != '\n') ++i;
            ++line;
            continue;
        }
        if (c == '\n') {
            flush();
            ++line;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            flush();
            continue;
        }
        if (c == '{' || c == '}' || c == ';') {
            flush();
            tokens.push_back({std::string(1, c), line});
            continue;
        }
        current += c;
    }
    flush();
    return tokens;
}

class parser {
public:
    explicit parser(const std::string& text) : tokens_(tokenize(text)) {}

    signal_graph run()
    {
        expect("tsg");
        name_ = next("graph name");
        expect("{");
        while (!peek_is("}")) {
            const token t = advance("item");
            if (t.text == "event") {
                builder_.event(next("event name"));
                expect(";");
            } else if (t.text == "arc") {
                parse_arc();
            } else {
                fail(t, "expected 'event' or 'arc'");
            }
        }
        expect("}");
        require(pos_ == tokens_.size(), "parse_sg: trailing tokens after '}'");
        return builder_.build();
    }

private:
    void parse_arc()
    {
        const std::string from = next("arc source");
        expect("->");
        const std::string to = next("arc target");
        rational delay(0);
        bool marked = false;
        bool once = false;
        while (!peek_is(";")) {
            const token t = advance("arc attribute");
            if (t.text == "delay") {
                delay = rational::parse(next("delay value"));
            } else if (t.text == "marked") {
                marked = true;
            } else if (t.text == "once") {
                once = true;
            } else {
                fail(t, "unknown arc attribute '" + t.text + "'");
            }
        }
        expect(";");
        builder_.arc_ex(from, to, delay, marked, once);
    }

    [[nodiscard]] bool peek_is(const std::string& text) const
    {
        return pos_ < tokens_.size() && tokens_[pos_].text == text;
    }

    token advance(const std::string& what)
    {
        require(pos_ < tokens_.size(), "parse_sg: unexpected end of input, expected " + what);
        return tokens_[pos_++];
    }

    std::string next(const std::string& what) { return advance(what).text; }

    void expect(const std::string& text)
    {
        const token t = advance("'" + text + "'");
        if (t.text != text) fail(t, "expected '" + text + "'");
    }

    [[noreturn]] static void fail(const token& t, const std::string& message)
    {
        throw error("parse_sg: line " + std::to_string(t.line) + ": " + message + " (got '" +
                    t.text + "')");
    }

    std::vector<token> tokens_;
    std::size_t pos_ = 0;
    std::string name_;
    sg_builder builder_;
};

} // namespace

signal_graph parse_sg(const std::string& text)
{
    return parser(text).run();
}

signal_graph load_sg(const std::string& path)
{
    std::ifstream in(path);
    require(in.good(), "load_sg: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_sg(buffer.str());
}

std::string write_sg(const signal_graph& sg, const std::string& name)
{
    std::ostringstream os;
    os << "tsg " << name << " {\n";
    for (event_id e = 0; e < sg.event_count(); ++e)
        os << "  event " << sg.event(e).name << ";\n";
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!sg.arc_live(a)) continue;
        const arc_info& arc = sg.arc(a);
        os << "  arc " << sg.event(arc.from).name << " -> " << sg.event(arc.to).name;
        if (!arc.delay.is_zero()) os << " delay " << arc.delay.str();
        if (arc.marked) os << " marked";
        if (arc.disengageable) os << " once";
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string sg_to_dot(const signal_graph& sg, const std::string& name)
{
    return to_dot(
        sg.structure(), [&](node_id v) { return sg.event(v).name; },
        [&](arc_id a) {
            const arc_info& arc = sg.arc(a);
            std::string label = arc.delay.str();
            if (arc.marked) label += " *";        // initial token (dot)
            if (arc.disengageable) label += " x"; // crossed arc
            return label;
        },
        name);
}

} // namespace tsg
