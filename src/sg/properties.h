// Semantic property checks for Signal Graphs beyond the structural
// validation done in finalize(): exact safety (Commoner's criterion),
// switch-over correctness and freedom from auto-concurrency (the two
// conditions Section VIII.A imposes for circuit implementability).
#ifndef TSG_SG_PROPERTIES_H
#define TSG_SG_PROPERTIES_H

#include <string>
#include <vector>

#include "sg/signal_graph.h"

namespace tsg {

/// Exact safety check for the repetitive core: a live marked graph is safe
/// iff every arc lies on some cycle whose total token count is 1
/// (Commoner/Holt/Even/Pnueli 1971).  Runs one 0-1 BFS per arc: O(m^2).
[[nodiscard]] bool is_safe(const signal_graph& sg);

/// Minimum number of tokens on any directed path from `from` to `to` inside
/// the repetitive core; returns -1 when unreachable.  Token weight of a
/// path counts the marked arcs traversed.
[[nodiscard]] int min_token_distance(const signal_graph& sg, event_id from, event_id to);

struct signal_property_report {
    bool switch_over_ok = true;        ///< rises and falls of a signal alternate
    bool auto_concurrency_free = true; ///< no two concurrent transitions of one signal
    std::vector<std::string> diagnostics;
};

/// Checks switch-over correctness and auto-concurrency on `periods` periods
/// of the unfolding.  Two instantiations of the same signal must always be
/// ordered by precedence (no auto-concurrency), and their polarities must
/// alternate along that order (switch-over).  Only signals with polarity
/// information participate.  Cost grows with the unfolding size; intended
/// as a diagnostic, not as a hot-path check.
[[nodiscard]] signal_property_report check_signal_properties(const signal_graph& sg,
                                                             std::uint32_t periods = 3);

} // namespace tsg

#endif // TSG_SG_PROPERTIES_H
