// Fluent construction of Signal Graphs by event name.
//
// Events are created implicitly on first mention, so a whole graph reads as
// a list of arcs, mirroring the paper's figures:
//
//   signal_graph g = sg_builder()
//       .once_arc("e-", "a+", 2)          // crossed arc, fires once
//       .arc("a+", "c+", 3)
//       .marked_arc("c-", "a+", 2)        // dot: initial token
//       .build();
#ifndef TSG_SG_BUILDER_H
#define TSG_SG_BUILDER_H

#include <string>

#include "sg/signal_graph.h"

namespace tsg {

class sg_builder {
public:
    sg_builder() = default;

    /// Declares an event explicitly (usually unnecessary).
    sg_builder& event(const std::string& name);

    /// Plain causal arc with a delay (default 0).
    sg_builder& arc(const std::string& from, const std::string& to, rational delay = 0);

    /// Arc carrying an initial token (a dot in the paper's figures).
    sg_builder& marked_arc(const std::string& from, const std::string& to, rational delay = 0);

    /// Disengageable arc (crossed in the figures): constrains only the first
    /// occurrence of the target.
    sg_builder& once_arc(const std::string& from, const std::string& to, rational delay = 0);

    /// Arc that is both marked and disengageable.
    sg_builder& marked_once_arc(const std::string& from, const std::string& to,
                                rational delay = 0);

    /// Arc with `tokens` initial tokens.  Signal Graphs are initially-safe
    /// (boolean marking), so tokens >= 2 is realized by splitting the arc
    /// with tokens - 1 zero-delay dummy events, each segment carrying one
    /// token — the transformation the paper alludes to in Section III.A.
    sg_builder& arc_with_tokens(const std::string& from, const std::string& to, rational delay,
                                std::uint32_t tokens);

    /// Fully general arc.
    sg_builder& arc_ex(const std::string& from, const std::string& to, rational delay,
                       bool marked, bool disengageable);

    /// Finalizes and returns the graph.  The builder is left empty.
    [[nodiscard]] signal_graph build();

    /// Access to the graph under construction (events added so far).
    [[nodiscard]] const signal_graph& peek() const noexcept { return graph_; }

private:
    event_id resolve(const std::string& name);

    signal_graph graph_;
    std::uint32_t dummy_counter_ = 0;
};

} // namespace tsg

#endif // TSG_SG_BUILDER_H
