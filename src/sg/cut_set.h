// Cut sets of a Signal Graph (Section VI.A).
//
// A cut set is a set of events meeting every cycle of the repetitive core —
// a feedback vertex set of the core digraph.  The paper uses the border
// set (targets of marked arcs) because it is free, and notes that finding
// a *minimum* cut set "is a complex optimization task" it does not attempt.
// This module supplies that missing piece:
//   * a greedy heuristic (fast, small-but-not-minimal sets), and
//   * an exact branch-and-bound search (minimum FVS; exponential worst
//     case, fine for gate-level graphs).
// Smaller cut sets shrink the analysis: the number of event-initiated
// simulations scales with the cut size, and for *safe* graphs the horizon
// does too (Propositions 6-7).  analyze_cycle_time accepts a custom cut
// set via analysis_options::origins; the default horizon stays at the
// border-set bound, which is valid without safety.
#ifndef TSG_SG_CUT_SET_H
#define TSG_SG_CUT_SET_H

#include <cstdint>
#include <optional>
#include <vector>

#include "sg/signal_graph.h"

namespace tsg {

/// True when removing `events` leaves the repetitive core acyclic
/// (i.e. `events` intersects every cycle).
[[nodiscard]] bool is_cut_set(const signal_graph& sg, const std::vector<event_id>& events);

/// Greedy cut set: repeatedly remove the event with the largest
/// in*out degree product inside a cyclic component.  O(n * m).
[[nodiscard]] std::vector<event_id> greedy_cut_set(const signal_graph& sg);

/// Exact minimum cut set via shortest-cycle branch and bound.  Returns
/// nullopt when the search exceeds `node_budget` branch nodes (the problem
/// is NP-hard); gate-level graphs resolve in well under the default.
[[nodiscard]] std::optional<std::vector<event_id>> minimum_cut_set(
    const signal_graph& sg, std::size_t node_budget = 200'000);

} // namespace tsg

#endif // TSG_SG_CUT_SET_H
