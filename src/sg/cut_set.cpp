#include "sg/cut_set.h"

#include <algorithm>

#include "graph/scc.h"
#include "graph/topo.h"

namespace tsg {

namespace {

/// Acyclicity of the core with a removal mask (by core node).
bool acyclic_without(const digraph& core, const std::vector<bool>& removed)
{
    std::vector<bool> arc_kept(core.arc_count(), true);
    for (arc_id a = 0; a < core.arc_count(); ++a)
        if (removed[core.from(a)] || removed[core.to(a)]) arc_kept[a] = false;
    // Removed nodes become isolated; isolated nodes never block Kahn.
    return topological_order_filtered(core, arc_kept).has_value();
}

/// Shortest cycle (as a node list) in the core avoiding removed nodes, or
/// empty when none exists.  BFS from every node; O(n * m).
std::vector<node_id> shortest_cycle(const digraph& core, const std::vector<bool>& removed)
{
    std::vector<node_id> best;
    const std::size_t n = core.node_count();
    for (node_id start = 0; start < n; ++start) {
        if (removed[start]) continue;
        // BFS back to `start`.
        std::vector<arc_id> via(n, invalid_arc);
        std::vector<bool> seen(n, false);
        std::vector<node_id> queue{start};
        seen[start] = true;
        std::size_t head = 0;
        node_id closing = invalid_node;
        arc_id closing_arc = invalid_arc;
        while (head < queue.size() && closing == invalid_node) {
            const node_id u = queue[head++];
            for (const arc_id a : core.out_arcs(u)) {
                const node_id w = core.to(a);
                if (removed[w]) continue;
                if (w == start) {
                    closing = u;
                    closing_arc = a;
                    break;
                }
                if (!seen[w]) {
                    seen[w] = true;
                    via[w] = a;
                    queue.push_back(w);
                }
            }
        }
        if (closing == invalid_node) continue;
        std::vector<node_id> cycle;
        node_id cur = closing;
        cycle.push_back(cur);
        while (cur != start) {
            ensure(via[cur] != invalid_arc, "shortest_cycle: broken BFS chain");
            cur = core.from(via[cur]);
            cycle.push_back(cur);
        }
        std::reverse(cycle.begin(), cycle.end());
        (void)closing_arc;
        if (best.empty() || cycle.size() < best.size()) best = std::move(cycle);
        if (best.size() == 1) break; // self-loop: cannot do better
    }
    return best;
}

struct bnb_state {
    const digraph* core;
    std::size_t budget;
    std::size_t best_size;
    std::vector<bool> best_mask;
    bool exhausted = false;
};

void branch(bnb_state& state, std::vector<bool>& removed, std::size_t removed_count)
{
    if (state.budget == 0) {
        state.exhausted = true;
        return;
    }
    --state.budget;

    const std::vector<node_id> cycle = shortest_cycle(*state.core, removed);
    if (cycle.empty()) {
        // Acyclic: the current removal set is a cut set.
        if (removed_count < state.best_size) {
            state.best_size = removed_count;
            state.best_mask = removed;
        }
        return;
    }
    if (removed_count + 1 >= state.best_size) return; // cannot improve

    // Every cut set hits this cycle: branch on its members.
    for (const node_id v : cycle) {
        removed[v] = true;
        branch(state, removed, removed_count + 1);
        removed[v] = false;
        if (state.exhausted) return;
    }
}

} // namespace

bool is_cut_set(const signal_graph& sg, const std::vector<event_id>& events)
{
    require(sg.finalized(), "is_cut_set: graph must be finalized");
    const signal_graph::core_view core = sg.repetitive_core();
    std::vector<bool> removed(core.graph.node_count(), false);
    for (const event_id e : events) {
        require(e < sg.event_count(), "is_cut_set: bad event id");
        const node_id u = core.event_node[e];
        if (u != invalid_node) removed[u] = true;
    }
    return acyclic_without(core.graph, removed);
}

std::vector<event_id> greedy_cut_set(const signal_graph& sg)
{
    require(sg.finalized(), "greedy_cut_set: graph must be finalized");
    const signal_graph::core_view core = sg.repetitive_core();
    const std::size_t n = core.graph.node_count();

    std::vector<bool> removed(n, false);
    std::vector<event_id> cut;
    while (!acyclic_without(core.graph, removed)) {
        // Remove the live node with the largest in*out degree (counting
        // only arcs between live nodes).
        node_id best = invalid_node;
        std::size_t best_score = 0;
        for (node_id u = 0; u < n; ++u) {
            if (removed[u]) continue;
            std::size_t ins = 0;
            std::size_t outs = 0;
            for (const arc_id a : core.graph.in_arcs(u))
                if (!removed[core.graph.from(a)]) ++ins;
            for (const arc_id a : core.graph.out_arcs(u))
                if (!removed[core.graph.to(a)]) ++outs;
            const std::size_t score = (ins + 1) * (outs + 1);
            if (best == invalid_node || score > best_score) {
                best = u;
                best_score = score;
            }
        }
        ensure(best != invalid_node, "greedy_cut_set: cyclic graph with no live nodes");
        removed[best] = true;
        cut.push_back(core.node_event[best]);
    }
    std::sort(cut.begin(), cut.end());
    return cut;
}

std::optional<std::vector<event_id>> minimum_cut_set(const signal_graph& sg,
                                                     std::size_t node_budget)
{
    require(sg.finalized(), "minimum_cut_set: graph must be finalized");
    const signal_graph::core_view core = sg.repetitive_core();

    // Seed the bound with the greedy solution.
    const std::vector<event_id> greedy = greedy_cut_set(sg);

    bnb_state state;
    state.core = &core.graph;
    state.budget = node_budget;
    state.best_size = greedy.size();
    state.best_mask.assign(core.graph.node_count(), false);
    for (const event_id e : greedy) state.best_mask[core.event_node[e]] = true;

    std::vector<bool> removed(core.graph.node_count(), false);
    branch(state, removed, 0);
    if (state.exhausted) return std::nullopt;

    std::vector<event_id> cut;
    for (node_id u = 0; u < core.graph.node_count(); ++u)
        if (state.best_mask[u]) cut.push_back(core.node_event[u]);
    std::sort(cut.begin(), cut.end());
    return cut;
}

} // namespace tsg
