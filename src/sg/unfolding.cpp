#include "sg/unfolding.h"

namespace tsg {

unfolding::unfolding(const signal_graph& sg, std::uint32_t periods) : sg_(sg), periods_(periods)
{
    require(sg.finalized(), "unfolding: graph must be finalized");
    require(periods >= 1, "unfolding: need at least one period");

    // Create instantiations.
    by_event_.resize(sg.event_count());
    for (event_id e = 0; e < sg.event_count(); ++e) {
        const std::uint32_t copies =
            sg.event(e).kind == event_kind::repetitive ? periods_ : 1;
        for (std::uint32_t i = 0; i < copies; ++i) {
            const node_id inst = dag_.add_node();
            info_.push_back(instance_info{e, i});
            by_event_[e].push_back(inst);
        }
    }

    // Instantiate arcs.  mu is the marking (0 or 1): the token shifts the
    // dependency one period forward.
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        if (!sg.arc_live(a)) continue;
        const arc_info& arc = sg.arc(a);
        const std::uint32_t mu = arc.marked ? 1 : 0;
        const bool from_repetitive = sg.event(arc.from).kind == event_kind::repetitive;
        const bool to_repetitive = sg.event(arc.to).kind == event_kind::repetitive;

        auto link = [&](node_id src, node_id dst) {
            dag_.add_arc(src, dst);
            delays_.push_back(arc.delay);
            original_.push_back(a);
        };

        if (from_repetitive && to_repetitive) {
            for (std::uint32_t i = mu; i < periods_; ++i)
                link(by_event_[arc.from][i - mu], by_event_[arc.to][i]);
        } else if (!from_repetitive && to_repetitive) {
            // One-shot source: constrains instantiation `mu` of the target
            // (with a token, the first firing is already paid for).
            if (mu < periods_) link(by_event_[arc.from][0], by_event_[arc.to][mu]);
        } else if (!from_repetitive && !to_repetitive) {
            // Both fire once.  A marked arc between one-shot events is a
            // pre-satisfied dependency: no constraint in the unfolding.
            if (mu == 0) link(by_event_[arc.from][0], by_event_[arc.to][0]);
        } else {
            ensure(false, "unfolding: repetitive -> one-shot arc survived validation");
        }
    }

    for (node_id v = 0; v < dag_.node_count(); ++v)
        if (dag_.in_degree(v) == 0) initial_.push_back(v);
}

node_id unfolding::instance(event_id e, std::uint32_t period) const
{
    const auto& copies = by_event_.at(e);
    if (period >= copies.size()) return invalid_node;
    return copies[period];
}

std::string unfolding::instance_name(node_id instance) const
{
    const instance_info& info = info_.at(instance);
    return sg_.event(info.event).name + "." + std::to_string(info.period);
}

} // namespace tsg
