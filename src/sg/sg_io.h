// Text serialization of Timed Signal Graphs.
//
// Format (comments run from '#' to end of line):
//
//   tsg oscillator {
//     event e-;                        # optional explicit declaration
//     arc e- -> a+ delay 2 once;      # disengageable ("crossed") arc
//     arc c- -> a+ delay 2 marked;    # initial token (dot)
//     arc a+ -> c+ delay 3;
//   }
//
// Delays are rationals ("2", "5/3").  Events referenced in arcs are created
// implicitly.  The writer emits this same canonical format, so
// parse(write(g)) round-trips.
#ifndef TSG_SG_SG_IO_H
#define TSG_SG_SG_IO_H

#include <string>

#include "sg/signal_graph.h"

namespace tsg {

/// Parses the textual format; throws tsg::error with a line diagnostic on
/// malformed input.  The returned graph is finalized.
[[nodiscard]] signal_graph parse_sg(const std::string& text);

/// Reads a .tsg file from disk.  Throws tsg::error when unreadable.
[[nodiscard]] signal_graph load_sg(const std::string& path);

/// Serializes to the canonical textual format.
[[nodiscard]] std::string write_sg(const signal_graph& sg, const std::string& name = "g");

/// Graphviz DOT rendering; marked arcs are labelled with a bullet and
/// disengageable ones with a cross, matching the paper's figures.
[[nodiscard]] std::string sg_to_dot(const signal_graph& sg, const std::string& name = "g");

} // namespace tsg

#endif // TSG_SG_SG_IO_H
