#include "sg/builder.h"

namespace tsg {

event_id sg_builder::resolve(const std::string& name)
{
    const event_id existing = graph_.find_event(name);
    if (existing != invalid_node) return existing;
    return graph_.add_event(name);
}

sg_builder& sg_builder::event(const std::string& name)
{
    resolve(name);
    return *this;
}

sg_builder& sg_builder::arc(const std::string& from, const std::string& to, rational delay)
{
    return arc_ex(from, to, delay, /*marked=*/false, /*disengageable=*/false);
}

sg_builder& sg_builder::marked_arc(const std::string& from, const std::string& to,
                                   rational delay)
{
    return arc_ex(from, to, delay, /*marked=*/true, /*disengageable=*/false);
}

sg_builder& sg_builder::once_arc(const std::string& from, const std::string& to, rational delay)
{
    return arc_ex(from, to, delay, /*marked=*/false, /*disengageable=*/true);
}

sg_builder& sg_builder::marked_once_arc(const std::string& from, const std::string& to,
                                        rational delay)
{
    return arc_ex(from, to, delay, /*marked=*/true, /*disengageable=*/true);
}

sg_builder& sg_builder::arc_ex(const std::string& from, const std::string& to, rational delay,
                               bool marked, bool disengageable)
{
    const event_id u = resolve(from);
    const event_id v = resolve(to);
    graph_.add_arc(u, v, delay, marked, disengageable);
    return *this;
}

sg_builder& sg_builder::arc_with_tokens(const std::string& from, const std::string& to,
                                        rational delay, std::uint32_t tokens)
{
    if (tokens <= 1) return arc_ex(from, to, delay, tokens == 1, false);

    // Split u -> v with k tokens into k marked segments through k-1 dummies.
    std::string prev = from;
    for (std::uint32_t i = 1; i < tokens; ++i) {
        const std::string dummy = "_tok" + std::to_string(dummy_counter_++);
        arc_ex(prev, dummy, i == 1 ? delay : rational(0), /*marked=*/true, false);
        prev = dummy;
    }
    return arc_ex(prev, to, rational(0), /*marked=*/true, false);
}

signal_graph sg_builder::build()
{
    signal_graph out = std::move(graph_);
    graph_ = signal_graph();
    dummy_counter_ = 0;
    out.finalize();
    return out;
}

} // namespace tsg
