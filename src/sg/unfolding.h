// Explicit unfolding of a Signal Graph into a fixed number of periods
// (Section III.B, Figure 2b).
//
// The unfolding is an acyclic process: every node is one *instantiation*
// e_i of an event.  One-shot events (initial/transient) appear once, in
// period 0; repetitive events appear once per period.  An arc u -> v with
// marking mu in {0, 1} induces instantiation arcs u_{i-mu} -> v_i — the
// initial token shifts the dependency across the period border, which is
// why the paper calls events with marked in-arcs "border events".
// Disengageable arcs are sourced at one-shot events (well-formedness), so
// they appear exactly once, constraining only the first instantiation of
// their target.
#ifndef TSG_SG_UNFOLDING_H
#define TSG_SG_UNFOLDING_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "sg/signal_graph.h"

namespace tsg {

class unfolding {
public:
    /// Builds `periods` >= 1 periods of the unfolding of a finalized graph.
    unfolding(const signal_graph& sg, std::uint32_t periods);

    [[nodiscard]] const signal_graph& graph() const noexcept { return sg_; }
    [[nodiscard]] std::uint32_t periods() const noexcept { return periods_; }

    /// The unfolding DAG; nodes are instantiations, arcs carry the original
    /// delays (see arc_delay/original_arc).
    [[nodiscard]] const digraph& dag() const noexcept { return dag_; }

    /// Instantiation e_period, or invalid_node when it does not exist (past
    /// the horizon, or period > 0 for a one-shot event).
    [[nodiscard]] node_id instance(event_id e, std::uint32_t period) const;

    [[nodiscard]] event_id event_of(node_id instance) const { return info_.at(instance).event; }
    [[nodiscard]] std::uint32_t period_of(node_id instance) const
    {
        return info_.at(instance).period;
    }

    /// Delay carried by an unfolding arc.
    [[nodiscard]] const rational& arc_delay(arc_id a) const { return delays_.at(a); }
    [[nodiscard]] const std::vector<rational>& arc_delays() const noexcept { return delays_; }

    /// The Signal Graph arc an unfolding arc was instantiated from.
    [[nodiscard]] arc_id original_arc(arc_id a) const { return original_.at(a); }

    /// I_u — instantiations with no incoming arcs: the initial events plus
    /// first instantiations whose in-arcs are all initially marked.
    [[nodiscard]] const std::vector<node_id>& initial_instances() const noexcept
    {
        return initial_;
    }

    /// Display name "a+.2" for instantiation a+ in period 2.
    [[nodiscard]] std::string instance_name(node_id instance) const;

private:
    struct instance_info {
        event_id event;
        std::uint32_t period;
    };

    const signal_graph& sg_;
    std::uint32_t periods_;
    digraph dag_;
    std::vector<instance_info> info_;
    std::vector<std::vector<node_id>> by_event_; // event -> per-period instance ids
    std::vector<rational> delays_;
    std::vector<arc_id> original_;
    std::vector<node_id> initial_;
};

} // namespace tsg

#endif // TSG_SG_UNFOLDING_H
