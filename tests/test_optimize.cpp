// Tests for the criticality-driven optimizer and the top-K critical-cycle
// report (core/optimize.h).
//
// The load-bearing checks mirror the acceptance criteria:
//   * deterministic run_optimize matches an exhaustive search over every
//     quantized allocation (bit-exact final lambda) on small fuzzed graphs;
//   * statistical run_optimize reaches the exhaustive optimum's yield
//     within the joint adaptive-MC confidence intervals;
//   * deterministic report_topk matches brute-force Johnson enumeration
//     (exact ratio order, canonical tie-breaks) and is bit-identical for
//     every thread count and lane width;
//   * seed replay is stable, budget exhaustion and unreachable targets are
//     reported honestly, and the error taxonomy is pinned.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/cycle_time.h"
#include "core/incremental.h"
#include "core/optimize.h"
#include "core/scenario.h"
#include "gen/muller.h"
#include "gen/oscillator.h"
#include "gen/random_sg.h"
#include "graph/johnson.h"
#include "ratio/ratio_problem.h"

namespace tsg {
namespace {

void expect_error_prefix(const std::function<void()>& fn, const std::string& prefix)
{
    try {
        fn();
        FAIL() << "expected tsg::error with prefix '" << prefix << "'";
    } catch (const error& e) {
        EXPECT_EQ(std::string(e.what()).substr(0, prefix.size()), prefix)
            << "actual: " << e.what();
    }
}

// --- exhaustive allocation baseline ------------------------------------------

/// Minimum lambda over every allocation of at most `total` quanta across
/// `cand` (respecting per-arc caps) — the ground truth the branch-and-bound
/// must match bit-exactly.
rational exhaustive_best_lambda(const scenario_engine& engine,
                                const std::vector<arc_id>& cand,
                                const std::vector<std::uint64_t>& cap, const rational& step,
                                std::vector<rational>& delay, std::size_t i,
                                std::uint64_t remaining)
{
    if (i == cand.size())
        return engine.evaluate(delay, /*with_slack=*/false, 1).cycle_time;
    rational best;
    bool have = false;
    const std::uint64_t most = std::min(cap[i], remaining);
    for (std::uint64_t take = 0; take <= most; ++take) {
        delay[cand[i]] -= step * rational(static_cast<std::int64_t>(take));
        const rational lambda =
            exhaustive_best_lambda(engine, cand, cap, step, delay, i + 1, remaining - take);
        delay[cand[i]] += step * rational(static_cast<std::int64_t>(take));
        if (!have || lambda < best) {
            best = lambda;
            have = true;
        }
    }
    return best;
}

/// The optimizer's candidate derivation, replicated: repetitive-core arcs
/// with at least one whole quantum of headroom above the floor.
void derive_candidates(const compiled_graph& cg, const rational& step,
                       const rational& min_delay, std::vector<arc_id>& cand,
                       std::vector<std::uint64_t>& cap)
{
    std::vector<arc_id> arcs(cg.core().arc_original.begin(), cg.core().arc_original.end());
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
    for (const arc_id a : arcs) {
        const rational headroom = cg.delay()[a] - min_delay;
        if (headroom.is_negative() || headroom.is_zero()) continue;
        const rational q = headroom / step;
        const std::uint64_t c = static_cast<std::uint64_t>(q.num() / q.den());
        if (c == 0) continue;
        cand.push_back(a);
        cap.push_back(c);
    }
}

TEST(Optimize, DeterministicMatchesExhaustiveSearchOnFuzzedGraphs)
{
    for (const std::uint64_t seed : {7u, 19u, 23u, 57u}) {
        random_sg_options gopts;
        gopts.events = 6;
        gopts.extra_arcs = 3;
        gopts.seed = seed;
        gopts.max_delay = 7;
        const signal_graph sg = random_marked_graph(gopts);
        const compiled_graph cg(sg);
        const scenario_engine engine(cg);

        optimize_options opts;
        opts.budget = rational(3);
        opts.step = rational(1);
        opts.max_threads = 1;
        const optimize_result plan = run_optimize(sg, engine, opts);
        ASSERT_TRUE(plan.exact) << "seed " << seed;

        std::vector<arc_id> cand;
        std::vector<std::uint64_t> cap;
        derive_candidates(cg, opts.step, opts.min_delay, cand, cap);
        std::vector<rational> delay = cg.delay();
        const rational best =
            exhaustive_best_lambda(engine, cand, cap, opts.step, delay, 0, 3);
        EXPECT_EQ(plan.final_cycle_time, best) << "seed " << seed;
        EXPECT_LE(plan.budget_spent, opts.budget);
    }
}

TEST(Optimize, PlanIsConsistentAndAppliesThroughIncrementalEngine)
{
    const signal_graph sg = c_oscillator_sg();
    optimize_options opts;
    opts.budget = rational(2);
    opts.step = rational(1);
    opts.min_delay = rational(1);
    const optimize_result plan = run_optimize(sg, opts);

    EXPECT_EQ(plan.initial_cycle_time, rational(10));
    EXPECT_LT(plan.final_cycle_time, plan.initial_cycle_time);
    EXPECT_TRUE(plan.exact);
    EXPECT_LE(plan.budget_spent, opts.budget);

    rational spent(0);
    for (std::size_t i = 0; i < plan.allocations.size(); ++i) {
        const optimize_allocation& a = plan.allocations[i];
        if (i > 0) {
            EXPECT_LT(plan.allocations[i - 1].arc, a.arc); // ascending
        }
        EXPECT_EQ(a.old_delay - a.new_delay, a.reduction);
        EXPECT_GE(a.new_delay, opts.min_delay);
        // Every reduction is a whole number of quanta.
        const rational q = a.reduction / opts.step;
        EXPECT_EQ(q.den(), 1);
        spent += a.reduction;
    }
    EXPECT_EQ(spent, plan.budget_spent);

    // The edit batch is the plan: applying it through the incremental
    // kernel reproduces the planned cycle time exactly.
    ASSERT_EQ(plan.edits.size(), plan.allocations.size());
    incremental_engine inc(sg);
    inc.apply(plan.edits);
    EXPECT_EQ(inc.analyze().cycle_time, plan.final_cycle_time);
}

TEST(Optimize, TargetReachedAndUnreachableAreReportedHonestly)
{
    const signal_graph sg = c_oscillator_sg();

    optimize_options opts;
    opts.budget = rational(4);
    opts.step = rational(1);
    opts.min_delay = rational(1);
    opts.target = rational(8);
    const optimize_result reached = run_optimize(sg, opts);
    EXPECT_TRUE(reached.target_reached);
    EXPECT_LE(reached.final_cycle_time, rational(8));

    // With every delay floored at 1 no budget reaches lambda 1/2.
    opts.target = rational(1, 2);
    opts.budget = rational(100);
    const optimize_result unreachable = run_optimize(sg, opts);
    EXPECT_FALSE(unreachable.target_reached);
    EXPECT_GE(unreachable.final_cycle_time, rational(1));
}

TEST(Optimize, BudgetExhaustionStopsTheAllocation)
{
    const signal_graph sg = muller_ring_sg();
    optimize_options opts;
    opts.budget = rational(1);
    opts.step = rational(1, 2);
    opts.min_delay = rational(1, 4);
    const optimize_result plan = run_optimize(sg, opts);
    EXPECT_LE(plan.budget_spent, opts.budget);
    const rational q = plan.budget_spent / opts.step;
    EXPECT_EQ(q.den(), 1); // whole quanta only
}

TEST(Optimize, GreedyFallbackUnderTinyEvaluationCap)
{
    random_sg_options gopts;
    gopts.events = 10;
    gopts.extra_arcs = 8;
    gopts.seed = 5;
    gopts.max_delay = 9;
    const signal_graph sg = random_marked_graph(gopts);
    const rational initial = analyze_cycle_time(sg).cycle_time;

    optimize_options opts;
    opts.budget = rational(4);
    opts.step = rational(1);
    opts.max_evaluations = 3; // force the branch-and-bound to abort
    const optimize_result plan = run_optimize(sg, opts);
    EXPECT_FALSE(plan.exact);
    EXPECT_LE(plan.final_cycle_time, initial); // never worse than doing nothing
    EXPECT_LE(plan.budget_spent, opts.budget);

    incremental_engine inc(sg);
    if (!plan.edits.empty()) inc.apply(plan.edits);
    EXPECT_EQ(inc.analyze().cycle_time, plan.final_cycle_time);
}

// --- statistical optimizer ---------------------------------------------------

/// The optimizer's per-evaluation Monte Carlo setup, replicated for the
/// exhaustive yield baseline: ranges around the given delays, common
/// random numbers, yield-CI adaptive target.
stats_run_result yield_of(const scenario_engine& engine, const signal_graph& sg,
                          const std::vector<rational>& delay,
                          const optimize_options& opts)
{
    monte_carlo_options mc = opts.mc;
    mc.first_sample = 0;
    mc.ranges.resize(delay.size());
    const rational down = rational(1) - mc.spread;
    const rational up = rational(1) + mc.spread;
    for (std::size_t a = 0; a < delay.size(); ++a) {
        const rational lo = delay[a] * down;
        mc.ranges[a].lo = lo.is_negative() ? rational(0) : lo;
        mc.ranges[a].hi = delay[a] * up;
    }
    stats_options stats = opts.stats;
    stats.yield_target = opts.target;
    stats.yield_objective = true;
    if (stats.epsilon <= 0.0) stats.epsilon = 0.05;
    stats.max_threads = 1;
    return monte_carlo_adaptive(engine, sg, mc, stats);
}

double exhaustive_best_yield(const scenario_engine& engine, const signal_graph& sg,
                             const std::vector<arc_id>& cand,
                             const std::vector<std::uint64_t>& cap,
                             const optimize_options& opts, std::vector<rational>& delay,
                             std::size_t i, std::uint64_t remaining)
{
    if (i == cand.size())
        return yield_of(engine, sg, delay, opts).stats.yield_probability();
    double best = -1.0;
    const std::uint64_t most = std::min(cap[i], remaining);
    for (std::uint64_t take = 0; take <= most; ++take) {
        delay[cand[i]] -= opts.step * rational(static_cast<std::int64_t>(take));
        best = std::max(best, exhaustive_best_yield(engine, sg, cand, cap, opts, delay,
                                                    i + 1, remaining - take));
        delay[cand[i]] += opts.step * rational(static_cast<std::int64_t>(take));
    }
    return best;
}

TEST(Optimize, StatisticalReachesExhaustiveOptimumWithinCI)
{
    for (const std::uint64_t seed : {3u, 11u}) {
        random_sg_options gopts;
        gopts.events = 5;
        gopts.extra_arcs = 2;
        gopts.seed = seed;
        gopts.max_delay = 6;
        const signal_graph sg = random_marked_graph(gopts);
        const compiled_graph cg(sg);
        const scenario_engine engine(cg);
        const rational nominal = analyze_cycle_time(sg).cycle_time;

        optimize_options opts;
        opts.mode = optimize_mode::statistical;
        opts.budget = rational(2);
        opts.step = rational(1);
        // A target between the reachable optimum and nominal, so the yield
        // objective actually discriminates between allocations.
        opts.target = nominal - rational(1, 2);
        opts.max_threads = 1;
        opts.mc.seed = 1 + seed;
        opts.stats.epsilon = 0.04;
        opts.stats.max_samples = 4096;
        const optimize_result plan = run_optimize(sg, engine, opts);

        std::vector<arc_id> cand;
        std::vector<std::uint64_t> cap;
        derive_candidates(cg, opts.step, opts.min_delay, cand, cap);
        std::vector<rational> delay = cg.delay();
        const double best =
            exhaustive_best_yield(engine, sg, cand, cap, opts, delay, 0, 2);

        // Within the joint CIs of the adaptive runs (both evaluations
        // target an epsilon-wide CI, so 2 * (epsilon + epsilon) bounds the
        // gap when both estimates are honest).
        EXPECT_GE(plan.final_yield + plan.final_yield_ci_half_width + 2 * 0.04, best)
            << "seed " << seed;
        EXPECT_GE(plan.final_yield, plan.initial_yield - plan.final_yield_ci_half_width -
                                        plan.initial_yield_ci_half_width)
            << "seed " << seed;
    }
}

TEST(Optimize, StatisticalSeedReplayIsStable)
{
    const signal_graph sg = muller_ring_sg();

    optimize_options opts;
    opts.mode = optimize_mode::statistical;
    opts.budget = rational(2);
    opts.step = rational(1, 2);
    opts.min_delay = rational(1, 2);
    opts.target = analyze_cycle_time(sg).cycle_time - rational(1, 4);
    opts.max_threads = 1;
    opts.mc.seed = 42;
    opts.stats.max_samples = 1024;

    const optimize_result a = run_optimize(sg, opts);
    const optimize_result b = run_optimize(sg, opts);
    EXPECT_EQ(a.final_cycle_time, b.final_cycle_time);
    EXPECT_EQ(a.final_yield, b.final_yield);
    EXPECT_EQ(a.samples, b.samples);
    ASSERT_EQ(a.allocations.size(), b.allocations.size());
    for (std::size_t i = 0; i < a.allocations.size(); ++i) {
        EXPECT_EQ(a.allocations[i].arc, b.allocations[i].arc);
        EXPECT_EQ(a.allocations[i].new_delay, b.allocations[i].new_delay);
    }
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
        EXPECT_EQ(a.steps[i].arc, b.steps[i].arc);
        EXPECT_EQ(a.steps[i].yield_after, b.steps[i].yield_after);
    }
    // The committed trajectory never exceeds the budget and stays above
    // the floor.
    EXPECT_LE(a.budget_spent, opts.budget);
    for (const optimize_allocation& alloc : a.allocations)
        EXPECT_GE(alloc.new_delay, opts.min_delay);
}

// --- top-K: deterministic ----------------------------------------------------

/// Brute-force ground truth: every simple cycle of the ratio problem,
/// keyed by canonical original-arc identity, with its exact ratio.
std::vector<std::pair<rational, std::vector<arc_id>>> brute_force_cycles(
    const compiled_graph& cg)
{
    const ratio_problem base = make_ratio_problem(cg);
    const cycle_enumeration all = enumerate_simple_cycles(base.graph);
    EXPECT_FALSE(all.truncated);
    std::map<std::vector<arc_id>, rational> by_identity;
    for (const std::vector<arc_id>& cycle : all.cycles) {
        rational ratio;
        try {
            ratio = cycle_ratio(base, cycle);
        } catch (const error&) {
            continue; // token-free cycle: no steady-state constraint
        }
        std::vector<arc_id> original;
        for (const arc_id a : cycle)
            original.push_back(base.arc_original.empty() ? a : base.arc_original[a]);
        const auto lead = std::min_element(original.begin(), original.end());
        std::rotate(original.begin(), lead, original.end());
        by_identity.emplace(std::move(original), ratio);
    }
    std::vector<std::pair<rational, std::vector<arc_id>>> ranked;
    for (const auto& [arcs, ratio] : by_identity) ranked.emplace_back(ratio, arcs);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return b.first < a.first; // ratio descending
        return a.second < b.second;                       // canonical ascending
    });
    return ranked;
}

TEST(TopK, DeterministicMatchesBruteForceOnFuzzedGraphs)
{
    for (const std::uint64_t seed : {2u, 13u, 31u, 77u}) {
        random_sg_options gopts;
        gopts.events = 7;
        gopts.extra_arcs = 4;
        gopts.seed = seed;
        gopts.max_delay = 8;
        const signal_graph sg = random_marked_graph(gopts);
        const compiled_graph cg(sg);

        const auto expected = brute_force_cycles(cg);
        ASSERT_FALSE(expected.empty());

        topk_options opts;
        opts.k = 4;
        const topk_result report = report_topk(sg, opts);
        EXPECT_EQ(report.cycle_time, expected.front().first);

        const std::size_t want = std::min<std::size_t>(opts.k, expected.size());
        ASSERT_EQ(report.cycles.size(), want) << "seed " << seed;
        EXPECT_EQ(report.truncated, expected.size() < opts.k);
        for (std::size_t i = 0; i < want; ++i) {
            EXPECT_EQ(report.cycles[i].ratio, expected[i].first)
                << "seed " << seed << " rank " << i;
            EXPECT_EQ(report.cycles[i].arcs, expected[i].second)
                << "seed " << seed << " rank " << i;
        }
    }
}

TEST(TopK, CycleDataIsInternallyConsistent)
{
    const signal_graph sg = c_oscillator_sg();
    const compiled_graph cg(sg);
    topk_options opts;
    opts.k = 3;
    const topk_result report = report_topk(sg, opts);
    ASSERT_FALSE(report.cycles.empty());
    EXPECT_EQ(report.cycles.front().slack, rational(0)); // the critical cycle
    for (const topk_cycle& cycle : report.cycles) {
        ASSERT_FALSE(cycle.arcs.empty());
        EXPECT_EQ(cycle.arcs.size(), cycle.events.size());
        EXPECT_EQ(cycle.arcs.size(), cycle.contributions.size());
        EXPECT_EQ(*std::min_element(cycle.arcs.begin(), cycle.arcs.end()),
                  cycle.arcs.front()); // canonical rotation
        rational delay(0);
        std::uint32_t tokens = 0;
        double share = 0.0;
        for (std::size_t j = 0; j < cycle.arcs.size(); ++j) {
            EXPECT_EQ(cycle.contributions[j].arc, cycle.arcs[j]);
            EXPECT_EQ(cycle.events[j], sg.arc(cycle.arcs[j]).from);
            delay += cycle.contributions[j].delay;
            share += cycle.contributions[j].share;
            if (sg.arc(cycle.arcs[j]).marked) ++tokens;
        }
        EXPECT_EQ(delay, cycle.delay);
        EXPECT_EQ(tokens, cycle.tokens);
        EXPECT_NEAR(share, 1.0, 1e-9);
        EXPECT_EQ(cycle.ratio,
                  cycle.delay / rational(static_cast<std::int64_t>(cycle.tokens)));
        EXPECT_EQ(cycle.slack,
                  report.cycle_time * rational(static_cast<std::int64_t>(cycle.tokens)) -
                      cycle.delay);
        EXPECT_GE(cycle.slack, rational(0));
        EXPECT_LE(cycle.ratio, report.cycle_time);
    }
    // Ranked most-critical first.
    for (std::size_t i = 1; i < report.cycles.size(); ++i)
        EXPECT_LE(report.cycles[i].ratio, report.cycles[i - 1].ratio);
}

TEST(TopK, DeterministicIsBitIdenticalAcrossThreadsAndLanes)
{
    random_sg_options gopts;
    gopts.events = 16;
    gopts.extra_arcs = 12;
    gopts.seed = 9;
    const signal_graph sg = random_marked_graph(gopts);

    topk_options base;
    base.k = 5;
    base.max_threads = 1;
    const topk_result reference = report_topk(sg, base);

    for (const unsigned threads : {0u, 2u, 4u}) {
        for (const unsigned lanes : {0u, 1u, 4u}) {
            topk_options opts = base;
            opts.max_threads = threads;
            opts.lane_width = lanes;
            const topk_result report = report_topk(sg, opts);
            ASSERT_EQ(report.cycles.size(), reference.cycles.size());
            EXPECT_EQ(report.cycle_time, reference.cycle_time);
            for (std::size_t i = 0; i < report.cycles.size(); ++i) {
                EXPECT_EQ(report.cycles[i].arcs, reference.cycles[i].arcs);
                EXPECT_EQ(report.cycles[i].ratio, reference.cycles[i].ratio);
            }
        }
    }
}

TEST(TopK, ExpansionCapFlagsTruncation)
{
    random_sg_options gopts;
    gopts.events = 12;
    gopts.extra_arcs = 10;
    gopts.seed = 21;
    const signal_graph sg = random_marked_graph(gopts);

    topk_options opts;
    opts.k = 8;
    opts.max_expansions = 1; // only the root solve may expand
    const topk_result report = report_topk(sg, opts);
    EXPECT_TRUE(report.truncated);
    ASSERT_FALSE(report.cycles.empty());
    // What is returned is still correct: the top cycle is the critical one.
    EXPECT_EQ(report.cycles.front().ratio, report.cycle_time);
}

// --- top-K: statistical ------------------------------------------------------

TEST(TopK, StatisticalTalliesWitnessesDeterministically)
{
    const signal_graph sg = muller_ring_sg();

    topk_options opts;
    opts.mode = optimize_mode::statistical;
    opts.k = 3;
    opts.samples = 300; // spans two streaming rounds
    opts.solver = cycle_time_solver::border_sweep;
    opts.mc.seed = 7;
    const topk_result a = report_topk(sg, opts);
    EXPECT_EQ(a.samples, 300u);

    // Seed replay: bit-identical.
    const topk_result b = report_topk(sg, opts);
    ASSERT_EQ(a.cycles.size(), b.cycles.size());
    for (std::size_t i = 0; i < a.cycles.size(); ++i) {
        EXPECT_EQ(a.cycles[i].arcs, b.cycles[i].arcs);
        EXPECT_EQ(a.cycles[i].count, b.cycles[i].count);
        EXPECT_EQ(a.cycles[i].first_index, b.cycles[i].first_index);
    }

    // Thread/lane layouts must not change the tally (witness contract of
    // the scenario engine under border_sweep).
    for (const unsigned threads : {0u, 3u}) {
        for (const unsigned lanes : {1u, 8u}) {
            topk_options alt = opts;
            alt.max_threads = threads;
            alt.lane_width = lanes;
            const topk_result c = report_topk(sg, alt);
            ASSERT_EQ(c.cycles.size(), a.cycles.size());
            for (std::size_t i = 0; i < a.cycles.size(); ++i) {
                EXPECT_EQ(c.cycles[i].arcs, a.cycles[i].arcs);
                EXPECT_EQ(c.cycles[i].count, a.cycles[i].count);
            }
        }
    }

    // Tally sanity: ordered by count, probabilities sum to <= 1, CIs are
    // finite, and every reported cycle carries exact nominal enrichment.
    std::size_t total = 0;
    for (std::size_t i = 0; i < a.cycles.size(); ++i) {
        if (i > 0) {
            EXPECT_LE(a.cycles[i].count, a.cycles[i - 1].count);
        }
        EXPECT_GT(a.cycles[i].count, 0u);
        EXPECT_NEAR(a.cycles[i].probability,
                    static_cast<double>(a.cycles[i].count) / 300.0, 1e-12);
        EXPECT_GE(a.cycles[i].ci_half_width, 0.0);
        EXPECT_GT(a.cycles[i].tokens, 0u);
        total += a.cycles[i].count;
    }
    EXPECT_LE(total, 300u);
}

// --- error taxonomy ----------------------------------------------------------

TEST(OptimizeErrors, PinnedTaxonomy)
{
    const signal_graph sg = c_oscillator_sg();

    optimize_options no_budget;
    expect_error_prefix([&] { (void)run_optimize(sg, no_budget); }, "invalid_request:");

    optimize_options negative_floor;
    negative_floor.budget = rational(1);
    negative_floor.min_delay = rational(-1);
    expect_error_prefix([&] { (void)run_optimize(sg, negative_floor); },
                        "invalid_request:");

    optimize_options no_target;
    no_target.mode = optimize_mode::statistical;
    no_target.budget = rational(1);
    expect_error_prefix([&] { (void)run_optimize(sg, no_target); }, "invalid_request:");

    optimize_options no_model;
    no_model.mode = optimize_mode::statistical;
    no_model.budget = rational(1);
    no_model.target = rational(9);
    no_model.mc.spread = rational(0);
    expect_error_prefix([&] { (void)run_optimize(sg, no_model); }, "unsupported:");

    optimize_options explicit_ranges;
    explicit_ranges.mode = optimize_mode::statistical;
    explicit_ranges.budget = rational(1);
    explicit_ranges.target = rational(9);
    explicit_ranges.mc.ranges.resize(sg.arc_count());
    expect_error_prefix([&] { (void)run_optimize(sg, explicit_ranges); }, "unsupported:");

    topk_options zero_k;
    zero_k.k = 0;
    expect_error_prefix([&] { (void)report_topk(sg, zero_k); }, "invalid_request:");

    topk_options no_samples;
    no_samples.mode = optimize_mode::statistical;
    no_samples.samples = 0;
    expect_error_prefix([&] { (void)report_topk(sg, no_samples); }, "invalid_request:");

    // An acyclic graph has no cycle time to optimize or report.
    signal_graph acyclic;
    const event_id a = acyclic.add_event("a+");
    const event_id b = acyclic.add_event("b+");
    acyclic.add_arc(a, b, rational(1));
    acyclic.finalize();
    optimize_options det;
    det.budget = rational(1);
    expect_error_prefix([&] { (void)run_optimize(acyclic, det); }, "invalid_request:");
    topk_options tk;
    expect_error_prefix([&] { (void)report_topk(acyclic, tk); }, "invalid_request:");
}

} // namespace
} // namespace tsg
