// Tests for the greedy speedup advisor.
#include <gtest/gtest.h>

#include "core/cycle_time.h"
#include "core/optimize.h"
#include "core/slack.h"
#include "gen/muller.h"
#include "gen/oscillator.h"
#include "gen/random_sg.h"

namespace tsg {
namespace {

TEST(Optimize, ReachesAchievableTarget)
{
    speedup_options opts;
    opts.target = 8;
    opts.min_arc_delay = 1;
    const speedup_plan plan = plan_speedup(c_oscillator_sg(), opts);
    EXPECT_EQ(plan.initial_cycle_time, rational(10));
    EXPECT_TRUE(plan.target_reached);
    EXPECT_LE(plan.final_cycle_time, rational(8));
    EXPECT_FALSE(plan.steps.empty());
}

TEST(Optimize, OnlyCriticalArcsAreTouched)
{
    speedup_options opts;
    opts.target = 9;
    opts.min_arc_delay = 1;
    const signal_graph sg = c_oscillator_sg();
    const slack_result slack = analyze_slack(sg);
    const speedup_plan plan = plan_speedup(sg, opts);
    ASSERT_FALSE(plan.steps.empty());
    // The first accelerated arc must lie on the initial critical subgraph.
    EXPECT_TRUE(slack.arc_critical[plan.steps.front().arc]);
}

TEST(Optimize, StepsAreMonotoneAndConsistent)
{
    speedup_options opts;
    opts.target = 6;
    opts.min_arc_delay = 1;
    const speedup_plan plan = plan_speedup(c_oscillator_sg(), opts);
    rational previous = plan.initial_cycle_time;
    for (const speedup_step& step : plan.steps) {
        EXPECT_LT(step.new_delay, step.old_delay);
        EXPECT_GE(step.new_delay, rational(1));
        EXPECT_LE(step.lambda_after, previous);
        previous = step.lambda_after;
    }
    EXPECT_EQ(plan.final_cycle_time, previous);
}

TEST(Optimize, UnreachableTargetReportsHonestly)
{
    // With every delay floored at 1, the best achievable oscillator cycle
    // time is bounded below by the all-ones C1 cycle (4 arcs -> 4).
    speedup_options opts;
    opts.target = rational(1, 2);
    opts.min_arc_delay = 1;
    const speedup_plan plan = plan_speedup(c_oscillator_sg(), opts);
    EXPECT_FALSE(plan.target_reached);
    EXPECT_GE(plan.final_cycle_time, rational(4));
    // The result is still a valid graph with a consistent analysis.
    EXPECT_EQ(analyze_cycle_time(plan.optimized).cycle_time, plan.final_cycle_time);
}

TEST(Optimize, AlreadyFastEnoughIsANoop)
{
    speedup_options opts;
    opts.target = 10;
    const speedup_plan plan = plan_speedup(c_oscillator_sg(), opts);
    EXPECT_TRUE(plan.target_reached);
    EXPECT_TRUE(plan.steps.empty());
    EXPECT_EQ(plan.final_cycle_time, rational(10));
}

TEST(Optimize, MullerRingSpeedup)
{
    speedup_options opts;
    opts.target = rational(5);
    opts.min_arc_delay = rational(1, 2);
    const speedup_plan plan = plan_speedup(muller_ring_sg(), opts);
    EXPECT_TRUE(plan.target_reached);
    EXPECT_LE(plan.final_cycle_time, rational(5));
    EXPECT_EQ(analyze_cycle_time(plan.optimized).cycle_time, plan.final_cycle_time);
}

TEST(Optimize, RandomGraphsConvergeOrSaturate)
{
    for (const std::uint64_t seed : {41u, 42u, 43u}) {
        random_sg_options gopts;
        gopts.events = 12;
        gopts.extra_arcs = 10;
        gopts.seed = seed;
        gopts.max_delay = 9;
        const signal_graph sg = random_marked_graph(gopts);
        const rational initial = analyze_cycle_time(sg).cycle_time;

        speedup_options opts;
        opts.target = initial * rational(1, 2);
        opts.min_arc_delay = 0;
        const speedup_plan plan = plan_speedup(sg, opts);
        // Floor 0 makes any positive target reachable eventually (all
        // critical delays can go to zero), within the step budget.
        if (plan.target_reached) {
            EXPECT_LE(plan.final_cycle_time, opts.target);
        } else {
            EXPECT_EQ(plan.steps.size(), opts.max_steps);
        }
        EXPECT_LE(plan.final_cycle_time, initial);
    }
}

TEST(Optimize, RejectsBadOptions)
{
    speedup_options opts;
    opts.target = 5;
    opts.min_arc_delay = rational(-1);
    EXPECT_THROW((void)plan_speedup(c_oscillator_sg(), opts), error);
}

} // namespace
} // namespace tsg
