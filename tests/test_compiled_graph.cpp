// Tests for the compiled timing kernel: CSR snapshots must mirror the
// digraph structure exactly, the fixed-point delay domain must reproduce
// the rational results bit for bit (and fall back gracefully on overflow),
// and the parallel border runs must be deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/compiled_graph.h"
#include "core/cycle_time.h"
#include "core/slack.h"
#include "gen/oscillator.h"
#include "gen/random_sg.h"
#include "graph/csr.h"
#include "ratio/howard.h"
#include "ratio/karp.h"
#include "sg/builder.h"
#include "util/prng.h"

namespace tsg {
namespace {

std::vector<arc_id> sorted(std::vector<arc_id> arcs)
{
    std::sort(arcs.begin(), arcs.end());
    return arcs;
}

/// A random live strongly connected graph with *fractional* delays —
/// random_marked_graph only emits integers, which would make the
/// fixed-point scale trivially 1.  Same recipe: a Hamiltonian ring with one
/// marked closing arc plus forward chords.
signal_graph random_fractional_graph(std::uint64_t seed, std::uint32_t events,
                                     std::int64_t max_den = 6)
{
    prng rng(seed);
    sg_builder b;
    for (std::uint32_t i = 0; i < events; ++i) b.event("e" + std::to_string(i));
    const auto delay = [&] {
        return rational(rng.uniform(0, 12), rng.uniform(1, max_den));
    };
    for (std::uint32_t i = 0; i + 1 < events; ++i)
        b.arc("e" + std::to_string(i), "e" + std::to_string(i + 1), delay());
    b.marked_arc("e" + std::to_string(events - 1), "e0", delay());
    for (std::uint32_t extra = 0; extra < events; ++extra) {
        const auto i = static_cast<std::uint32_t>(rng.uniform(0, events - 2));
        const auto j = static_cast<std::uint32_t>(rng.uniform(i + 1, events - 1));
        b.arc("e" + std::to_string(i), "e" + std::to_string(j), delay());
    }
    return b.build();
}

TEST(CsrGraph, MatchesDigraphAdjacency)
{
    prng rng(0x5ca1eu);
    for (int round = 0; round < 20; ++round) {
        digraph g(static_cast<std::size_t>(rng.uniform(1, 40)));
        const auto arcs = rng.uniform(0, 120);
        for (std::int64_t a = 0; a < arcs; ++a)
            g.add_arc(static_cast<node_id>(rng.index(g.node_count())),
                      static_cast<node_id>(rng.index(g.node_count())));

        const csr_graph c(g);
        ASSERT_EQ(c.node_count(), g.node_count());
        ASSERT_EQ(c.arc_count(), g.arc_count());
        for (arc_id a = 0; a < g.arc_count(); ++a) {
            EXPECT_EQ(c.from(a), g.from(a));
            EXPECT_EQ(c.to(a), g.to(a));
        }
        for (node_id v = 0; v < g.node_count(); ++v) {
            const auto out = c.out_arcs(v);
            const auto in = c.in_arcs(v);
            // Same arcs *in the same order* — tie-breaking in the argmax
            // sweeps depends on it.
            EXPECT_TRUE(std::equal(out.begin(), out.end(), g.out_arcs(v).begin(),
                                   g.out_arcs(v).end()));
            EXPECT_TRUE(std::equal(in.begin(), in.end(), g.in_arcs(v).begin(),
                                   g.in_arcs(v).end()));
        }
    }
}

TEST(CsrGraph, IncrementalBuildMatchesSnapshot)
{
    digraph g(3);
    g.add_arc(0, 1);
    g.add_arc(1, 2);
    g.add_arc(2, 0);
    g.add_arc(1, 1);

    csr_graph c;
    c.add_nodes(3);
    c.add_arc(0, 1);
    c.add_arc(1, 2);
    EXPECT_EQ(c.out_degree(1), 1u); // index built lazily...
    c.add_arc(2, 0);                // ...and invalidated by mutation
    c.add_arc(1, 1);
    EXPECT_EQ(c.out_degree(1), 2u);
    EXPECT_EQ(c.in_degree(1), 2u);
    EXPECT_EQ(sorted({c.out_arcs(1).begin(), c.out_arcs(1).end()}), sorted({1, 3}));
    EXPECT_THROW(c.add_arc(0, 9), error);
}

TEST(CompiledGraph, StructureMirrorsSignalGraph)
{
    const signal_graph sg = c_oscillator_sg();
    const compiled_graph cg(sg);

    ASSERT_EQ(cg.structure().node_count(), sg.event_count());
    ASSERT_EQ(cg.structure().arc_count(), sg.arc_count());
    for (arc_id a = 0; a < sg.arc_count(); ++a) {
        EXPECT_EQ(cg.structure().from(a), sg.arc(a).from);
        EXPECT_EQ(cg.structure().to(a), sg.arc(a).to);
        EXPECT_EQ(cg.delay()[a], sg.arc(a).delay);
    }

    // The compiled core must agree with signal_graph::repetitive_core().
    const signal_graph::core_view reference = sg.repetitive_core();
    const compiled_graph::core_view& core = cg.core();
    ASSERT_EQ(core.graph.node_count(), reference.graph.node_count());
    ASSERT_EQ(core.graph.arc_count(), reference.graph.arc_count());
    EXPECT_EQ(core.node_event, reference.node_event);
    EXPECT_EQ(core.event_node, reference.event_node);
    EXPECT_EQ(core.arc_original, reference.arc_original);
    for (arc_id a = 0; a < core.graph.arc_count(); ++a) {
        EXPECT_EQ(core.graph.from(a), reference.graph.from(a));
        EXPECT_EQ(core.graph.to(a), reference.graph.to(a));
    }
}

TEST(CompiledGraph, CoreNumberingMatchesRepetitiveCoreOnRandomGraphs)
{
    // compile_core() builds the core directly from the event classification
    // instead of calling repetitive_core(); this pins the numbering parity
    // the analyses rely on (same node/arc ids in both views), including on
    // graphs with initial and transient events around the core.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        random_sg_options opts;
        opts.events = 48;
        opts.extra_arcs = 64;
        opts.seed = seed;
        const signal_graph sg = random_marked_graph(opts);
        const compiled_graph cg(sg);

        const signal_graph::core_view reference = sg.repetitive_core();
        const compiled_graph::core_view& core = cg.core();
        ASSERT_EQ(core.graph.node_count(), reference.graph.node_count()) << seed;
        ASSERT_EQ(core.graph.arc_count(), reference.graph.arc_count()) << seed;
        EXPECT_EQ(core.node_event, reference.node_event) << seed;
        EXPECT_EQ(core.event_node, reference.event_node) << seed;
        EXPECT_EQ(core.arc_original, reference.arc_original) << seed;
        for (arc_id a = 0; a < core.graph.arc_count(); ++a) {
            ASSERT_EQ(core.graph.from(a), reference.graph.from(a)) << seed;
            ASSERT_EQ(core.graph.to(a), reference.graph.to(a)) << seed;
        }
    }
}

TEST(CompiledGraph, FixedPointScaleIsDenominatorLcm)
{
    sg_builder b;
    b.event("a");
    b.event("b");
    b.arc("a", "b", rational(1, 2));
    b.marked_arc("b", "a", rational(5, 6));
    b.arc("a", "b", rational(1, 3));
    b.marked_arc("b", "a", rational(4));
    const signal_graph sg = b.build();
    const compiled_graph cg(sg);

    ASSERT_TRUE(cg.fixed_point());
    EXPECT_EQ(cg.scale(), 6);
    EXPECT_EQ(cg.scaled_delay()[0], 3);  // 1/2 * 6
    EXPECT_EQ(cg.scaled_delay()[1], 5);  // 5/6 * 6
    EXPECT_EQ(cg.scaled_delay()[2], 2);  // 1/3 * 6
    EXPECT_EQ(cg.scaled_delay()[3], 24); // 4 * 6
    for (arc_id a = 0; a < sg.arc_count(); ++a)
        EXPECT_EQ(cg.unscale(cg.scaled_delay()[a]), sg.arc(a).delay);
}

TEST(CompiledGraph, FixedPointTotalsMatchRationalTotals)
{
    prng rng(0xf00du);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const signal_graph sg = random_fractional_graph(seed, 24);
        const compiled_graph cg(sg);
        ASSERT_TRUE(cg.fixed_point()) << seed;

        // Random arc subsets: scaled sums divide back to the exact rational
        // sums.
        for (int round = 0; round < 20; ++round) {
            rational exact(0);
            std::int64_t scaled = 0;
            for (arc_id a = 0; a < sg.arc_count(); ++a) {
                if (!rng.chance(0.5)) continue;
                exact += sg.arc(a).delay;
                scaled += cg.scaled_delay()[a];
            }
            EXPECT_EQ(cg.unscale(scaled), exact) << seed;
        }
    }
}

TEST(CompiledGraph, FixedPointAnalysisIsBitIdenticalToRational)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const signal_graph sg = random_fractional_graph(seed, 32);
        const compiled_graph fixed(sg);
        const compiled_graph exact(sg, compile_options{.use_fixed_point = false});
        ASSERT_TRUE(fixed.fixed_point());
        ASSERT_FALSE(exact.fixed_point());

        analysis_options border; // runs compared below exist only here
        border.solver = cycle_time_solver::border_sweep;
        const cycle_time_result a = analyze_cycle_time(fixed, border);
        const cycle_time_result b = analyze_cycle_time(exact, border);
        EXPECT_EQ(a.cycle_time, b.cycle_time) << seed;
        EXPECT_EQ(a.critical_cycle_arcs, b.critical_cycle_arcs) << seed;
        EXPECT_EQ(a.critical_occurrence_period, b.critical_occurrence_period) << seed;
        ASSERT_EQ(a.runs.size(), b.runs.size());
        for (std::size_t k = 0; k < a.runs.size(); ++k)
            EXPECT_EQ(a.runs[k].deltas, b.runs[k].deltas) << seed;

        // Cross-validate both against an independent solver.
        EXPECT_EQ(a.cycle_time, cycle_time_howard(sg)) << seed;
        EXPECT_EQ(a.cycle_time, cycle_time_karp(sg)) << seed;

        // Slack layer: same potentials and slacks through both domains.
        const slack_result sa = analyze_slack(fixed);
        const slack_result sb = analyze_slack(exact);
        EXPECT_EQ(sa.slack, sb.slack) << seed;
        EXPECT_EQ(sa.potential, sb.potential) << seed;
        EXPECT_EQ(sa.arc_critical, sb.arc_critical) << seed;
        EXPECT_EQ(sa.criticality_margin, sb.criticality_margin) << seed;
    }
}

TEST(CompiledGraph, OverflowFallsBackToRational)
{
    // Two coprime near-2^31 denominators push the LCM past the scale cap.
    const std::int64_t p1 = 2147483647; // 2^31 - 1 (prime)
    const std::int64_t p2 = 2147483629; // also prime
    sg_builder b;
    b.event("a");
    b.event("b");
    b.arc("a", "b", rational(1, p1));
    b.marked_arc("b", "a", rational(10, p2));
    const signal_graph sg = b.build();
    const compiled_graph cg(sg);

    EXPECT_FALSE(cg.fixed_point());
    EXPECT_EQ(cg.scale(), 0);

    // The analysis still runs — in the exact rational domain.
    const cycle_time_result r = analyze_cycle_time(cg);
    EXPECT_EQ(r.cycle_time, rational(1, p1) + rational(10, p2));
    EXPECT_EQ(r.cycle_time, cycle_time_howard(sg));
}

TEST(CompiledGraph, HugeDelaysDisableFixedPointSweeps)
{
    // Integer delays near INT64_MAX: the scale is 1 but the period budget
    // collapses, so sweeps must take the rational path (which the seed's
    // 128-bit intermediates handle).
    const std::int64_t big = std::int64_t{1} << 61;
    sg_builder b;
    b.event("a");
    b.event("b");
    b.arc("a", "b", rational(big));
    b.marked_arc("b", "a", rational(big));
    const signal_graph sg = b.build();
    const compiled_graph cg(sg);

    EXPECT_FALSE(cg.fixed_point_for_periods(1));
    EXPECT_EQ(analyze_cycle_time(cg).cycle_time, rational(big) + rational(big));
}

TEST(CompiledGraph, ParallelBorderRunsMatchSerial)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        random_sg_options opts;
        opts.events = 96;
        opts.extra_arcs = 96;
        opts.seed = seed;
        opts.border_limit = 0; // many border events -> many parallel runs
        const signal_graph sg = random_marked_graph(opts);
        const compiled_graph cg(sg);

        analysis_options serial;
        serial.max_threads = 1;
        serial.solver = cycle_time_solver::border_sweep; // the runs are the point
        analysis_options parallel;
        parallel.max_threads = 4;
        parallel.solver = cycle_time_solver::border_sweep;

        const cycle_time_result a = analyze_cycle_time(cg, serial);
        const cycle_time_result b = analyze_cycle_time(cg, parallel);
        EXPECT_EQ(a.cycle_time, b.cycle_time) << seed;
        EXPECT_EQ(a.critical_cycle_events, b.critical_cycle_events) << seed;
        EXPECT_EQ(a.critical_cycle_arcs, b.critical_cycle_arcs) << seed;
        ASSERT_EQ(a.runs.size(), b.runs.size());
        for (std::size_t k = 0; k < a.runs.size(); ++k) {
            EXPECT_EQ(a.runs[k].origin, b.runs[k].origin);
            EXPECT_EQ(a.runs[k].deltas, b.runs[k].deltas);
            EXPECT_EQ(a.runs[k].critical, b.runs[k].critical);
        }
    }
}

TEST(CompiledGraph, AcyclicGraphsCompileWithoutCore)
{
    sg_builder b;
    b.event("start");
    b.event("mid");
    b.event("end");
    b.arc("start", "mid", rational(3, 2));
    b.arc("mid", "end", rational(5, 2));
    const signal_graph sg = b.build();
    const compiled_graph cg(sg);

    EXPECT_FALSE(cg.has_core());
    EXPECT_THROW((void)cg.core(), error);
    ASSERT_TRUE(cg.acyclic_order().has_value());
    EXPECT_EQ(cg.acyclic_order()->size(), sg.event_count());
    ASSERT_TRUE(cg.fixed_point());
    EXPECT_EQ(cg.scale(), 2);
}

} // namespace
} // namespace tsg
